// TPC-C on the threaded runtime: New-Order and Payment stored procedures
// over a warehouse-partitioned cluster, executed by both engines, with
// TPC-C's ~1% New-Order rollbacks exercising the §5.3 abort path
// (aborting transactions forward the values they read).
//
//   ./build/examples/tpcc_cluster

#include <cstdio>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "workload/tpcc.h"

using namespace tpart;

int main() {
  TpccOptions wopts;
  wopts.num_machines = 4;
  wopts.warehouses_per_machine = 2;
  wopts.customers_per_district = 100;
  wopts.num_items = 1'000;
  wopts.num_txns = 3'000;
  wopts.abort_prob = 0.01;
  const Workload workload = MakeTpccWorkload(wopts);

  std::printf("TPC-C: %u warehouses on %zu machines, %zu txns, "
              "%.1f%% multi-warehouse\n",
              wopts.warehouses_per_machine *
                  static_cast<std::uint32_t>(wopts.num_machines),
              wopts.num_machines, workload.requests.size(),
              100.0 * MeasureDistributedRate(workload.requests,
                                             *workload.partition_map));

  // Serial reference.
  auto one = std::make_shared<HashPartitionMap>(1);
  PartitionedStore reference(1, one);
  {
    PartitionedStore scratch(workload.num_machines, workload.partition_map);
    workload.loader(scratch);
    for (auto& [k, rec] : scratch.Snapshot()) reference.Upsert(k, rec);
  }
  auto serial = RunSerial(*workload.procedures,
                          workload.SequencedRequests(), reference.store(0));
  if (!serial.ok()) return 1;

  LocalClusterOptions copts;
  copts.scheduler.sink_size = 100;
  LocalCluster cluster(&workload, copts);

  for (const char* engine : {"T-Part", "Calvin"}) {
    const ClusterRunOutcome outcome = engine[0] == 'T'
                                          ? cluster.RunTPart()
                                          : cluster.RunCalvin();
    const bool ok = cluster.store().Snapshot() == reference.Snapshot();
    std::printf("%-7s: %llu committed, %llu aborted (rolled-back "
                "New-Orders), state %s serial\n",
                engine, static_cast<unsigned long long>(outcome.committed),
                static_cast<unsigned long long>(outcome.aborted),
                ok ? "==" : "!=");
    if (!ok) return 1;
  }

  // Peek at one district to show real data moved.
  const Result<Record> district =
      reference.Read(MakeObjectKey(kTpccDistrict, 0));
  if (district.ok()) {
    std::printf("district(w0,d0): next_o_id=%lld ytd=%lld\n",
                static_cast<long long>(district->field(0)),
                static_cast<long long>(district->field(1)));
  }
  return 0;
}
