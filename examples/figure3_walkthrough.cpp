// A guided tour of the T-Part scheduler using the paper's own running
// example (Figure 3): eight transactions over objects A..G on two
// machines. Prints the push plans of both sinking rounds so you can
// compare them line-by-line with §3.3-§3.4 and §5.2 of the paper.
//
//   ./build/examples/figure3_walkthrough

#include <cstdio>

#include "storage/data_partition.h"
#include "tgraph/tgraph.h"

using namespace tpart;

namespace {

constexpr ObjectKey A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6;

TxnSpec Txn(TxnId id, std::vector<ObjectKey> reads,
            std::vector<ObjectKey> writes) {
  TxnSpec spec;
  spec.id = id;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

void PrintPlan(const SinkPlan& plan) {
  std::printf("--- sinking round %llu ---\n",
              static_cast<unsigned long long>(plan.epoch));
  const char* kind_names[] = {"storage", "push", "local-version",
                              "cache(local)", "cache(remote)"};
  for (const TxnPlan& p : plan.txns) {
    std::printf("T%llu @ machine %u\n",
                static_cast<unsigned long long>(p.txn), p.machine);
    for (const auto& r : p.reads) {
      std::printf("    read  %c  from %s (version T%llu)%s\n",
                  'A' + static_cast<int>(r.key),
                  kind_names[static_cast<int>(r.kind)],
                  static_cast<unsigned long long>(r.src_txn),
                  r.invalidate_entry ? "  [invalidates entry]" : "");
    }
    for (const auto& s : p.pushes) {
      std::printf("    push  %c  -> T%llu on machine %u\n",
                  'A' + static_cast<int>(s.key),
                  static_cast<unsigned long long>(s.dst_txn),
                  s.dst_machine);
    }
    for (const auto& s : p.local_versions) {
      std::printf("    cache %c  -> T%llu (local hand-off)\n",
                  'A' + static_cast<int>(s.key),
                  static_cast<unsigned long long>(s.dst_txn));
    }
    for (const auto& s : p.cache_publishes) {
      std::printf("    cache %c  as <%c, Sink%llu> for later rounds\n",
                  'A' + static_cast<int>(s.key), 'A' + static_cast<int>(s.key),
                  static_cast<unsigned long long>(s.epoch));
    }
    for (const auto& s : p.write_backs) {
      std::printf("    write %c  back to storage on machine %u "
                  "(version T%llu)\n",
                  'A' + static_cast<int>(s.key), s.home,
                  static_cast<unsigned long long>(s.version_txn));
    }
  }
}

}  // namespace

int main() {
  // S1 = machine 0 holds {C, D}; S2 = machine 1 holds {A, B, E, F, G}.
  auto map = std::make_shared<LookupPartitionMap>(
      2, std::make_shared<HashPartitionMap>(2));
  map->Assign(C, 0);
  map->Assign(D, 0);
  for (const ObjectKey k : {A, B, E, F, G}) map->Assign(k, 1);

  TGraph::Options opts;
  opts.num_machines = 2;
  opts.read_own_writes = false;  // the example has blind writes (T1)
  opts.sticky_cache = false;
  TGraph graph(opts, map);

  std::printf("Figure 3(a): the paper's eight transactions\n");
  graph.AddTxn(Txn(1, {}, {A, B}));
  graph.AddTxn(Txn(2, {B, C}, {C}));
  graph.AddTxn(Txn(3, {C}, {G}));
  graph.AddTxn(Txn(4, {A}, {A, E}));
  graph.AddTxn(Txn(5, {B, C}, {B, C}));
  graph.AddTxn(Txn(6, {C}, {D}));
  graph.AddTxn(Txn(7, {}, {G}));
  graph.AddTxn(Txn(8, {A, B}, {F}));
  std::printf("T-graph holds %zu unsunk transactions\n\n",
              graph.num_unsunk());

  // The partitioning the figure draws: {T2,T3,T5,T6} with S1, rest S2.
  for (const TxnId t : {2, 3, 5, 6}) graph.mutable_node(t).assigned = 0;
  for (const TxnId t : {1, 4, 7, 8}) graph.mutable_node(t).assigned = 1;

  PrintPlan(graph.Sink(6, 1));  // Figure 3(b): sink T1..T6

  std::printf("\nFigure 3(c): T9 and T10 arrive\n");
  graph.AddTxn(Txn(9, {B, C, D}, {B}));
  graph.AddTxn(Txn(10, {E, F, G}, {}));
  graph.mutable_node(7).assigned = 1;
  graph.mutable_node(8).assigned = 1;
  graph.mutable_node(9).assigned = 0;
  graph.mutable_node(10).assigned = 1;

  PrintPlan(graph.Sink(4, 2));
  return 0;
}
