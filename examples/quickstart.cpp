// Quickstart: stand up a 3-machine deterministic database in one process,
// run a workload through both engines (Calvin baseline and T-Part), and
// check that both produce exactly the same results and final state as a
// serial execution.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "workload/micro.h"

using namespace tpart;

int main() {
  // 1. A workload: schema + loader + stored procedures + a totally
  //    ordered transaction trace. The Microbenchmark reads 10 records and
  //    updates 5 of them; most transactions span several machines.
  MicroOptions wopts;
  wopts.num_machines = 3;
  wopts.records_per_machine = 1'000;
  wopts.hot_set_size = 100;
  wopts.num_txns = 2'000;
  const Workload workload = MakeMicroWorkload(wopts);
  std::printf("workload: %zu txns, %.0f%% distributed\n",
              workload.requests.size(),
              100.0 * MeasureDistributedRate(workload.requests,
                                             *workload.partition_map));

  // 2. A serial reference run defines correctness.
  auto one = std::make_shared<HashPartitionMap>(1);
  PartitionedStore reference(1, one);
  {
    PartitionedStore scratch(workload.num_machines, workload.partition_map);
    workload.loader(scratch);
    for (auto& [k, rec] : scratch.Snapshot()) reference.Upsert(k, rec);
  }
  auto serial = RunSerial(*workload.procedures,
                          workload.SequencedRequests(), reference.store(0));
  if (!serial.ok()) {
    std::printf("serial run failed: %s\n", serial.status().ToString().c_str());
    return 1;
  }
  std::printf("serial:    %llu committed, %llu aborted\n",
              static_cast<unsigned long long>(serial->committed),
              static_cast<unsigned long long>(serial->aborted));

  // 3. The threaded cluster: N machines (executor + service threads)
  //    wired by in-memory channels.
  LocalClusterOptions copts;
  copts.scheduler.sink_size = 50;  // the paper recommends ~100 (§6.3.6)
  LocalCluster cluster(&workload, copts);

  const ClusterRunOutcome tpart = cluster.RunTPart();
  const bool tpart_ok = cluster.store().Snapshot() == reference.Snapshot();
  std::printf("T-Part:    %llu committed, state %s serial\n",
              static_cast<unsigned long long>(tpart.committed),
              tpart_ok ? "==" : "!=");

  const ClusterRunOutcome calvin = cluster.RunCalvin();
  const bool calvin_ok = cluster.store().Snapshot() == reference.Snapshot();
  std::printf("Calvin:    %llu committed, state %s serial\n",
              static_cast<unsigned long long>(calvin.committed),
              calvin_ok ? "==" : "!=");

  return tpart_ok && calvin_ok ? 0 : 1;
}
