// The paper's motivating scenario (§1, §6.1.2): a hard-to-partition
// brokerage workload where nearly every transaction is distributed and
// customer access is skewed. Runs the cluster simulator at several sizes
// and shows Calvin saturating while Calvin+TP keeps scaling, plus the
// Fig. 7-style per-component breakdown.
//
//   ./build/examples/hard_partition_sim

#include <cstdio>

#include "sim/calvin_sim.h"
#include "sim/tpart_sim.h"
#include "workload/tpce.h"

using namespace tpart;

namespace {

CostModel HeterogeneousCost(std::size_t machines) {
  CostModel cost;
  cost.machine_speed.resize(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    cost.machine_speed[i] =
        0.8 + 0.4 * static_cast<double>((i * 7) % 10) / 10.0;
  }
  return cost;
}

}  // namespace

int main() {
  std::printf("%9s %14s %14s %8s | %18s %18s\n", "machines", "Calvin tps",
              "Calvin+TP tps", "speedup", "Calvin stall us", "TP stall us");
  for (const std::size_t machines : {4u, 8u, 16u, 24u}) {
    TpceOptions wopts;
    wopts.num_machines = machines;
    wopts.customers_per_machine = 1'000;
    wopts.securities_per_machine = 500;
    wopts.num_txns = 3'000;
    const Workload w = MakeTpceWorkload(wopts);
    const auto txns = w.SequencedRequests();

    CalvinSimOptions calvin_opts;
    calvin_opts.num_machines = machines;
    calvin_opts.cost = HeterogeneousCost(machines);
    const RunStats calvin =
        RunCalvinSim(calvin_opts, *w.partition_map, txns);

    TPartSimOptions tpart_opts;
    tpart_opts.num_machines = machines;
    tpart_opts.cost = calvin_opts.cost;
    tpart_opts.scheduler.sink_size = 100;
    const RunStats tpart = RunTPartSim(tpart_opts, w.partition_map, txns);

    std::printf("%9zu %14.0f %14.0f %7.2fx | %18.1f %18.1f\n", machines,
                calvin.Throughput(), tpart.Throughput(),
                tpart.Throughput() / calvin.Throughput(),
                calvin.stall_wait.mean() / 1000.0,
                tpart.stall_wait.mean() / 1000.0);

    if (machines == 16) {
      std::printf("\nper-component breakdown at 16 machines (Fig. 7 "
                  "style):\n  Calvin:    %s\n  Calvin+TP: %s\n\n",
                  calvin.breakdown.ToString().c_str(),
                  tpart.breakdown.ToString().c_str());
    }
  }
  return 0;
}
