// Command-line driver: run any bundled workload on any engine, on the
// simulated cluster or the threaded runtime, and print the statistics.
//
//   ./build/examples/cluster_cli --workload=tpce --engine=both \
//       --machines=8 --txns=5000 --sink=100
//   ./build/examples/cluster_cli --workload=tpcc --engine=tpart \
//       --runtime --machines=4 --txns=2000
//
// Flags:
//   --workload=micro|tpcc|tpce      (default micro)
//   --engine=calvin|tpart|both      (default both)
//   --machines=N                    (default 4)
//   --txns=N                        (default 5000)
//   --sink=N                        sink size (default 100)
//   --runtime                       threaded runtime instead of simulator
//   --gstore                        G-Store emulation (sink 1, write-back)
//   --transport=direct|inproc|tcp   runtime wire substrate (default direct)
//   --drop=P --dup=P --delay=P      runtime fault injection probabilities
//   --stream                        streaming pipeline (runtime T-Part):
//                                   admit -> schedule -> disseminate ->
//                                   execute as concurrent bounded stages;
//                                   prints stage stats and p50/p99
//                                   admission-to-commit latency
//   --crash=M@E[,M@E|seq@E...]      (streaming only) comma list of
//                                   crash-stops in firing order. M@E
//                                   crash-stops worker machine M at sink
//                                   epoch E, detects it via heartbeats,
//                                   and recovers it in-run. seq@E
//                                   crash-stops the coordinator (leader
//                                   sequencer/scheduler) at epoch E and
//                                   fails over to a standby — requires
//                                   --standbys>=1. seq@E+revive@E' pauses
//                                   the leader instead: at epoch E' the
//                                   zombie wakes and replays its
//                                   in-flight traffic, which the
//                                   successor's term fence must drop.
//                                   Worker and seq events compose freely;
//                                   prints the recovery and failover
//                                   statistics
//   --partition=SPEC[;SPEC...]      (streaming only) seeded link
//                                   partitions, ';'-separated (group
//                                   lists use commas). "0,1|2@3..5"
//                                   severs both directions between {0,1}
//                                   and {2} for sink epochs 3..4;
//                                   "0>1@3..5" severs only 0's packets
//                                   to 1; "1|@3" isolates machine 1 from
//                                   everyone until the final flush. The
//                                   retry layer redelivers everything a
//                                   window swallowed once it heals —
//                                   results stay byte-identical
//   --slow-link=SPEC[,SPEC...]      (streaming only) gray-failure slow
//                                   links: "0->1@2..7:900" delays every
//                                   packet 0 sends to 1 by a seeded
//                                   amount up to 900us while epochs 2..6
//                                   disseminate (delay defaults to
//                                   1500us). The adaptive detector must
//                                   not declare the slow destination
//                                   dead
//   --detector                      (streaming only) arm the phi-accrual
//                                   failure detector even without --crash:
//                                   stragglers and slow links are excused
//                                   while true crash-stops are caught
//   --no-recover                    with --crash: detect only, surface
//                                   the failure as a fault status
//                                   (worker events only)
//   --standbys=N                    (streaming only) run the coordinator
//                                   replicated: N standby replicas
//                                   receive a quorum-committed request
//                                   log and one takes over by election
//                                   if the leader crash-stops
//   --checkpoint-every=N            (streaming only) capture a per-machine
//                                   incremental checkpoint every N sink
//                                   epochs and truncate the recovery logs
//                                   and resend window; prints the
//                                   checkpoint statistics
//   --resize=+K@E[,±K@E...]         (streaming only) grow (+K) or shrink
//                                   (-K) the machine set by K machines at
//                                   sink epoch E: quiesce at the epoch
//                                   barrier, migrate the re-homed
//                                   partitions over the wire, and resume;
//                                   results stay byte-identical to a
//                                   fixed-membership run. Repeatable as a
//                                   comma list with increasing epochs.
//   --resize-policy=rehash|hotkey   route selection for --resize: rehash
//                                   moves the minimal consistent-hash
//                                   slice; hotkey additionally pins the
//                                   hottest keys onto the new machines
//                                   (default rehash)
//   --chaos=SEED                    (streaming only) seeded chaos matrix:
//                                   two sequential crashes of distinct
//                                   machines, a repeat crash of the first
//                                   victim, and a straggler — all
//                                   recovered in-run; with --standbys>=1
//                                   it also schedules one coordinator
//                                   leader crash (seq@E in the printed
//                                   schedule); incompatible with --crash
//   --chaos-extended                widen --chaos with link-level faults
//                                   derived from the same seed: one
//                                   partition window, one gray-failure
//                                   slow link, one flapping link, and
//                                   (with --standbys>=1) the leader
//                                   crash becomes a pause-and-revive
//                                   zombie whose stale traffic must be
//                                   term-fenced
//   --trace=out.json                record a Chrome trace-event JSON of
//                                   the run (open in Perfetto or
//                                   chrome://tracing). Simulator traces
//                                   use virtual time and are byte-
//                                   identical across same-seed runs.
//   --metrics=out.prom              write the run's metrics snapshot:
//                                   Prometheus text exposition format,
//                                   or one JSON object if the path ends
//                                   in .json
//   --metrics-stream=out.jsonl      stream in-flight metrics samples as
//                                   JSONL, one timestamped object per
//                                   sample. Runtime runs sample on wall
//                                   time (--sample-every); simulator runs
//                                   sample at sink-epoch boundaries and
//                                   are byte-identical across same-seed
//                                   runs
//   --sample-every=USEC             wall-clock sampling interval for
//                                   --metrics-stream on the runtime
//                                   (default 10000)
//   --serve-metrics=PORT            serve the newest sample (plus
//                                   /healthz) over HTTP on
//                                   127.0.0.1:PORT for the duration of
//                                   the run; 0 picks an ephemeral port
//   --txn-sample=1/N (or N)         causal timelines: transactions with
//                                   id % N == 0 get end-to-end async
//                                   spans (admit -> round_received ->
//                                   executed -> commit) stitched across
//                                   machines and coordinator terms in the
//                                   --trace output
//   --flight-recorder=out.json      black-box post-mortem destination:
//                                   the always-on flight recorder dumps
//                                   its bounded event rings there as
//                                   Chrome-trace JSON when a watchdog /
//                                   stall / failover / migration fault
//                                   fires (the runtime keeps recording
//                                   either way; without this flag dumps
//                                   stay in memory)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "baselines/gstore.h"
#include "net/partition_schedule.h"
#include "obs/flight_recorder.h"
#include "obs/live_sampler.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "sim/calvin_sim.h"
#include "sim/tpart_sim.h"
#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

using namespace tpart;

namespace {

std::string StrFlag(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

std::int64_t IntFlag(int argc, char** argv, const char* name,
                     std::int64_t def) {
  const std::string s =
      StrFlag(argc, argv, name, std::to_string(def));
  return std::atoll(s.c_str());
}

bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

Workload MakeWorkload(const std::string& name, std::size_t machines,
                      std::size_t txns) {
  if (name == "tpcc") {
    TpccOptions o;
    o.num_machines = machines;
    o.num_txns = txns;
    return MakeTpccWorkload(o);
  }
  if (name == "tpce") {
    TpceOptions o;
    o.num_machines = machines;
    o.num_txns = txns;
    return MakeTpceWorkload(o);
  }
  MicroOptions o;
  o.num_machines = machines;
  o.records_per_machine = 20'000;
  o.hot_set_size = 200;
  o.num_txns = txns;
  return MakeMicroWorkload(o);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload_name = StrFlag(argc, argv, "workload", "micro");
  const std::string engine = StrFlag(argc, argv, "engine", "both");
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 4));
  const auto txns = static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto sink = static_cast<std::size_t>(IntFlag(argc, argv, "sink", 100));
  const bool use_runtime = BoolFlag(argc, argv, "runtime");
  const bool stream = BoolFlag(argc, argv, "stream");
  const bool gstore = BoolFlag(argc, argv, "gstore");
  const std::string transport_name =
      StrFlag(argc, argv, "transport", "direct");
  const double drop = std::atof(StrFlag(argc, argv, "drop", "0").c_str());
  const double dup = std::atof(StrFlag(argc, argv, "dup", "0").c_str());
  const double delay = std::atof(StrFlag(argc, argv, "delay", "0").c_str());
  const std::string crash = StrFlag(argc, argv, "crash", "");
  const bool no_recover = BoolFlag(argc, argv, "no-recover");
  const auto standbys =
      static_cast<std::size_t>(IntFlag(argc, argv, "standbys", 0));
  const auto checkpoint_every = static_cast<SinkEpoch>(
      IntFlag(argc, argv, "checkpoint-every", 0));
  const std::string chaos = StrFlag(argc, argv, "chaos", "");
  const bool chaos_extended = BoolFlag(argc, argv, "chaos-extended");
  const std::string partition_specs = StrFlag(argc, argv, "partition", "");
  const std::string slow_link_specs = StrFlag(argc, argv, "slow-link", "");
  const bool force_detector = BoolFlag(argc, argv, "detector");
  const std::string resize = StrFlag(argc, argv, "resize", "");
  const std::string resize_policy =
      StrFlag(argc, argv, "resize-policy", "rehash");
  const std::string trace_path = StrFlag(argc, argv, "trace", "");
  const std::string metrics_path = StrFlag(argc, argv, "metrics", "");
  const std::string metrics_stream_path =
      StrFlag(argc, argv, "metrics-stream", "");
  const auto sample_every = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "sample-every", 10'000));
  const std::string serve_metrics = StrFlag(argc, argv, "serve-metrics", "");
  // Accept "N" or the stride form "1/N"; both mean every Nth txn id.
  const std::string txn_sample_str = StrFlag(argc, argv, "txn-sample", "");
  std::uint64_t txn_sample = 0;
  if (!txn_sample_str.empty()) {
    const auto slash = txn_sample_str.find('/');
    txn_sample = static_cast<std::uint64_t>(std::atoll(
        slash == std::string::npos ? txn_sample_str.c_str()
                                   : txn_sample_str.c_str() + slash + 1));
  }
  const std::string flight_path = StrFlag(argc, argv, "flight-recorder", "");

  // The simulator's recorder runs on virtual time (deterministic,
  // diffable traces); the threaded runtime's on the steady clock.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>(
        use_runtime ? obs::TraceRecorder::ClockDomain::kSteady
                    : obs::TraceRecorder::ClockDomain::kManual);
    obs::InstallGlobalTrace(recorder.get());
  }
  obs::MetricsRegistry registry;

  // Black-box flight recorder: always-on for runtime runs (bounded
  // per-thread rings, compact binary events), dumped as a Chrome-trace
  // post-mortem when a fault path fires. --flight-recorder only chooses
  // where dumps land.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (use_runtime) {
    obs::FlightRecorder::Options fopts;
    fopts.dump_path = flight_path;
    flight = std::make_unique<obs::FlightRecorder>(fopts);
    obs::InstallGlobalFlightRecorder(flight.get());
  }

  // In-flight metrics sampling: wall-time cadence on the threaded
  // runtime, sink-epoch cadence (deterministic) on the simulator.
  std::unique_ptr<obs::LiveSampler> sampler;
  if (!metrics_stream_path.empty() || !serve_metrics.empty()) {
    sampler = std::make_unique<obs::LiveSampler>(
        use_runtime ? obs::LiveSampler::Domain::kWall
                    : obs::LiveSampler::Domain::kEpoch);
  }
  std::unique_ptr<obs::MetricsHttpServer> http;
  if (!serve_metrics.empty()) {
    http = std::make_unique<obs::MetricsHttpServer>();
    const Status s = http->Start(
        static_cast<std::uint16_t>(std::atoi(serve_metrics.c_str())),
        [&sampler, &registry] {
          return sampler != nullptr && sampler->samples() > 0
                     ? sampler->PrometheusText()
                     : registry.PrometheusText();
        });
    if (!s.ok()) {
      std::fprintf(stderr, "--serve-metrics: %s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("serving /metrics and /healthz on 127.0.0.1:%u\n",
                http->port());
  }

  // Writes the trace/metrics artifacts; every exit path past flag
  // parsing funnels through here.
  const auto finish = [&](int rc) {
    if (recorder != nullptr) {
      obs::InstallGlobalTrace(nullptr);
      const Status s = recorder->WriteJson(trace_path);
      if (s.ok()) {
        std::printf("trace: %s (%zu events)\n", trace_path.c_str(),
                    recorder->event_count());
      } else {
        std::fprintf(stderr, "trace write failed: %s\n",
                     s.ToString().c_str());
        if (rc == 0) rc = 1;
      }
    }
    if (!metrics_path.empty()) {
      const bool as_json =
          metrics_path.size() >= 5 &&
          metrics_path.compare(metrics_path.size() - 5, 5, ".json") == 0;
      const Status s = registry.WriteFile(
          metrics_path, as_json ? registry.Json() : registry.PrometheusText());
      if (s.ok()) {
        std::printf("metrics: %s (%zu series)\n", metrics_path.c_str(),
                    registry.size());
      } else {
        std::fprintf(stderr, "metrics write failed: %s\n",
                     s.ToString().c_str());
        if (rc == 0) rc = 1;
      }
    }
    if (http != nullptr) http->Stop();
    if (sampler != nullptr && !metrics_stream_path.empty()) {
      const Status s = sampler->WriteJsonl(metrics_stream_path);
      if (s.ok()) {
        std::printf("metrics stream: %s (%zu samples)\n",
                    metrics_stream_path.c_str(), sampler->samples());
      } else {
        std::fprintf(stderr, "metrics stream write failed: %s\n",
                     s.ToString().c_str());
        if (rc == 0) rc = 1;
      }
    }
    if (flight != nullptr) {
      obs::InstallGlobalFlightRecorder(nullptr);
      if (flight->dumps() > 0) {
        std::printf("flight recorder: %zu post-mortem dump(s)%s%s\n",
                    flight->dumps(), flight_path.empty() ? "" : " -> ",
                    flight_path.c_str());
      }
    }
    return rc;
  };

  const Workload w = MakeWorkload(workload_name, machines, txns);
  std::printf("%s: %zu machines, %zu txns, %.0f%% distributed\n",
              w.name.c_str(), machines, w.requests.size(),
              100.0 * MeasureDistributedRate(w.requests, *w.partition_map));

  if (use_runtime) {
    LocalClusterOptions opts;
    std::string chaos_schedule;
    opts.scheduler.sink_size = sink;
    if (gstore) {
      opts.scheduler.sink_size = 1;
      opts.scheduler.graph.always_write_back = true;
      opts.scheduler.graph.sticky_cache = false;
      opts.scheduler.optimize_plans = false;
    }
    if (transport_name == "inproc") {
      opts.transport.kind = TransportKind::kInProcess;
    } else if (transport_name == "tcp") {
      opts.transport.kind = TransportKind::kTcp;
    }
    opts.transport.faults.drop_prob = drop;
    opts.transport.faults.duplicate_prob = dup;
    opts.transport.faults.delay_prob = delay;
    opts.streaming = stream;
    if (standbys > 0) {
      if (!stream) {
        std::fprintf(stderr, "--standbys requires --stream\n");
        return 2;
      }
      opts.coordinator.standbys = standbys;
    }
    if (!crash.empty()) {
      if (!stream) {
        std::fprintf(stderr, "--crash requires --stream\n");
        return 2;
      }
      // Comma list of events in firing order: M@EPOCH crash-stops a
      // worker, seq@EPOCH crash-stops the coordinator leader.
      bool have_worker = false;
      for (std::size_t pos = 0; pos < crash.size();) {
        std::size_t comma = crash.find(',', pos);
        if (comma == std::string::npos) comma = crash.size();
        const std::string item = crash.substr(pos, comma - pos);
        pos = comma + 1;
        const auto at = item.find('@');
        if (at == std::string::npos) {
          std::fprintf(stderr,
                       "--crash items must look like M@EPOCH or seq@EPOCH "
                       "(got '%s')\n",
                       item.c_str());
          return 2;
        }
        // seq events may carry a "+revive@E'" tail: the leader pauses at
        // E instead of dying and wakes as a zombie at E'.
        const std::string window = item.substr(at + 1);
        const auto plus = window.find("+revive@");
        const SinkEpoch epoch = static_cast<SinkEpoch>(
            std::atoll(window.substr(0, plus).c_str()));
        if (item.compare(0, at, "seq") == 0) {
          if (standbys == 0) {
            std::fprintf(stderr,
                         "--crash=seq@EPOCH requires --standbys>=1\n");
            return 2;
          }
          SinkEpoch revive = 0;
          if (plus != std::string::npos) {
            revive = static_cast<SinkEpoch>(
                std::atoll(window.substr(plus + 8).c_str()));
            if (revive <= epoch) {
              std::fprintf(stderr,
                           "--crash=seq@E+revive@E' needs E' > E (got "
                           "'%s')\n",
                           item.c_str());
              return 2;
            }
          }
          opts.crash.coordinator_at.push_back(epoch);
          opts.crash.coordinator_revive_at.push_back(revive);
          continue;
        }
        if (plus != std::string::npos) {
          std::fprintf(stderr,
                       "+revive@E' applies to seq events only (got '%s')\n",
                       item.c_str());
          return 2;
        }
        const auto machine =
            static_cast<MachineId>(std::atoll(item.substr(0, at).c_str()));
        if (!have_worker) {
          opts.crash.machine = machine;
          opts.crash.at_epoch = epoch;
          have_worker = true;
        } else {
          LocalClusterOptions::CrashEvent event;
          event.machine = machine;
          event.at_epoch = epoch;
          opts.crash.more.push_back(event);
        }
      }
      opts.crash.recover = !no_recover;
      if (have_worker) opts.detector.enabled = true;
    }
    if (!chaos.empty()) {
      if (!stream || !crash.empty()) {
        std::fprintf(stderr,
                     "--chaos requires --stream and excludes --crash\n");
        return 2;
      }
      // Spread the crashes over roughly the run's sinking rounds.
      const SinkEpoch span =
          std::max<SinkEpoch>(static_cast<SinkEpoch>(txns / sink), 12);
      const std::string schedule = ApplySeededChaos(
          static_cast<std::uint64_t>(std::atoll(chaos.c_str())), machines,
          span, opts, chaos_extended);
      std::printf("%s\n", schedule.c_str());
      chaos_schedule = schedule;
    }
    if (!partition_specs.empty()) {
      if (!stream) {
        std::fprintf(stderr, "--partition requires --stream\n");
        return 2;
      }
      // ';'-separated: partition group lists use commas internally.
      for (std::size_t pos = 0; pos < partition_specs.size();) {
        std::size_t semi = partition_specs.find(';', pos);
        if (semi == std::string::npos) semi = partition_specs.size();
        const Result<PartitionEvent> ev =
            ParsePartitionSpec(partition_specs.substr(pos, semi - pos));
        if (!ev.ok()) {
          std::fprintf(stderr, "--partition: %s\n",
                       ev.status().ToString().c_str());
          return 2;
        }
        opts.transport.faults.partition.partitions.push_back(*ev);
        pos = semi + 1;
      }
    }
    if (!slow_link_specs.empty()) {
      if (!stream) {
        std::fprintf(stderr, "--slow-link requires --stream\n");
        return 2;
      }
      for (std::size_t pos = 0; pos < slow_link_specs.size();) {
        std::size_t comma = slow_link_specs.find(',', pos);
        if (comma == std::string::npos) comma = slow_link_specs.size();
        const Result<SlowLinkEvent> ev =
            ParseSlowLinkSpec(slow_link_specs.substr(pos, comma - pos));
        if (!ev.ok()) {
          std::fprintf(stderr, "--slow-link: %s\n",
                       ev.status().ToString().c_str());
          return 2;
        }
        opts.transport.faults.partition.slow_links.push_back(*ev);
        pos = comma + 1;
      }
    }
    // --detector arms the phi-accrual watchdog even without --crash:
    // the gray-failure drill is "slow links and stragglers, detector
    // on, zero crashes injected".
    if (force_detector) {
      if (!stream) {
        std::fprintf(stderr, "--detector requires --stream\n");
        return 2;
      }
      opts.detector.enabled = true;
    }
    // Post-mortem header (black-box analysis needs the run's identity):
    // build id, the derived chaos schedule, and the link-fault summary
    // land in the flight recorder's dump as "runContext".
    if (flight != nullptr) {
      std::ostringstream ctx;
      ctx << "build " << __DATE__ << " " << __TIME__;
      if (!chaos_schedule.empty()) ctx << "; " << chaos_schedule;
      if (!crash.empty()) ctx << "; crash " << crash;
      if (opts.transport.faults.partition.Any()) {
        ctx << "; links " << opts.transport.faults.partition.Summary();
      }
      flight->SetRunContext(ctx.str());
    }
    if (!resize.empty()) {
      if (!stream) {
        std::fprintf(stderr, "--resize requires --stream\n");
        return 2;
      }
      // Comma list of signed deltas pinned to cut epochs: +1@40,-1@80.
      for (std::size_t pos = 0; pos < resize.size();) {
        std::size_t comma = resize.find(',', pos);
        if (comma == std::string::npos) comma = resize.size();
        const std::string item = resize.substr(pos, comma - pos);
        const auto at = item.find('@');
        const int delta =
            at == std::string::npos ? 0 : std::atoi(item.substr(0, at).c_str());
        if (delta == 0) {
          std::fprintf(stderr,
                       "--resize items must look like +K@EPOCH or -K@EPOCH "
                       "(got '%s')\n",
                       item.c_str());
          return 2;
        }
        LocalClusterOptions::ResizeEvent event;
        event.at_epoch =
            static_cast<SinkEpoch>(std::atoll(item.substr(at + 1).c_str()));
        event.delta = delta;
        opts.resize.events.push_back(event);
        pos = comma + 1;
      }
      if (resize_policy == "hotkey") {
        opts.resize.policy = MigrationPolicy::kHotKey;
      } else if (resize_policy != "rehash") {
        std::fprintf(stderr, "--resize-policy must be rehash or hotkey\n");
        return 2;
      }
    }
    if (checkpoint_every > 0) {
      if (!stream) {
        std::fprintf(stderr, "--checkpoint-every requires --stream\n");
        return 2;
      }
      opts.checkpoint_every = checkpoint_every;
    }
    if (sampler != nullptr) {
      if (!stream) {
        std::fprintf(stderr,
                     "--metrics-stream / --serve-metrics on the runtime "
                     "require --stream\n");
        return 2;
      }
      opts.live_sampler = sampler.get();
      opts.sample_every_us = std::max<std::uint64_t>(sample_every, 100);
    }
    opts.txn_sample = txn_sample;
    LocalCluster cluster(&w, opts);
    if (engine == "calvin" || engine == "both") {
      const ClusterRunOutcome out = cluster.RunCalvin();
      std::printf("calvin (runtime): committed=%llu aborted=%llu\n",
                  static_cast<unsigned long long>(out.committed),
                  static_cast<unsigned long long>(out.aborted));
      if (out.transport.messages_sent > 0) {
        std::printf("  transport: %s\n", out.transport.Summary().c_str());
      }
    }
    if (engine == "tpart" || engine == "both") {
      const ClusterRunOutcome out = cluster.RunTPart();
      registry.SetCounter("tpart_committed_total",
                          static_cast<double>(out.committed),
                          "Transactions committed");
      registry.SetCounter("tpart_aborted_total",
                          static_cast<double>(out.aborted),
                          "Transactions aborted");
      if (out.transport.messages_sent > 0) out.transport.PublishTo(registry);
      if (stream) out.pipeline.PublishTo(registry);
      if (out.recovery.crashes_injected > 0) {
        out.recovery.PublishTo(registry);
      }
      if (out.checkpoint.checkpoints_taken > 0) {
        out.checkpoint.PublishTo(registry);
      }
      if (out.migration.membership_steps > 0) {
        out.migration.PublishTo(registry);
      }
      if (out.failover.log_appends > 0 ||
          out.failover.coordinator_crashes > 0) {
        out.failover.PublishTo(registry);
      }
      std::printf("tpart  (runtime%s): committed=%llu aborted=%llu\n",
                  stream ? ", streaming" : "",
                  static_cast<unsigned long long>(out.committed),
                  static_cast<unsigned long long>(out.aborted));
      if (out.transport.messages_sent > 0) {
        std::printf("  transport: %s\n", out.transport.Summary().c_str());
      }
      if (stream) {
        const PipelineStats& p = out.pipeline;
        std::printf("  pipeline: %s\n", p.Summary().c_str());
        std::printf("  admission->commit latency: p50=%llu us p99=%llu us "
                    "(%zu samples)\n",
                    static_cast<unsigned long long>(
                        p.admit_to_commit_us.Quantile(0.5)),
                    static_cast<unsigned long long>(
                        p.admit_to_commit_us.Quantile(0.99)),
                    p.admit_to_commit_us.count());
      }
      if (!out.fault.ok()) {
        std::printf("  fault: %s\n", out.fault.ToString().c_str());
        return finish(1);
      }
      if (out.recovery.crashes_injected > 0) {
        std::printf("  recovery: %s\n", out.recovery.Summary().c_str());
      }
      if (out.checkpoint.checkpoints_taken > 0) {
        std::printf("  checkpoint: %s\n", out.checkpoint.Summary().c_str());
      }
      if (out.migration.membership_steps > 0) {
        std::printf("  migration: %s\n", out.migration.Summary().c_str());
      }
      if (out.failover.log_appends > 0 ||
          out.failover.coordinator_crashes > 0) {
        std::printf("  failover: %s\n", out.failover.Summary().c_str());
      }
    }
    return finish(0);
  }

  const auto seq = w.SequencedRequests();
  if (engine == "calvin" || engine == "both") {
    CalvinSimOptions o;
    o.num_machines = machines;
    const RunStats stats = RunCalvinSim(o, *w.partition_map, seq);
    std::printf("calvin (sim): %s\n", stats.Summary().c_str());
  }
  if (engine == "tpart" || engine == "both") {
    TPartSimOptions o;
    o.num_machines = machines;
    o.scheduler.sink_size = sink;
    if (gstore) o = MakeGStoreSimOptions(o);
    o.live_sampler = sampler.get();
    const RunStats stats = RunTPartSim(o, w.partition_map, seq);
    stats.PublishTo(registry);
    std::printf("tpart  (sim): %s\n", stats.Summary().c_str());
    std::printf("  scheduling: %.2f ms total, %llu pushes eliminated, "
                "peak T-graph %zu\n",
                stats.scheduling_seconds * 1e3,
                static_cast<unsigned long long>(stats.pushes_eliminated),
                stats.max_tgraph_size);
  }
  return finish(0);
}
