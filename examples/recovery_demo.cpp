// §5.4 failure handling demo: run a T-Part cluster, "crash" one machine,
// and rebuild its partition purely from its own logs — the request log
// (its slice of each push plan) and the network log (PUSH-log plus other
// inbound traffic) — with all outbound communication suppressed.
//
//   ./build/examples/recovery_demo

#include <cstdio>

#include "runtime/cluster.h"
#include "runtime/recovery.h"
#include "workload/micro.h"

using namespace tpart;

int main() {
  MicroOptions wopts;
  wopts.num_machines = 3;
  wopts.records_per_machine = 500;
  wopts.hot_set_size = 50;
  wopts.num_txns = 1'500;
  const Workload workload = MakeMicroWorkload(wopts);

  LocalClusterOptions copts;
  copts.scheduler.sink_size = 50;
  LocalCluster cluster(&workload, copts);
  const ClusterRunOutcome live = cluster.RunTPart();
  std::printf("live run: %llu committed across %zu machines\n",
              static_cast<unsigned long long>(live.committed),
              cluster.num_machines());

  const MachineId victim = 1;
  Machine& failed = cluster.machine(victim);
  std::printf("crashing machine %u  (request log: %zu plans, network "
              "log: %zu messages)\n",
              victim, failed.request_log().size(),
              failed.network_log().size());

  const ReplayResult replay =
      ReplayMachine(workload, victim, failed.request_log(),
                    failed.network_log(), copts.sticky_ttl);

  // Compare the replayed partition with the pre-crash one.
  auto dump = [&](KvStore& store) {
    std::vector<std::pair<ObjectKey, Record>> out;
    store.Scan(0, ~ObjectKey{0},
               [&](ObjectKey k, const Record& r) { out.emplace_back(k, r); });
    return out;
  };
  const bool identical =
      dump(replay.store->store(victim)) == dump(cluster.store().store(victim));
  std::printf("replayed %zu transactions locally; partition %s the "
              "pre-crash state\n",
              replay.results.size(), identical ? "MATCHES" : "DIVERGES from");
  return identical ? 0 : 1;
}
