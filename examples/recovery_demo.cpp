// §5.4 failure handling demo, two ways.
//
// 1. In-run recovery: stream a workload with a seeded crash schedule —
//    one machine crash-stops at a chosen sink epoch, the heartbeat
//    watchdog detects the stall, and the machine is rebuilt in place
//    from its zig-zag checkpoint plus its own request and network logs
//    while the run completes. The result must be byte-identical to a
//    crash-free run.
//
// 2. Offline replay: after a clean run, rebuild one machine's partition
//    from its logs alone with all outbound communication suppressed
//    (the original ReplayMachine path, now generalized by
//    Machine::Recover()).
//
//   ./build/examples/recovery_demo

#include <cstdio>

#include "runtime/cluster.h"
#include "runtime/recovery.h"
#include "workload/micro.h"

using namespace tpart;

namespace {

MicroOptions DemoWorkload() {
  MicroOptions wopts;
  wopts.num_machines = 3;
  wopts.records_per_machine = 500;
  wopts.hot_set_size = 50;
  wopts.num_txns = 1'500;
  return wopts;
}

std::vector<std::pair<ObjectKey, Record>> Dump(KvStore& store) {
  std::vector<std::pair<ObjectKey, Record>> out;
  store.Scan(0, ~ObjectKey{0},
             [&](ObjectKey k, const Record& r) { out.emplace_back(k, r); });
  return out;
}

}  // namespace

int main() {
  const Workload workload = MakeMicroWorkload(DemoWorkload());

  // ---- 1. Crash-free streaming run: the reference results and state.
  LocalClusterOptions base;
  base.streaming = true;
  base.scheduler.sink_size = 50;
  ClusterRunOutcome clean;
  std::vector<std::vector<std::pair<ObjectKey, Record>>> clean_state;
  {
    LocalCluster cluster(&workload, base);
    clean = cluster.RunTPart();
    for (MachineId m = 0; m < cluster.num_machines(); ++m)
      clean_state.push_back(Dump(cluster.store().store(m)));
    std::printf("crash-free run: %llu committed\n",
                static_cast<unsigned long long>(clean.committed));
  }

  // ---- 2. Same run with a crash injected: machine 1 dies at epoch 5,
  // the watchdog detects it and rebuilds it mid-run.
  LocalClusterOptions faulty = base;
  faulty.crash.machine = 1;
  faulty.crash.at_epoch = 5;
  faulty.detector.enabled = true;
  LocalCluster cluster(&workload, faulty);
  const ClusterRunOutcome out = cluster.RunTPart();
  if (!out.fault.ok()) {
    std::printf("run failed: %s\n", out.fault.ToString().c_str());
    return 1;
  }
  std::printf("crashed run:    %llu committed\n",
              static_cast<unsigned long long>(out.committed));
  std::printf("recovery: %s\n", out.recovery.Summary().c_str());

  bool identical = out.results.size() == clean.results.size();
  for (std::size_t i = 0; identical && i < out.results.size(); ++i)
    identical = out.results[i].id == clean.results[i].id &&
                out.results[i].committed == clean.results[i].committed &&
                out.results[i].output == clean.results[i].output;
  for (MachineId m = 0; m < cluster.num_machines(); ++m)
    identical = identical && Dump(cluster.store().store(m)) == clean_state[m];
  std::printf("crashed run %s the crash-free run\n",
              identical ? "MATCHES" : "DIVERGES from");

  // ---- 3. Offline replay of one machine's logs (the pre-streaming
  // formulation of §5.4: no cluster, outbound suppressed).
  const MachineId victim = 2;
  Machine& failed = cluster.machine(victim);
  const ReplayResult replay =
      ReplayMachine(workload, victim, failed.request_log(),
                    failed.network_log(), faulty.sticky_ttl);
  const bool replay_ok =
      Dump(replay.store->store(victim)) == Dump(cluster.store().store(victim));
  std::printf("offline replay of machine %u: %zu txns, partition %s\n",
              victim, replay.results.size(),
              replay_ok ? "MATCHES" : "DIVERGES");

  return identical && replay_ok ? 0 : 1;
}
