#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "storage/ordered_index.h"

namespace tpart {
namespace {

TEST(OrderedIndexTest, InsertContainsErase) {
  OrderedIndex idx;
  EXPECT_TRUE(idx.Insert(10));
  EXPECT_FALSE(idx.Insert(10));
  EXPECT_TRUE(idx.Contains(10));
  EXPECT_FALSE(idx.Contains(11));
  EXPECT_TRUE(idx.Erase(10));
  EXPECT_FALSE(idx.Erase(10));
  EXPECT_EQ(idx.size(), 0u);
}

TEST(OrderedIndexTest, ManySequentialInsertsSplitNodes) {
  OrderedIndex idx;
  for (ObjectKey k = 0; k < 5000; ++k) ASSERT_TRUE(idx.Insert(k));
  EXPECT_EQ(idx.size(), 5000u);
  EXPECT_TRUE(idx.CheckInvariants());
  for (ObjectKey k = 0; k < 5000; ++k) ASSERT_TRUE(idx.Contains(k));
}

TEST(OrderedIndexTest, ReverseInserts) {
  OrderedIndex idx;
  for (ObjectKey k = 3000; k > 0; --k) ASSERT_TRUE(idx.Insert(k));
  EXPECT_TRUE(idx.CheckInvariants());
  EXPECT_EQ(idx.size(), 3000u);
}

TEST(OrderedIndexTest, ScanRangeAscending) {
  OrderedIndex idx;
  for (ObjectKey k = 0; k < 1000; k += 3) idx.Insert(k);
  std::vector<ObjectKey> seen;
  const std::size_t n =
      idx.ScanRange(10, 40, [&](ObjectKey k) { seen.push_back(k); });
  EXPECT_EQ(n, seen.size());
  EXPECT_EQ(seen.front(), 12u);
  EXPECT_EQ(seen.back(), 39u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(OrderedIndexTest, ScanEmptyRange) {
  OrderedIndex idx;
  idx.Insert(5);
  EXPECT_EQ(idx.ScanRange(10, 4, [](ObjectKey) {}), 0u);
  EXPECT_EQ(idx.ScanRange(6, 100, [](ObjectKey) {}), 0u);
}

TEST(OrderedIndexTest, LowerBound) {
  OrderedIndex idx;
  for (ObjectKey k = 10; k <= 100; k += 10) idx.Insert(k);
  EXPECT_EQ(idx.LowerBound(0), 10u);
  EXPECT_EQ(idx.LowerBound(10), 10u);
  EXPECT_EQ(idx.LowerBound(11), 20u);
  EXPECT_EQ(idx.LowerBound(101), std::nullopt);
}

TEST(OrderedIndexTest, EraseDownToEmptyKeepsInvariants) {
  OrderedIndex idx;
  for (ObjectKey k = 0; k < 2000; ++k) idx.Insert(k);
  for (ObjectKey k = 0; k < 2000; ++k) {
    ASSERT_TRUE(idx.Erase(k));
    if (k % 251 == 0) ASSERT_TRUE(idx.CheckInvariants());
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.CheckInvariants());
}

// Property test: the B+-tree must agree with std::set through arbitrary
// interleavings of inserts, erases and scans.
class OrderedIndexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderedIndexFuzz, MatchesReferenceSet) {
  Rng rng(GetParam());
  OrderedIndex idx;
  std::set<ObjectKey> ref;
  for (int step = 0; step < 20000; ++step) {
    const ObjectKey k = rng.NextBelow(2000);
    const std::uint64_t op = rng.NextBelow(10);
    if (op < 6) {
      EXPECT_EQ(idx.Insert(k), ref.insert(k).second);
    } else if (op < 9) {
      EXPECT_EQ(idx.Erase(k), ref.erase(k) > 0);
    } else {
      EXPECT_EQ(idx.Contains(k), ref.count(k) > 0);
    }
  }
  EXPECT_EQ(idx.size(), ref.size());
  ASSERT_TRUE(idx.CheckInvariants());
  // Full scan equals the reference contents.
  std::vector<ObjectKey> scanned;
  idx.ScanRange(0, ~ObjectKey{0}, [&](ObjectKey k) { scanned.push_back(k); });
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), ref.begin(),
                         ref.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedIndexFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tpart
