// Unit tests for the epoch-scoped slab arena (DESIGN.md §4h): bump
// allocation, alignment, Reset-retains-capacity, and the std-allocator
// adapter used for round-scoped container scratch.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace tpart {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndAligned) {
  Arena a(/*first_slab_bytes=*/128);
  std::vector<std::pair<std::uintptr_t, std::size_t>> spans;
  for (int i = 1; i <= 64; ++i) {
    const std::size_t n = static_cast<std::size_t>(i * 7 % 41 + 1);
    void* p = a.Allocate(n, /*align=*/8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, i, n);  // ASan catches any overlap corruption
    spans.emplace_back(reinterpret_cast<std::uintptr_t>(p), n);
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const bool disjoint = spans[i].first + spans[i].second <= spans[j].first ||
                            spans[j].first + spans[j].second <= spans[i].first;
      EXPECT_TRUE(disjoint) << "span " << i << " overlaps span " << j;
    }
  }
}

TEST(ArenaTest, WideAlignmentRespected) {
  Arena a(64);
  a.Allocate(1, 1);  // misalign the cursor
  void* p = a.Allocate(32, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, ResetRetainsCapacity) {
  Arena a(256);
  for (int i = 0; i < 100; ++i) a.Allocate(64);
  const std::size_t reserved = a.bytes_reserved();
  const std::size_t slabs = a.num_slabs();
  EXPECT_GT(reserved, 0u);
  // Steady state: the same allocation pattern after Reset must not grow
  // the arena — this is the "zero allocs per round" property the hot
  // path depends on.
  for (int round = 0; round < 10; ++round) {
    a.Reset();
    EXPECT_EQ(a.bytes_used(), 0u);
    for (int i = 0; i < 100; ++i) a.Allocate(64);
    EXPECT_EQ(a.bytes_reserved(), reserved);
    EXPECT_EQ(a.num_slabs(), slabs);
  }
}

TEST(ArenaTest, AllocationsAfterResetAreDisjoint) {
  // Regression: Reset once rewound to slab 0 with the refill walk also
  // starting at slab 0, so the walk handed slab 0 out twice and later
  // allocations silently overwrote earlier ones.
  Arena a(/*first_slab_bytes=*/64);
  for (int i = 0; i < 8; ++i) a.Allocate(48);  // grow past one slab
  a.Reset();
  std::vector<std::pair<std::uintptr_t, std::size_t>> spans;
  for (int i = 0; i < 8; ++i) {
    void* p = a.Allocate(48);
    spans.emplace_back(reinterpret_cast<std::uintptr_t>(p), 48u);
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const bool disjoint = spans[i].first + spans[i].second <= spans[j].first ||
                            spans[j].first + spans[j].second <= spans[i].first;
      EXPECT_TRUE(disjoint) << "span " << i << " overlaps span " << j;
    }
  }
}

TEST(ArenaTest, OversizedRequestGetsOwnSlab) {
  Arena a(64);
  void* p = a.Allocate(10000, 16);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 10000);
  EXPECT_GE(a.bytes_reserved(), 10000u);
}

TEST(ArenaTest, NewConstructsInPlace) {
  struct Pod {
    std::uint64_t x;
    std::uint32_t y;
  };
  Arena a;
  Pod* p = a.New<Pod>(Pod{42, 7});
  EXPECT_EQ(p->x, 42u);
  EXPECT_EQ(p->y, 7u);
}

TEST(ArenaTest, ArenaAllocatorBacksVectors) {
  Arena a(128);
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{
      ArenaAllocator<std::uint64_t>(&a)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i * i);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * i);
  const std::size_t reserved = a.bytes_reserved();
  // Round 2 out of retained slabs: no new reservation.
  v = std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>>{
      ArenaAllocator<std::uint64_t>(&a)};
  a.Reset();
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

}  // namespace
}  // namespace tpart
