// Trend guards: small-configuration versions of the paper's headline
// experimental claims, run as part of the test suite so a regression in
// the scheduler/partitioner/simulator that flips a paper result fails CI
// rather than silently producing wrong benchmark output.

#include <gtest/gtest.h>

#include "baselines/gstore.h"
#include "partition/streaming_greedy.h"
#include "sim/calvin_sim.h"
#include "sim/tpart_sim.h"
#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

namespace tpart {
namespace {

CostModel HeteroCost(std::size_t machines) {
  CostModel cost;
  cost.machine_speed.resize(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    cost.machine_speed[i] =
        0.8 + 0.4 * static_cast<double>((i * 7) % 10) / 10.0;
  }
  return cost;
}

RunStats Calvin(const Workload& w, std::size_t machines) {
  CalvinSimOptions o;
  o.num_machines = machines;
  o.cost = HeteroCost(machines);
  return RunCalvinSim(o, *w.partition_map, w.SequencedRequests());
}

RunStats TPart(const Workload& w, std::size_t machines,
               std::size_t sink = 100) {
  TPartSimOptions o;
  o.num_machines = machines;
  o.cost = HeteroCost(machines);
  o.scheduler.sink_size = sink;
  return RunTPartSim(o, w.partition_map, w.SequencedRequests());
}

TEST(TrendTest, Fig5bTpceTPartScalesCalvinSaturates) {
  TpceOptions small;
  small.customers_per_machine = 500;
  small.securities_per_machine = 250;
  small.num_txns = 2000;

  TpceOptions at4 = small, at12 = small;
  at4.num_machines = 4;
  at12.num_machines = 12;
  const Workload w4 = MakeTpceWorkload(at4);
  const Workload w12 = MakeTpceWorkload(at12);

  const double calvin4 = Calvin(w4, 4).Throughput();
  const double calvin12 = Calvin(w12, 12).Throughput();
  const double tpart4 = TPart(w4, 4).Throughput();
  const double tpart12 = TPart(w12, 12).Throughput();

  // Calvin+TP clearly ahead on the hard-to-partition workload...
  EXPECT_GT(tpart4, 1.5 * calvin4);
  EXPECT_GT(tpart12, 1.8 * calvin12);
  // ...and it gains more from 4 -> 12 machines than Calvin does.
  EXPECT_GT(tpart12 / tpart4, calvin12 / calvin4);
}

TEST(TrendTest, Fig5aTpccBothEnginesComparable) {
  TpccOptions o;
  o.num_machines = 6;
  o.warehouses_per_machine = 2;
  o.num_txns = 2000;
  const Workload w = MakeTpccWorkload(o);
  const double calvin = Calvin(w, 6).Throughput();
  const double tpart = TPart(w, 6).Throughput();
  // "It is safe to turn it on even with easy workloads" (§6.1.1).
  EXPECT_GT(tpart, 0.6 * calvin);
}

TEST(TrendTest, Fig8aGapOpensWithDistributedRate) {
  auto run = [&](double rate) {
    MicroOptions o;
    o.num_machines = 6;
    o.records_per_machine = 5000;
    o.hot_set_size = 50;
    o.num_txns = 2000;
    o.distributed_rate = rate;
    const Workload w = MakeMicroWorkload(o);
    return std::make_pair(Calvin(w, 6).Throughput(),
                          TPart(w, 6).Throughput());
  };
  const auto [calvin_local, tpart_local] = run(0.0);
  const auto [calvin_dist, tpart_dist] = run(1.0);
  const double gap_local = tpart_local / calvin_local;
  const double gap_dist = tpart_dist / calvin_dist;
  EXPECT_GT(gap_dist, 1.5);
  EXPECT_GT(gap_dist, 1.5 * gap_local);
}

TEST(TrendTest, Fig6GStoreBeatsCalvinAndLosesToTPart) {
  TpceOptions o;
  o.num_machines = 8;
  o.customers_per_machine = 500;
  o.securities_per_machine = 250;
  o.num_txns = 2000;
  const Workload w = MakeTpceWorkload(o);
  const double calvin = Calvin(w, 8).Throughput();
  TPartSimOptions gopts;
  gopts.num_machines = 8;
  gopts.cost = HeteroCost(8);
  const double gstore =
      RunTPartSim(MakeGStoreSimOptions(gopts), w.partition_map,
                  w.SequencedRequests())
          .Throughput();
  const double tpart = TPart(w, 8).Throughput();
  EXPECT_GT(gstore, calvin);  // dynamic movement beats static hash
  EXPECT_GT(tpart, gstore);   // T-Part beats its sink-size-1 degeneration
}

TEST(TrendTest, Fig11bLowBetaHurts) {
  MicroOptions o;
  o.num_machines = 6;
  o.records_per_machine = 5000;
  o.hot_set_size = 50;
  o.num_txns = 2000;
  o.skewed_rate = 0.6;
  const Workload w = MakeMicroWorkload(o);
  auto with_beta = [&](double beta) {
    TPartSimOptions opts;
    opts.num_machines = 6;
    opts.cost = HeteroCost(6);
    opts.partitioner = std::make_shared<StreamingGreedyPartitioner>(
        StreamingGreedyPartitioner::Options{
            StreamingGreedyPartitioner::Mode::kWeighted, beta});
    return RunTPartSim(opts, w.partition_map, w.SequencedRequests())
        .Throughput();
  };
  EXPECT_GT(with_beta(1.0), 1.3 * with_beta(0.0));
}

TEST(TrendTest, Fig7RemoteWaitShareShrinks) {
  // Fig. 7's essence: waiting for remote records dominates Calvin's
  // processing path, and Calvin+TP shrinks that share.
  MicroOptions o;
  o.num_machines = 8;
  o.records_per_machine = 5000;
  o.hot_set_size = 50;
  o.num_txns = 2500;
  const Workload w = MakeMicroWorkload(o);
  const RunStats calvin = Calvin(w, 8);
  const RunStats tpart = TPart(w, 8);
  auto remote_share = [](const RunStats& s) {
    double total = 0;
    for (int i = 0; i < kNumComponents; ++i) {
      const auto c = static_cast<Component>(i);
      if (c != Component::kQueueWait) total += s.breakdown.MeanPerTxn(c);
    }
    return s.breakdown.MeanPerTxn(Component::kRemoteWait) / total;
  };
  EXPECT_GT(remote_share(calvin), 0.4);  // remote waits dominate Calvin
  EXPECT_LT(remote_share(tpart), 0.9 * remote_share(calvin));
}

}  // namespace
}  // namespace tpart
