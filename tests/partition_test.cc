// Partition- and gray-failure tolerance (DESIGN §4j): seeded link-level
// fault schedules — partition windows that sever and heal machine groups
// at sink-epoch boundaries (symmetric and asymmetric), flapping links,
// and gray-failure slow links — plus the phi-accrual adaptive failure
// detector that must stay quiet through all of them while still catching
// true crash-stops. The correctness oracle is the usual one: every
// faulted run must finish byte-identical to the fault-free run, on every
// transport, alone and composed with worker crashes, stragglers,
// probabilistic net faults, and elastic migration.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "net/partition_schedule.h"
#include "runtime/cluster.h"
#include "runtime/failure_detector.h"
#include "test_time.h"
#include "workload/micro.h"

namespace tpart {
namespace {

MicroOptions SmallMicro(std::size_t num_machines = 3) {
  MicroOptions o;
  o.num_machines = num_machines;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 405;  // ~21 sinking rounds at sink_size 20
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

void AddNetFaults(LocalClusterOptions& opts) {
  opts.transport.faults.seed = 0xC0FFEE;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

struct RunSnapshot {
  ClusterRunOutcome out;
  std::vector<std::pair<ObjectKey, Record>> state;
};

RunSnapshot RunOnce(const Workload& w, const LocalClusterOptions& opts) {
  LocalCluster cluster(&w, opts);
  RunSnapshot snap;
  snap.out = cluster.RunTPart();
  snap.state = cluster.store().Snapshot();
  return snap;
}

// ---------------------------------------------------------------------
// Schedule semantics (pure data, no cluster).
// ---------------------------------------------------------------------

TEST(PartitionScheduleTest, SymmetricWindowSeversBothDirections) {
  PartitionSchedule s;
  PartitionEvent ev;
  ev.group_a = {0, 1};
  ev.group_b = {2};
  ev.from_epoch = 3;
  ev.heal_epoch = 5;
  s.partitions.push_back(ev);

  // Active strictly inside [from, heal).
  EXPECT_FALSE(s.Severed(0, 2, 2, 3));
  EXPECT_TRUE(s.Severed(0, 2, 3, 3));
  EXPECT_TRUE(s.Severed(1, 2, 4, 3));
  EXPECT_FALSE(s.Severed(0, 2, 5, 3));
  // Symmetric: the reverse direction is severed too.
  EXPECT_TRUE(s.Severed(2, 0, 3, 3));
  EXPECT_TRUE(s.Severed(2, 1, 4, 3));
  // Links inside one side stay up.
  EXPECT_FALSE(s.Severed(0, 1, 3, 3));
  EXPECT_EQ(s.MaxPartitionSpan(), 2u);
}

TEST(PartitionScheduleTest, AsymmetricWindowSeversOneDirectionOnly) {
  PartitionSchedule s;
  PartitionEvent ev;
  ev.group_a = {0};
  ev.group_b = {1};
  ev.symmetric = false;
  ev.from_epoch = 1;
  ev.heal_epoch = 4;
  s.partitions.push_back(ev);

  EXPECT_TRUE(s.Severed(0, 1, 2, 2));
  EXPECT_FALSE(s.Severed(1, 0, 2, 2)) << "one-way loss severed the reverse";
}

TEST(PartitionScheduleTest, EmptyGroupBMeansComplement) {
  PartitionSchedule s;
  PartitionEvent ev;
  ev.group_a = {1};
  ev.from_epoch = 0;
  ev.heal_epoch = 2;
  s.partitions.push_back(ev);

  // {1} vs complement {0, 2, 3}: every cross link severed, both ways.
  for (MachineId other : {0, 2, 3}) {
    EXPECT_TRUE(s.Severed(1, other, 1, 4)) << other;
    EXPECT_TRUE(s.Severed(other, 1, 1, 4)) << other;
  }
  // The complement is bounded by n: endpoint 4 is outside the cluster.
  EXPECT_FALSE(s.Severed(1, 4, 1, 4));
}

TEST(PartitionScheduleTest, FlappingLinkPassesFirstUpOfEveryPeriod) {
  PartitionSchedule s;
  FlappingLink ev;
  ev.from = 0;
  ev.to = 1;
  ev.from_epoch = 2;
  ev.heal_epoch = 4;
  ev.period = 4;
  ev.up = 2;
  s.flapping.push_back(ev);

  // Within the window: seq 0,1 pass; 2,3 swallowed; repeats mod 4.
  EXPECT_FALSE(s.FlappedDown(0, 1, 2, 0));
  EXPECT_FALSE(s.FlappedDown(0, 1, 2, 1));
  EXPECT_TRUE(s.FlappedDown(0, 1, 2, 2));
  EXPECT_TRUE(s.FlappedDown(0, 1, 2, 3));
  EXPECT_FALSE(s.FlappedDown(0, 1, 2, 4));
  // Outside the window or on another link: never down.
  EXPECT_FALSE(s.FlappedDown(0, 1, 4, 2));
  EXPECT_FALSE(s.FlappedDown(1, 0, 2, 2));
}

TEST(PartitionScheduleTest, SlowLinkReportsWorstActiveWindow) {
  PartitionSchedule s;
  SlowLinkEvent a;
  a.from = 0;
  a.to = 1;
  a.from_epoch = 1;
  a.heal_epoch = 6;
  a.extra_delay_us = 500;
  SlowLinkEvent b = a;
  b.from_epoch = 3;
  b.heal_epoch = 5;
  b.extra_delay_us = 2000;
  s.slow_links.push_back(a);
  s.slow_links.push_back(b);

  EXPECT_EQ(s.SlowDelayUs(0, 1, 0), 0);
  EXPECT_EQ(s.SlowDelayUs(0, 1, 2), 500);
  EXPECT_EQ(s.SlowDelayUs(0, 1, 4), 2000);  // overlapping: the worst wins
  EXPECT_EQ(s.SlowDelayUs(0, 1, 5), 500);
  EXPECT_EQ(s.SlowDelayUs(1, 0, 4), 0);  // directional
}

TEST(PartitionScheduleTest, SummaryRendersEveryEventKind) {
  PartitionSchedule s;
  PartitionEvent part;
  part.group_a = {0, 1};
  part.group_b = {2};
  part.from_epoch = 3;
  part.heal_epoch = 5;
  s.partitions.push_back(part);
  SlowLinkEvent slow;
  slow.from = 0;
  slow.to = 2;
  slow.from_epoch = 2;
  s.slow_links.push_back(slow);
  FlappingLink flap;
  flap.from = 1;
  flap.to = 0;
  flap.from_epoch = 1;
  flap.heal_epoch = 3;
  s.flapping.push_back(flap);

  const std::string summary = s.Summary();
  EXPECT_NE(summary.find("part{0,1|2}@3..5"), std::string::npos) << summary;
  EXPECT_NE(summary.find("slow{0->2:1500us}@2.."), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("flap{1->0:2/4}@1..3"), std::string::npos)
      << summary;
  EXPECT_EQ(PartitionSchedule{}.Summary(), "none");
}

// ---------------------------------------------------------------------
// CLI spec parsing, including a garbage-input sweep: parsers must
// return errors, never crash or accept nonsense.
// ---------------------------------------------------------------------

TEST(PartitionSpecParseTest, ParsesSymmetricAsymmetricAndComplement) {
  auto sym = ParsePartitionSpec("0,1|2@3..5");
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  EXPECT_EQ(sym->group_a, (std::vector<MachineId>{0, 1}));
  EXPECT_EQ(sym->group_b, (std::vector<MachineId>{2}));
  EXPECT_TRUE(sym->symmetric);
  EXPECT_EQ(sym->from_epoch, 3u);
  EXPECT_EQ(sym->heal_epoch, 5u);

  auto asym = ParsePartitionSpec("2>0,1@4..6");
  ASSERT_TRUE(asym.ok()) << asym.status().ToString();
  EXPECT_FALSE(asym->symmetric);
  EXPECT_EQ(asym->group_a, (std::vector<MachineId>{2}));

  // Empty B = complement; no ".." = never heals during the run.
  auto comp = ParsePartitionSpec("1|@2");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  EXPECT_TRUE(comp->group_b.empty());
  EXPECT_EQ(comp->heal_epoch, std::numeric_limits<std::uint64_t>::max());
}

TEST(PartitionSpecParseTest, ParsesSlowLinkForms) {
  auto plain = ParseSlowLinkSpec("0->2@3");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->from, 0);
  EXPECT_EQ(plain->to, 2);
  EXPECT_EQ(plain->from_epoch, 3u);
  EXPECT_EQ(plain->extra_delay_us, 1500);

  auto full = ParseSlowLinkSpec("1->0@2..7:900");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->heal_epoch, 7u);
  EXPECT_EQ(full->extra_delay_us, 900);
}

TEST(PartitionSpecParseTest, RejectsMalformedSpecsWithoutCrashing) {
  const char* bad_partitions[] = {
      "",        "0|1",      "@3",        "|1@2",     "0|0@2",
      "0,|1@2",  "0|1@",     "0|1@5..3",  "0|1@3..3", "a|b@2",
      "0|1@2..x" , "0>@..",   "0|1@18446744073709551616",
  };
  for (const char* spec : bad_partitions) {
    EXPECT_FALSE(ParsePartitionSpec(spec).ok()) << spec;
  }
  const char* bad_slow_links[] = {
      "",       "0->1",     "->1@2",   "0->@2",    "0->0@2",
      "0-1@2",  "0->1@",    "0->1@5..2", "0->1@2:0", "0->1@2:99999999999",
      "x->y@2",
  };
  for (const char* spec : bad_slow_links) {
    EXPECT_FALSE(ParseSlowLinkSpec(spec).ok()) << spec;
  }
  // Deterministic garbage sweep: every byte soup must come back as a
  // clean error.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 512; ++i) {
    std::string soup;
    for (int j = 0; j < (i % 23) + 1; ++j) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      soup.push_back(static_cast<char>('!' + (x % 90)));
    }
    (void)ParsePartitionSpec(soup);
    (void)ParseSlowLinkSpec(soup);
  }
}

// ---------------------------------------------------------------------
// Phi-accrual suspicion (unit level): silence against a regular history
// grows without bound; the same silence against a history that contains
// straggler-scale gaps stays below threshold.
// ---------------------------------------------------------------------

TEST(PhiAccrualTest, SilenceAgainstRegularHistoryCrossesThreshold) {
  PhiAccrualDetector::Options o;
  o.expected_interval_us = 1000;
  PhiAccrualDetector d(1, o);
  std::uint64_t now = 0;
  for (int i = 0; i < 32; ++i) d.Observe(0, now += 1000);
  EXPECT_LT(d.Phi(0, now + 1500), 8.0) << "one hiccup must not look fatal";
  EXPECT_GE(d.Phi(0, now + 200000), 8.0) << "200x the mean must look dead";
}

TEST(PhiAccrualTest, StragglerScaleHistoryExcusesMatchingSilence) {
  PhiAccrualDetector::Options o;
  o.expected_interval_us = 1000;
  PhiAccrualDetector d(1, o);
  std::uint64_t now = 0;
  // A gray-failure regime: most beats on time, every fourth delayed 60ms.
  for (int i = 0; i < 40; ++i) now += (i % 4 == 3) ? 60000 : 1000;
  now = 0;
  for (int i = 0; i < 40; ++i) d.Observe(0, now += (i % 4 == 3) ? 60000 : 1000);
  // 70ms of silence: a fixed 50ms deadline would declare; the learned
  // distribution (mean ~15.7ms, huge std) keeps phi low.
  EXPECT_LT(d.Phi(0, now + 70000), 8.0);
}

TEST(PhiAccrualTest, ExcuseResetsSilenceWithoutPollutingHistory) {
  PhiAccrualDetector::Options o;
  o.expected_interval_us = 1000;
  PhiAccrualDetector d(1, o);
  std::uint64_t now = 0;
  for (int i = 0; i < 32; ++i) d.Observe(0, now += 1000);
  // A severed window explains 500ms of silence.
  d.Excuse(0, now + 500000);
  EXPECT_LT(d.Phi(0, now + 501000), 8.0);
  // The next progress records no 500ms sample: suspicion math is intact.
  d.Observe(0, now + 502000);
  EXPECT_GE(d.Phi(0, now + 502000 + 200000), 8.0);
}

// ---------------------------------------------------------------------
// Byte-identity under seeded link faults, on every transport. The
// reliability layer must squeeze every severed / flapped / slowed
// message through once the window closes.
// ---------------------------------------------------------------------

TEST(PartitionFaultTest, SymmetricPartitionHealsByteIdentical) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    LocalClusterOptions opts = StreamingOpts(kind);
    PartitionEvent ev;
    ev.group_a = {2};  // isolate machine 2 from everyone for two rounds
    ev.from_epoch = 4;
    ev.heal_epoch = 6;
    opts.transport.faults.partition.partitions.push_back(ev);
    opts.transport.retry_timeout_us = 1000;
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    const RunSnapshot got = RunOnce(w, opts);
    EXPECT_TRUE(got.out.fault.ok()) << label << ": "
                                    << got.out.fault.ToString();
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    EXPECT_GT(got.out.transport.faults_severed, 0u)
        << label << ": the window never actually severed a packet";
  }
}

TEST(PartitionFaultTest, AsymmetricPartitionHealsByteIdentical) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  PartitionEvent ev;
  ev.group_a = {0, 1};
  ev.group_b = {2};
  // One-way loss: {0,1}'s packets to 2 (round dissemination included)
  // are swallowed, while 2 can still reach 0 and 1 the whole time.
  ev.symmetric = false;
  ev.from_epoch = 3;
  ev.heal_epoch = 6;
  opts.transport.faults.partition.partitions.push_back(ev);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_GT(got.out.transport.faults_severed, 0u);
}

TEST(PartitionFaultTest, FlappingLinkHealsByteIdentical) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  FlappingLink flap;
  flap.from = 0;
  flap.to = 1;
  flap.from_epoch = 2;
  flap.heal_epoch = 9;
  flap.period = 4;
  flap.up = 2;
  opts.transport.faults.partition.flapping.push_back(flap);
  // The reverse direction flaps on a different phase.
  FlappingLink back = flap;
  back.from = 1;
  back.to = 0;
  back.up = 1;
  opts.transport.faults.partition.flapping.push_back(back);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_GT(got.out.transport.faults_severed, 0u);
}

TEST(PartitionFaultTest, LinkFaultPatternIsDeterministicAcrossRuns) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  PartitionEvent ev;
  ev.group_a = {2};
  ev.from_epoch = 4;
  ev.heal_epoch = 6;
  opts.transport.faults.partition.partitions.push_back(ev);
  SlowLinkEvent slow;
  slow.from = 0;
  slow.to = 1;
  slow.from_epoch = 2;
  slow.heal_epoch = 10;
  slow.extra_delay_us = 800;
  opts.transport.faults.partition.slow_links.push_back(slow);
  opts.transport.retry_timeout_us = 1000;

  const RunSnapshot first = RunOnce(w, opts);
  const RunSnapshot second = RunOnce(w, opts);
  ExpectSameResults(first.out.results, second.out.results);
  EXPECT_EQ(first.state, second.state);
  // Both runs hit the same windows (retry-timer resends re-enter the
  // fault filter, so the exact counts race wall clocks).
  EXPECT_GT(first.out.transport.faults_severed, 0u);
  EXPECT_GT(second.out.transport.faults_severed, 0u);
}

// ---------------------------------------------------------------------
// Adaptive failure detection: gray failures and explained partitions
// must produce ZERO false-positive recoveries; true crash-stops must
// still be caught.
// ---------------------------------------------------------------------

TEST(PartitionFaultTest, SlowLinkGrayFailureIsNotDeclaredDead) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.detector.enabled = true;  // watchdog on, no crash scheduled
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(50000);
  // Gray failure on the control-plane->machine-1 link for most of the
  // run: every heartbeat and round to machine 1 arrives late. A false
  // positive here is a fatal kUnavailable fault (no crash is armed).
  SlowLinkEvent slow;
  slow.from = 0;
  slow.to = 1;
  slow.from_epoch = 1;
  slow.heal_epoch = 15;
  slow.extra_delay_us = 2500;
  opts.transport.faults.partition.slow_links.push_back(slow);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_GT(got.out.transport.faults_slowed, 0u)
      << "the slow-link window never actually delayed a packet";
  // The detector's gauges prove the phi gate stayed on the healthy side.
  EXPECT_LT(got.out.recovery.peak_healthy_phi, 8.0);
}

TEST(PartitionFaultTest, SeveredHeartbeatPathIsExcusedNotDeclared) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.detector.enabled = true;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(50000);
  // Isolate machine 1 (complement includes the control plane at endpoint
  // 0): heartbeats to it are severed for two rounds. The watchdog knows
  // the schedule and must excuse the silence instead of declaring a
  // fatal failure.
  PartitionEvent ev;
  ev.group_a = {1};
  ev.from_epoch = 4;
  ev.heal_epoch = 6;
  opts.transport.faults.partition.partitions.push_back(ev);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

TEST(PartitionFaultTest, AdaptiveDetectorStillCatchesTrueCrash) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  opts.crash.machine = 1;
  opts.crash.at_epoch = 5;
  // The crash composes with an active gray failure elsewhere: the
  // detector must suppress suspicion on the slowed link while declaring
  // the genuinely dead machine.
  SlowLinkEvent slow;
  slow.from = 0;
  slow.to = 2;
  slow.from_epoch = 1;
  slow.heal_epoch = 15;
  slow.extra_delay_us = 2500;
  opts.transport.faults.partition.slow_links.push_back(slow);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.recovery.crashed_machine, 1);
  EXPECT_GT(got.out.recovery.detection_latency_us, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

TEST(PartitionFaultTest, StragglerPlusSlowLinkZeroFalsePositives) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.detector.enabled = true;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(50000);
  // The existing straggler schedule AND a gray-failure slow link at
  // once; either alone could fool a fixed-deadline detector.
  opts.straggler.machine = 2;
  opts.straggler.delay_us = test::ScaledUs(75000);
  opts.straggler.period_us = test::ScaledUs(400000);
  SlowLinkEvent slow;
  slow.from = 0;
  slow.to = 1;
  slow.from_epoch = 1;
  slow.heal_epoch = 15;
  slow.extra_delay_us = 2500;
  opts.transport.faults.partition.slow_links.push_back(slow);
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

// ---------------------------------------------------------------------
// Composition: link faults + probabilistic net faults + worker crash +
// elastic migration, against the same byte-identity oracle.
// ---------------------------------------------------------------------

TEST(PartitionFaultTest, ComposedWithWorkerCrashAndNetFaults) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (TransportKind kind : {TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    LocalClusterOptions opts = StreamingOpts(kind);
    opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
    opts.detector.deadline_us = test::ScaledUs(100000);
    opts.crash.machine = 1;
    opts.crash.at_epoch = 8;
    PartitionEvent ev;
    ev.group_a = {2};
    ev.from_epoch = 3;
    ev.heal_epoch = 5;
    opts.transport.faults.partition.partitions.push_back(ev);
    SlowLinkEvent slow;
    slow.from = 2;
    slow.to = 0;
    slow.from_epoch = 1;
    slow.heal_epoch = 12;
    slow.extra_delay_us = 1200;
    opts.transport.faults.partition.slow_links.push_back(slow);
    AddNetFaults(opts);
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    const RunSnapshot got = RunOnce(w, opts);
    EXPECT_TRUE(got.out.fault.ok()) << label << ": "
                                    << got.out.fault.ToString();
    EXPECT_EQ(got.out.recovery.crashes_injected, 1u) << label;
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
  }
}

TEST(PartitionFaultTest, ComposedWithElasticMigration) {
  const Workload w = MakeMicroWorkload(SmallMicro(4));
  LocalClusterOptions base = StreamingOpts(TransportKind::kDirect);
  base.resize.events = {{6, -1}};
  const RunSnapshot ref = RunOnce(w, base);
  EXPECT_TRUE(ref.out.fault.ok()) << ref.out.fault.ToString();
  ASSERT_EQ(ref.out.migration.membership_steps, 1u);

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.resize.events = {{6, -1}};
  // The partition window heals exactly at the migration cut: the barrier
  // must see a fully healed mesh when the chunks flow.
  PartitionEvent ev;
  ev.group_a = {3};
  ev.from_epoch = 4;
  ev.heal_epoch = 6;
  opts.transport.faults.partition.partitions.push_back(ev);
  SlowLinkEvent slow;
  slow.from = 1;
  slow.to = 2;
  slow.from_epoch = 2;
  slow.heal_epoch = 10;
  slow.extra_delay_us = 900;
  opts.transport.faults.partition.slow_links.push_back(slow);
  AddNetFaults(opts);
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.migration.membership_steps, 1u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

TEST(PartitionFaultTest, ComposedWithCoordinatorFailoverInsideSeverWindow) {
  // Regression: leader crash-stop while a sever window is ACTIVE. The
  // failover must (a) advance the fault clock past every window active
  // at the crash — the successor's watermark probes and catch-up
  // re-ships to the isolated machine could never be answered otherwise,
  // since the dissemination loop (the usual fault-clock driver) is
  // parked during the failover — and (b) skip window transitions for
  // catch-up re-ships, whose quiesce barriers already ran in the term
  // that first shipped them; replaying them would raise a barrier ahead
  // of the very re-ships the stalled machines are waiting on.
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  EXPECT_TRUE(ref.out.fault.ok()) << ref.out.fault.ToString();

  for (TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kTcp}) {
    LocalClusterOptions opts = StreamingOpts(kind);
    opts.coordinator.standbys = 1;
    opts.crash.coordinator_at = {5};
    PartitionEvent ev;
    ev.group_a = {2};
    ev.from_epoch = 4;
    ev.heal_epoch = 6;
    opts.transport.faults.partition.partitions.push_back(ev);
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    const RunSnapshot got = RunOnce(w, opts);
    EXPECT_TRUE(got.out.fault.ok()) << label << ": "
                                    << got.out.fault.ToString();
    EXPECT_EQ(got.out.failover.coordinator_crashes, 1u) << label;
    EXPECT_EQ(got.out.failover.elections_won, 1u) << label;
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
  }
}

TEST(PartitionFaultTest, ZombieRevivalComposedWithActiveSeverWindow) {
  // The deposed leader revives after the window that was active at its
  // crash has healed; its stale-term plan stream must be fenced on every
  // machine — including the one the window had isolated.
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  EXPECT_TRUE(ref.out.fault.ok()) << ref.out.fault.ToString();

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.coordinator.standbys = 1;
  opts.crash.coordinator_at = {5};
  opts.crash.coordinator_revive_at = {9};
  PartitionEvent ev;
  ev.group_a = {2};
  ev.from_epoch = 4;
  ev.heal_epoch = 6;
  opts.transport.faults.partition.partitions.push_back(ev);
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.failover.zombie_revivals, 1u);
  EXPECT_GE(got.out.failover.fenced_messages, 2 * w.num_machines);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

// ---------------------------------------------------------------------
// Seeded chaos derivation: --chaos SEED --chaos-extended adds the link
// schedule AFTER every base draw, so the base pattern for a fixed seed
// is unchanged by the extended flag.
// ---------------------------------------------------------------------

TEST(PartitionFaultTest, ExtendedChaosPreservesBaseScheduleAndAddsLinks) {
  LocalClusterOptions base = StreamingOpts(TransportKind::kInProcess);
  base.coordinator.standbys = 1;
  const std::string s0 = ApplySeededChaos(42, 3, 20, base);
  EXPECT_FALSE(base.transport.faults.partition.Any());

  LocalClusterOptions ext = StreamingOpts(TransportKind::kInProcess);
  ext.coordinator.standbys = 1;
  const std::string s1 = ApplySeededChaos(42, 3, 20, ext, /*extended=*/true);
  // Base draws are byte-stable under the flag.
  EXPECT_EQ(ext.crash.machine, base.crash.machine);
  EXPECT_EQ(ext.crash.at_epoch, base.crash.at_epoch);
  ASSERT_EQ(ext.crash.more.size(), base.crash.more.size());
  EXPECT_EQ(ext.straggler.machine, base.straggler.machine);
  EXPECT_EQ(ext.crash.coordinator_at, base.crash.coordinator_at);
  // Extended adds one of each link fault plus a zombie revival.
  const PartitionSchedule& net = ext.transport.faults.partition;
  ASSERT_EQ(net.partitions.size(), 1u);
  ASSERT_EQ(net.slow_links.size(), 1u);
  ASSERT_EQ(net.flapping.size(), 1u);
  EXPECT_LE(net.MaxPartitionSpan(), 4u)
      << "window wider than the default epoch credit span would stall";
  ASSERT_EQ(ext.crash.coordinator_revive_at.size(), 1u);
  EXPECT_GT(ext.crash.coordinator_revive_at[0],
            ext.crash.coordinator_at[0]);
  EXPECT_NE(s1.find("part{"), std::string::npos) << s1;
  EXPECT_NE(s1.find("slow{"), std::string::npos) << s1;
  EXPECT_NE(s1.find("flap{"), std::string::npos) << s1;
  EXPECT_NE(s1.find("+revive@e"), std::string::npos) << s1;
  EXPECT_EQ(s0.find("part{"), std::string::npos) << s0;
}

TEST(PartitionFaultTest, ExtendedChaosMatrixMatchesReference) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  const SinkEpoch span = static_cast<SinkEpoch>(ref.out.pipeline.plans);
  ASSERT_GE(span, 12u);

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.coordinator.standbys = 1;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  const std::string schedule =
      ApplySeededChaos(7, w.num_machines, span, opts, /*extended=*/true);
  AddNetFaults(opts);
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok())
      << schedule << ": " << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state) << schedule;
  EXPECT_EQ(got.out.recovery.crashes_injected, 3u) << schedule;
  EXPECT_EQ(got.out.failover.coordinator_crashes, 1u) << schedule;
  EXPECT_EQ(got.out.failover.zombie_revivals, 1u) << schedule;
  EXPECT_GT(got.out.failover.fenced_messages, 0u) << schedule;
}

}  // namespace
}  // namespace tpart
