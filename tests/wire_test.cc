// Wire-format tests: every message and plan type must survive an
// encode/decode round trip bit-for-bit, and the decoder must reject —
// never crash on or misread — truncated, corrupted, and random input.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/wire.h"
#include "obs/trace_context.h"

namespace tpart {
namespace {

// -------------------------------------------------------------------
// Primitives
// -------------------------------------------------------------------

TEST(WirePrimitivesTest, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,     1,        127,        128,
                                 16383, 16384,    0xFFFFFFFF, 1ULL << 40,
                                 ~0ULL, ~0ULL - 1};
  for (std::uint64_t v : cases) {
    std::string buf;
    WireWriter w(&buf);
    w.PutVarint(v);
    WireReader r(buf);
    std::uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint(&got));
    EXPECT_EQ(got, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WirePrimitivesTest, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0,  -1, 1,       -2,      2,
                                63, 64, INT64_MIN, INT64_MAX, -123456789};
  for (std::int64_t v : cases) {
    std::string buf;
    WireWriter w(&buf);
    w.PutZigzag(v);
    WireReader r(buf);
    std::int64_t got = 0;
    ASSERT_TRUE(r.GetZigzag(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(WirePrimitivesTest, SmallNegativeStaysSmall) {
  // Zigzag's point: -1 must not blow up into 10 bytes.
  std::string buf;
  WireWriter w(&buf);
  w.PutZigzag(-1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WirePrimitivesTest, TruncatedVarintRejected) {
  std::string buf;
  WireWriter w(&buf);
  w.PutVarint(1ULL << 40);
  for (std::size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    WireReader r(std::string_view(buf.data(), cut));
    std::uint64_t got;
    EXPECT_FALSE(r.GetVarint(&got)) << "cut at " << cut;
  }
}

TEST(WirePrimitivesTest, OverlongVarintRejected) {
  // 11 continuation bytes: no valid varint is that long.
  std::string buf(11, static_cast<char>(0x80));
  buf.push_back(0x01);
  WireReader r(buf);
  std::uint64_t got;
  EXPECT_FALSE(r.GetVarint(&got));
}

// -------------------------------------------------------------------
// TxnSpec round trip
// -------------------------------------------------------------------

TxnSpec FullTxnSpec() {
  TxnSpec s;
  s.id = 91;
  s.proc = 4;
  s.params = {-7, 0, 1LL << 40};
  s.rw.reads = {3, 14, 15};
  s.rw.writes = {14};
  s.node_weight = 2.5;
  return s;
}

TEST(WireTxnSpecTest, RoundTripsBitForBit) {
  for (const TxnSpec& s : {FullTxnSpec(), MakeDummyTxn(), TxnSpec{}}) {
    std::string bytes;
    WireWriter w(&bytes);
    EncodeTxnSpec(s, w);
    WireReader r(bytes);
    TxnSpec got;
    ASSERT_TRUE(DecodeTxnSpec(r, &got));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_TRUE(got == s);
  }
}

TEST(WireTxnSpecTest, NonFiniteWeightRejected) {
  // NaN breaks round-trip identity (NaN != NaN); infinities would poison
  // partition balance sums. Neither may cross the wire.
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    TxnSpec s = FullTxnSpec();
    s.node_weight = bad;
    std::string bytes;
    WireWriter w(&bytes);
    EncodeTxnSpec(s, w);
    WireReader r(bytes);
    TxnSpec got;
    EXPECT_FALSE(DecodeTxnSpec(r, &got));
  }
}

// -------------------------------------------------------------------
// Message round trip
// -------------------------------------------------------------------

Message FullMessage() {
  Message m;
  m.type = Message::Type::kCacheReadResp;
  m.key = 0xDEADBEEFCAFEULL;
  m.version = 42;
  m.replaces = 41;
  m.dst_txn = 77;
  m.value = Record({1, -2, 300000000000LL}, /*padding_bytes=*/164);
  m.invalidate = true;
  m.total_reads = 3;
  m.awaits = 2;
  m.sticky = true;
  m.epoch = 9;
  m.reply_to = 2;
  m.req_id = 123456;
  m.txn = 88;
  m.term = 7;
  m.trace_ctx = obs::PackTraceCtx(/*origin=*/3, /*term=*/2);
  m.kvs = {{5, Record({7})}, {6, Record::Absent()}};
  // plan_bytes is opaque at the Message layer: arbitrary (non-UTF-8,
  // NUL-bearing) bytes must survive.
  m.plan_bytes = std::string("\x01\x00\xFF\x7F", 4);
  m.specs = {FullTxnSpec(), MakeDummyTxn()};
  return m;
}

TEST(WireMessageTest, FullMessageRoundTrip) {
  const Message m = FullMessage();
  Result<Message> got = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got == m);
}

TEST(WireMessageTest, EveryTypeRoundTrips) {
  for (int t = 0; t <= static_cast<int>(Message::Type::kShutdown); ++t) {
    Message m;
    m.type = static_cast<Message::Type>(t);
    m.key = 100 + t;
    Result<Message> got = DecodeMessage(EncodeMessage(m));
    ASSERT_TRUE(got.ok()) << "type " << t << ": " << got.status().ToString();
    EXPECT_TRUE(*got == m) << "type " << t;
  }
}

TEST(WireMessageTest, HeartbeatRoundTripsWithSequence) {
  // Failure-detector probes carry their rising sequence number in
  // req_id; a codec that dropped or reordered it would break deadline
  // accounting silently.
  Message hb;
  hb.type = Message::Type::kHeartbeat;
  hb.reply_to = 0;
  hb.req_id = 0xDEADBEEFCAFEull;
  Result<Message> got = DecodeMessage(EncodeMessage(hb));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->type, Message::Type::kHeartbeat);
  EXPECT_EQ(got->req_id, 0xDEADBEEFCAFEull);
  EXPECT_TRUE(*got == hb);
}

TEST(WireMessageTest, HeartbeatMutationFuzzRoundTripsOrRejects) {
  Rng rng(0xB42);
  Message hb;
  hb.type = Message::Type::kHeartbeat;
  hb.req_id = 42;
  const std::string base = EncodeMessage(hb);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = base;
    const auto pos = rng.NextBelow(bytes.size());
    bytes[pos] = static_cast<char>(rng.Next());
    Result<Message> got = DecodeMessage(bytes);
    if (got.ok()) {
      Result<Message> again = DecodeMessage(EncodeMessage(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
}

// The coordinator-term fence (DESIGN §4j) rides in every control
// message; a codec that dropped, truncated, or re-widthed the term
// varint would let a deposed leader's traffic through the fence.

TEST(WireMessageTest, TermFieldRoundTripsAtEveryVarintWidth) {
  const std::uint64_t terms[] = {
      0,          1,           127,         128,
      16383,      16384,       (1ull << 21) - 1, 1ull << 21,
      1ull << 28, 1ull << 35,  1ull << 42,  1ull << 49,
      1ull << 56, 1ull << 63,  ~0ull,
  };
  for (Message::Type type : {Message::Type::kSinkPlan,
                             Message::Type::kPlanStreamEnd,
                             Message::Type::kMigrateBegin,
                             Message::Type::kHeartbeat,
                             Message::Type::kLogAppend}) {
    for (std::uint64_t term : terms) {
      Message m;
      m.type = type;
      m.epoch = 5;
      m.term = term;
      Result<Message> got = DecodeMessage(EncodeMessage(m));
      ASSERT_TRUE(got.ok()) << "term " << term << ": "
                            << got.status().ToString();
      EXPECT_EQ(got->term, term);
      EXPECT_TRUE(*got == m) << "term " << term;
    }
  }
}

TEST(WireMessageTest, TermStampedPlanMutationFuzzRoundTripsOrRejects) {
  Rng rng(0x7E21);
  Message m;
  m.type = Message::Type::kSinkPlan;
  m.epoch = 12;
  m.term = 0x8000000000000001ull;  // worst-case 10-byte varint
  m.plan_bytes = std::string("\x02\x00\x7F", 3);
  const std::string base = EncodeMessage(m);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = base;
    const auto pos = rng.NextBelow(bytes.size());
    bytes[pos] = static_cast<char>(rng.Next());
    Result<Message> got = DecodeMessage(bytes);
    if (got.ok()) {
      Result<Message> again = DecodeMessage(EncodeMessage(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
  // Every truncation of the term-stamped encoding is a clean reject.
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(std::string_view(base.data(), cut)).ok())
        << "cut " << cut;
  }
}

// Coordinator-replication traffic (DESIGN §4i) rides the same codec as
// everything else; each kind gets a representative round trip plus the
// heartbeat-style single-byte mutation fuzz, because a corrupted log
// entry that decoded as a *different* valid entry would silently fork
// the replicated request log.

Message FullLogAppend() {
  Message m;
  m.type = Message::Type::kLogAppend;
  m.req_id = 17;        // log index
  m.txn = 9;            // batch id
  m.epoch = 3;          // leader term
  m.reply_to = 4;       // acking endpoint
  m.specs = {FullTxnSpec(), MakeDummyTxn()};
  return m;
}

TEST(WireMessageTest, LogAppendRoundTripsWithBatchPayload) {
  const Message m = FullLogAppend();
  Result<Message> got = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got == m);
  ASSERT_EQ(got->specs.size(), 2u);
  EXPECT_TRUE(got->specs[0] == m.specs[0]);
  EXPECT_TRUE(got->specs[1].is_dummy);
}

TEST(WireMessageTest, LogAckRoundTripsEveryKind) {
  // key multiplexes the ack kind: 0 = append ack, 1 = claim ack,
  // 2 = dissemination watermark.
  for (std::uint64_t kind : {0ULL, 1ULL, 2ULL}) {
    Message m;
    m.type = Message::Type::kLogAck;
    m.key = kind;
    m.req_id = 17;
    m.txn = 2;
    m.epoch = 11;
    Result<Message> got = DecodeMessage(EncodeMessage(m));
    ASSERT_TRUE(got.ok()) << "kind " << kind << ": "
                          << got.status().ToString();
    EXPECT_TRUE(*got == m) << "kind " << kind;
  }
}

TEST(WireMessageTest, LeaderClaimRoundTripsWithTermAndLogLength) {
  Message m;
  m.type = Message::Type::kLeaderClaim;
  m.txn = 1;            // claimant replica
  m.req_id = 23;        // claimant log length
  m.epoch = 2;          // claimed term
  m.reply_to = 5;       // set only on watermark probes
  Result<Message> got = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got == m);
}

TEST(WireMessageTest, ReplicationMutationFuzzRoundTripsOrRejects) {
  Message ack;
  ack.type = Message::Type::kLogAck;
  ack.key = 2;
  ack.req_id = 99;
  ack.txn = 1;
  ack.epoch = 40;
  Message claim;
  claim.type = Message::Type::kLeaderClaim;
  claim.txn = 2;
  claim.req_id = 12;
  claim.epoch = 3;
  const Message bases[] = {FullLogAppend(), ack, claim};
  Rng rng(0x10C5);
  for (const Message& base_msg : bases) {
    const std::string base = EncodeMessage(base_msg);
    for (int iter = 0; iter < 2000; ++iter) {
      std::string bytes = base;
      const auto pos = rng.NextBelow(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
      Result<Message> got = DecodeMessage(bytes);
      if (got.ok()) {
        Result<Message> again = DecodeMessage(EncodeMessage(*got));
        ASSERT_TRUE(again.ok());
        EXPECT_TRUE(*again == *got);
      }
    }
  }
}

TEST(WireMessageTest, AbsentRecordRoundTrips) {
  Message m;
  m.type = Message::Type::kWriteBackApply;
  m.value = Record::Absent();
  Result<Message> got = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->value.is_absent());
  EXPECT_TRUE(*got == m);
}

TEST(WireMessageTest, EveryTruncationRejected) {
  const std::string bytes = EncodeMessage(FullMessage());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<Message> got =
        DecodeMessage(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(got.ok()) << "truncation to " << cut << " bytes accepted";
  }
}

TEST(WireMessageTest, TrailingGarbageRejected) {
  std::string bytes = EncodeMessage(FullMessage());
  bytes.push_back('\x00');
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

TEST(WireMessageTest, BadVersionAndTypeRejected) {
  std::string bytes = EncodeMessage(FullMessage());
  std::string bad_version = bytes;
  bad_version[0] = static_cast<char>(kWireFormatVersion + 1);
  EXPECT_FALSE(DecodeMessage(bad_version).ok());

  std::string bad_type = bytes;
  bad_type[1] = static_cast<char>(
      static_cast<int>(Message::Type::kShutdown) + 1);
  EXPECT_FALSE(DecodeMessage(bad_type).ok());
}

TEST(WireMessageTest, SingleByteCorruptionNeverRoundTrips) {
  // Flip each byte in turn: decoding must either fail or produce a
  // *different* message — silent acceptance of a corrupt payload as the
  // original would mean two encodings map to one byte string.
  const Message m = FullMessage();
  const std::string bytes = EncodeMessage(m);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x55);
    Result<Message> got = DecodeMessage(corrupt);
    if (got.ok()) {
      EXPECT_FALSE(*got == m) << "flip at byte " << i << " undetected";
    }
  }
}

TEST(WireMessageTest, RandomFuzzDoesNotCrash) {
  // Random byte strings must never crash the decoder, and anything it
  // does accept must itself round-trip (decode∘encode is identity on
  // accepted values).
  Rng rng(0xF022);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes(rng.NextBelow(64), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    Result<Message> got = DecodeMessage(bytes);
    if (got.ok()) {
      Result<Message> again = DecodeMessage(EncodeMessage(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
}

TEST(WireMessageTest, MutationFuzzRoundTripsOrRejects) {
  // Start from valid encodings and mutate: decode must never crash, and
  // whatever it accepts must survive a fresh round trip.
  Rng rng(0xF0223);
  const std::string base = EncodeMessage(FullMessage());
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = base;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < mutations; ++k) {
      const auto pos = rng.NextBelow(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
    }
    if (rng.NextBool(0.3)) bytes.resize(rng.NextBelow(bytes.size() + 1));
    Result<Message> got = DecodeMessage(bytes);
    if (got.ok()) {
      Result<Message> again = DecodeMessage(EncodeMessage(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
}

// -------------------------------------------------------------------
// Message batch round trip (the per-round wire frame)
// -------------------------------------------------------------------

std::vector<Message> FullBatch() {
  Message hb;
  hb.type = Message::Type::kHeartbeat;
  hb.req_id = 7;
  Message push;
  push.type = Message::Type::kPushVersion;
  push.key = 31337;
  push.version = 5;
  push.dst_txn = 6;
  push.value = Record({9, -8}, /*padding_bytes=*/32);
  return {FullMessage(), push, hb};
}

bool BatchEq(const std::vector<Message>& a, const std::vector<Message>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

TEST(WireMessageBatchTest, BatchRoundTripsBitForBit) {
  const std::vector<Message> batch = FullBatch();
  Result<std::vector<Message>> got =
      DecodeMessageBatch(EncodeMessageBatch(batch));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BatchEq(*got, batch));
}

TEST(WireMessageBatchTest, SingletonAndEmptyBatchesRoundTrip) {
  const std::vector<Message> one = {FullMessage()};
  Result<std::vector<Message>> got_one =
      DecodeMessageBatch(EncodeMessageBatch(one));
  ASSERT_TRUE(got_one.ok());
  EXPECT_TRUE(BatchEq(*got_one, one));

  Result<std::vector<Message>> got_zero =
      DecodeMessageBatch(EncodeMessageBatch({}));
  ASSERT_TRUE(got_zero.ok());
  EXPECT_TRUE(got_zero->empty());
}

TEST(WireMessageBatchTest, EntriesMatchStandaloneEncoding) {
  // The batch must carry byte-for-byte EncodeMessage entries: the
  // resend-window granularity claim depends on batched and per-message
  // framing being the same payload bytes modulo the batch envelope.
  const std::vector<Message> batch = FullBatch();
  const std::string bytes = EncodeMessageBatch(batch);
  WireReader r(bytes);
  std::uint8_t version;
  std::uint64_t count;
  ASSERT_TRUE(r.GetU8(&version) && r.GetVarint(&count));
  ASSERT_EQ(count, batch.size());
  for (const Message& m : batch) {
    std::uint64_t len;
    std::string_view entry;
    ASSERT_TRUE(r.GetVarint(&len));
    ASSERT_TRUE(r.GetView(static_cast<std::size_t>(len), &entry));
    EXPECT_EQ(entry, EncodeMessage(m));
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireMessageBatchTest, EveryTruncationRejected) {
  const std::string bytes = EncodeMessageBatch(FullBatch());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<std::vector<Message>> got =
        DecodeMessageBatch(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(got.ok()) << "truncation to " << cut << " bytes accepted";
  }
}

TEST(WireMessageBatchTest, TrailingGarbageRejected) {
  std::string bytes = EncodeMessageBatch(FullBatch());
  bytes.push_back('\x00');
  EXPECT_FALSE(DecodeMessageBatch(bytes).ok());
}

TEST(WireMessageBatchTest, BadVersionAndInsaneCountRejected) {
  std::string bad_version = EncodeMessageBatch(FullBatch());
  bad_version[0] = static_cast<char>(kWireFormatVersion + 1);
  EXPECT_FALSE(DecodeMessageBatch(bad_version).ok());

  // A garbage count larger than the remaining bytes must be rejected
  // up front, before any per-entry allocation happens.
  std::string bad_count;
  WireWriter w(&bad_count);
  w.PutU8(kWireFormatVersion);
  w.PutVarint(0xFFFFFFFFFFULL);
  EXPECT_FALSE(DecodeMessageBatch(bad_count).ok());
}

TEST(WireMessageBatchTest, SingleByteCorruptionNeverRoundTrips) {
  const std::vector<Message> batch = FullBatch();
  const std::string bytes = EncodeMessageBatch(batch);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x55);
    Result<std::vector<Message>> got = DecodeMessageBatch(corrupt);
    if (got.ok()) {
      EXPECT_FALSE(BatchEq(*got, batch)) << "flip at byte " << i
                                         << " undetected";
    }
  }
}

TEST(WireMessageBatchTest, RandomBytesDoNotCrash) {
  Rng rng(0xBA7C4);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes(rng.NextBelow(96), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    Result<std::vector<Message>> got = DecodeMessageBatch(bytes);
    if (got.ok()) {
      Result<std::vector<Message>> again =
          DecodeMessageBatch(EncodeMessageBatch(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(BatchEq(*again, *got));
    }
  }
}

TEST(WireMessageBatchTest, MutationFuzzRoundTripsOrRejects) {
  Rng rng(0xBA7C5);
  const std::string base = EncodeMessageBatch(FullBatch());
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = base;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < mutations; ++k) {
      const auto pos = rng.NextBelow(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
    }
    if (rng.NextBool(0.3)) bytes.resize(rng.NextBelow(bytes.size() + 1));
    Result<std::vector<Message>> got = DecodeMessageBatch(bytes);
    if (got.ok()) {
      Result<std::vector<Message>> again =
          DecodeMessageBatch(EncodeMessageBatch(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(BatchEq(*again, *got));
    }
  }
}

// -------------------------------------------------------------------
// SinkPlan round trip
// -------------------------------------------------------------------

SinkPlan FullSinkPlan() {
  SinkPlan plan;
  plan.epoch = 7;
  TxnPlan t;
  t.txn = 31;
  t.machine = 1;
  t.num_reads = 2;
  t.num_writes = 1;
  t.reads.push_back(ReadStep{/*key=*/10, ReadSourceKind::kPush,
                             /*src_txn=*/30, /*src_machine=*/0,
                             /*cache_epoch=*/0, /*storage_min_epoch=*/0,
                             /*invalidate_entry=*/true, /*sticky_hint=*/false,
                             /*provider_txn=*/30, /*entry_total_reads=*/2});
  t.reads.push_back(ReadStep{/*key=*/11, ReadSourceKind::kCacheRemote,
                             /*src_txn=*/kInvalidTxnId, /*src_machine=*/2,
                             /*cache_epoch=*/6, /*storage_min_epoch=*/5,
                             /*invalidate_entry=*/false, /*sticky_hint=*/true,
                             /*provider_txn=*/kInvalidTxnId,
                             /*entry_total_reads=*/0});
  t.pushes.push_back(PushStep{/*key=*/10, /*dst_txn=*/33, /*dst_machine=*/2,
                              /*version_txn=*/31});
  t.local_versions.push_back(
      LocalVersionStep{/*key=*/10, /*dst_txn=*/34, /*version_txn=*/31});
  t.cache_publishes.push_back(CachePublishStep{/*key=*/10, /*epoch=*/8});
  t.write_backs.push_back(WriteBackStep{/*key=*/10, /*home=*/0,
                                        /*version_txn=*/31,
                                        /*make_sticky=*/true,
                                        /*readers_to_await=*/1,
                                        /*replaces_version=*/29});
  plan.txns.push_back(t);
  TxnPlan empty;
  empty.txn = 32;
  empty.machine = 0;
  plan.txns.push_back(empty);
  return plan;
}

TEST(WireSinkPlanTest, FullPlanRoundTrip) {
  const SinkPlan plan = FullSinkPlan();
  Result<SinkPlan> got = DecodeSinkPlan(EncodeSinkPlan(plan));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got == plan);
}

TEST(WireSinkPlanTest, EveryTruncationRejected) {
  const std::string bytes = EncodeSinkPlan(FullSinkPlan());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeSinkPlan(std::string_view(bytes.data(), cut)).ok())
        << "truncation to " << cut << " bytes accepted";
  }
}

TEST(WireSinkPlanTest, TrailingGarbageRejected) {
  std::string bytes = EncodeSinkPlan(FullSinkPlan());
  bytes.push_back('\x00');
  EXPECT_FALSE(DecodeSinkPlan(bytes).ok());
}

TEST(WireSinkPlanTest, BadVersionRejected) {
  std::string bytes = EncodeSinkPlan(FullSinkPlan());
  bytes[0] = static_cast<char>(kWireFormatVersion + 1);
  EXPECT_FALSE(DecodeSinkPlan(bytes).ok());
}

TEST(WireSinkPlanTest, SingleByteCorruptionNeverRoundTrips) {
  // Plans drive dissemination in streaming mode, so the decoder gets the
  // same treatment as Message: flip each byte in turn; decoding must fail
  // or produce a *different* plan — never silently accept the original.
  const SinkPlan plan = FullSinkPlan();
  const std::string bytes = EncodeSinkPlan(plan);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x55);
    Result<SinkPlan> got = DecodeSinkPlan(corrupt);
    if (got.ok()) {
      EXPECT_FALSE(*got == plan) << "flip at byte " << i << " undetected";
    }
  }
}

TEST(WireSinkPlanTest, RandomBytesDoNotCrash) {
  // Pure random byte strings: never crash, and anything accepted must
  // itself round-trip (decode∘encode is identity on accepted values).
  Rng rng(0x51CD);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes(rng.NextBelow(96), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    Result<SinkPlan> got = DecodeSinkPlan(bytes);
    if (got.ok()) {
      Result<SinkPlan> again = DecodeSinkPlan(EncodeSinkPlan(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
}

TEST(WireSinkPlanTest, MutationFuzzRoundTripsOrRejects) {
  // Start from a valid encoding and apply several mutations plus
  // occasional truncation — the same coverage Message gets.
  Rng rng(0x51CC);
  const std::string base = EncodeSinkPlan(FullSinkPlan());
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = base;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < mutations; ++k) {
      const auto pos = rng.NextBelow(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
    }
    if (rng.NextBool(0.3)) bytes.resize(rng.NextBelow(bytes.size() + 1));
    Result<SinkPlan> got = DecodeSinkPlan(bytes);
    if (got.ok()) {
      Result<SinkPlan> again = DecodeSinkPlan(EncodeSinkPlan(*got));
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(*again == *got);
    }
  }
}

// -------------------------------------------------------------------
// Framing
// -------------------------------------------------------------------

TEST(WireFramingTest, FramesReassembleAcrossArbitraryChunking) {
  const std::vector<std::string> payloads = {"", "a", "hello",
                                             std::string(3000, 'x')};
  std::string stream;
  for (const auto& p : payloads) AppendFrame(p, &stream);

  // Feed the stream in every chunk size; all frames must come back.
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameBuffer fb;
    std::vector<std::string> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      fb.Append(std::string_view(stream).substr(
          off, std::min(chunk, stream.size() - off)));
      while (true) {
        Result<std::optional<std::string>> next = fb.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        got.push_back(std::move(**next));
      }
    }
    EXPECT_EQ(got, payloads) << "chunk size " << chunk;
    EXPECT_EQ(fb.buffered_bytes(), 0u);
  }
}

TEST(WireFramingTest, ChecksumCatchesPayloadCorruption) {
  std::string stream;
  AppendFrame("payload-bytes", &stream);
  stream[kFrameHeaderBytes + 3] ^= 0x01;  // flip a payload bit
  FrameBuffer fb;
  fb.Append(stream);
  EXPECT_FALSE(fb.Next().ok());
  // Sticky: the stream cannot be resynced after corruption.
  EXPECT_FALSE(fb.Next().ok());
}

TEST(WireFramingTest, InsaneLengthRejectedBeforeAllocation) {
  const std::string stream("\xFF\xFF\xFF\xFF\x00\x00\x00\x00", 8);
  FrameBuffer fb;
  fb.Append(stream);
  EXPECT_FALSE(fb.Next().ok());
}

}  // namespace
}  // namespace tpart
