#include <gtest/gtest.h>

#include "sequencer/sequencer.h"

namespace tpart {
namespace {

TxnSpec Request() {
  TxnSpec spec;
  spec.rw.reads = {1};
  return spec;
}

TEST(SequencerTest, NoBatchUntilFull) {
  Sequencer seq(Sequencer::Options{.batch_size = 3});
  seq.Submit(Request());
  seq.Submit(Request());
  EXPECT_FALSE(seq.NextBatch().has_value());
  seq.Submit(Request());
  auto batch = seq.NextBatch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->txns.size(), 3u);
  EXPECT_EQ(batch->NumRealTxns(), 3u);
}

TEST(SequencerTest, IdsAreConsecutiveAcrossBatches) {
  Sequencer seq(Sequencer::Options{.batch_size = 2});
  for (int i = 0; i < 6; ++i) seq.Submit(Request());
  TxnId expect = 1;
  for (int b = 0; b < 3; ++b) {
    auto batch = seq.NextBatch();
    ASSERT_TRUE(batch.has_value());
    EXPECT_TRUE(batch->CheckWellFormed(expect));
    expect += 2;
  }
  EXPECT_EQ(seq.next_txn_id(), 7u);
}

TEST(SequencerTest, FlushPadsWithDummies) {
  // §3.3: "we require each sequencer to add dummy requests into every
  // batch ... if there are not enough requests from the clients."
  Sequencer seq(Sequencer::Options{.batch_size = 5});
  seq.Submit(Request());
  auto batch = seq.Flush();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->txns.size(), 5u);
  EXPECT_EQ(batch->NumRealTxns(), 1u);
  EXPECT_EQ(seq.num_dummies_issued(), 4u);
  EXPECT_TRUE(batch->CheckWellFormed(1));
  EXPECT_FALSE(batch->txns[0].is_dummy);
  EXPECT_TRUE(batch->txns[4].is_dummy);
}

TEST(SequencerTest, FlushOnSilenceIsAllDummies) {
  Sequencer seq(Sequencer::Options{.batch_size = 3});
  auto batch = seq.Flush();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->NumRealTxns(), 0u);
  EXPECT_EQ(batch->txns.size(), 3u);
}

TEST(SequencerTest, FlushWithoutPaddingReturnsNulloptWhenEmpty) {
  Sequencer seq(
      Sequencer::Options{.batch_size = 3, .pad_with_dummies = false});
  EXPECT_FALSE(seq.Flush().has_value());
  seq.Submit(Request());
  auto batch = seq.Flush();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->txns.size(), 1u);
}

TEST(SequencerTest, BatchIdsIncrease) {
  Sequencer seq(Sequencer::Options{.batch_size = 1});
  seq.Submit(Request());
  seq.Submit(Request());
  EXPECT_EQ(seq.NextBatch()->batch_id, 0u);
  EXPECT_EQ(seq.NextBatch()->batch_id, 1u);
  EXPECT_EQ(seq.num_batches_issued(), 2u);
}

}  // namespace
}  // namespace tpart
