#include <gtest/gtest.h>

#include "baselines/gstore.h"
#include "sim/calvin_sim.h"
#include "sim/tpart_sim.h"
#include "workload/micro.h"

namespace tpart {
namespace {

MicroOptions SimMicro(std::size_t machines, double dist_rate = 1.0,
                      double skew = 0.3) {
  MicroOptions o;
  o.num_machines = machines;
  o.records_per_machine = 2000;
  o.hot_set_size = 200;
  o.num_txns = 3000;
  o.distributed_rate = dist_rate;
  o.skewed_rate = skew;
  return o;
}

CalvinSimOptions CalvinOpts(std::size_t machines) {
  CalvinSimOptions o;
  o.num_machines = machines;
  return o;
}

TPartSimOptions TPartOpts(std::size_t machines) {
  TPartSimOptions o;
  o.num_machines = machines;
  o.scheduler.sink_size = 50;
  return o;
}

TEST(CalvinSimTest, ProducesSaneStats) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const RunStats stats =
      RunCalvinSim(CalvinOpts(4), *w.partition_map, w.SequencedRequests());
  EXPECT_EQ(stats.txns, 3000u);
  EXPECT_EQ(stats.committed, 3000u);
  EXPECT_GT(stats.Throughput(), 0.0);
  EXPECT_GT(stats.makespan, 0);
  EXPECT_GT(stats.latency.mean(), 0.0);
  // Default micro has distributed rate 1.0.
  EXPECT_GT(stats.distributed_txns, 2900u);
  EXPECT_GT(stats.NetworkStalledFraction(), 0.5);
}

TEST(TPartSimTest, ProducesSaneStats) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const RunStats stats = RunTPartSim(TPartOpts(4), w.partition_map,
                                     w.SequencedRequests());
  EXPECT_EQ(stats.txns, 3000u);
  EXPECT_EQ(stats.committed, 3000u);
  EXPECT_GT(stats.Throughput(), 0.0);
  EXPECT_GT(stats.max_tgraph_size, 0u);
}

TEST(TPartSimTest, DeterministicAcrossRuns) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const auto txns = w.SequencedRequests();
  const RunStats a = RunTPartSim(TPartOpts(4), w.partition_map, txns);
  const RunStats b = RunTPartSim(TPartOpts(4), w.partition_map, txns);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.network_stalled_txns, b.network_stalled_txns);
  EXPECT_EQ(a.distributed_txns, b.distributed_txns);
}

TEST(SimComparisonTest, TPartBeatsCalvinOnHardToPartitionWorkload) {
  // The headline claim (Fig. 5(b,c), Fig. 8): with high distributed-txn
  // rate and skew, Calvin+TP clearly outperforms Calvin.
  const Workload w = MakeMicroWorkload(SimMicro(8));
  const auto txns = w.SequencedRequests();
  const RunStats calvin =
      RunCalvinSim(CalvinOpts(8), *w.partition_map, txns);
  const RunStats tpart = RunTPartSim(TPartOpts(8), w.partition_map, txns);
  EXPECT_GT(tpart.Throughput(), 1.3 * calvin.Throughput());
}

TEST(SimComparisonTest, CalvinCompetitiveWhenAllLocal) {
  // Fig. 8(a): "when all transactions are local, the throughput of Calvin
  // is little higher than T-Part" — we only require T-Part not to win big
  // and the gap to be small.
  const Workload w = MakeMicroWorkload(SimMicro(4, /*dist=*/0.0,
                                                /*skew=*/0.0));
  const auto txns = w.SequencedRequests();
  const RunStats calvin =
      RunCalvinSim(CalvinOpts(4), *w.partition_map, txns);
  const RunStats tpart = RunTPartSim(TPartOpts(4), w.partition_map, txns);
  EXPECT_GT(calvin.Throughput(), 0.6 * tpart.Throughput());
}

TEST(SimComparisonTest, TPartReducesStallWait) {
  // Figs. 9(b)/10(b): forward-pushing cuts the average waiting time of
  // network-stalled transactions.
  const Workload w = MakeMicroWorkload(SimMicro(8));
  const auto txns = w.SequencedRequests();
  const RunStats calvin =
      RunCalvinSim(CalvinOpts(8), *w.partition_map, txns);
  const RunStats tpart = RunTPartSim(TPartOpts(8), w.partition_map, txns);
  EXPECT_LT(tpart.stall_wait.mean(), calvin.stall_wait.mean());
}

TEST(TPartSimTest, StallTrackerCollectsDistanceSamples) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  StallTracker stalls(256);
  RunTPartSim(TPartOpts(4), w.partition_map, w.SequencedRequests(),
              &stalls);
  std::size_t samples = 0;
  for (std::size_t d = 0; d <= stalls.max_distance(); ++d) {
    samples += stalls.AtDistance(d).count();
  }
  EXPECT_GT(samples, 500u);
  // Fig. 4(a): close pairs stall more than distant ones on average.
  EXPECT_GE(stalls.MeanStallInRange(1, 32),
            stalls.MeanStallInRange(128, 256));
}

TEST(TPartSimTest, GStoreModeRunsAndIsSlower) {
  // Fig. 6(d->e): T-Part (sink size > 1) beats the G-Store emulation.
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const auto txns = w.SequencedRequests();
  const TPartSimOptions base = TPartOpts(4);
  const RunStats tpart = RunTPartSim(base, w.partition_map, txns);
  const RunStats gstore =
      RunTPartSim(MakeGStoreSimOptions(base), w.partition_map, txns);
  EXPECT_EQ(gstore.committed, 3000u);
  EXPECT_GT(tpart.Throughput(), gstore.Throughput());
}

TEST(TPartSimTest, MachineSpeedSkewSlowsCluster) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const auto txns = w.SequencedRequests();
  TPartSimOptions uniform = TPartOpts(4);
  TPartSimOptions straggler = TPartOpts(4);
  straggler.cost.machine_speed = {0.3, 1.0, 1.0, 1.0};
  const RunStats fast = RunTPartSim(uniform, w.partition_map, txns);
  const RunStats slow = RunTPartSim(straggler, w.partition_map, txns);
  EXPECT_GT(fast.Throughput(), slow.Throughput());
}

TEST(TPartSimTest, ReadReplicasReduceRemoteStorageReads) {
  // §8 extension: with every machine holding a replica of everything,
  // no storage read is remote; throughput should not drop and stalls on
  // cold reads disappear.
  MicroOptions o = SimMicro(4);
  o.read_write_rate = 0.1;  // storage-read heavy
  const Workload w = MakeMicroWorkload(o);
  const auto txns = w.SequencedRequests();
  TPartSimOptions base = TPartOpts(4);
  TPartSimOptions replicated = TPartOpts(4);
  replicated.storage_replicas = 4;  // full replication
  const RunStats r1 = RunTPartSim(base, w.partition_map, txns);
  const RunStats r4 = RunTPartSim(replicated, w.partition_map, txns);
  EXPECT_GT(r4.Throughput(), r1.Throughput());
  EXPECT_LT(r4.NetworkStalledFraction(), r1.NetworkStalledFraction());
}

TEST(BreakdownTest, ComponentsNamedAndAccumulated) {
  const Workload w = MakeMicroWorkload(SimMicro(4));
  const RunStats stats = RunTPartSim(TPartOpts(4), w.partition_map,
                                     w.SequencedRequests());
  EXPECT_EQ(stats.breakdown.txns(), 3000u);
  EXPECT_GT(stats.breakdown.MeanPerTxn(Component::kExecute), 0.0);
  EXPECT_GT(stats.breakdown.MeanPerTxn(Component::kRemoteWait), 0.0);
  EXPECT_FALSE(stats.breakdown.ToString().empty());
  for (int i = 0; i < kNumComponents; ++i) {
    EXPECT_STRNE(ComponentName(static_cast<Component>(i)), "?");
  }
}

}  // namespace
}  // namespace tpart
