#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/live_sampler.h"
#include "sim/tpart_sim.h"
#include "workload/micro.h"

namespace tpart {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser: enough to validate the Chrome trace-event output
// and walk its events. Rejects anything malformed.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return p_ == end_;  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool Consume(char c) {
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null");
      default:
        out->kind = JsonValue::Kind::kNumber;
        return ParseNumber(&out->number);
    }
  }

  bool ParseLiteral(const char* lit) {
    while (*lit != '\0') {
      if (p_ >= end_ || *p_ != *lit) return false;
      ++p_;
      ++lit;
    }
    return true;
  }

  bool ParseBool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (*p_ == 't') {
      out->boolean = true;
      return ParseLiteral("true");
    }
    out->boolean = false;
    return ParseLiteral("false");
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
        switch (*p_) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            out->push_back(' ');
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ >= end_ ||
                  !std::isxdigit(static_cast<unsigned char>(*p_))) {
                return false;
              }
            }
            out->push_back('?');
            break;
          }
          default:
            return false;  // invalid escape
        }
        ++p_;
      } else if (static_cast<unsigned char>(*p_) < 0x20) {
        return false;  // unescaped control character
      } else {
        out->push_back(*p_);
        ++p_;
      }
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    if (p_ == start) return false;
    *out = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const char* p_;
  const char* end_;
};

JsonValue ParseTrace(const obs::TraceRecorder& rec) {
  JsonValue root;
  EXPECT_TRUE(JsonParser(rec.ToJson()).Parse(&root)) << "malformed JSON";
  EXPECT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.Get("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::kArray);
  return root;
}

// ---------------------------------------------------------------------
// Recorder unit tests
// ---------------------------------------------------------------------

TEST(TraceRecorderTest, ManualClockIsMonotonicMax) {
  obs::TraceRecorder rec(obs::TraceRecorder::ClockDomain::kManual);
  EXPECT_EQ(rec.NowNs(), 0u);
  rec.AdvanceTo(1000);
  EXPECT_EQ(rec.NowNs(), 1000u);
  rec.AdvanceTo(500);  // never moves backwards
  EXPECT_EQ(rec.NowNs(), 1000u);
  rec.AdvanceTo(2000);
  EXPECT_EQ(rec.NowNs(), 2000u);
}

TEST(TraceRecorderTest, EmitsWellFormedJsonForEveryEventKind) {
  obs::TraceRecorder rec(obs::TraceRecorder::ClockDomain::kManual);
  rec.SetProcessName(0, "control");
  rec.SetProcessName(1, "machine-0");
  rec.SetThreadInfo(0, "main");
  rec.AdvanceTo(100);
  rec.Begin("outer", "test", {{"k", 1}, {"j", 2}});
  rec.Instant("marker", "test", {}, "free-text with \"quotes\" and \\ and\nnewline");
  rec.Counter("depth", 7);
  rec.FlowStart("push", 0xabcdef);
  rec.FlowEnd("push", 0xabcdef);
  rec.AsyncBegin("txn", "lifecycle", 42);
  rec.AsyncEnd("txn", "lifecycle", 42);
  rec.End();
  rec.CompleteAt(1, 0, "sim_txn", "exec", 50, 25, {{"txn", 9}});
  rec.InstantAt(1, 0, "stall", "exec", 60);
  rec.CounterAt(1, "queue", 70, 3);
  rec.FlowStartAt(1, 0, "push", 55, 0x99);
  rec.FlowEndAt(1, 0, "push", 65, 0x99);

  const JsonValue root = ParseTrace(rec);
  const JsonValue& events = *root.Get("traceEvents");

  std::map<std::string, int> ph_count;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    ASSERT_NE(e.Get("ph"), nullptr);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    ++ph_count[e.Get("ph")->str];
  }
  EXPECT_EQ(ph_count["M"], 3);  // 2 process names + 1 thread name
  EXPECT_EQ(ph_count["B"], 1);
  EXPECT_EQ(ph_count["E"], 1);
  EXPECT_EQ(ph_count["i"], 2);
  EXPECT_EQ(ph_count["C"], 2);
  EXPECT_EQ(ph_count["s"], 2);
  EXPECT_EQ(ph_count["f"], 2);
  EXPECT_EQ(ph_count["b"], 1);
  EXPECT_EQ(ph_count["e"], 1);
  EXPECT_EQ(ph_count["X"], 1);
  EXPECT_EQ(rec.event_count(), 13u);
}

TEST(TraceRecorderTest, SpanBeginEndBalancePerThread) {
  obs::TraceRecorder rec;
  obs::InstallGlobalTrace(&rec);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      rec.SetThreadInfo(0, "worker");
      for (int i = 0; i < 50; ++i) {
        TPART_TRACE_SPAN("outer", "test", {{"t", static_cast<std::uint64_t>(t)}});
        TPART_TRACE_SPAN("inner", "test");
        TPART_TRACE(Instant("tick", "test"));
      }
    });
  }
  for (auto& t : threads) t.join();
  obs::InstallGlobalTrace(nullptr);

  const JsonValue root = ParseTrace(rec);
  // Per (pid, tid): every B has a matching E and nesting never goes
  // negative (events are exported in per-thread emission order).
  std::map<std::pair<int, int>, int> depth;
  for (const JsonValue& e : root.Get("traceEvents")->array) {
    const std::string& ph = e.Get("ph")->str;
    const auto track = std::make_pair(
        static_cast<int>(e.Get("pid")->number),
        static_cast<int>(e.Get("tid")->number));
    if (ph == "B") ++depth[track];
    if (ph == "E") {
      --depth[track];
      ASSERT_GE(depth[track], 0) << "End without Begin on a thread";
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << track.second;
  }
}

TEST(TraceRecorderTest, NoRecorderInstalledMeansMacrosAreNoOps) {
  ASSERT_EQ(obs::GlobalTrace(), nullptr);
  // Must not crash, and a later-created recorder must stay empty.
  TPART_TRACE(Instant("nothing", "test"));
  TPART_TRACE_SPAN("nothing", "test");
  obs::TraceRecorder rec;
  EXPECT_EQ(rec.event_count(), 0u);
  TPART_TRACE(Instant("still-nothing", "test"));
  EXPECT_EQ(rec.event_count(), 0u);  // never installed
}

TEST(TraceRecorderTest, DestructorUninstallsItself) {
  {
    obs::TraceRecorder rec;
    obs::InstallGlobalTrace(&rec);
    EXPECT_EQ(obs::GlobalTrace(), &rec);
  }
  EXPECT_EQ(obs::GlobalTrace(), nullptr);
}

TEST(TraceRecorderTest, WriteJsonRoundTrips) {
  obs::TraceRecorder rec(obs::TraceRecorder::ClockDomain::kManual);
  rec.SetThreadInfo(0, "main");
  rec.Instant("only", "test");
  const std::string path =
      ::testing::TempDir() + "/tpart_trace_test_out.json";
  ASSERT_TRUE(rec.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(content, rec.ToJson());
}

// ---------------------------------------------------------------------
// Simulator traces
// ---------------------------------------------------------------------

Workload TraceMicro() {
  MicroOptions o;
  o.num_machines = 4;
  o.records_per_machine = 2000;
  o.hot_set_size = 100;
  o.num_txns = 800;
  return MakeMicroWorkload(o);
}

std::string SimTraceJson() {
  obs::TraceRecorder rec(obs::TraceRecorder::ClockDomain::kManual);
  obs::InstallGlobalTrace(&rec);
  const Workload w = TraceMicro();
  TPartSimOptions o;
  o.num_machines = 4;
  o.scheduler.sink_size = 50;
  RunTPartSim(o, w.partition_map, w.SequencedRequests());
  obs::InstallGlobalTrace(nullptr);
  return rec.ToJson();
}

TEST(TraceSimTest, SameSeedRunsProduceByteIdenticalTraces) {
  const std::string a = SimTraceJson();
  const std::string b = SimTraceJson();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "manual-domain simulator traces must be deterministic";
}

TEST(TraceSimTest, SimTraceCoversTxnsFlowsAndScheduler) {
#if defined(TPART_TRACING_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (TPART_DISABLE_TRACING)";
#endif
  const std::string json = SimTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  int complete = 0, flow_start = 0, flow_end = 0, counters = 0, sinks = 0;
  for (const JsonValue& e : root.Get("traceEvents")->array) {
    const std::string& ph = e.Get("ph")->str;
    if (ph == "X") ++complete;
    if (ph == "s") ++flow_start;
    if (ph == "f") ++flow_end;
    if (ph == "C") ++counters;
    if (ph == "B" && e.Get("name")->str == "sink_round") ++sinks;
  }
  EXPECT_EQ(complete, 800) << "one complete span per simulated txn";
  EXPECT_GT(flow_start, 0) << "fully-distributed micro must forward-push";
  EXPECT_EQ(flow_start, flow_end);
  EXPECT_GT(counters, 0) << "tgraph_unsunk counter series";
  EXPECT_GT(sinks, 0) << "scheduler sink rounds";
}

TEST(TraceSimTest, SameSeedRunsProduceByteIdenticalMetricsStreams) {
  auto run = [] {
    obs::LiveSampler sampler(obs::LiveSampler::Domain::kEpoch);
    const Workload w = TraceMicro();
    TPartSimOptions o;
    o.num_machines = 4;
    o.scheduler.sink_size = 50;
    o.live_sampler = &sampler;
    RunTPartSim(o, w.partition_map, w.SequencedRequests());
    return sampler.Jsonl();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(a.find("\"tpart_live_committed_total\":"), std::string::npos);
  EXPECT_EQ(a, b)
      << "epoch-domain metrics streams must be byte-identical across "
         "same-seed simulator runs";
}

TEST(TraceSimTest, RunWithoutRecorderLeavesTraceEmpty) {
  obs::TraceRecorder rec(obs::TraceRecorder::ClockDomain::kManual);
  // Recorder exists but is not installed: the run must not touch it.
  const Workload w = TraceMicro();
  TPartSimOptions o;
  o.num_machines = 4;
  o.scheduler.sink_size = 50;
  RunTPartSim(o, w.partition_map, w.SequencedRequests());
  EXPECT_EQ(rec.event_count(), 0u);
}

}  // namespace
}  // namespace tpart
