// Transport-layer tests: every wire substrate (serialized in-process
// queues, loopback TCP, and both under seeded fault injection) must
// produce exactly the results and final state of the serial reference
// and of the direct in-memory path — the version CC makes outcomes
// interleaving-independent, so any divergence is a transport bug.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/serial_executor.h"
#include "net/transport.h"
#include "net/wire.h"
#include "runtime/cluster.h"
#include "workload/micro.h"
#include "workload/tpcc.h"

namespace tpart {
namespace {

std::pair<std::vector<TxnResult>, std::vector<std::pair<ObjectKey, Record>>>
SerialReference(const Workload& w) {
  auto map = std::make_shared<HashPartitionMap>(1);
  PartitionedStore store(1, map);
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) store.Upsert(k, rec);
  auto result = RunSerial(*w.procedures, w.SequencedRequests(),
                          store.store(0));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {std::move(result->results), store.Snapshot()};
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 400;
  return o;
}

LocalClusterOptions OptsFor(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  return opts;
}

// Run both engines over `opts.transport` and check them against the
// serial reference. Returns the T-Part run's transport stats.
TransportStats CheckTransportMatchesSerial(const Workload& w,
                                           LocalClusterOptions opts) {
  const auto [serial_results, serial_state] = SerialReference(w);

  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome tpart = cluster.RunTPart();
  ExpectSameResults(serial_results, tpart.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state)
      << "T-Part final state diverged from serial";
  EXPECT_EQ(tpart.committed + tpart.aborted, serial_results.size());

  const ClusterRunOutcome calvin = cluster.RunCalvin();
  ExpectSameResults(serial_results, calvin.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state)
      << "Calvin final state diverged from serial";
  return tpart.transport;
}

TEST(TransportTest, SerializedInProcessMatchesSerial) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const TransportStats stats =
      CheckTransportMatchesSerial(w, OptsFor(TransportKind::kInProcess));
  // The wire path really ran: messages were serialized into packets.
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_GT(stats.packets_out, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  EXPECT_EQ(stats.messages_delivered, stats.messages_sent);
}

TEST(TransportTest, TcpLoopbackMatchesSerial) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const TransportStats stats =
      CheckTransportMatchesSerial(w, OptsFor(TransportKind::kTcp));
  EXPECT_GT(stats.packets_out, 0u);
  EXPECT_EQ(stats.messages_delivered, stats.messages_sent);
}

TEST(TransportTest, TcpTpccWithAbortsMatchesSerial) {
  TpccOptions o;
  o.num_machines = 3;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 100;
  o.num_txns = 300;
  o.abort_prob = 0.05;
  CheckTransportMatchesSerial(MakeTpccWorkload(o),
                              OptsFor(TransportKind::kTcp));
}

TEST(TransportTest, AllTransportsByteIdenticalOutcomes) {
  // Direct, serialized in-process, and TCP must agree result-for-result
  // and byte-for-byte on final state.
  const Workload w = MakeMicroWorkload(SmallMicro());

  LocalCluster direct(&w, OptsFor(TransportKind::kDirect));
  const ClusterRunOutcome ref = direct.RunTPart();
  const auto ref_state = direct.store().Snapshot();

  for (TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kTcp}) {
    LocalCluster cluster(&w, OptsFor(kind));
    const ClusterRunOutcome got = cluster.RunTPart();
    ExpectSameResults(ref.results, got.results);
    EXPECT_EQ(cluster.store().Snapshot(), ref_state)
        << "transport kind " << static_cast<int>(kind);
  }
}

TEST(TransportTest, FaultyInProcessCommitsEverything) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = OptsFor(TransportKind::kInProcess);
  opts.transport.faults.seed = 0xBADBEE;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;

  const TransportStats stats = CheckTransportMatchesSerial(w, opts);
  // The faults really fired and the reliability layer really worked.
  EXPECT_GT(stats.faults_dropped, 0u);
  EXPECT_GT(stats.faults_duplicated, 0u);
  EXPECT_GT(stats.faults_delayed, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.messages_delivered, stats.messages_sent);
}

TEST(TransportTest, BatchedFramingByteIdenticalUnderFaults) {
  // The batched-round-frame property: the SAME workload over the SAME
  // seeded fault schedule must produce identical results and final state
  // whether executors hand the transport per-message packets or
  // coalesced per-destination batch frames — batching only changes wire
  // framing (and the resend granularity), never outcomes.
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = OptsFor(TransportKind::kInProcess);
  opts.transport.faults.seed = 0xFA57;
  opts.transport.faults.drop_prob = 0.04;
  opts.transport.faults.duplicate_prob = 0.04;
  opts.transport.faults.delay_prob = 0.08;
  opts.transport.faults.max_delay_us = 1200;
  opts.transport.retry_timeout_us = 1000;

  opts.transport.batch_fanout = false;
  LocalCluster unbatched(&w, opts);
  const ClusterRunOutcome ref = unbatched.RunTPart();
  const auto ref_state = unbatched.store().Snapshot();
  EXPECT_EQ(ref.transport.batches_sent, 0u);

  opts.transport.batch_fanout = true;
  LocalCluster batched(&w, opts);
  const ClusterRunOutcome got = batched.RunTPart();
  ExpectSameResults(ref.results, got.results);
  EXPECT_EQ(batched.store().Snapshot(), ref_state)
      << "batched framing diverged from per-message framing";
  // Batching really happened: multi-message frames went out, each
  // carrying at least two messages.
  EXPECT_GT(got.transport.batches_sent, 0u);
  EXPECT_GE(got.transport.batched_messages,
            2 * got.transport.batches_sent);
  EXPECT_EQ(got.transport.messages_delivered, got.transport.messages_sent);
}

TEST(TransportTest, FaultyTcpCommitsEverything) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = OptsFor(TransportKind::kTcp);
  opts.transport.faults.seed = 0x7C9;
  opts.transport.faults.drop_prob = 0.03;
  opts.transport.faults.duplicate_prob = 0.03;
  opts.transport.faults.delay_prob = 0.05;
  opts.transport.retry_timeout_us = 1000;

  const TransportStats stats = CheckTransportMatchesSerial(w, opts);
  EXPECT_GT(stats.faults_dropped, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(TransportTest, FaultsUpgradeDirectToSerialized) {
  // kDirect cannot inject packet faults; MakeTransport upgrades it.
  TransportOptions options;
  options.kind = TransportKind::kDirect;
  options.faults.drop_prob = 0.1;
  auto transport = MakeTransport(options);
  std::vector<int> seen(2, 0);
  std::vector<Transport::DeliverFn> sinks;
  for (int m = 0; m < 2; ++m) {
    sinks.push_back([&seen, m](Message) { ++seen[m]; });
  }
  transport->Start(std::move(sinks));
  Message msg;
  msg.type = Message::Type::kPushVersion;
  msg.key = 1;
  for (int i = 0; i < 50; ++i) transport->Send(0, 1, msg);
  transport->Flush();
  EXPECT_EQ(seen[1], 50);
  const TransportStats stats = transport->stats();
  EXPECT_GT(stats.packets_out, 0u);  // serialized, not direct
  EXPECT_GT(stats.faults_dropped, 0u);
  transport->Stop();
}

TEST(TransportTest, BackpressureCountersSurface) {
  // A tiny queue forces senders to wait; the event must be counted.
  TransportOptions options;
  options.kind = TransportKind::kInProcess;
  options.queue_capacity = 1;
  auto transport = MakeTransport(options);
  std::vector<Transport::DeliverFn> sinks(2, [](Message) {});
  transport->Start(std::move(sinks));
  Message msg;
  msg.type = Message::Type::kPushVersion;
  msg.value = Record({1, 2, 3});
  for (int i = 0; i < 200; ++i) transport->Send(0, 1, msg);
  transport->Flush();
  const TransportStats stats = transport->stats();
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_EQ(stats.messages_delivered, 200u);
  transport->Stop();
}

TEST(TransportTest, StatsSummaryMentionsTransport) {
  TransportStats stats;
  stats.messages_sent = 3;
  stats.retries = 1;
  const std::string s = stats.Summary();
  EXPECT_NE(s.find("msgs="), std::string::npos);
  EXPECT_NE(s.find("retries="), std::string::npos);
}

}  // namespace
}  // namespace tpart
