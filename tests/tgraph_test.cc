#include <gtest/gtest.h>

#include "storage/data_partition.h"
#include "tgraph/edge_weight.h"
#include "tgraph/tgraph.h"

namespace tpart {
namespace {

TxnSpec Txn(TxnId id, std::vector<ObjectKey> reads,
            std::vector<ObjectKey> writes) {
  TxnSpec spec;
  spec.id = id;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

TGraph MakeGraph(std::size_t machines = 2, bool read_own_writes = false) {
  TGraph::Options o;
  o.num_machines = machines;
  o.read_own_writes = read_own_writes;
  return TGraph(o, std::make_shared<HashPartitionMap>(machines));
}

// ---- Edge-weight models -----------------------------------------------

TEST(EdgeWeightTest, ConstantIsFlat) {
  ConstantEdgeWeight w(2.5);
  EXPECT_DOUBLE_EQ(w.Weight(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(w.Weight(1, 500), 2.5);
}

TEST(EdgeWeightTest, LinearDecayDecreasesWithDistance) {
  LinearDecayEdgeWeight w;
  EXPECT_GT(w.Weight(1, 2), w.Weight(1, 100));
  EXPECT_GE(w.Weight(1, 100), w.Weight(1, 100000));
  EXPECT_GT(w.Weight(1, 100000), 0.0);  // floor
}

TEST(EdgeWeightTest, SigmoidDropsAroundMidpoint) {
  SigmoidEdgeWeight w(0.1, 1.0, 200.0, 25.0);
  EXPECT_NEAR(w.Weight(1, 2), 1.0, 0.01);
  EXPECT_NEAR(w.Weight(1, 2001), 0.1, 0.01);
  const double mid = w.Weight(1, 201);
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.8);
}

// ---- T-graph construction ----------------------------------------------

TEST(TGraphTest, RejectsOutOfOrderIds) {
  TGraph g = MakeGraph();
  g.AddTxn(Txn(1, {1}, {}));
  // Id 3 skips 2 -> deterministic engines must see every position.
  EXPECT_DEATH(g.AddTxn(Txn(3, {1}, {})), "non-consecutive");
}

TEST(TGraphTest, DummiesAreIsolatedZeroWeightNodes) {
  TGraph g = MakeGraph();
  TxnSpec dummy = MakeDummyTxn();
  dummy.id = 1;
  g.AddTxn(dummy);
  EXPECT_EQ(g.num_unsunk(), 1u);
  EXPECT_EQ(g.node(1).weight, 0.0);
  EXPECT_TRUE(g.node(1).edges.empty());
}

// Live edges of `node` with the given kind.
std::vector<TEdge> EdgesOf(const TGraph& g, TxnId id, EdgeKind kind) {
  std::vector<TEdge> out;
  for (const std::size_t eid : g.node(id).edges) {
    const TEdge& e = g.edge(eid);
    if (!e.stale && e.kind == kind) out.push_back(e);
  }
  return out;
}

TEST(TGraphTest, WrConflictCreatesForwardPushEdge) {
  TGraph g = MakeGraph();
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  const auto pushes = EdgesOf(g, 2, EdgeKind::kForwardPush);
  ASSERT_EQ(pushes.size(), 1u);
  EXPECT_EQ(pushes[0].src_txn, 1u);
  EXPECT_EQ(pushes[0].dst_txn, 2u);
  EXPECT_EQ(pushes[0].key, 10u);
}

TEST(TGraphTest, ReadingFromTheEarliestPicksWriterNotReader) {
  // T1 writes X; T2 reads X; T3 reads X. T3's edge must come from T1
  // (the earliest holder of the version), not from T2 (§4.2).
  TGraph g = MakeGraph();
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  g.AddTxn(Txn(3, {10}, {}));
  const auto pushes = EdgesOf(g, 3, EdgeKind::kForwardPush);
  ASSERT_EQ(pushes.size(), 1u);
  EXPECT_EQ(pushes[0].src_txn, 1u);
}

TEST(TGraphTest, ColdReadCreatesStorageReadEdge) {
  TGraph g = MakeGraph();
  g.AddTxn(Txn(1, {10}, {}));
  const TxnNode& n1 = g.node(1);
  ASSERT_EQ(n1.edges.size(), 1u);
  const TEdge& e = g.edge(n1.edges[0]);
  EXPECT_EQ(e.kind, EdgeKind::kStorageRead);
  EXPECT_EQ(e.src_txn, kInvalidTxnId);
  EXPECT_EQ(e.sink, g.data_map().Locate(10));
}

TEST(TGraphTest, WritingBackTheLatestMovesTheDuty) {
  // The storage-write edge follows the latest accessor of a dirty object.
  TGraph g = MakeGraph();
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  // T1: write edge created at write, then moved to T2 at its read.
  std::size_t live_wb_edges = 0;
  TxnId owner = 0;
  for (const auto& n : {g.node(1), g.node(2)}) {
    for (const std::size_t eid : n.edges) {
      const TEdge& e = g.edge(eid);
      if (e.kind == EdgeKind::kStorageWrite && !e.stale) {
        ++live_wb_edges;
        owner = e.src_txn;
      }
    }
  }
  EXPECT_EQ(live_wb_edges, 1u);
  EXPECT_EQ(owner, 2u);
}

TEST(TGraphTest, ReadOwnWritesUnionsSets) {
  TGraph g = MakeGraph(2, /*read_own_writes=*/true);
  g.AddTxn(Txn(1, {}, {10}));  // blind write now also reads 10
  const TxnNode& n1 = g.node(1);
  bool has_storage_read = false;
  for (const std::size_t eid : n1.edges) {
    if (g.edge(eid).kind == EdgeKind::kStorageRead) has_storage_read = true;
  }
  EXPECT_TRUE(has_storage_read);
}

TEST(TGraphTest, AffinityCountsPlacedNeighboursAndSinks) {
  TGraph g = MakeGraph(2);
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  g.mutable_node(1).assigned = 1;
  std::vector<double> affinity(2, 0.0);
  g.AccumulateAffinity(2, [](TxnId peer) { return peer < 2; }, affinity);
  // Push edge toward T1's machine (weight 1) plus T2's storage-write...
  // T2 holds the write-back duty for key 10 toward its home sink.
  const MachineId home = g.data_map().Locate(10);
  std::vector<double> expect(2, 0.0);
  expect[1] += 1.0;          // forward-push edge to T1@1
  expect[home] += 1.0;       // storage-write duty edge
  EXPECT_EQ(affinity, expect);
}

TEST(TGraphTest, CutWeightCountsCrossAssignments) {
  TGraph g = MakeGraph(2);
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  g.mutable_node(1).assigned = 0;
  g.mutable_node(2).assigned = 0;
  const double same = g.CutWeight();
  g.mutable_node(2).assigned = 1;
  const double cross = g.CutWeight();
  EXPECT_GT(cross, same);
}

TEST(TGraphTest, SnapshotRoundTripsAssignments) {
  TGraph g = MakeGraph(2);
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));
  TGraph::Snapshot snap = g.ExportSnapshot();
  ASSERT_EQ(snap.vertex_weight.size(), 4u);  // 2 sinks + 2 txns
  EXPECT_EQ(snap.fixed[0], 0);
  EXPECT_EQ(snap.fixed[1], 1);
  EXPECT_EQ(snap.fixed[2], -1);
  std::vector<int> assign = {0, 1, 1, 0};
  g.ApplySnapshotAssignment(snap, assign);
  EXPECT_EQ(g.node(1).assigned, 1u);
  EXPECT_EQ(g.node(2).assigned, 0u);
}

TEST(TGraphTest, GStoreModeWritesBackInsteadOfPublishing) {
  TGraph::Options o;
  o.num_machines = 2;
  o.read_own_writes = false;
  o.always_write_back = true;
  o.sticky_cache = false;
  TGraph g(o, std::make_shared<HashPartitionMap>(2));
  g.AddTxn(Txn(1, {}, {10}));
  g.AddTxn(Txn(2, {10}, {}));  // will stay unsunk
  g.mutable_node(1).assigned = 0;
  g.mutable_node(2).assigned = 0;
  const SinkPlan plan = g.Sink(1, 1);
  ASSERT_EQ(plan.txns.size(), 1u);
  EXPECT_TRUE(plan.txns[0].cache_publishes.empty());
  ASSERT_EQ(plan.txns[0].write_backs.size(), 1u);
  EXPECT_EQ(plan.txns[0].write_backs[0].key, 10u);
  // The stranded reader becomes a storage reader of the new version.
  g.mutable_node(2).assigned = 0;
  const SinkPlan plan2 = g.Sink(1, 2);
  ASSERT_EQ(plan2.txns.size(), 1u);
  ASSERT_EQ(plan2.txns[0].reads.size(), 1u);
  EXPECT_EQ(plan2.txns[0].reads[0].kind, ReadSourceKind::kStorage);
  EXPECT_EQ(plan2.txns[0].reads[0].src_txn, 1u);
  EXPECT_EQ(plan2.txns[0].reads[0].storage_min_epoch, 1u);
}

TEST(TGraphTest, StorageReadAwaitCountsFlowIntoWriteBacks) {
  // Two storage readers of the initial version, then a writer: the
  // writer's write-back must await both reads (readers_to_await == 2).
  TGraph g = MakeGraph(1);
  g.AddTxn(Txn(1, {10}, {}));
  g.AddTxn(Txn(2, {10}, {}));
  g.AddTxn(Txn(3, {}, {10}));
  for (TxnId t : {1, 2, 3}) g.mutable_node(t).assigned = 0;
  const SinkPlan plan = g.Sink(3, 1);
  const TxnPlan& p3 = plan.txns[2];
  ASSERT_EQ(p3.write_backs.size(), 1u);
  EXPECT_EQ(p3.write_backs[0].readers_to_await, 2u);
}

}  // namespace
}  // namespace tpart
