// Live observability plane tests: the metric-name convention and the
// audit of every PublishTo() implementation against it, the LiveSampler
// in both clock domains (wall-clock background thread and deterministic
// sink-epoch ticks), the black-box flight recorder's ring/overwrite/
// post-mortem behaviour, the loopback /metrics HTTP endpoint, the
// packed per-transaction trace context, and an end-to-end streaming
// run with the sampler armed and per-transaction timelines sampled.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/run_stats.h"
#include "obs/flight_recorder.h"
#include "obs/live_sampler.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "runtime/cluster.h"
#include "workload/micro.h"

namespace tpart {
namespace {

// ---------------------------------------------------------------------
// Metric-name convention.
// ---------------------------------------------------------------------

TEST(MetricNameTest, AcceptsConformingNames) {
  using obs::MetricKind;
  EXPECT_EQ(obs::CheckMetricName("tpart_committed_total",
                                 MetricKind::kCounter),
            "");
  EXPECT_EQ(obs::CheckMetricName("tpart_pipeline_admit_to_commit_us",
                                 MetricKind::kHistogram),
            "");
  EXPECT_EQ(obs::CheckMetricName("tpart_failover_detection_latency_us",
                                 MetricKind::kGauge),
            "");
  EXPECT_EQ(
      obs::CheckMetricName("tpart_live_tgraph_size", MetricKind::kGauge), "");
  EXPECT_EQ(obs::CheckMetricName("tpart_live_distributed_ratio",
                                 MetricKind::kGauge),
            "");
  EXPECT_EQ(obs::CheckMetricName("tpart_checkpoint_last_epoch",
                                 MetricKind::kGauge),
            "");
  EXPECT_EQ(
      obs::CheckMetricName("tpart_live_term_index", MetricKind::kGauge), "");
}

TEST(MetricNameTest, RejectsNonConformingNames) {
  using obs::MetricKind;
  // Wrong prefix.
  EXPECT_NE(obs::CheckMetricName("committed_total", MetricKind::kCounter),
            "");
  // Illegal characters and underscore abuse.
  EXPECT_NE(obs::CheckMetricName("tpart_Committed_total",
                                 MetricKind::kCounter),
            "");
  EXPECT_NE(obs::CheckMetricName("tpart__double_total", MetricKind::kCounter),
            "");
  EXPECT_NE(obs::CheckMetricName("tpart_trailing_", MetricKind::kGauge), "");
  // Counter without _total.
  EXPECT_NE(obs::CheckMetricName("tpart_committed", MetricKind::kCounter),
            "");
  // Histogram without a measurement unit.
  EXPECT_NE(obs::CheckMetricName("tpart_latency", MetricKind::kHistogram),
            "");
  // Gauge masquerading as a counter, and gauge without a unit token.
  EXPECT_NE(obs::CheckMetricName("tpart_queue_total", MetricKind::kGauge),
            "");
  EXPECT_NE(obs::CheckMetricName("tpart_queue_peak", MetricKind::kGauge), "");
}

// The audit: publish every stats struct — all fields nonzero so no
// publish path is skipped — and validate every registered (name, kind)
// against the convention.
TEST(MetricNameTest, EveryPublishedMetricNameConforms) {
  RunStats stats;
  stats.txns = 100;
  stats.committed = 90;
  stats.aborted = 10;
  stats.makespan = 1'000'000;
  stats.latency.Add(12.0);
  stats.latency_us.Add(12);
  stats.network_stalled_txns = 5;
  stats.stall_wait.Add(7.0);
  stats.distributed_txns = 40;
  stats.scheduling_seconds = 0.25;
  stats.pushes_eliminated = 11;
  stats.max_tgraph_size = 64;
  stats.sticky_hits = 3;

  TransportStats& t = stats.transport;
  t.messages_sent = t.messages_delivered = 10;
  t.batches_sent = 2;
  t.batched_messages = 8;
  t.bytes_out = t.bytes_in = 4096;
  t.packets_out = t.packets_in = 12;
  t.acks_sent = 12;
  t.retries = 1;
  t.duplicates_dropped = 1;
  t.faults_dropped = t.faults_duplicated = t.faults_delayed = 1;
  t.backpressure_waits = 1;
  t.queue_high_water = 6;

  PipelineStats& p = stats.pipeline;
  p.admitted = 100;
  p.dummies = 4;
  p.batches = 10;
  p.plans = 10;
  p.backpressure_waits = 2;
  p.batch_queue_high_water = 3;
  p.plan_queue_high_water = 3;
  p.epoch_queue_high_water = 3;
  p.machine_inbound_high_water = 5;
  p.machine_inbound_spills = 1;
  p.admission_seconds = 0.5;
  p.admit_to_commit_us.Add(120);

  RecoveryStats& r = stats.recovery;
  r.crashes_injected = 1;
  r.crashed_machine = 1;
  r.crash_epoch = 3;
  r.detection_latency_us = 900;
  r.replayed_txns = 40;
  r.resent_rounds = 2;
  r.checkpoint_records = 200;
  r.downtime_us = 2500;

  FailoverStats& f = stats.failover;
  f.coordinator_crashes = 1;
  f.elections_won = 1;
  f.log_appends = 20;
  f.log_acks = 20;
  f.committed_batches = 10;
  f.replayed_batches = 10;
  f.catchup_rounds = 4;
  f.reshipped_rounds = 2;
  f.dueling_claims = 1;
  f.detection_latency_us = 800;
  f.election_us = 300;
  f.replan_us = 1500;
  f.plan_stream_gap_us = 2600;
  f.leader = 1;
  f.phase_detection_us.Add(800);
  f.phase_election_us.Add(300);
  f.phase_replan_us.Add(1500);
  f.phase_plan_stream_gap_us.Add(2600);

  CheckpointStats& c = stats.checkpoint;
  c.checkpoints_taken = 3;
  c.last_epoch = 9;
  c.records_captured = 600;
  c.truncated_request_entries = 100;
  c.truncated_network_messages = 50;
  c.pruned_resend_rounds = 6;
  c.capture_us = 1200;
  c.request_log_bytes_peak = 8192;
  c.network_log_bytes_peak = 4096;
  c.resend_window_bytes_peak = 2048;

  MigrationStats& m = stats.migration;
  m.membership_steps = 2;
  m.routes = 4;
  m.keys_moved = 300;
  m.records_moved = 280;
  m.bytes_shipped = 16384;
  m.chunks_shipped = 8;
  m.duplicate_chunks_dropped = 1;
  m.forced_checkpoints = 2;
  m.barrier_us = 2200;
  m.phase_barrier_us.Add(1100);
  m.phase_barrier_us.Add(1100);
  m.last_cut_epoch = 12;

  obs::MetricsRegistry registry;
  stats.PublishTo(registry);
  ASSERT_GT(registry.size(), 0u);

  std::size_t audited = 0;
  registry.ForEach([&](const std::string& name, obs::MetricKind kind) {
    ++audited;
    const std::string why = obs::CheckMetricName(name, kind);
    EXPECT_TRUE(why.empty()) << name << ": " << why;
  });
  // Every struct published: well over the core RunStats entries alone.
  EXPECT_GE(audited, 60u);
}

// ---------------------------------------------------------------------
// LiveSampler.
// ---------------------------------------------------------------------

TEST(LiveSamplerTest, WallDomainSamplesPeriodically) {
  obs::LiveSampler sampler(obs::LiveSampler::Domain::kWall);
  int calls = 0;
  sampler.set_source([&](obs::LiveSampler::Sample& s) {
    ++calls;
    s.emplace_back("tpart_live_committed_total", 10.0 * calls);
    s.emplace_back("tpart_live_tgraph_size", 5.0);
  });
  sampler.StartWall(/*interval_us=*/1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.StopWall();  // takes one final sample
  sampler.ClearSource();

  EXPECT_GE(sampler.samples(), 1u);
  EXPECT_EQ(sampler.samples(), static_cast<std::size_t>(calls));
  EXPECT_EQ(sampler.Latest("tpart_live_tgraph_size"), 5.0);
  EXPECT_EQ(sampler.Latest("tpart_live_committed_total"), 10.0 * calls);
  EXPECT_EQ(sampler.Latest("tpart_live_absent_size"), 0.0);

  const std::string jsonl = sampler.Jsonl();
  EXPECT_NE(jsonl.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_us\":"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"epoch\":"), std::string::npos);

  const std::string prom = sampler.PrometheusText();
  EXPECT_NE(prom.find("# TYPE tpart_live_tgraph_size gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("tpart_live_tgraph_size 5"), std::string::npos);
}

TEST(LiveSamplerTest, EpochDomainHonorsCadenceAndDedup) {
  obs::LiveSampler sampler(obs::LiveSampler::Domain::kEpoch);
  sampler.set_epoch_every(2);
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    obs::LiveSampler::Sample s;
    s.emplace_back("tpart_live_plans_total", static_cast<double>(epoch));
    sampler.SampleEpoch(epoch, s);
    sampler.SampleEpoch(epoch, s);  // duplicate tick: must not resample
  }
  // Epochs 2, 4, 6 on cadence, each once.
  EXPECT_EQ(sampler.samples(), 3u);
  EXPECT_EQ(sampler.Latest("tpart_live_plans_total"), 6.0);
  const std::string jsonl = sampler.Jsonl();
  EXPECT_NE(jsonl.find("{\"seq\":0,\"epoch\":2,"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"seq\":2,\"epoch\":6,"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"ts_us\":"), std::string::npos);
}

TEST(LiveSamplerTest, EpochDomainIsDeterministicAndSortsKeys) {
  auto run = [] {
    obs::LiveSampler sampler(obs::LiveSampler::Domain::kEpoch);
    for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
      obs::LiveSampler::Sample s;
      // Deliberately unsorted: the renderer must sort by name.
      s.emplace_back("tpart_live_tgraph_size", 7.0);
      s.emplace_back("tpart_live_committed_total",
                     static_cast<double>(100 * epoch));
      s.emplace_back("tpart_live_distributed_ratio", 0.25);
      sampler.SampleEpoch(epoch, s);
    }
    return sampler.Jsonl();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(
      a.find("{\"seq\":0,\"epoch\":1,\"tpart_live_committed_total\":100,"
             "\"tpart_live_distributed_ratio\":0.25,"
             "\"tpart_live_tgraph_size\":7}"),
      std::string::npos)
      << a;
}

TEST(LiveSamplerTest, WriteJsonlRoundTrips) {
  obs::LiveSampler sampler(obs::LiveSampler::Domain::kEpoch);
  obs::LiveSampler::Sample s;
  s.emplace_back("tpart_live_committed_total", 42.0);
  sampler.SampleEpoch(1, s);

  const std::string path = ::testing::TempDir() + "live_obs_stream.jsonl";
  ASSERT_TRUE(sampler.WriteJsonl(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), sampler.Jsonl());
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndDumpsChromeTracePostmortem) {
  obs::FlightRecorder rec;
  rec.Record(obs::FlightEvent::kAdmitBatch, 0, 1, 100);
  rec.Record(obs::FlightEvent::kScheduleRound, 0, 1, 20);
  std::thread t([&] {
    rec.Record(obs::FlightEvent::kExecute, 2, 7, 1);
    rec.Record(obs::FlightEvent::kCrashStop, 2, 1, 3);
  });
  t.join();
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dumps(), 0u);

  ASSERT_TRUE(rec.DumpPostmortem("crash").ok());
  EXPECT_EQ(rec.dumps(), 1u);
  const std::string json = rec.last_dump_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"admit_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"schedule_round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crash_stop\""), std::string::npos);
  // The dump marker and the reason-carrying post-mortem event close the
  // trace, in that order.
  const std::size_t dump_at = json.find("\"name\":\"postmortem_dump\"");
  const std::size_t reason_at = json.find("\"reason\":\"crash\"");
  ASSERT_NE(dump_at, std::string::npos);
  ASSERT_NE(reason_at, std::string::npos);
  EXPECT_LT(dump_at, reason_at);
}

TEST(FlightRecorderTest, BoundedRingOverwritesOldest) {
  obs::FlightRecorder::Options o;
  o.ring_size = 16;  // the enforced minimum
  obs::FlightRecorder rec(o);
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.Record(obs::FlightEvent::kExecute, 1, /*txn=*/i, /*epoch=*/1);
  }
  EXPECT_EQ(rec.recorded(), 100u);
  const std::string json = rec.DumpJson();
  // Only the newest 16 survive: txn 84..99.
  EXPECT_EQ(json.find("\"a\":83,"), std::string::npos);
  EXPECT_NE(json.find("\"a\":84,"), std::string::npos);
  EXPECT_NE(json.find("\"a\":99,"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesFileAndGlobalInstallWorks) {
  const std::string path = ::testing::TempDir() + "live_obs_postmortem.json";
  obs::FlightRecorder::Options o;
  o.dump_path = path;
  obs::FlightRecorder rec(o);
  EXPECT_EQ(obs::InstallGlobalFlightRecorder(&rec), nullptr);
  EXPECT_EQ(obs::GlobalFlightRecorder(), &rec);

#if !defined(TPART_TRACING_DISABLED)
  TPART_FLIGHT(obs::FlightEvent::kStall, 1, 1, 0);
  TPART_FLIGHT_DUMP("stall");
  EXPECT_EQ(rec.recorded(), 2u);  // kStall + the kDump marker
  EXPECT_EQ(rec.dumps(), 1u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_EQ(text, rec.last_dump_json());
  EXPECT_NE(text.find("\"name\":\"stall\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"stall\""), std::string::npos);
#else
  // Macros compile to nothing; the recorder itself still works directly.
  TPART_FLIGHT(obs::FlightEvent::kStall, 1, 1, 0);
  TPART_FLIGHT_DUMP("stall");
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dumps(), 0u);
#endif

  EXPECT_EQ(obs::InstallGlobalFlightRecorder(nullptr), &rec);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, EscapesReasonAndDropsGarbledSlots) {
  obs::FlightRecorder rec;
  rec.Record(obs::FlightEvent::kExecute, 1, 1, 1);
  const std::string json = rec.DumpJson("line1\nline2 \"quoted\"");
  EXPECT_NE(json.find("line1\\nline2 \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(obs::FlightEventName(static_cast<obs::FlightEvent>(0)), nullptr);
  EXPECT_EQ(obs::FlightEventName(static_cast<obs::FlightEvent>(9999)),
            nullptr);
}

// ---------------------------------------------------------------------
// /metrics endpoint.
// ---------------------------------------------------------------------

std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(MetricsHttpTest, ServesMetricsAndHealthOnLoopback) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server
                  .Start(/*port=*/0,
                         [] {
                           return std::string(
                               "tpart_live_committed_total 42\n");
                         })
                  .ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("tpart_live_committed_total 42"), std::string::npos)
      << metrics;

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos) << health;

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.Stop();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------
// Trace context.
// ---------------------------------------------------------------------

TEST(TraceContextTest, PacksAndUnpacksLosslessly) {
  EXPECT_FALSE(obs::TraceCtxSampled(0));
  const std::uint64_t ctx = obs::PackTraceCtx(/*origin_machine=*/11,
                                              /*term=*/5);
  EXPECT_TRUE(obs::TraceCtxSampled(ctx));
  EXPECT_EQ(obs::TraceCtxOrigin(ctx), 11u);
  EXPECT_EQ(obs::TraceCtxTerm(ctx), 5u);
  // Term 0 (no failover yet) still marks the context sampled.
  const std::uint64_t base = obs::PackTraceCtx(0, 0);
  EXPECT_TRUE(obs::TraceCtxSampled(base));
  EXPECT_EQ(obs::TraceCtxOrigin(base), 0u);
  EXPECT_EQ(obs::TraceCtxTerm(base), 0u);
}

TEST(TraceContextTest, SampledTxnStrideIsDeterministic) {
  EXPECT_FALSE(obs::SampledTxn(4, 0));  // 0 disables sampling
  EXPECT_TRUE(obs::SampledTxn(4, 1));
  EXPECT_TRUE(obs::SampledTxn(0, 8));
  EXPECT_TRUE(obs::SampledTxn(16, 8));
  EXPECT_FALSE(obs::SampledTxn(17, 8));
}

// ---------------------------------------------------------------------
// End to end: streaming run with the sampler armed and per-transaction
// timelines sampled.
// ---------------------------------------------------------------------

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 405;
  return o;
}

TEST(LiveObsClusterTest, StreamingRunFeedsEpochSamplerWithValidNames) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  obs::LiveSampler sampler(obs::LiveSampler::Domain::kEpoch);

  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = TransportKind::kDirect;
  opts.streaming = true;
  opts.live_sampler = &sampler;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  ASSERT_TRUE(out.fault.ok()) << out.fault.ToString();

  // One line per fresh sink epoch.
  EXPECT_EQ(sampler.samples(), out.pipeline.plans);
  EXPECT_GT(sampler.Latest("tpart_live_plans_total"), 0.0);
  EXPECT_GT(sampler.Latest("tpart_live_committed_total"), 0.0);

  // Every streamed key obeys the naming convention (counter or gauge,
  // told apart by the _total suffix).
  const std::string jsonl = sampler.Jsonl();
  std::size_t at = 0;
  std::size_t keys = 0;
  while ((at = jsonl.find("\"tpart_", at)) != std::string::npos) {
    const std::size_t end = jsonl.find('"', at + 1);
    ASSERT_NE(end, std::string::npos);
    const std::string name = jsonl.substr(at + 1, end - at - 1);
    EXPECT_TRUE(
        obs::IsValidMetricName(name, obs::MetricKind::kCounter) ||
        obs::IsValidMetricName(name, obs::MetricKind::kGauge))
        << name;
    ++keys;
    at = end;
  }
  EXPECT_GT(keys, 0u);
}

TEST(LiveObsClusterTest, TxnSamplingStitchesTimelinesAcrossMachines) {
#if defined(TPART_TRACING_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (TPART_DISABLE_TRACING)";
#endif
  const Workload w = MakeMicroWorkload(SmallMicro());
  obs::TraceRecorder rec;
  obs::InstallGlobalTrace(&rec);

  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = TransportKind::kDirect;
  opts.streaming = true;
  opts.txn_sample = 8;  // every 8th txn gets a causal timeline
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  obs::InstallGlobalTrace(nullptr);
  ASSERT_TRUE(out.fault.ok()) << out.fault.ToString();

  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"admitted\""), std::string::npos)
      << "sampled txns must emit an admission timeline event";
  EXPECT_NE(json.find("\"round_received\""), std::string::npos)
      << "receiving machines must extend the sampled timeline";
  EXPECT_NE(json.find("\"executed\""), std::string::npos)
      << "execution must close the sampled timeline";
  EXPECT_NE(json.find("\"timeline\""), std::string::npos);
}

}  // namespace
}  // namespace tpart
