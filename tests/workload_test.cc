#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"
#include "workload/workload.h"

namespace tpart {
namespace {

// ---- Microbenchmark (§6.3, Table 1) ----------------------------------------

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 4;
  o.records_per_machine = 1000;
  o.hot_set_size = 100;
  o.num_txns = 2000;
  return o;
}

TEST(MicroTest, RecordsPerTxnAndWriteCounts) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  ASSERT_EQ(w.requests.size(), 2000u);
  std::size_t rw_txns = 0;
  for (const auto& spec : w.requests) {
    EXPECT_EQ(spec.rw.reads.size(), 10u);
    EXPECT_TRUE(spec.rw.writes.empty() || spec.rw.writes.size() == 5u);
    if (!spec.rw.writes.empty()) {
      ++rw_txns;
      for (const ObjectKey k : spec.rw.writes) {
        EXPECT_TRUE(spec.rw.ReadsKey(k));  // writes drawn from the reads
      }
    }
  }
  EXPECT_NEAR(rw_txns / 2000.0, 0.5, 0.05);  // read-write rate
}

TEST(MicroTest, DistributedRateMatchesParameter) {
  MicroOptions o = SmallMicro();
  o.distributed_rate = 0.3;
  const Workload w = MakeMicroWorkload(o);
  EXPECT_NEAR(MeasureDistributedRate(w.requests, *w.partition_map), 0.3,
              0.05);
}

TEST(MicroTest, FullyLocalWhenDistributedRateZero) {
  MicroOptions o = SmallMicro();
  o.distributed_rate = 0.0;
  const Workload w = MakeMicroWorkload(o);
  EXPECT_DOUBLE_EQ(MeasureDistributedRate(w.requests, *w.partition_map),
                   0.0);
}

TEST(MicroTest, EveryTxnTouchesExactlyOneHotRecord) {
  MicroOptions o = SmallMicro();
  const Workload w = MakeMicroWorkload(o);
  for (const auto& spec : w.requests) {
    int hot = 0;
    for (const ObjectKey k : spec.rw.reads) {
      if (PrimaryKeyOf(k) % o.records_per_machine < o.hot_set_size) ++hot;
    }
    EXPECT_EQ(hot, 1);
  }
}

TEST(MicroTest, SkewTargetsFirstFifthOfMachines) {
  MicroOptions o = SmallMicro();
  o.num_machines = 10;
  o.skewed_rate = 1.0;
  o.distributed_rate = 1.0;
  o.num_txns = 4000;
  const Workload w = MakeMicroWorkload(o);
  std::unordered_map<MachineId, int> remote_hits;
  for (const auto& spec : w.requests) {
    for (const ObjectKey k : spec.rw.reads) {
      remote_hits[w.partition_map->Locate(k)]++;
    }
  }
  // Machines 0 and 1 (the first fifth of 10) should see the most traffic.
  EXPECT_GT(remote_hits[0] + remote_hits[1], remote_hits[5] * 2);
}

TEST(MicroTest, DeterministicForSeed) {
  const Workload a = MakeMicroWorkload(SmallMicro());
  const Workload b = MakeMicroWorkload(SmallMicro());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_TRUE(a.requests[i].rw == b.requests[i].rw);
    EXPECT_EQ(a.requests[i].params, b.requests[i].params);
  }
}

TEST(MicroTest, LoaderPopulatesAllPartitions) {
  MicroOptions o = SmallMicro();
  o.num_txns = 1;
  const Workload w = MakeMicroWorkload(o);
  PartitionedStore store(o.num_machines, w.partition_map);
  w.loader(store);
  EXPECT_EQ(store.TotalRecords(),
            o.num_machines * o.records_per_machine);
  for (std::size_t m = 0; m < o.num_machines; ++m) {
    EXPECT_EQ(store.store(static_cast<MachineId>(m)).size(),
              o.records_per_machine);
  }
}

// ---- TPC-C (§6.1.1) ---------------------------------------------------------

TpccOptions SmallTpcc() {
  TpccOptions o;
  o.num_machines = 4;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 30;
  o.num_items = 200;
  o.num_txns = 3000;
  return o;
}

TEST(TpccTest, MostNewOrdersAreSingleWarehouse) {
  const Workload w = MakeTpccWorkload(SmallTpcc());
  // "each transaction has only 10% probability to access the data in more
  // than one warehouse" — with 1% remote items and ~10 lines, the
  // multi-warehouse rate sits near 10%.
  const double rate = MeasureDistributedRate(w.requests, *w.partition_map);
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.25);
}

TEST(TpccTest, OrderIdsAreDensePerDistrictForCommits) {
  const Workload w = MakeTpccWorkload(SmallTpcc());
  std::unordered_map<std::uint64_t, std::uint64_t> last_oid;
  for (const auto& spec : w.requests) {
    if (spec.proc != kTpccNewOrder) continue;
    const bool aborts = spec.params[4] != 0;
    const std::uint64_t district =
        static_cast<std::uint64_t>(spec.params[0]) * 10 +
        static_cast<std::uint64_t>(spec.params[1]);
    const auto o_id = static_cast<std::uint64_t>(spec.params[3]);
    if (aborts) {
      EXPECT_EQ(o_id, last_oid[district] + 1);  // id reused by next commit
    } else {
      EXPECT_EQ(o_id, last_oid[district] + 1);
      last_oid[district] = o_id;
    }
  }
}

TEST(TpccTest, NewOrderWriteSetsDeclareInserts) {
  const Workload w = MakeTpccWorkload(SmallTpcc());
  for (const auto& spec : w.requests) {
    if (spec.proc != kTpccNewOrder) continue;
    const auto ol_cnt = static_cast<std::size_t>(spec.params[5]);
    // district + order + new_order + ol_cnt order lines + up to ol_cnt
    // stocks (duplicate items collapse to one stock key).
    EXPECT_LE(spec.rw.writes.size(), 3 + 2 * ol_cnt);
    EXPECT_GE(spec.rw.writes.size(), 3 + ol_cnt + 1);
    EXPECT_GE(ol_cnt, 5u);
    EXPECT_LE(ol_cnt, 15u);
  }
}

TEST(TpccTest, WarehousePartitioningIsTableAware) {
  const Workload w = MakeTpccWorkload(SmallTpcc());
  // Every key of warehouse 2's schema lands on machine 2 % 4.
  for (const auto& spec : w.requests) {
    if (spec.params[0] != 2 || spec.proc != kTpccPayment) continue;
    if (spec.params[2] != 2) continue;  // local payment only
    for (const ObjectKey k : spec.rw.AllKeys()) {
      EXPECT_EQ(w.partition_map->Locate(k), 2u);
    }
  }
}

TEST(TpccTest, FullMixContainsAllFiveTransactionTypes) {
  TpccOptions o = SmallTpcc();
  o.num_txns = 8000;
  const Workload w = MakeTpccWorkload(o);
  std::unordered_map<ProcId, int> mix;
  for (const auto& spec : w.requests) mix[spec.proc]++;
  EXPECT_GT(mix[kTpccNewOrder], 0);
  EXPECT_GT(mix[kTpccPayment], 0);
  EXPECT_GT(mix[kTpccDelivery], 0);
  EXPECT_GT(mix[kTpccOrderStatus], 0);
  EXPECT_GT(mix[kTpccStockLevel], 0);
  EXPECT_NEAR(mix[kTpccNewOrder] / 8000.0, 0.45, 0.05);
}

TEST(TpccTest, DeliveriesTargetCommittedOrdersExactlyOnce) {
  TpccOptions o = SmallTpcc();
  o.num_txns = 8000;
  o.delivery_fraction = 0.2;  // force plenty of deliveries
  const Workload w = MakeTpccWorkload(o);
  std::set<std::pair<std::int64_t, std::int64_t>> committed_orders;
  std::set<std::pair<std::int64_t, std::int64_t>> delivered;
  for (const auto& spec : w.requests) {
    if (spec.proc == kTpccNewOrder && spec.params[4] == 0) {
      committed_orders.insert(
          {spec.params[0] * 10 + spec.params[1], spec.params[3]});
    } else if (spec.proc == kTpccDelivery) {
      const auto key = std::make_pair(
          spec.params[0] * 10 + spec.params[1], spec.params[2]);
      EXPECT_TRUE(committed_orders.count(key))
          << "delivery of unknown/aborted order";
      EXPECT_TRUE(delivered.insert(key).second)
          << "order delivered twice";
    }
  }
  EXPECT_GT(delivered.size(), 100u);
}

TEST(TpccTest, StockLevelReadsAreWellFormed) {
  TpccOptions o = SmallTpcc();
  o.num_txns = 6000;
  o.stock_level_fraction = 0.2;
  const Workload w = MakeTpccWorkload(o);
  int stock_levels = 0;
  for (const auto& spec : w.requests) {
    if (spec.proc != kTpccStockLevel) continue;
    ++stock_levels;
    EXPECT_TRUE(spec.rw.writes.empty());  // read-only
    const auto n_orders = static_cast<std::size_t>(spec.params[3]);
    EXPECT_GE(n_orders, 1u);
    EXPECT_LE(n_orders, 4u);
    EXPECT_GE(spec.rw.reads.size(), 1 + n_orders);  // district + lines
  }
  EXPECT_GT(stock_levels, 100);
}

TEST(TpccTest, AbortRateNearOnePercent) {
  TpccOptions o = SmallTpcc();
  o.num_txns = 20000;
  o.new_order_fraction = 1.0;
  const Workload w = MakeTpccWorkload(o);
  std::size_t aborts = 0;
  for (const auto& spec : w.requests) {
    if (spec.params[4] != 0) ++aborts;
  }
  EXPECT_NEAR(aborts / 20000.0, 0.01, 0.005);
}

// ---- TPC-E-like (§6.1.2) ----------------------------------------------------

TpceOptions SmallTpce() {
  TpceOptions o;
  o.num_machines = 4;
  o.customers_per_machine = 200;
  o.securities_per_machine = 100;
  o.num_txns = 3000;
  return o;
}

TEST(TpceTest, AlmostAllTxnsAreDistributed) {
  const Workload w = MakeTpceWorkload(SmallTpce());
  // "Normally, almost all transactions of TPC-E are distributed."
  EXPECT_GT(MeasureDistributedRate(w.requests, *w.partition_map), 0.9);
}

TEST(TpceTest, CustomerAccessIsSkewed) {
  const Workload w = MakeTpceWorkload(SmallTpce());
  std::unordered_map<std::int64_t, int> customer_hits;
  int orders = 0;
  for (const auto& spec : w.requests) {
    if (spec.proc != kTpceTradeOrder) continue;
    ++orders;
    customer_hits[spec.params[0]]++;
  }
  // The most popular customer gets far more than the uniform share.
  int top = 0;
  for (const auto& [c, n] : customer_hits) top = std::max(top, n);
  EXPECT_GT(top, 8 * orders / 800);
}

TEST(TpceTest, TradeResultsReferenceEarlierOrders) {
  const Workload w = MakeTpceWorkload(SmallTpce());
  std::set<std::int64_t> ordered;
  for (const auto& spec : w.requests) {
    if (spec.proc == kTpceTradeOrder) {
      ordered.insert(spec.params[4]);
    } else {
      ASSERT_EQ(spec.proc, kTpceTradeResult);
      EXPECT_TRUE(ordered.count(spec.params[0]) > 0)
          << "result for unordered trade";
    }
  }
}

TEST(TpceTest, LoaderPopulatesAllTables) {
  TpceOptions o = SmallTpce();
  o.num_txns = 1;
  const Workload w = MakeTpceWorkload(o);
  PartitionedStore store(o.num_machines, w.partition_map);
  w.loader(store);
  const std::uint64_t customers = 4 * 200;
  // customers + accounts + brokers (1 per 50 customers) + securities +
  // last_trades.
  EXPECT_EQ(store.TotalRecords(),
            customers + customers * 2 + customers / 50 + 400 + 400);
}

}  // namespace
}  // namespace tpart
