#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/random.h"
#include "storage/zigzag_checkpoint.h"

namespace tpart {
namespace {

TEST(ZigZagTest, PutGetDelete) {
  ZigZagCheckpointStore store;
  EXPECT_TRUE(store.Get(1).is_absent());
  store.Put(1, Record{10});
  EXPECT_EQ(store.Get(1).field(0), 10);
  store.Put(1, Record{20});
  EXPECT_EQ(store.Get(1).field(0), 20);
  EXPECT_EQ(store.size(), 1u);
  store.Delete(1);
  EXPECT_TRUE(store.Get(1).is_absent());
  EXPECT_EQ(store.size(), 0u);
}

TEST(ZigZagTest, CheckpointCapturesCurrentState) {
  ZigZagCheckpointStore store;
  for (ObjectKey k = 0; k < 10; ++k) store.Put(k, Record{(long)k});
  std::map<ObjectKey, std::int64_t> snap;
  EXPECT_EQ(store.Checkpoint([&](ObjectKey k, const Record& r) {
              snap[k] = r.field(0);
            }),
            10u);
  EXPECT_EQ(snap.size(), 10u);
  for (ObjectKey k = 0; k < 10; ++k) EXPECT_EQ(snap[k], (long)k);
  EXPECT_EQ(store.rounds(), 1u);
}

TEST(ZigZagTest, WritesDuringCheckpointDoNotTearSnapshot) {
  // Interleave: freeze, write new values, finish the scan — the scan must
  // see the pre-freeze values; reads must see the new ones.
  ZigZagCheckpointStore store;
  for (ObjectKey k = 0; k < 100; ++k) store.Put(k, Record{1});

  std::map<ObjectKey, std::int64_t> snap;
  bool mutated = false;
  store.Checkpoint([&](ObjectKey k, const Record& r) {
    if (!mutated) {
      // Mutate *every* key mid-scan, once.
      for (ObjectKey j = 0; j < 100; ++j) store.Put(j, Record{2});
      mutated = true;
    }
    snap[k] = r.field(0);
  });
  for (const auto& [k, v] : snap) {
    EXPECT_EQ(v, 1) << "snapshot tore at key " << k;
  }
  for (ObjectKey k = 0; k < 100; ++k) {
    EXPECT_EQ(store.Get(k).field(0), 2);
  }
}

TEST(ZigZagTest, SecondRoundSeesNewValues) {
  ZigZagCheckpointStore store;
  store.Put(1, Record{1});
  store.Checkpoint([](ObjectKey, const Record&) {});
  store.Put(1, Record{2});
  std::int64_t got = 0;
  store.Checkpoint([&](ObjectKey, const Record& r) { got = r.field(0); });
  EXPECT_EQ(got, 2);
  EXPECT_EQ(store.rounds(), 2u);
}

TEST(ZigZagTest, DeletedKeysAbsentFromLaterCheckpoints) {
  ZigZagCheckpointStore store;
  store.Put(1, Record{1});
  store.Put(2, Record{2});
  store.Delete(1);
  std::size_t captured = store.Checkpoint([](ObjectKey, const Record&) {});
  EXPECT_EQ(captured, 1u);
}

TEST(ZigZagTest, ConcurrentMutatorAndCheckpointer) {
  ZigZagCheckpointStore store;
  constexpr ObjectKey kKeys = 64;
  for (ObjectKey k = 0; k < kKeys; ++k) store.Put(k, Record{0});

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Rng rng(1);
    std::int64_t v = 1;
    while (!stop.load()) {
      store.Put(rng.NextBelow(kKeys), Record{v++});
    }
  });

  for (int round = 0; round < 50; ++round) {
    std::map<ObjectKey, std::int64_t> snap;
    store.Checkpoint(
        [&](ObjectKey k, const Record& r) { snap[k] = r.field(0); });
    EXPECT_EQ(snap.size(), kKeys);  // no key lost or duplicated
  }
  stop = true;
  mutator.join();
  EXPECT_EQ(store.rounds(), 50u);
}

}  // namespace
}  // namespace tpart
