#include <gtest/gtest.h>

#include <thread>

#include "cache/cache_area.h"

namespace tpart {
namespace {

TEST(CacheAreaTest, VersionEntryIsConsumedByItsReader) {
  CacheArea cache;
  cache.PutVersion(1, 10, 20, Record{42});
  EXPECT_TRUE(cache.HasVersion(1, 10, 20));
  auto v = cache.AwaitVersion(1, 10, 20);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->field(0), 42);
  EXPECT_FALSE(cache.HasVersion(1, 10, 20));  // invalidated on read (§5.2)
  EXPECT_EQ(cache.num_version_entries(), 0u);
}

TEST(CacheAreaTest, VersionEntriesAreKeyedByTriple) {
  CacheArea cache;
  cache.PutVersion(1, 10, 20, Record{1});
  cache.PutVersion(1, 10, 21, Record{2});
  cache.PutVersion(1, 11, 20, Record{3});
  EXPECT_EQ(cache.num_version_entries(), 3u);
  EXPECT_EQ(cache.AwaitVersion(1, 10, 21)->field(0), 2);
  EXPECT_EQ(cache.num_version_entries(), 2u);
}

TEST(CacheAreaTest, AwaitBlocksUntilPut) {
  CacheArea cache;
  std::optional<Record> got;
  std::thread reader([&] { got = cache.AwaitVersion(5, 1, 2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.PutVersion(5, 1, 2, Record{9});
  reader.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->field(0), 9);
}

TEST(CacheAreaTest, EpochEntryServesMultipleReadersThenFrees) {
  CacheArea cache;
  cache.PublishEpochEntry(1, 10, 3, Record{7});
  // Two readers; the second announces the total and frees the entry.
  auto v1 = cache.AwaitEpochEntry(1, 10, /*invalidate=*/false, 0);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(cache.num_epoch_entries(), 1u);
  auto v2 = cache.AwaitEpochEntry(1, 10, /*invalidate=*/true, 2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(cache.num_epoch_entries(), 0u);
}

TEST(CacheAreaTest, InvalidatingReadMayArriveBeforeOthers) {
  // The invalidater announces total=3 but only 1 read has been served;
  // the entry must survive until the remaining reads arrive.
  CacheArea cache;
  cache.PublishEpochEntry(1, 10, 3, Record{7});
  ASSERT_TRUE(cache.AwaitEpochEntry(1, 10, true, 3).has_value());
  EXPECT_EQ(cache.num_epoch_entries(), 1u);
  ASSERT_TRUE(cache.AwaitEpochEntry(1, 10, false, 0).has_value());
  EXPECT_EQ(cache.num_epoch_entries(), 1u);
  ASSERT_TRUE(cache.TryEpochEntry(1, 10, false, 0).has_value());
  EXPECT_EQ(cache.num_epoch_entries(), 0u);
}

TEST(CacheAreaTest, TryEpochEntryNonBlocking) {
  CacheArea cache;
  EXPECT_FALSE(cache.TryEpochEntry(1, 10, false, 0).has_value());
  cache.PublishEpochEntry(1, 10, 1, Record{5});
  EXPECT_TRUE(cache.TryEpochEntry(1, 10, false, 0).has_value());
}

TEST(CacheAreaTest, StickyEntriesVersionCheckedAndExpiring) {
  CacheArea cache;
  cache.PutSticky(1, /*version=*/10, Record{3}, /*expire_epoch=*/5);
  EXPECT_TRUE(cache.ReadSticky(1, 10, 4).has_value());
  EXPECT_TRUE(cache.ReadSticky(1, 10, 5).has_value());
  EXPECT_FALSE(cache.ReadSticky(1, 11, 4).has_value());  // wrong version
  EXPECT_FALSE(cache.ReadSticky(1, 10, 6).has_value());  // expired
  EXPECT_EQ(cache.sticky_hits(), 2u);
  cache.EvictExpiredSticky(6);
  EXPECT_EQ(cache.num_sticky_entries(), 0u);
}

TEST(CacheAreaTest, ShutdownReleasesWaiters) {
  CacheArea cache;
  std::optional<Record> got = Record{1};
  std::thread reader([&] { got = cache.AwaitVersion(9, 9, 9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.Shutdown();
  reader.join();
  EXPECT_FALSE(got.has_value());
}

TEST(CacheAreaTest, PeakEntriesTracksHighWaterMark) {
  CacheArea cache;
  cache.PutVersion(1, 1, 2, Record{});
  cache.PutVersion(2, 1, 2, Record{});
  cache.AwaitVersion(1, 1, 2);
  cache.AwaitVersion(2, 1, 2);
  cache.PutVersion(3, 1, 2, Record{});
  EXPECT_EQ(cache.peak_entries(), 2u);
}

}  // namespace
}  // namespace tpart
