// Parameterised property sweeps: for randomised workloads across a grid
// of engine configurations, the T-Part runtime must (a) agree with the
// serial reference on final state and outputs, and (b) produce identical
// plans from independent schedulers.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "runtime/recovery.h"
#include "scheduler/tpart_scheduler.h"
#include "test_time.h"
#include "workload/micro.h"

namespace tpart {
namespace {

// (machines, sink_size, distributed_rate, optimize_plans, seed)
using Config = std::tuple<int, int, double, bool, int>;

class EngineEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(EngineEquivalence, TPartMatchesSerial) {
  const auto [machines, sink_size, dist_rate, optimize, seed] = GetParam();
  MicroOptions o;
  o.num_machines = static_cast<std::size_t>(machines);
  o.records_per_machine = 120;
  o.hot_set_size = 12;
  o.num_txns = 250;
  o.distributed_rate = dist_rate;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  // Serial reference.
  auto map1 = std::make_shared<HashPartitionMap>(1);
  PartitionedStore serial_store(1, map1);
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) serial_store.Upsert(k, rec);
  auto serial = RunSerial(*w.procedures, w.SequencedRequests(),
                          serial_store.store(0));
  ASSERT_TRUE(serial.ok());

  LocalClusterOptions opts;
  opts.scheduler.sink_size = static_cast<std::size_t>(sink_size);
  opts.scheduler.optimize_plans = optimize;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome outcome = cluster.RunTPart();

  ASSERT_EQ(outcome.results.size(), serial->results.size());
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    ASSERT_EQ(outcome.results[i].output, serial->results[i].output)
        << "output diverged at T" << outcome.results[i].id;
  }
  EXPECT_EQ(cluster.store().Snapshot(), serial_store.Snapshot());
}

TEST_P(EngineEquivalence, IndependentSchedulersAgree) {
  const auto [machines, sink_size, dist_rate, optimize, seed] = GetParam();
  MicroOptions o;
  o.num_machines = static_cast<std::size_t>(machines);
  o.records_per_machine = 120;
  o.hot_set_size = 12;
  o.num_txns = 250;
  o.distributed_rate = dist_rate;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  TPartScheduler::Options sopts;
  sopts.sink_size = static_cast<std::size_t>(sink_size);
  sopts.optimize_plans = optimize;
  sopts.graph.num_machines = w.num_machines;
  sopts.graph.read_own_writes = true;
  TPartScheduler a(sopts, w.partition_map);
  TPartScheduler b(sopts, w.partition_map);
  std::vector<SinkPlan> pa, pb;
  for (const TxnSpec& spec : w.SequencedRequests()) {
    for (auto& p : a.OnTxn(spec)) pa.push_back(std::move(p));
    for (auto& p : b.OnTxn(spec)) pb.push_back(std::move(p));
  }
  for (auto& p : a.Drain()) pa.push_back(std::move(p));
  for (auto& p : b.Drain()) pb.push_back(std::move(p));
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(pa[i] == pb[i]) << "round " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalence,
    ::testing::Values(
        Config{2, 1, 1.0, true, 1}, Config{2, 5, 1.0, true, 2},
        Config{2, 25, 1.0, false, 3}, Config{3, 10, 0.5, true, 4},
        Config{3, 10, 0.0, true, 5}, Config{4, 7, 1.0, true, 6},
        Config{4, 40, 0.3, false, 7}, Config{5, 13, 0.8, true, 8}));

// Partition-balance property: for any stream, the weighted streaming
// partitioner keeps machine loads within a reasonable envelope.
class BalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BalanceProperty, LoadsStayBounded) {
  MicroOptions o;
  o.num_machines = 4;
  o.records_per_machine = 200;
  o.num_txns = 400;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const Workload w = MakeMicroWorkload(o);
  TPartScheduler::Options sopts;
  sopts.sink_size = 50;
  sopts.graph.num_machines = 4;
  TPartScheduler sched(sopts, w.partition_map);
  for (const TxnSpec& spec : w.SequencedRequests()) sched.OnTxn(spec);
  const auto loads = sched.graph().AssignedLoad();
  double total = 0;
  double mx = 0;
  for (const double l : loads) {
    total += l;
    mx = std::max(mx, l);
  }
  ASSERT_GT(total, 0.0);
  EXPECT_LT(mx, 0.6 * total);  // no machine hoards the window
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// Structural T-graph invariants must hold after every sink round of an
// arbitrary stream, for any sink size and modelling options.
class GraphInvariantProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, bool, int>> {};

TEST_P(GraphInvariantProperty, HoldAcrossSinkRounds) {
  const auto [sink_size, read_own_writes, always_write_back, seed] =
      GetParam();
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 80;
  o.hot_set_size = 8;
  o.num_txns = 300;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  TPartScheduler::Options sopts;
  sopts.sink_size = static_cast<std::size_t>(sink_size);
  sopts.graph.num_machines = 3;
  sopts.graph.read_own_writes = read_own_writes;
  sopts.graph.always_write_back = always_write_back;
  TPartScheduler sched(sopts, w.partition_map);

  std::string why;
  for (const TxnSpec& spec : w.SequencedRequests()) {
    const auto plans = sched.OnTxn(spec);
    if (!plans.empty()) {
      ASSERT_TRUE(sched.graph().CheckInvariants(&why)) << why;
    }
  }
  sched.Drain();
  ASSERT_TRUE(sched.graph().CheckInvariants(&why)) << why;
}

// Checkpoint-replay equivalence property: for any seeded workload, the
// checkpoint-plus-truncated-suffix offline replay must reconstruct every
// machine byte-identically to the full-log replay — same final partition
// state, and matching results for every transaction the suffix covers.
class CheckpointReplayProperty : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointReplayProperty, SuffixReplayMatchesFullLogReplay) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 150;
  o.hot_set_size = 15;
  o.num_txns = 300;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const Workload w = MakeMicroWorkload(o);

  auto partition_state = [](PartitionedStore& store, MachineId m) {
    std::vector<std::pair<ObjectKey, Record>> state;
    store.store(m).Scan(
        0, std::numeric_limits<ObjectKey>::max(),
        [&](ObjectKey k, const Record& v) { state.emplace_back(k, v); });
    std::sort(state.begin(), state.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return state;
  };

  LocalClusterOptions streaming;
  streaming.scheduler.sink_size = 20;
  streaming.streaming = true;

  // Full-log run: nothing truncated, logs cover the whole stream.
  LocalCluster full(&w, streaming);
  ASSERT_TRUE(full.RunTPart().fault.ok());

  // Checkpointed run: logs hold only the suffix since each machine's
  // last capture; the checkpoint image holds everything before it.
  LocalClusterOptions checkpointed = streaming;
  checkpointed.checkpoint_every = 4;
  LocalCluster incr(&w, checkpointed);
  ASSERT_TRUE(incr.RunTPart().fault.ok());

  for (std::size_t m = 0; m < w.num_machines; ++m) {
    const MachineId id = static_cast<MachineId>(m);
    ReplayResult via_full =
        ReplayMachine(w, id, full.machine(id).request_log(),
                      full.machine(id).network_log());
    ASSERT_NE(incr.checkpoint(id), nullptr);
    ASSERT_GT(incr.checkpoint(id)->epoch(), 0u)
        << "machine " << m << " never captured";
    ASSERT_LT(incr.machine(id).request_log().size(),
              full.machine(id).request_log().size())
        << "machine " << m << " log was not truncated";
    ReplayResult via_suffix =
        ReplayMachine(w, id, *incr.checkpoint(id),
                      incr.machine(id).request_log(),
                      incr.machine(id).network_log());

    EXPECT_EQ(partition_state(*via_suffix.store, id),
              partition_state(*via_full.store, id))
        << "machine " << m << " partition diverged";

    // Both replays carry a result for every transaction of the machine:
    // the full replay re-executes them all, the suffix replay re-executes
    // only the post-capture tail but restores the prefix's results from
    // the checkpoint image. They must agree pairwise.
    std::unordered_map<TxnId, const TxnResult*> by_id;
    for (const TxnResult& r : via_full.results) by_id.emplace(r.id, &r);
    EXPECT_EQ(via_suffix.results.size(), via_full.results.size())
        << "machine " << m;
    for (const TxnResult& r : via_suffix.results) {
      auto it = by_id.find(r.id);
      ASSERT_NE(it, by_id.end()) << "machine " << m << " T" << r.id;
      EXPECT_EQ(r.committed, it->second->committed)
          << "machine " << m << " T" << r.id;
      EXPECT_EQ(r.output, it->second->output)
          << "machine " << m << " T" << r.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointReplayProperty,
                         ::testing::Values(101, 202, 303, 404));

// Chaos-transport replay property: for any seed, a TCP-transport
// streaming run that checkpoints every few epochs while the full seeded
// chaos matrix fires (two distinct victims, a repeat crash of the first
// after its recovery, and a straggler) must stay byte-identical to a
// clean direct-transport run — same per-transaction outputs, same final
// store — and every machine must still be reconstructible offline from
// its last checkpoint image plus the truncated log suffix.
class ChaosTransportReplayProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaosTransportReplayProperty, TcpChaosRunMatchesCleanDirectRun) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 150;
  o.hot_set_size = 15;
  o.num_txns = 400;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const Workload w = MakeMicroWorkload(o);

  LocalClusterOptions clean;
  clean.streaming = true;
  clean.scheduler.sink_size = 20;
  LocalCluster baseline(&w, clean);
  const ClusterRunOutcome want = baseline.RunTPart();
  ASSERT_TRUE(want.fault.ok()) << want.fault.ToString();

  LocalClusterOptions chaotic = clean;
  chaotic.transport.kind = TransportKind::kTcp;
  chaotic.checkpoint_every = 4;
  chaotic.detector.heartbeat_interval_us = test::ScaledUs(2000);
  chaotic.detector.deadline_us = test::ScaledUs(100000);
  const SinkEpoch span = static_cast<SinkEpoch>(o.num_txns / 20);
  const std::string schedule = ApplySeededChaos(
      static_cast<std::uint64_t>(GetParam()), w.num_machines, span, chaotic);
  LocalCluster cluster(&w, chaotic);
  const ClusterRunOutcome got = cluster.RunTPart();
  ASSERT_TRUE(got.fault.ok()) << schedule << ": " << got.fault.ToString();
  EXPECT_EQ(got.recovery.crashes_injected, 3u) << schedule;

  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < got.results.size(); ++i) {
    ASSERT_EQ(got.results[i].id, want.results[i].id) << schedule;
    ASSERT_EQ(got.results[i].committed, want.results[i].committed)
        << schedule << " T" << got.results[i].id;
    ASSERT_EQ(got.results[i].output, want.results[i].output)
        << schedule << " T" << got.results[i].id;
  }
  EXPECT_EQ(cluster.store().Snapshot(), baseline.store().Snapshot());

  auto partition_state = [](PartitionedStore& store, MachineId m) {
    std::vector<std::pair<ObjectKey, Record>> state;
    store.store(m).Scan(
        0, std::numeric_limits<ObjectKey>::max(),
        [&](ObjectKey k, const Record& v) { state.emplace_back(k, v); });
    std::sort(state.begin(), state.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return state;
  };

  // Checkpoint-aware replay: even though the crashes already consumed
  // the live checkpoints once (in-run recovery restores from them), the
  // offline image-plus-suffix replay must rebuild every partition
  // byte-identically to the cluster's final state.
  for (std::size_t m = 0; m < w.num_machines; ++m) {
    const MachineId id = static_cast<MachineId>(m);
    ASSERT_NE(cluster.checkpoint(id), nullptr) << schedule;
    ASSERT_GT(cluster.checkpoint(id)->epoch(), 0u)
        << schedule << " machine " << m << " never captured";
    ReplayResult replayed =
        ReplayMachine(w, id, *cluster.checkpoint(id),
                      cluster.machine(id).request_log(),
                      cluster.machine(id).network_log());
    EXPECT_EQ(partition_state(*replayed.store, id),
              partition_state(cluster.store(), id))
        << schedule << " machine " << m << " partition diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTransportReplayProperty,
                         ::testing::Values(7, 21, 42));

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphInvariantProperty,
    ::testing::Values(std::tuple<int, bool, bool, int>{1, true, false, 1},
                      std::tuple<int, bool, bool, int>{3, true, false, 2},
                      std::tuple<int, bool, bool, int>{10, false, false, 3},
                      std::tuple<int, bool, bool, int>{10, true, true, 4},
                      std::tuple<int, bool, bool, int>{25, true, false, 5},
                      std::tuple<int, bool, bool, int>{1, true, true, 6}));

}  // namespace
}  // namespace tpart
