// Parameterised property sweeps: for randomised workloads across a grid
// of engine configurations, the T-Part runtime must (a) agree with the
// serial reference on final state and outputs, and (b) produce identical
// plans from independent schedulers.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "scheduler/tpart_scheduler.h"
#include "workload/micro.h"

namespace tpart {
namespace {

// (machines, sink_size, distributed_rate, optimize_plans, seed)
using Config = std::tuple<int, int, double, bool, int>;

class EngineEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(EngineEquivalence, TPartMatchesSerial) {
  const auto [machines, sink_size, dist_rate, optimize, seed] = GetParam();
  MicroOptions o;
  o.num_machines = static_cast<std::size_t>(machines);
  o.records_per_machine = 120;
  o.hot_set_size = 12;
  o.num_txns = 250;
  o.distributed_rate = dist_rate;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  // Serial reference.
  auto map1 = std::make_shared<HashPartitionMap>(1);
  PartitionedStore serial_store(1, map1);
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) serial_store.Upsert(k, rec);
  auto serial = RunSerial(*w.procedures, w.SequencedRequests(),
                          serial_store.store(0));
  ASSERT_TRUE(serial.ok());

  LocalClusterOptions opts;
  opts.scheduler.sink_size = static_cast<std::size_t>(sink_size);
  opts.scheduler.optimize_plans = optimize;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome outcome = cluster.RunTPart();

  ASSERT_EQ(outcome.results.size(), serial->results.size());
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    ASSERT_EQ(outcome.results[i].output, serial->results[i].output)
        << "output diverged at T" << outcome.results[i].id;
  }
  EXPECT_EQ(cluster.store().Snapshot(), serial_store.Snapshot());
}

TEST_P(EngineEquivalence, IndependentSchedulersAgree) {
  const auto [machines, sink_size, dist_rate, optimize, seed] = GetParam();
  MicroOptions o;
  o.num_machines = static_cast<std::size_t>(machines);
  o.records_per_machine = 120;
  o.hot_set_size = 12;
  o.num_txns = 250;
  o.distributed_rate = dist_rate;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  TPartScheduler::Options sopts;
  sopts.sink_size = static_cast<std::size_t>(sink_size);
  sopts.optimize_plans = optimize;
  sopts.graph.num_machines = w.num_machines;
  sopts.graph.read_own_writes = true;
  TPartScheduler a(sopts, w.partition_map);
  TPartScheduler b(sopts, w.partition_map);
  std::vector<SinkPlan> pa, pb;
  for (const TxnSpec& spec : w.SequencedRequests()) {
    for (auto& p : a.OnTxn(spec)) pa.push_back(std::move(p));
    for (auto& p : b.OnTxn(spec)) pb.push_back(std::move(p));
  }
  for (auto& p : a.Drain()) pa.push_back(std::move(p));
  for (auto& p : b.Drain()) pb.push_back(std::move(p));
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(pa[i] == pb[i]) << "round " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalence,
    ::testing::Values(
        Config{2, 1, 1.0, true, 1}, Config{2, 5, 1.0, true, 2},
        Config{2, 25, 1.0, false, 3}, Config{3, 10, 0.5, true, 4},
        Config{3, 10, 0.0, true, 5}, Config{4, 7, 1.0, true, 6},
        Config{4, 40, 0.3, false, 7}, Config{5, 13, 0.8, true, 8}));

// Partition-balance property: for any stream, the weighted streaming
// partitioner keeps machine loads within a reasonable envelope.
class BalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BalanceProperty, LoadsStayBounded) {
  MicroOptions o;
  o.num_machines = 4;
  o.records_per_machine = 200;
  o.num_txns = 400;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const Workload w = MakeMicroWorkload(o);
  TPartScheduler::Options sopts;
  sopts.sink_size = 50;
  sopts.graph.num_machines = 4;
  TPartScheduler sched(sopts, w.partition_map);
  for (const TxnSpec& spec : w.SequencedRequests()) sched.OnTxn(spec);
  const auto loads = sched.graph().AssignedLoad();
  double total = 0;
  double mx = 0;
  for (const double l : loads) {
    total += l;
    mx = std::max(mx, l);
  }
  ASSERT_GT(total, 0.0);
  EXPECT_LT(mx, 0.6 * total);  // no machine hoards the window
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// Structural T-graph invariants must hold after every sink round of an
// arbitrary stream, for any sink size and modelling options.
class GraphInvariantProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, bool, int>> {};

TEST_P(GraphInvariantProperty, HoldAcrossSinkRounds) {
  const auto [sink_size, read_own_writes, always_write_back, seed] =
      GetParam();
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 80;
  o.hot_set_size = 8;
  o.num_txns = 300;
  o.seed = static_cast<std::uint64_t>(seed);
  const Workload w = MakeMicroWorkload(o);

  TPartScheduler::Options sopts;
  sopts.sink_size = static_cast<std::size_t>(sink_size);
  sopts.graph.num_machines = 3;
  sopts.graph.read_own_writes = read_own_writes;
  sopts.graph.always_write_back = always_write_back;
  TPartScheduler sched(sopts, w.partition_map);

  std::string why;
  for (const TxnSpec& spec : w.SequencedRequests()) {
    const auto plans = sched.OnTxn(spec);
    if (!plans.empty()) {
      ASSERT_TRUE(sched.graph().CheckInvariants(&why)) << why;
    }
  }
  sched.Drain();
  ASSERT_TRUE(sched.graph().CheckInvariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphInvariantProperty,
    ::testing::Values(std::tuple<int, bool, bool, int>{1, true, false, 1},
                      std::tuple<int, bool, bool, int>{3, true, false, 2},
                      std::tuple<int, bool, bool, int>{10, false, false, 3},
                      std::tuple<int, bool, bool, int>{10, true, true, 4},
                      std::tuple<int, bool, bool, int>{25, true, false, 5},
                      std::tuple<int, bool, bool, int>{1, true, true, 6}));

}  // namespace
}  // namespace tpart
