#include <gtest/gtest.h>

#include "scheduler/tpart_scheduler.h"
#include "sequencer/sequencer.h"
#include "sequencer/zab.h"
#include "workload/micro.h"

namespace tpart {
namespace {

TxnBatch Batch(std::uint64_t tag) {
  TxnBatch b;
  b.batch_id = tag;
  TxnSpec spec;
  spec.id = tag;
  b.txns.push_back(spec);
  return b;
}

std::vector<std::uint64_t> Tags(const std::vector<TxnBatch>& batches) {
  std::vector<std::uint64_t> out;
  for (const auto& b : batches) out.push_back(b.batch_id);
  return out;
}

TEST(ZabTest, DeliversInProposalOrderEverywhere) {
  ZabCluster zab({.num_nodes = 3});
  for (std::uint64_t i = 1; i <= 5; ++i) zab.Propose(Batch(i));
  zab.Run();
  const std::vector<std::uint64_t> want = {1, 2, 3, 4, 5};
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(Tags(zab.DeliveredAt(n)), want) << "node " << n;
  }
}

TEST(ZabTest, ZxidsMonotonePerNode) {
  ZabCluster zab({.num_nodes = 5});
  for (std::uint64_t i = 1; i <= 10; ++i) zab.Propose(Batch(i));
  zab.Run();
  for (std::size_t n = 0; n < 5; ++n) {
    const auto& zx = zab.DeliveredZxidsAt(n);
    for (std::size_t i = 1; i < zx.size(); ++i) {
      EXPECT_LT(zx[i - 1], zx[i]);
    }
  }
}

TEST(ZabTest, SingleNodeDegeneratesToLog) {
  ZabCluster zab({.num_nodes = 1});
  zab.Propose(Batch(7));
  zab.Run();
  EXPECT_EQ(Tags(zab.DeliveredAt(0)), (std::vector<std::uint64_t>{7}));
}

TEST(ZabTest, LeaderCrashPreservesCommittedPrefix) {
  ZabCluster zab({.num_nodes = 3});
  for (std::uint64_t i = 1; i <= 4; ++i) zab.Propose(Batch(i));
  zab.Run();  // all committed
  const auto before = Tags(zab.DeliveredAt(1));
  ASSERT_EQ(before.size(), 4u);

  zab.CrashLeader();
  zab.Run();  // election
  EXPECT_NE(zab.leader(), 0u);
  EXPECT_EQ(zab.epoch(), 2u);
  // Every alive node still has the committed prefix, in order.
  for (std::size_t n = 0; n < 3; ++n) {
    if (!zab.alive(n)) continue;
    const auto tags = Tags(zab.DeliveredAt(n));
    ASSERT_GE(tags.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(tags[i], before[i]);
    }
  }
}

TEST(ZabTest, NewLeaderKeepsAccepting) {
  ZabCluster zab({.num_nodes = 3});
  zab.Propose(Batch(1));
  zab.Run();
  zab.CrashLeader();
  zab.Run();
  zab.Propose(Batch(2));
  zab.Propose(Batch(3));
  zab.Run();
  for (std::size_t n = 0; n < 3; ++n) {
    if (!zab.alive(n)) continue;
    EXPECT_EQ(Tags(zab.DeliveredAt(n)),
              (std::vector<std::uint64_t>{1, 2, 3}));
  }
}

TEST(ZabTest, UnpumpedProposalsSurviveCrashViaQuorumSync) {
  // Proposals that reached a quorum before the crash must survive; the
  // never-broadcast tail may be dropped but the prefix stays intact.
  ZabCluster zab({.num_nodes = 3});
  zab.Propose(Batch(1));
  zab.Run();
  zab.Propose(Batch(2));  // broadcast queued but not pumped
  zab.CrashLeader();
  zab.Run();
  zab.Propose(Batch(3));
  zab.Run();
  for (std::size_t n = 0; n < 3; ++n) {
    if (!zab.alive(n)) continue;
    const auto tags = Tags(zab.DeliveredAt(n));
    ASSERT_GE(tags.size(), 2u);
    EXPECT_EQ(tags.front(), 1u);
    EXPECT_EQ(tags.back(), 3u);
  }
}

TEST(ZabTest, RestartedNodeSyncsFromLeader) {
  ZabCluster zab({.num_nodes = 3});
  zab.Propose(Batch(1));
  zab.Run();
  zab.CrashLeader();
  const std::size_t crashed = 0;
  zab.Run();
  zab.Propose(Batch(2));
  zab.Run();
  zab.Restart(crashed);
  EXPECT_EQ(Tags(zab.DeliveredAt(crashed)),
            Tags(zab.DeliveredAt(zab.leader())));
}

TEST(ZabTest, EndToEndOrderingFeedsIdenticalSchedulers) {
  // The full sequencing path of Fig. 2: client requests -> Sequencer
  // batches (dummy-padded) -> Zab total order -> one scheduler per node.
  // Every node's scheduler must emit identical plans.
  MicroOptions mo;
  mo.num_machines = 2;
  mo.records_per_machine = 100;
  mo.hot_set_size = 10;
  mo.num_txns = 95;  // not a batch multiple: forces dummy padding
  const Workload w = MakeMicroWorkload(mo);

  Sequencer seq(Sequencer::Options{.batch_size = 10});
  for (const TxnSpec& spec : w.requests) seq.Submit(spec);

  ZabCluster zab({.num_nodes = 3});
  while (auto batch = seq.NextBatch()) zab.Propose(std::move(*batch));
  if (auto tail = seq.Flush()) zab.Propose(std::move(*tail));
  zab.Run();

  TPartScheduler::Options sopts;
  sopts.sink_size = 10;
  sopts.graph.num_machines = 2;
  std::vector<std::vector<SinkPlan>> plans(3);
  for (std::size_t node = 0; node < 3; ++node) {
    TPartScheduler sched(sopts, w.partition_map);
    for (const TxnBatch& batch : zab.DeliveredAt(node)) {
      for (auto& p : sched.OnBatch(batch)) {
        plans[node].push_back(std::move(p));
      }
    }
    for (auto& p : sched.Drain()) plans[node].push_back(std::move(p));
  }
  ASSERT_FALSE(plans[0].empty());
  for (std::size_t node = 1; node < 3; ++node) {
    ASSERT_EQ(plans[node].size(), plans[0].size());
    for (std::size_t i = 0; i < plans[0].size(); ++i) {
      EXPECT_TRUE(plans[node][i] == plans[0][i]);
    }
  }
}

TEST(ZabTest, AllNodesAgreeAfterChurn) {
  ZabCluster zab({.num_nodes = 5});
  std::uint64_t tag = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) zab.Propose(Batch(tag++));
    zab.Run();
    zab.CrashLeader();
    zab.Run();
  }
  for (int i = 0; i < 4; ++i) zab.Propose(Batch(tag++));
  zab.Run();
  // All alive nodes hold identical delivery sequences.
  std::vector<std::uint64_t> reference;
  for (std::size_t n = 0; n < 5; ++n) {
    if (!zab.alive(n)) continue;
    if (reference.empty()) {
      reference = Tags(zab.DeliveredAt(n));
    } else {
      EXPECT_EQ(Tags(zab.DeliveredAt(n)), reference) << "node " << n;
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace tpart
