#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/lock_table.h"

namespace tpart {
namespace {

TEST(LockTableTest, UncontendedGrantsImmediately) {
  LockTable locks;
  locks.Enqueue(1, {10}, {20});
  EXPECT_TRUE(locks.IsGranted(1));
  EXPECT_TRUE(locks.AwaitGranted(1));
  locks.Release(1);
  EXPECT_EQ(locks.active_keys(), 0u);
}

TEST(LockTableTest, WriterBlocksWriter) {
  LockTable locks;
  locks.Enqueue(1, {}, {10});
  locks.Enqueue(2, {}, {10});
  EXPECT_TRUE(locks.IsGranted(1));
  EXPECT_FALSE(locks.IsGranted(2));
  locks.Release(1);
  EXPECT_TRUE(locks.IsGranted(2));
}

TEST(LockTableTest, SharedReadersCoalesce) {
  LockTable locks;
  locks.Enqueue(1, {10}, {});
  locks.Enqueue(2, {10}, {});
  locks.Enqueue(3, {}, {10});
  EXPECT_TRUE(locks.IsGranted(1));
  EXPECT_TRUE(locks.IsGranted(2));
  EXPECT_FALSE(locks.IsGranted(3));
  locks.Release(1);
  EXPECT_FALSE(locks.IsGranted(3));  // still one reader
  locks.Release(2);
  EXPECT_TRUE(locks.IsGranted(3));
}

TEST(LockTableTest, ReadPlusWriteIsExclusive) {
  LockTable locks;
  locks.Enqueue(1, {10}, {10});  // read+write -> exclusive
  locks.Enqueue(2, {10}, {});
  EXPECT_FALSE(locks.IsGranted(2));
  locks.Release(1);
  EXPECT_TRUE(locks.IsGranted(2));
}

TEST(LockTableTest, GrantsFollowTotalOrderPerKey) {
  LockTable locks;
  locks.Enqueue(1, {}, {10});
  locks.Enqueue(2, {}, {10});
  locks.Enqueue(3, {}, {10});
  locks.Release(1);
  EXPECT_TRUE(locks.IsGranted(2));
  EXPECT_FALSE(locks.IsGranted(3));
  locks.Release(2);
  EXPECT_TRUE(locks.IsGranted(3));
}

TEST(LockTableTest, MultiKeyTxnNeedsAllLocks) {
  LockTable locks;
  locks.Enqueue(1, {}, {10});
  locks.Enqueue(2, {}, {10, 20});
  EXPECT_FALSE(locks.IsGranted(2));
  locks.Release(1);
  EXPECT_TRUE(locks.IsGranted(2));
}

TEST(LockTableTest, AwaitBlocksUntilRelease) {
  LockTable locks;
  locks.Enqueue(1, {}, {10});
  locks.Enqueue(2, {}, {10});
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    locks.AwaitGranted(2);
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  locks.Release(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockTableTest, ShutdownReleasesWaiters) {
  LockTable locks;
  locks.Enqueue(1, {}, {10});
  locks.Enqueue(2, {}, {10});
  std::thread waiter([&] { EXPECT_FALSE(locks.AwaitGranted(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  locks.Shutdown();
  waiter.join();
}

TEST(LockTableTest, ConcurrentPipelineCompletes) {
  // 4 workers drain 200 conflicting transactions enqueued in order;
  // in-order enqueue guarantees deadlock freedom.
  LockTable locks;
  constexpr int kTxns = 200;
  for (TxnId t = 1; t <= kTxns; ++t) {
    locks.Enqueue(t, {t % 5}, {(t + 1) % 5});
  }
  std::atomic<int> next{1};
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const int t = next.fetch_add(1);
        if (t > kTxns) return;
        locks.AwaitGranted(static_cast<TxnId>(t));
        locks.Release(static_cast<TxnId>(t));
        ++done;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(done.load(), kTxns);
  EXPECT_EQ(locks.active_keys(), 0u);
}

}  // namespace
}  // namespace tpart
