// Integration tests of the threaded runtime: the Calvin-mode and
// T-Part-mode clusters must produce exactly the serial reference's
// per-transaction outputs and final database state — determinism +
// serializability across engines.

#include <gtest/gtest.h>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "storage/kv_store.h"
#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

namespace tpart {
namespace {

// Serial reference over a single store; returns results + final snapshot.
std::pair<std::vector<TxnResult>, std::vector<std::pair<ObjectKey, Record>>>
SerialReference(const Workload& w) {
  // One-partition store so the snapshot covers everything.
  auto map = std::make_shared<HashPartitionMap>(1);
  PartitionedStore store(1, map);
  // Load via the workload's own loader but into one partition.
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) store.Upsert(k, rec);
  auto result = RunSerial(*w.procedures, w.SequencedRequests(),
                          store.store(0));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {std::move(result->results), store.Snapshot()};
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

void CheckEnginesAgree(const Workload& w, LocalClusterOptions opts) {
  const auto [serial_results, serial_state] = SerialReference(w);

  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome tpart = cluster.RunTPart();
  ExpectSameResults(serial_results, tpart.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state)
      << "T-Part final state diverged from serial";

  const ClusterRunOutcome calvin = cluster.RunCalvin();
  ExpectSameResults(serial_results, calvin.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state)
      << "Calvin final state diverged from serial";
}

LocalClusterOptions SmallClusterOpts(std::size_t sink_size = 20) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = sink_size;
  return opts;
}

TEST(RuntimeTest, MicroEnginesMatchSerial) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 300;
  o.hot_set_size = 30;
  o.num_txns = 600;
  CheckEnginesAgree(MakeMicroWorkload(o), SmallClusterOpts());
}

TEST(RuntimeTest, MicroLocalOnlyWorkload) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 200;
  o.hot_set_size = 20;
  o.num_txns = 300;
  o.distributed_rate = 0.0;
  CheckEnginesAgree(MakeMicroWorkload(o), SmallClusterOpts());
}

TEST(RuntimeTest, TpccEnginesMatchSerialIncludingAborts) {
  TpccOptions o;
  o.num_machines = 3;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 100;
  o.num_txns = 400;
  o.abort_prob = 0.05;  // exercise §5.3 abort forwarding
  CheckEnginesAgree(MakeTpccWorkload(o), SmallClusterOpts());
}

TEST(RuntimeTest, TpceEnginesMatchSerial) {
  TpceOptions o;
  o.num_machines = 3;
  o.customers_per_machine = 50;
  o.securities_per_machine = 30;
  o.num_txns = 400;
  CheckEnginesAgree(MakeTpceWorkload(o), SmallClusterOpts());
}

TEST(RuntimeTest, TinySinkSizeStillCorrect) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 100;
  o.hot_set_size = 10;
  o.num_txns = 150;
  CheckEnginesAgree(MakeMicroWorkload(o), SmallClusterOpts(/*sink=*/1));
}

TEST(RuntimeTest, GStoreModeStillCorrect) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 100;
  o.hot_set_size = 10;
  o.num_txns = 200;
  LocalClusterOptions opts = SmallClusterOpts(1);
  opts.scheduler.graph.always_write_back = true;
  opts.scheduler.graph.sticky_cache = false;
  opts.scheduler.optimize_plans = false;
  const Workload w = MakeMicroWorkload(o);
  const auto [serial_results, serial_state] = SerialReference(w);
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome tpart = cluster.RunTPart();
  ExpectSameResults(serial_results, tpart.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state);
}

TEST(RuntimeTest, PlanOptimizerPreservesCorrectness) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 100;
  o.hot_set_size = 10;  // hot keys => many same-version readers => relays
  o.num_txns = 400;
  LocalClusterOptions with_opt = SmallClusterOpts();
  with_opt.scheduler.optimize_plans = true;
  LocalClusterOptions without_opt = SmallClusterOpts();
  without_opt.scheduler.optimize_plans = false;
  const Workload w = MakeMicroWorkload(o);
  CheckEnginesAgree(w, with_opt);
  CheckEnginesAgree(w, without_opt);
}

TEST(RuntimeTest, RepeatedRunsAreDeterministic) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 200;
  o.hot_set_size = 20;
  o.num_txns = 300;
  const Workload w = MakeMicroWorkload(o);
  LocalCluster cluster(&w, SmallClusterOpts());
  const ClusterRunOutcome a = cluster.RunTPart();
  const auto state_a = cluster.store().Snapshot();
  const ClusterRunOutcome b = cluster.RunTPart();
  ExpectSameResults(a.results, b.results);
  EXPECT_EQ(cluster.store().Snapshot(), state_a);
}

TEST(RuntimeTest, MultiWorkerExecutorsMatchSerial) {
  // 4 workers per machine (the paper's per-node core count): the version
  // CC must make results identical to the single-worker run and the
  // serial reference regardless of worker interleavings.
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 300;
  o.hot_set_size = 30;
  o.num_txns = 800;
  const Workload w = MakeMicroWorkload(o);
  const auto [serial_results, serial_state] = SerialReference(w);
  LocalClusterOptions opts = SmallClusterOpts();
  opts.executor_workers = 4;
  LocalCluster cluster(&w, opts);
  for (int round = 0; round < 3; ++round) {
    const ClusterRunOutcome outcome = cluster.RunTPart();
    ExpectSameResults(serial_results, outcome.results);
    ASSERT_EQ(cluster.store().Snapshot(), serial_state)
        << "multi-worker run " << round << " diverged";
  }
}

TEST(RuntimeTest, MultiWorkerTpccWithAborts) {
  TpccOptions o;
  o.num_machines = 2;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 100;
  o.num_txns = 400;
  o.abort_prob = 0.05;
  const Workload w = MakeTpccWorkload(o);
  const auto [serial_results, serial_state] = SerialReference(w);
  LocalClusterOptions opts = SmallClusterOpts();
  opts.executor_workers = 3;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome outcome = cluster.RunTPart();
  ExpectSameResults(serial_results, outcome.results);
  EXPECT_EQ(cluster.store().Snapshot(), serial_state);
}

TEST(RuntimeTest, CacheStaysBounded) {
  // §5.2: "the total size of the essential cache entries on each machine
  // is proportional to the working set" — after a run everything planned
  // must have been consumed.
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 200;
  o.hot_set_size = 20;
  o.num_txns = 400;
  const Workload w = MakeMicroWorkload(o);
  LocalCluster cluster(&w, SmallClusterOpts());
  cluster.RunTPart();
  for (MachineId m = 0; m < 2; ++m) {
    EXPECT_EQ(cluster.machine(m).cache().num_version_entries(), 0u)
        << "machine " << m << " leaked version entries";
  }
}

}  // namespace
}  // namespace tpart
