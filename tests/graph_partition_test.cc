#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "partition/multilevel.h"
#include "partition/partition_metrics.h"
#include "partition/pin_reduction.h"
#include "partition/streaming_greedy.h"
#include "storage/data_partition.h"
#include "tgraph/tgraph.h"

namespace tpart {
namespace {

TxnSpec Txn(TxnId id, std::vector<ObjectKey> reads,
            std::vector<ObjectKey> writes) {
  TxnSpec spec;
  spec.id = id;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

// Builds a T-graph with two obvious clusters: chains over key 1 (homed
// wherever hashing puts it) and key 2.
TGraph MakeClusteredGraph(std::size_t machines, int chain_len) {
  TGraph::Options o;
  o.num_machines = machines;
  TGraph g(o, std::make_shared<HashPartitionMap>(machines));
  TxnId id = 1;
  for (int i = 0; i < chain_len; ++i) {
    g.AddTxn(Txn(id++, {1}, {1}));
    g.AddTxn(Txn(id++, {2}, {2}));
  }
  return g;
}

// ---- Streaming greedy (Algorithm 1) ------------------------------------

TEST(StreamingGreedyTest, AssignsEveryNode) {
  TGraph g = MakeClusteredGraph(2, 10);
  StreamingGreedyPartitioner part;
  part.Partition(g);
  g.ForEachUnsunk([](const TxnNode& n) {
    EXPECT_NE(n.assigned, kInvalidMachine);
  });
}

TEST(StreamingGreedyTest, CoLocatesDependencyChains) {
  TGraph g = MakeClusteredGraph(4, 20);
  StreamingGreedyPartitioner part(
      {StreamingGreedyPartitioner::Mode::kWeighted, /*beta=*/0.01});
  part.Partition(g);
  // All transactions touching key 1 should land on one machine, all
  // touching key 2 on one machine (possibly the same is fine for cut=0,
  // but balance pressure should separate them).
  MachineId m1 = kInvalidMachine, m2 = kInvalidMachine;
  bool split1 = false, split2 = false;
  g.ForEachUnsunk([&](const TxnNode& n) {
    MachineId& m = n.spec.rw.ReadsKey(1) ? m1 : m2;
    bool& split = n.spec.rw.ReadsKey(1) ? split1 : split2;
    if (m == kInvalidMachine) {
      m = n.assigned;
    } else if (m != n.assigned) {
      split = true;
    }
  });
  EXPECT_FALSE(split1);
  EXPECT_FALSE(split2);
}

TEST(StreamingGreedyTest, LargeBetaBalancesLoad) {
  // With beta large, load balance dominates (§6.3.6: "the throughput is
  // high only if beta is sufficiently large").
  TGraph g = MakeClusteredGraph(2, 50);
  StreamingGreedyPartitioner part(
      {StreamingGreedyPartitioner::Mode::kWeighted, /*beta=*/100.0});
  part.Partition(g);
  const PartitionQuality q = MeasurePartition(g);
  EXPECT_LE(q.skew, 1.0);
}

TEST(StreamingGreedyTest, DeterministicAcrossInstances) {
  TGraph g1 = MakeClusteredGraph(4, 30);
  TGraph g2 = MakeClusteredGraph(4, 30);
  StreamingGreedyPartitioner p1, p2;
  p1.Partition(g1);
  p2.Partition(g2);
  g1.ForEachUnsunk([&](const TxnNode& n) {
    EXPECT_EQ(n.assigned, g2.node(n.spec.id).assigned);
  });
}

TEST(StreamingGreedyTest, LexicographicTieBreaksTowardLighter) {
  // Isolated nodes have zero affinity everywhere; Algorithm 1 then sends
  // each to the lightest partition, round-robin-ish.
  TGraph::Options o;
  o.num_machines = 3;
  TGraph g(o, std::make_shared<HashPartitionMap>(3));
  for (TxnId id = 1; id <= 9; ++id) {
    TxnSpec spec;
    spec.id = id;  // no reads/writes: isolated
    g.AddTxn(spec);
  }
  StreamingGreedyPartitioner part(
      {StreamingGreedyPartitioner::Mode::kLexicographic, 0.0});
  part.Partition(g);
  const auto loads = g.AssignedLoad();
  EXPECT_DOUBLE_EQ(loads[0], 3.0);
  EXPECT_DOUBLE_EQ(loads[1], 3.0);
  EXPECT_DOUBLE_EQ(loads[2], 3.0);
}

TEST(StreamingGreedyTest, RespectsSeededSinkWeights) {
  // A pre-loaded machine should receive fewer new transactions.
  TGraph::Options o;
  o.num_machines = 2;
  TGraph g(o, std::make_shared<HashPartitionMap>(2));
  g.set_sink_weight(0, 50.0);
  for (TxnId id = 1; id <= 20; ++id) {
    TxnSpec spec;
    spec.id = id;
    g.AddTxn(spec);
  }
  StreamingGreedyPartitioner part(
      {StreamingGreedyPartitioner::Mode::kWeighted, /*beta=*/1.0});
  part.Partition(g);
  const auto loads = g.AssignedLoad();
  EXPECT_GT(loads[1], loads[0]);
}

// ---- Multilevel (METIS-like) ---------------------------------------------

WeightedGraph RandomGraph(std::size_t n, std::size_t edges, int k,
                          std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g;
  g.vertex_weight.assign(n, 1.0);
  g.fixed.assign(n, -1);
  g.adj.resize(n);
  for (int m = 0; m < k; ++m) g.fixed[static_cast<std::size_t>(m)] = m;
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<int>(rng.NextBelow(n));
    const auto b = static_cast<int>(rng.NextBelow(n));
    if (a == b) continue;
    const double w = 1.0 + static_cast<double>(rng.NextBelow(4));
    g.adj[static_cast<std::size_t>(a)].emplace_back(b, w);
    g.adj[static_cast<std::size_t>(b)].emplace_back(a, w);
  }
  return g;
}

TEST(MultilevelTest, FixedVerticesKeepLabels) {
  const WeightedGraph g = RandomGraph(500, 2000, 4, 7);
  const auto part = MultilevelPartition(g, 4);
  ASSERT_EQ(part.size(), g.size());
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(part[static_cast<std::size_t>(m)], m);
  }
  for (const int p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(MultilevelTest, RespectsBalanceBound) {
  const WeightedGraph g = RandomGraph(1000, 4000, 4, 11);
  MultilevelOptions opts;
  opts.imbalance = 0.15;
  const auto part = MultilevelPartition(g, 4, opts);
  const auto loads = GraphLoads(g, 4, part);
  const double avg = 1000.0 / 4.0;
  for (const double l : loads) {
    EXPECT_LE(l, avg * (1.0 + opts.imbalance) + 1.0);
  }
}

TEST(MultilevelTest, BeatsRandomAssignmentOnCut) {
  const WeightedGraph g = RandomGraph(800, 3000, 4, 13);
  const auto part = MultilevelPartition(g, 4);
  Rng rng(99);
  std::vector<int> random_part(g.size());
  for (auto& p : random_part) p = static_cast<int>(rng.NextBelow(4));
  EXPECT_LT(GraphCutWeight(g, part), GraphCutWeight(g, random_part));
}

TEST(MultilevelTest, SeparableGraphGetsNearZeroCut) {
  // Two cliques, each attached to its own pinned sink.
  WeightedGraph g;
  const std::size_t half = 20;
  g.vertex_weight.assign(2 + 2 * half, 1.0);
  g.fixed.assign(2 + 2 * half, -1);
  g.fixed[0] = 0;
  g.fixed[1] = 1;
  g.adj.resize(2 + 2 * half);
  auto connect = [&](std::size_t a, std::size_t b) {
    g.adj[a].emplace_back(static_cast<int>(b), 1.0);
    g.adj[b].emplace_back(static_cast<int>(a), 1.0);
  };
  for (std::size_t i = 0; i < half; ++i) {
    connect(0, 2 + i);
    connect(1, 2 + half + i);
    for (std::size_t j = i + 1; j < half; ++j) {
      connect(2 + i, 2 + j);
      connect(2 + half + i, 2 + half + j);
    }
  }
  const auto part = MultilevelPartition(g, 2);
  EXPECT_DOUBLE_EQ(GraphCutWeight(g, part), 0.0);
}

TEST(MultilevelTest, PartitionerAdapterAssignsTGraph) {
  TGraph g = MakeClusteredGraph(2, 15);
  MultilevelPartitioner part;
  part.Partition(g);
  g.ForEachUnsunk([](const TxnNode& n) {
    EXPECT_NE(n.assigned, kInvalidMachine);
  });
}

// ---- Pin reduction (§5.1's discarded approach) -----------------------------

TEST(PinReductionTest, RecoversConstrainedAssignment) {
  WeightedGraph g = RandomGraph(200, 600, 3, 17);
  const std::size_t pins = 3;
  // Large pin weights + tie edges + the balance bound force sinks apart:
  // two pins together would blow the per-partition weight budget.
  const WeightedGraph reduced = ApplyPinReduction(g, pins, 1000.0, 1e6);
  EXPECT_EQ(reduced.size(), g.size() + pins);
  const auto reduced_part =
      MultilevelPartition(reduced, 3, MultilevelOptions{.imbalance = 0.3});
  std::vector<int> recovered;
  ASSERT_TRUE(
      RecoverPinAssignment(reduced, pins, reduced_part, recovered));
  ASSERT_EQ(recovered.size(), g.size());
  // After relabeling, sink i sits in partition i.
  for (std::size_t i = 0; i < pins; ++i) {
    EXPECT_EQ(recovered[i], static_cast<int>(i));
  }
}

TEST(PinReductionTest, DetectsViolatedConstraint) {
  WeightedGraph g;
  g.vertex_weight.assign(4, 1.0);
  g.fixed.assign(4, -1);
  g.adj.resize(4);
  const WeightedGraph reduced = ApplyPinReduction(g, 2, 10.0, 10.0);
  // Both sinks in partition 0: violates disconnectivity.
  std::vector<int> bad(reduced.size(), 0);
  std::vector<int> out;
  EXPECT_FALSE(RecoverPinAssignment(reduced, 2, bad, out));
}

// ---- Metrics ---------------------------------------------------------------

TEST(PartitionMetricsTest, SkewIsMaxMinusMin) {
  TGraph g = MakeClusteredGraph(2, 5);
  g.ForEachUnsunk([&](const TxnNode& n) {
    g.mutable_node(n.spec.id).assigned = 0;
  });
  const PartitionQuality q = MeasurePartition(g);
  EXPECT_DOUBLE_EQ(q.skew, 10.0);  // all 10 nodes on machine 0
  EXPECT_FALSE(q.ToString().empty());
}

}  // namespace
}  // namespace tpart
