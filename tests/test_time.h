#ifndef TPART_TESTS_TEST_TIME_H_
#define TPART_TESTS_TEST_TIME_H_

// Deflaking knob for timing-sensitive tests: every detector deadline,
// heartbeat interval, straggler delay, and election timeout a test pins
// goes through ScaledUs(), and TPART_TEST_TIME_SCALE (a positive
// integer, default 1) multiplies them all. A loaded CI box or a
// sanitizer build that runs 5x slow sets TPART_TEST_TIME_SCALE=5 and
// every margin widens together — the ratios between the constants (the
// thing the tests actually assert) are preserved exactly.

#include <cstdint>
#include <cstdlib>

namespace tpart::test {

inline std::uint64_t TimeScale() {
  static const std::uint64_t scale = [] {
    const char* env = std::getenv("TPART_TEST_TIME_SCALE");
    if (env == nullptr || *env == '\0') return std::uint64_t{1};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1 || v > 1000) {
      return std::uint64_t{1};  // garbage or out of range: ignore
    }
    return static_cast<std::uint64_t>(v);
  }();
  return scale;
}

inline std::uint64_t ScaledUs(std::uint64_t us) { return us * TimeScale(); }

}  // namespace tpart::test

#endif  // TPART_TESTS_TEST_TIME_H_
