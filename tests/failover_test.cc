// Coordinator-fault-tolerance tests (DESIGN §4i): the replicated request
// log, standby election after a leader crash-stop, and deterministic
// rebuild of the coordinator's T-graph and sink-epoch state from the
// committed log. A streaming run whose coordinator dies mid-stream must
// fail over to a standby and finish with byte-identical committed results
// and final store state to the crash-free run — on every transport, alone
// and composed with worker crashes, network faults, and stragglers. The
// straggler-aware failure detector and the executor stall diagnostic are
// covered here too.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "runtime/channel.h"
#include "runtime/cluster.h"
#include "runtime/coordinator.h"
#include "runtime/machine.h"
#include "scheduler/push_plan.h"
#include "storage/kv_store.h"
#include "txn/procedure.h"
#include "test_time.h"
#include "workload/micro.h"

namespace tpart {
namespace {

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 405;
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

LocalClusterOptions FailoverOpts(TransportKind kind, SinkEpoch at_epoch,
                                 std::size_t standbys = 1) {
  LocalClusterOptions opts = StreamingOpts(kind);
  opts.coordinator.standbys = standbys;
  opts.crash.coordinator_at.push_back(at_epoch);
  return opts;
}

void AddNetFaults(LocalClusterOptions& opts) {
  opts.transport.faults.seed = 0xC0FFEE;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

struct RunSnapshot {
  ClusterRunOutcome out;
  std::vector<std::pair<ObjectKey, Record>> state;
};

RunSnapshot RunOnce(const Workload& w, const LocalClusterOptions& opts) {
  LocalCluster cluster(&w, opts);
  RunSnapshot snap;
  snap.out = cluster.RunTPart();
  snap.state = cluster.store().Snapshot();
  return snap;
}

void ExpectFailedOver(const ClusterRunOutcome& out, std::uint64_t crashes) {
  EXPECT_TRUE(out.fault.ok()) << out.fault.ToString();
  EXPECT_EQ(out.failover.coordinator_crashes, crashes);
  EXPECT_EQ(out.failover.elections_won, crashes);
  EXPECT_GT(out.failover.detection_latency_us, 0u);
  EXPECT_GT(out.failover.election_us, 0u);
  EXPECT_GT(out.failover.replan_us, 0u);
  EXPECT_GE(out.failover.plan_stream_gap_us, out.failover.replan_us);
  EXPECT_GT(out.failover.replayed_batches, 0u);
  EXPECT_GT(out.failover.catchup_rounds, 0u);
}

// ---------------------------------------------------------------------
// Replication without failure: the quorum-committed log is pure overhead
// in the happy path — results must not change.
// ---------------------------------------------------------------------

TEST(FailoverTest, HealthyStandbysPreserveResults) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
  opts.coordinator.standbys = 1;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  // Every sequenced batch went through the replicated log and won its
  // quorum; nothing crashed, nobody was elected.
  EXPECT_EQ(got.out.failover.committed_batches, ref.out.pipeline.batches);
  EXPECT_GE(got.out.failover.log_appends, got.out.failover.committed_batches);
  EXPECT_GE(got.out.failover.log_acks, got.out.failover.committed_batches);
  EXPECT_EQ(got.out.failover.coordinator_crashes, 0u);
  EXPECT_EQ(got.out.failover.elections_won, 0u);
  EXPECT_EQ(got.out.failover.leader, 0u);
}

// ---------------------------------------------------------------------
// Leader crash: a standby takes over and the committed prefix plus the
// deterministically regenerated suffix equal the crash-free run.
// ---------------------------------------------------------------------

TEST(FailoverTest, LeaderCrashMatchesCrashFreeRun) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  const RunSnapshot got =
      RunOnce(w, FailoverOpts(TransportKind::kDirect, 3));
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "failed-over final store diverged from the crash-free run";
  EXPECT_EQ(got.out.committed, ref.out.committed);
  EXPECT_EQ(got.out.aborted, ref.out.aborted);
  ExpectFailedOver(got.out, 1);
  // The single standby (replica 1) is the only possible winner.
  EXPECT_EQ(got.out.failover.leader, 1u);
  EXPECT_EQ(got.out.failover.dueling_claims, 0u);
}

TEST(FailoverTest, FailoverOnEveryTransport) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    const RunSnapshot got = RunOnce(w, FailoverOpts(kind, 4));
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    ExpectFailedOver(got.out, 1);
  }
}

TEST(FailoverTest, ComposedWithWorkerCrashAndNetFaults) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  struct Case {
    TransportKind kind;
    bool network_faults;
  };
  const Case cases[] = {
      {TransportKind::kDirect, false},
      {TransportKind::kInProcess, true},
      {TransportKind::kTcp, false},
  };
  for (const Case& c : cases) {
    // Coordinator and worker die at the same sink epoch: the watchdog
    // rebuilds the worker from its logs while the standby rebuilds the
    // coordinator from the committed request log.
    LocalClusterOptions opts = FailoverOpts(c.kind, 5);
    opts.crash.machine = 1;
    opts.crash.at_epoch = 5;
    opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
    opts.detector.deadline_us = test::ScaledUs(100000);
    if (c.network_faults) AddNetFaults(opts);
    const std::string label =
        "transport " + std::to_string(static_cast<int>(c.kind)) +
        (c.network_faults ? " with net faults" : "");
    const RunSnapshot got = RunOnce(w, opts);
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    ExpectFailedOver(got.out, 1);
    EXPECT_EQ(got.out.recovery.crashes_injected, 1u) << label;
    EXPECT_EQ(got.out.recovery.crashed_machine, 1) << label;
  }
}

TEST(FailoverTest, TwoLeaderCrashesWithThreeReplicas) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = FailoverOpts(TransportKind::kDirect, 3,
                                          /*standbys=*/2);
  opts.crash.coordinator_at.push_back(7);
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  ExpectFailedOver(got.out, 2);
}

TEST(FailoverTest, FailoverIsDeterministicAcrossRuns) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const LocalClusterOptions opts = FailoverOpts(TransportKind::kInProcess, 4);
  const RunSnapshot first = RunOnce(w, opts);
  const RunSnapshot second = RunOnce(w, opts);
  ExpectSameResults(first.out.results, second.out.results);
  EXPECT_EQ(first.state, second.state);
  EXPECT_EQ(first.out.failover.coordinator_crashes,
            second.out.failover.coordinator_crashes);
}

// ---------------------------------------------------------------------
// The full chaos matrix from one seed: three worker crashes, a
// straggler, a coordinator crash, and network faults, all composed.
// ---------------------------------------------------------------------

TEST(FailoverTest, SeededChaosAddsCoordinatorEventOnlyWithStandbys) {
  LocalClusterOptions without = StreamingOpts(TransportKind::kDirect);
  const std::string s0 = ApplySeededChaos(42, 3, 20, without);
  EXPECT_TRUE(without.crash.coordinator_at.empty());
  EXPECT_EQ(s0.find("seq@e"), std::string::npos) << s0;

  LocalClusterOptions with = StreamingOpts(TransportKind::kDirect);
  with.coordinator.standbys = 1;
  const std::string s1 = ApplySeededChaos(42, 3, 20, with);
  ASSERT_EQ(with.crash.coordinator_at.size(), 1u);
  EXPECT_NE(s1.find("seq@e"), std::string::npos) << s1;
  // Drawn after every worker event: the worker schedule for a fixed seed
  // is independent of the standby count.
  EXPECT_EQ(with.crash.machine, without.crash.machine);
  EXPECT_EQ(with.crash.at_epoch, without.crash.at_epoch);
  ASSERT_EQ(with.crash.more.size(), without.crash.more.size());
  EXPECT_EQ(with.straggler.machine, without.straggler.machine);
  // The leader dies strictly inside the run, after the first crash arms.
  EXPECT_GT(with.crash.coordinator_at[0], with.crash.at_epoch);
}

TEST(FailoverTest, SeededChaosMatrixWithCoordinatorEventMatchesReference) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  const SinkEpoch span = static_cast<SinkEpoch>(ref.out.pipeline.plans);
  ASSERT_GE(span, 12u);

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.coordinator.standbys = 1;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  const std::string schedule = ApplySeededChaos(7, w.num_machines, span, opts);
  ASSERT_EQ(opts.crash.coordinator_at.size(), 1u) << schedule;
  AddNetFaults(opts);
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok())
      << schedule << ": " << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state) << schedule;
  EXPECT_EQ(got.out.recovery.crashes_injected, 3u) << schedule;
  ExpectFailedOver(got.out, 1);
}

// ---------------------------------------------------------------------
// Straggler-aware failure detection: injected delay above the base
// deadline must widen that machine's deadline, not kill it.
// ---------------------------------------------------------------------

TEST(FailoverTest, StragglerBeyondBaseDeadlineIsNotDeclaredDead) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
  opts.detector.enabled = true;  // watchdog on, no crash scheduled
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(50000);
  opts.straggler.machine = 1;
  // The freeze exceeds the base deadline: without the straggler-aware
  // widening this is a guaranteed false positive (and, with no crash
  // scheduled, a fatal kUnavailable fault).
  opts.straggler.delay_us = test::ScaledUs(75000);
  opts.straggler.period_us = test::ScaledUs(400000);
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

// ---------------------------------------------------------------------
// Executor stall diagnostic: a live machine blocked awaiting a version
// that never arrived reports its state instead of staying opaque.
// ---------------------------------------------------------------------

TEST(FailoverTest, StallDiagnosticReportsLiveExecutorState) {
  KvStore store;
  store.Upsert(5, Record{50});
  ProcedureRegistry registry;
  registry.Register(200, "read_one", [](TxnContext& ctx) {
    (void)ctx.Get(5);
    return Status::Ok();
  });
  Machine m(0, 2, &store, &registry, [](MachineId, Message) {});
  m.StartTPart();

  // One plan whose only read awaits forward-push <5, v7> from machine 1 —
  // a push nobody has sent: the executor blocks inside the gather phase.
  TxnPlan plan;
  plan.txn = 1;
  plan.machine = 0;
  ReadStep r;
  r.key = 5;
  r.kind = ReadSourceKind::kPush;
  r.src_txn = 7;
  r.src_machine = 1;
  r.provider_txn = 7;
  plan.reads.push_back(r);
  TxnSpec spec;
  spec.id = 1;
  spec.proc = 200;
  spec.rw.reads = {5};
  std::vector<Machine::PlanItem> items;
  items.push_back(Machine::PlanItem{plan, spec});
  m.EnqueueTPartEpoch(1, std::move(items));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The work queue is drained (the executor holds the item) but nothing
  // has executed: the diagnostic pinpoints a live machine wedged
  // mid-round rather than a dead or backlogged one.
  const std::string diag = m.StallDiagnostic();
  EXPECT_NE(diag.find("machine 0"), std::string::npos) << diag;
  EXPECT_NE(diag.find("state=live"), std::string::npos) << diag;
  EXPECT_NE(diag.find("work=0"), std::string::npos) << diag;
  EXPECT_NE(diag.find("executed=0"), std::string::npos) << diag;
  // Fence state rides along (no term witnessed, nothing dropped) ...
  EXPECT_NE(diag.find("fence_term=0"), std::string::npos) << diag;
  EXPECT_NE(diag.find("fenced=0"), std::string::npos) << diag;
  // ... and the cluster-installed context hook (per-link retry backlog,
  // resend-window depth, suspicion levels) is appended verbatim.
  m.set_diagnostic_context([] { return std::string(" fd{m1 phi=0.1}"); });
  EXPECT_NE(m.StallDiagnostic().find("fd{m1 phi=0.1}"), std::string::npos);
  m.set_diagnostic_context(nullptr);

  // Deliver the push; the executor unblocks and the round drains.
  Message push;
  push.type = Message::Type::kPushVersion;
  push.key = 5;
  push.version = 7;
  push.dst_txn = 1;
  push.value = Record{70};
  m.Deliver(std::move(push));
  m.FinishEnqueue();
  m.JoinExecutor();
  EXPECT_EQ(m.TakeResults().size(), 1u);
  m.Stop();
}

// ---------------------------------------------------------------------
// Zombie-leader fencing (DESIGN §4j): a leader that merely paused is
// revived after its successor's election and replays its in-flight
// traffic — a stale round, a stale plan-stream end marker, and a stale
// log append. Every machine and replica must drop the stale-term
// messages (a stale end marker would truncate the plan stream and
// silently diverge), leaving the run byte-identical to fault-free.
// ---------------------------------------------------------------------

TEST(FailoverTest, ZombieLeaderRevivalIsFenced) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    LocalClusterOptions opts = FailoverOpts(kind, 4);
    opts.crash.coordinator_revive_at = {7};
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    const RunSnapshot got = RunOnce(w, opts);
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state)
        << label << ": zombie traffic leaked through the term fence";
    ExpectFailedOver(got.out, 1);
    EXPECT_EQ(got.out.failover.zombie_revivals, 1u) << label;
    // The revival injects a stale round + a stale end marker to every
    // machine (it waits until all of them have witnessed the new term),
    // and a stale append to the successor replica.
    EXPECT_GE(got.out.failover.fenced_messages, 2 * w.num_machines) << label;
    EXPECT_GE(got.out.failover.fenced_appends, 1u) << label;
  }
}

TEST(FailoverTest, ZombieRevivalComposedWithWorkerCrashAndNetFaults) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = FailoverOpts(TransportKind::kInProcess, 5);
  opts.crash.coordinator_revive_at = {8};
  opts.crash.machine = 1;
  opts.crash.at_epoch = 5;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  AddNetFaults(opts);
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  ExpectFailedOver(got.out, 1);
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.failover.zombie_revivals, 1u);
  EXPECT_GE(got.out.failover.fenced_messages, 2 * w.num_machines);
}

// ---------------------------------------------------------------------
// Replication under reordering: the link layer delivers exactly once but
// a dropped packet's retry can land after its successors. Out-of-order
// appends must park (unapplied, unacked) until the gap fills, then apply
// in log order.
// ---------------------------------------------------------------------

TEST(FailoverTest, OutOfOrderAppendsParkUntilGapFills) {
  CoordinatorOptions copts;
  copts.standbys = 1;
  copts.election_timeout_us = 10'000'000;  // no elections during the test
  std::mutex mu;
  std::vector<Message> sent;
  CoordinatorReplicaSet set(copts, /*num_machines=*/2,
                            [&](MachineId, MachineId, Message m) {
                              std::lock_guard<std::mutex> lock(mu);
                              sent.push_back(std::move(m));
                            });
  set.Start();
  // Replicas sit at endpoints [2, 4): 2 is the leader, 3 the standby.
  const auto append = [&](std::uint64_t index) {
    Message m;
    m.type = Message::Type::kLogAppend;
    m.req_id = index;
    m.txn = static_cast<TxnId>(100 + index);
    m.epoch = 1;
    m.reply_to = 2;
    set.Deliver(1, std::move(m));
  };
  const auto acked = [&] {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::uint64_t> got;
    for (const Message& m : sent) {
      if (m.type == Message::Type::kLogAck && m.key == 0) {
        got.push_back(m.req_id);
      }
    }
    return got;
  };
  // Indices 2 and 1 arrive before 0: neither may apply or ack.
  append(2);
  append(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(acked().empty());
  // The gap-filling entry releases the whole parked run, in log order.
  append(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (acked().size() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(acked(), (std::vector<std::uint64_t>{0, 1, 2}));
  set.Shutdown();
}

// ---------------------------------------------------------------------
// Flight recorder: a coordinator failover dumps a post-mortem whose tail
// carries the election and term-start markers.
// ---------------------------------------------------------------------

TEST(FailoverTest, CoordinatorFailoverProducesLoadablePostmortem) {
#if defined(TPART_TRACING_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (TPART_DISABLE_TRACING)";
#endif
  obs::FlightRecorder rec;
  obs::InstallGlobalFlightRecorder(&rec);
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot got =
      RunOnce(w, FailoverOpts(TransportKind::kDirect, 5, /*standbys=*/2));
  obs::InstallGlobalFlightRecorder(nullptr);
  ExpectFailedOver(got.out, 1);

  ASSERT_GE(rec.dumps(), 1u);
  const std::string json = rec.last_dump_json();
  EXPECT_EQ(json.compare(0, 16, "{\"traceEvents\":["), 0)
      << json.substr(0, 200);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crash_stop\""), std::string::npos)
      << "leader crash-stop marker missing";
  EXPECT_NE(json.find("\"name\":\"election_won\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"term_start\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"failover\""), std::string::npos);
  // Causal order in the merged, time-sorted dump: crash before election
  // before the new term.
  const std::size_t crash_at = json.find("\"name\":\"crash_stop\"");
  const std::size_t won_at = json.find("\"name\":\"election_won\"");
  const std::size_t term_at = json.find("\"name\":\"term_start\"");
  EXPECT_LT(crash_at, won_at);
  EXPECT_LT(won_at, term_at);
}

// Satellite of the live-observability plane: each failover phase lands
// one observation in the phase histograms, so multi-failover runs
// aggregate into p50/p99 instead of overwriting a last-value gauge.
TEST(FailoverTest, PhaseDurationsLandInHistograms) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot got = RunOnce(
      w, FailoverOpts(TransportKind::kDirect, 4, /*standbys=*/1));
  ExpectFailedOver(got.out, 1);
  const FailoverStats& f = got.out.failover;
  EXPECT_EQ(f.phase_detection_us.count(), 1u);
  EXPECT_EQ(f.phase_election_us.count(), 1u);
  EXPECT_EQ(f.phase_replan_us.count(), 1u);
  EXPECT_EQ(f.phase_plan_stream_gap_us.count(), 1u);
  // The histogram observations mirror the last-failover scalars.
  EXPECT_EQ(f.phase_detection_us.max_value(), f.detection_latency_us);
  EXPECT_EQ(f.phase_replan_us.max_value(), f.replan_us);
  EXPECT_GE(f.phase_plan_stream_gap_us.max_value(), f.replan_us);
}

// ---------------------------------------------------------------------
// FailoverStats surfaces.
// ---------------------------------------------------------------------

TEST(FailoverTest, FailoverStatsSummaryReportsElections) {
  FailoverStats stats;
  stats.committed_batches = 12;
  stats.log_appends = 12;
  stats.log_acks = 12;
  std::string s = stats.Summary();
  EXPECT_NE(s.find("replicas_committed_batches=12"), std::string::npos) << s;
  EXPECT_EQ(s.find("elections="), std::string::npos) << s;
  stats.coordinator_crashes = 1;
  stats.elections_won = 1;
  stats.detection_latency_us = 21000;
  stats.replan_us = 900;
  s = stats.Summary();
  EXPECT_NE(s.find("elections=1"), std::string::npos) << s;
  EXPECT_NE(s.find("detection_us=21000"), std::string::npos) << s;
}

}  // namespace
}  // namespace tpart
