#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ring_channel.h"

namespace tpart {
namespace {

// ---- SpscRing ---------------------------------------------------------

TEST(SpscRingTest, FillDrainWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  // Several laps around the ring so head/tail wrap the mask repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int lap = 0; lap < 100; ++lap) {
    while (ring.TryPush(int(next_in))) ++next_in;
    EXPECT_EQ(ring.size(), 4u);
    int v;
    EXPECT_FALSE(ring.TryPush(int(next_in)));  // full
    while (ring.TryPop(v)) EXPECT_EQ(v, next_out++);
    EXPECT_FALSE(ring.TryPop(v));  // empty
    EXPECT_EQ(next_in, next_out);
  }
  EXPECT_EQ(next_in, 400);
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

// Producer and consumer race across the full/empty boundaries; run under
// TSan this is the memory-ordering proof for the acquire/release pair.
TEST(SpscRingTest, ThreadedFifo) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < kCount) {
    std::uint64_t v;
    if (ring.TryPop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  std::uint64_t v;
  EXPECT_FALSE(ring.TryPop(v));
}

TEST(SpscRingTest, MoveOnlyPayloadReleasedOnPop) {
  SpscRing<std::string> ring(2);
  ASSERT_TRUE(ring.TryPush(std::string(1000, 'x')));
  std::string out;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out.size(), 1000u);
}

// ---- MpscRing ---------------------------------------------------------

TEST(MpscRingTest, FullAndEmptySingleThread) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(int(i)));
  EXPECT_FALSE(ring.TryPush(99));
  int v;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(v));
}

TEST(MpscRingTest, MultiProducerPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 50000;
  MpscRing<std::uint64_t> ring(128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.TryPush(std::uint64_t(tagged))) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v;
    if (!ring.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffull;
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++received;
  }
  for (auto& t : producers) t.join();
}

// ---- RingChannel ------------------------------------------------------

TEST(RingChannelTest, SendReceiveBasic) {
  RingChannel<int> ch;
  EXPECT_FALSE(ch.Send(1));  // no spill
  ch.Send(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.Receive(), 1);
  EXPECT_EQ(ch.Receive(), 2);
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.high_water(), 2u);
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(RingChannelTest, OverflowSpillKeepsFifo) {
  RingChannel<int> ch(4);  // tiny ring forces the overflow path
  for (int i = 0; i < 100; ++i) {
    if (i >= 4) {
      // Ring full: these must report the spill.
      EXPECT_TRUE(ch.Send(int(i)));
    } else {
      ch.Send(int(i));
    }
  }
  EXPECT_EQ(ch.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ch.Receive(), i);
  // Overflow drained: the fast path is active again.
  EXPECT_FALSE(ch.Send(7));
  EXPECT_EQ(ch.Receive(), 7);
}

TEST(RingChannelTest, ReceiveForTimesOut) {
  RingChannel<int> ch;
  const auto start = std::chrono::steady_clock::now();
  auto r = ch.ReceiveFor(std::chrono::microseconds(20000));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(elapsed, std::chrono::microseconds(19000));
}

TEST(RingChannelTest, ReceiveForGetsLateMessage) {
  RingChannel<int> ch;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.Send(42);
  });
  auto r = ch.ReceiveFor(std::chrono::seconds(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  sender.join();
}

// The production shape: several producers hammering one parked/polling
// consumer across ring-full boundaries. Run under TSan this exercises
// the spill path, the Dekker sleep handshake, and the overflow drain.
TEST(RingChannelTest, MultiProducerBlockingConsumer) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 25000;
  RingChannel<std::uint64_t> ch(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ch.Send((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  for (std::uint64_t n = 0; n < kProducers * kPerProducer; ++n) {
    const std::uint64_t v = ch.Receive();
    const int p = static_cast<int>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffull;
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    ++next[p];
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_FALSE(ch.TryReceive().has_value());
}

}  // namespace
}  // namespace tpart
