// Elastic-membership tests: live partition migration that grows or
// shrinks the active machine set mid-run at a sink-epoch cut. A resized
// streaming run must finish with byte-identical results and final store
// state to the fixed-membership run of the same workload — on every
// transport, under seeded network faults, and with a crash injected
// during the migration window. Records actually move: after a grow the
// added machine owns part of the database; after a shrink the removed
// machine owns nothing.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "elastic/elastic_map.h"
#include "runtime/cluster.h"
#include "storage/kv_store.h"
#include "test_time.h"
#include "workload/micro.h"

namespace tpart {
namespace {

MicroOptions SmallMicro(std::size_t num_machines) {
  MicroOptions o;
  o.num_machines = num_machines;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 405;  // ~21 sinking rounds at sink_size 20
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

LocalClusterOptions ResizeOpts(TransportKind kind,
                               std::vector<LocalClusterOptions::ResizeEvent>
                                   events) {
  LocalClusterOptions opts = StreamingOpts(kind);
  opts.resize.events = std::move(events);
  return opts;
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

struct RunSnapshot {
  ClusterRunOutcome out;
  std::vector<std::pair<ObjectKey, Record>> state;
  /// Per-slot record counts after the run (who owns what).
  std::vector<std::size_t> slot_records;
};

RunSnapshot RunOnce(const Workload& w, const LocalClusterOptions& opts) {
  LocalCluster cluster(&w, opts);
  RunSnapshot snap;
  snap.out = cluster.RunTPart();
  snap.state = cluster.store().Snapshot();
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    snap.slot_records.push_back(
        cluster.store().store(static_cast<MachineId>(m)).size());
  }
  return snap;
}

void ExpectMigrated(const ClusterRunOutcome& out, std::uint64_t steps,
                    std::size_t slots) {
  EXPECT_TRUE(out.fault.ok()) << out.fault.ToString();
  EXPECT_EQ(out.migration.membership_steps, steps);
  EXPECT_GE(out.migration.routes, steps);
  EXPECT_GT(out.migration.keys_moved, 0u);
  EXPECT_GT(out.migration.records_moved, 0u);
  EXPECT_GT(out.migration.bytes_shipped, 0u);
  EXPECT_GT(out.migration.chunks_shipped, 0u);
  EXPECT_EQ(out.migration.forced_checkpoints, steps * slots);
  EXPECT_GT(out.migration.barrier_us, 0u);
  // One barrier-pause observation per membership step, summing to the
  // scalar total (the live-observability phase histogram).
  EXPECT_EQ(out.migration.phase_barrier_us.count(), steps);
  EXPECT_EQ(static_cast<std::uint64_t>(out.migration.phase_barrier_us.sum()),
            out.migration.barrier_us);
}

// ---------------------------------------------------------------------
// Grow and shrink match the fixed-membership run byte for byte.
// ---------------------------------------------------------------------

TEST(ElasticityTest, GrowMatchesFixedMembershipRun) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  const RunSnapshot got =
      RunOnce(w, ResizeOpts(TransportKind::kDirect, {{4, +1}}));
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "grown run's final store diverged from the fixed-membership run";
  EXPECT_EQ(got.out.committed, ref.out.committed);
  EXPECT_EQ(got.out.aborted, ref.out.aborted);
  ExpectMigrated(got.out, 1, 3);
  EXPECT_EQ(got.out.migration.last_cut_epoch, 4u);
  // The added machine really owns part of the database now.
  ASSERT_EQ(got.slot_records.size(), 3u);
  EXPECT_GT(got.slot_records[2], 0u);
}

TEST(ElasticityTest, ShrinkMatchesFixedMembershipRun) {
  const Workload w = MakeMicroWorkload(SmallMicro(3));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  const RunSnapshot got =
      RunOnce(w, ResizeOpts(TransportKind::kDirect, {{5, -1}}));
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "shrunk run's final store diverged from the fixed-membership run";
  ExpectMigrated(got.out, 1, 3);
  // The removed machine handed every record off before leaving.
  ASSERT_EQ(got.slot_records.size(), 3u);
  EXPECT_EQ(got.slot_records[2], 0u);
  EXPECT_GT(got.slot_records[0] + got.slot_records[1], 0u);
}

TEST(ElasticityTest, GrowThenShrinkAcrossTransports) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (const TransportKind kind :
       {TransportKind::kDirect, TransportKind::kInProcess,
        TransportKind::kTcp}) {
    const RunSnapshot got =
        RunOnce(w, ResizeOpts(kind, {{4, +1}, {9, -1}}));
    const std::string label =
        "transport " + std::to_string(static_cast<int>(kind));
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    ExpectMigrated(got.out, 2, 3);
    EXPECT_EQ(got.out.migration.last_cut_epoch, 9u);
    // Membership returned to two machines: the third slot ends empty.
    ASSERT_EQ(got.slot_records.size(), 3u) << label;
    EXPECT_EQ(got.slot_records[2], 0u) << label;
  }
}

// ---------------------------------------------------------------------
// Fault tolerance: migration composes with net faults and crashes.
// ---------------------------------------------------------------------

TEST(ElasticityTest, MigrationUnderSeededNetFaults) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts =
      ResizeOpts(TransportKind::kInProcess, {{4, +1}, {9, -1}});
  opts.transport.faults.seed = 0xE1A5;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "migration under drop/dup/delay diverged";
  ExpectMigrated(got.out, 2, 3);
}

TEST(ElasticityTest, CrashDuringMigrationWindowOnSource) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  // Machine 1 crash-stops exactly when round 4 — the cut — drains at it,
  // i.e. inside the migration barrier's quiesce. The barrier must ride
  // out detection + §5.4 recovery, then still move machine 1's keys.
  LocalClusterOptions opts =
      ResizeOpts(TransportKind::kInProcess, {{4, +1}});
  opts.crash.machine = 1;
  opts.crash.at_epoch = 4;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "crash during the migration window diverged";
  ExpectMigrated(got.out, 1, 3);
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.recovery.crashed_machine, 1u);
  EXPECT_GT(got.slot_records[2], 0u);
}

TEST(ElasticityTest, CrashOnGrownMachineAfterInstall) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  // Machine 2 only exists (gets slices) after the grow at epoch 4; its
  // crash trigger fires on the first post-migration round it drains. The
  // forced cut checkpoint must hand recovery the migrated keys — without
  // it, replay would rebuild an empty partition.
  LocalClusterOptions opts =
      ResizeOpts(TransportKind::kInProcess, {{4, +1}});
  opts.crash.machine = 2;
  opts.crash.at_epoch = 5;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "crash of the grown machine after install diverged";
  ExpectMigrated(got.out, 1, 3);
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.recovery.crashed_machine, 2u);
  EXPECT_GT(got.out.recovery.checkpoint_records, 0u)
      << "recovery should restore the migrated records from the forced "
         "cut checkpoint";
  EXPECT_GT(got.slot_records[2], 0u);
}

TEST(ElasticityTest, ResizeComposesWithSeededChaos) {
  const Workload w = MakeMicroWorkload(SmallMicro(3));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts =
      ResizeOpts(TransportKind::kInProcess, {{7, +1}});
  const std::string schedule = ApplySeededChaos(7, 3, 21, opts);
  SCOPED_TRACE(schedule);
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state) << "resize + chaos matrix diverged";
  ExpectMigrated(got.out, 1, 4);
  EXPECT_EQ(got.out.recovery.crashes_injected, 3u);
  EXPECT_GT(got.slot_records[3], 0u);
}

// ---------------------------------------------------------------------
// Hot-key policy: explicit placement, still byte-identical.
// ---------------------------------------------------------------------

TEST(ElasticityTest, HotKeyPolicyMatchesFixedRunAndPinsKeys) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts =
      ResizeOpts(TransportKind::kDirect, {{4, +1}});
  opts.resize.policy = MigrationPolicy::kHotKey;
  opts.resize.hot_keys = 16;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  ExpectSameResults(ref.out.results, out.results);
  EXPECT_EQ(cluster.store().Snapshot(), ref.state)
      << "hot-key migration diverged from the fixed-membership run";
  ExpectMigrated(out, 1, 3);
  // The scheduler filled the override table from observed frequencies
  // before publishing the step: on a 2 -> 3 grow every pinned key lands
  // on the added machine.
  const ElasticPartitionMap* map = cluster.elastic_map();
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->active_version(), 1u);
  const MembershipStep& step = map->step(0);
  EXPECT_FALSE(step.overrides.empty());
  EXPECT_LE(step.overrides.size(), opts.resize.hot_keys);
  for (const auto& [key, machine] : step.overrides) {
    (void)key;
    EXPECT_EQ(machine, 2u);
  }
}

// ---------------------------------------------------------------------
// Pipeline gauge satellite: the inbound-FIFO depth is reported.
// ---------------------------------------------------------------------

TEST(ElasticityTest, ReportsMachineInboundHighWater) {
  const Workload w = MakeMicroWorkload(SmallMicro(2));
  const RunSnapshot got = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  EXPECT_GT(got.out.pipeline.machine_inbound_high_water, 0u);
}

}  // namespace
}  // namespace tpart
