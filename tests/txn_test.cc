#include <gtest/gtest.h>

#include "exec/serial_executor.h"
#include "txn/procedure.h"
#include "txn/rw_set.h"
#include "txn/txn.h"

namespace tpart {
namespace {

// ---- Key-set helpers ----------------------------------------------------

TEST(RwSetTest, NormalizeSortsAndDedups) {
  KeySet keys = {5, 1, 5, 3, 1};
  NormalizeKeySet(keys);
  EXPECT_EQ(keys, (KeySet{1, 3, 5}));
}

TEST(RwSetTest, ContainsAndIntersect) {
  const KeySet a = {1, 3, 5};
  const KeySet b = {2, 4, 5};
  const KeySet c = {2, 4, 6};
  EXPECT_TRUE(KeySetContains(a, 3));
  EXPECT_FALSE(KeySetContains(a, 2));
  EXPECT_TRUE(KeySetsIntersect(a, b));
  EXPECT_FALSE(KeySetsIntersect(a, c));
}

TEST(RwSetTest, UnionAndIntersection) {
  const KeySet a = {1, 3, 5};
  const std::vector<ObjectKey> b = {3, 4};
  EXPECT_EQ(KeySetUnion(a, b), (std::vector<ObjectKey>{1, 3, 4, 5}));
  EXPECT_EQ(KeySetIntersection(a, b), (std::vector<ObjectKey>{3}));
}

TEST(RwSetTest, AllKeysIsFootprint) {
  RwSet rw;
  rw.reads = {2, 1};
  rw.writes = {3, 2};
  rw.Normalize();
  EXPECT_EQ(rw.AllKeys(), (std::vector<ObjectKey>{1, 2, 3}));
  EXPECT_TRUE(rw.ReadsKey(1));
  EXPECT_TRUE(rw.WritesKey(3));
  EXPECT_FALSE(rw.WritesKey(1));
}

// ---- TxnSpec / dummies -----------------------------------------------------

TEST(TxnSpecTest, DummyHasZeroWeight) {
  const TxnSpec dummy = MakeDummyTxn();
  EXPECT_TRUE(dummy.is_dummy);
  EXPECT_EQ(dummy.node_weight, 0.0);
}

TEST(TxnSpecTest, ToStringMentionsSets) {
  TxnSpec spec;
  spec.id = 3;
  spec.rw.reads = {1};
  spec.rw.writes = {2};
  EXPECT_EQ(spec.ToString(), "T3 proc=0 R{1} W{2}");
}

// ---- ProcedureRegistry / RunProcedure ---------------------------------------

TEST(ProcedureTest, RegistryLookup) {
  ProcedureRegistry reg;
  reg.Register(1, "noop", [](TxnContext&) { return Status::Ok(); });
  EXPECT_NE(reg.Find(1), nullptr);
  EXPECT_EQ(reg.Find(2), nullptr);
  EXPECT_EQ(reg.Name(1), "noop");
  EXPECT_EQ(reg.Name(2), "<unknown>");
}

TxnSpec SpecWith(std::vector<ObjectKey> reads, std::vector<ObjectKey> writes,
                 ProcId proc = 1) {
  TxnSpec spec;
  spec.id = 1;
  spec.proc = proc;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

TEST(ProcedureTest, CommitCollectsOutput) {
  ProcedureRegistry reg;
  reg.Register(1, "emit", [](TxnContext& ctx) {
    ctx.EmitOutput(42);
    ctx.EmitOutput(7);
    return Status::Ok();
  });
  const TxnSpec spec = SpecWith({}, {});
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  auto result = RunProcedure(reg, spec, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->output, (std::vector<std::int64_t>{42, 7}));
}

TEST(ProcedureTest, LogicAbortIsNotAnError) {
  ProcedureRegistry reg;
  reg.Register(1, "abort",
               [](TxnContext&) { return Status::Aborted("logic"); });
  const TxnSpec spec = SpecWith({}, {});
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  auto result = RunProcedure(reg, spec, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
}

TEST(ProcedureTest, EngineErrorsPropagate) {
  ProcedureRegistry reg;
  reg.Register(1, "bad",
               [](TxnContext&) { return Status::Internal("engine"); });
  const TxnSpec spec = SpecWith({}, {});
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  EXPECT_FALSE(RunProcedure(reg, spec, ctx).ok());
}

TEST(ProcedureTest, UnregisteredProcedureFails) {
  ProcedureRegistry reg;
  const TxnSpec spec = SpecWith({}, {}, /*proc=*/9);
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  EXPECT_FALSE(RunProcedure(reg, spec, ctx).ok());
}

// ---- GatheredTxnContext ------------------------------------------------------

TEST(GatheredContextTest, ReadsDeclaredKeysOnly) {
  const TxnSpec spec = SpecWith({1}, {2});
  ExecScratch scratch;
  scratch.values.emplace(1, Record{10});
  GatheredTxnContext ctx(&spec, &scratch);
  EXPECT_EQ(ctx.Get(1)->field(0), 10);
  EXPECT_TRUE(ctx.Get(2).ok());  // write-set key readable (read-own-writes)
  EXPECT_EQ(ctx.Get(3).status().code(), StatusCode::kFailedPrecondition);
}

TEST(GatheredContextTest, MissingKeyIsAbsent) {
  const TxnSpec spec = SpecWith({1}, {});
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  EXPECT_TRUE(ctx.Get(1)->is_absent());
}

TEST(GatheredContextTest, WriteOutsideSetRejected) {
  const TxnSpec spec = SpecWith({1}, {2});
  ExecScratch scratch;
  GatheredTxnContext ctx(&spec, &scratch);
  EXPECT_TRUE(ctx.Put(2, Record{1}).ok());
  EXPECT_EQ(ctx.Put(1, Record{1}).code(), StatusCode::kFailedPrecondition);
}

TEST(GatheredContextTest, ReadYourOwnWrites) {
  const TxnSpec spec = SpecWith({1}, {1});
  ExecScratch scratch;
  scratch.values.emplace(1, Record{10});
  GatheredTxnContext ctx(&spec, &scratch);
  ASSERT_TRUE(ctx.Put(1, Record{20}).ok());
  EXPECT_EQ(ctx.Get(1)->field(0), 20);
}

TEST(GatheredContextTest, OutgoingValueFollowsCommitDecision) {
  const TxnSpec spec = SpecWith({1}, {1});
  ExecScratch scratch;
  scratch.values.emplace(1, Record{10});
  GatheredTxnContext ctx(&spec, &scratch);
  ASSERT_TRUE(ctx.Put(1, Record{20}).ok());
  // Committed: forward the new version.
  EXPECT_EQ(ctx.OutgoingValue(1, /*committed=*/true).field(0), 20);
  // Aborted: "push the read data forward" (§5.3).
  EXPECT_EQ(ctx.OutgoingValue(1, /*committed=*/false).field(0), 10);
}

// ---- Serial reference engine ------------------------------------------------

TEST(SerialExecutorTest, AppliesCommittedWritesOnly) {
  ProcedureRegistry reg;
  reg.Register(1, "incr", [](TxnContext& ctx) {
    const ObjectKey key = static_cast<ObjectKey>(ctx.params()[0]);
    TPART_ASSIGN_OR_RETURN(Record r, ctx.Get(key));
    r.add_to_field(0, 1);
    TPART_RETURN_IF_ERROR(ctx.Put(key, std::move(r)));
    if (ctx.params()[1] != 0) return Status::Aborted("flagged");
    return Status::Ok();
  });

  KvStore store;
  store.Upsert(1, Record{0});
  std::vector<TxnSpec> txns;
  for (int i = 0; i < 5; ++i) {
    TxnSpec spec = SpecWith({1}, {1});
    spec.id = static_cast<TxnId>(i + 1);
    spec.params = {1, i == 2 ? 1 : 0};  // third txn aborts
    txns.push_back(std::move(spec));
  }
  auto result = RunSerial(reg, txns, store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->committed, 4u);
  EXPECT_EQ(result->aborted, 1u);
  EXPECT_EQ(store.Read(1)->field(0), 4);
}

TEST(SerialExecutorTest, AbsentWriteDeletes) {
  ProcedureRegistry reg;
  reg.Register(1, "del", [](TxnContext& ctx) {
    return ctx.Put(1, Record::Absent());
  });
  KvStore store;
  store.Upsert(1, Record{5});
  TxnSpec spec = SpecWith({}, {1});
  auto result = RunSerial(reg, {spec}, store);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(store.Contains(1));
}

TEST(SerialExecutorTest, SkipsDummies) {
  ProcedureRegistry reg;
  KvStore store;
  auto result = RunSerial(reg, {MakeDummyTxn()}, store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->results.size(), 0u);
}

}  // namespace
}  // namespace tpart
