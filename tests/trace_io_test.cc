#include <gtest/gtest.h>

#include <sstream>

#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/trace_io.h"

namespace tpart {
namespace {

TEST(TraceIoTest, RoundTripsMicroTrace) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.num_txns = 50;
  const Workload w = MakeMicroWorkload(o);
  const auto txns = w.SequencedRequests();

  std::stringstream buf;
  WriteTrace(buf, txns);
  auto parsed = ReadTrace(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, txns[i].id);
    EXPECT_EQ((*parsed)[i].proc, txns[i].proc);
    EXPECT_EQ((*parsed)[i].params, txns[i].params);
    EXPECT_TRUE((*parsed)[i].rw == txns[i].rw);
    EXPECT_EQ((*parsed)[i].is_dummy, txns[i].is_dummy);
  }
}

TEST(TraceIoTest, RoundTripsTpccWithWideParams) {
  TpccOptions o;
  o.num_machines = 2;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 10;
  o.num_items = 50;
  o.num_txns = 60;
  const Workload w = MakeTpccWorkload(o);
  std::stringstream buf;
  WriteTrace(buf, w.SequencedRequests());
  auto parsed = ReadTrace(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 60u);
}

TEST(TraceIoTest, RoundTripsDummies) {
  TxnSpec dummy = MakeDummyTxn();
  dummy.id = 1;
  std::stringstream buf;
  WriteTrace(buf, {dummy});
  auto parsed = ReadTrace(buf);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_TRUE((*parsed)[0].is_dummy);
  EXPECT_EQ((*parsed)[0].node_weight, 0.0);
}

TEST(TraceIoTest, RejectsGarbage) {
  std::stringstream buf("not a trace\n");
  EXPECT_FALSE(ReadTrace(buf).ok());
}

TEST(TraceIoTest, RejectsTruncatedRecord) {
  std::stringstream buf("txn 1 proc 0 dummy 0 weight 1\nparams 0\n");
  EXPECT_FALSE(ReadTrace(buf).ok());  // missing reads/writes sections
}

TEST(TraceIoTest, EmptyInputIsEmptyTrace) {
  std::stringstream buf("");
  auto parsed = ReadTrace(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace tpart
