// Crash-fault-tolerance tests: deterministic crash injection, heartbeat
// failure detection, and in-run recovery (§5.4 made live). A streaming
// run with a machine crash-stopped mid-stream must detect the failure,
// rebuild the machine from its Zig-Zag checkpoint plus the request and
// network logs, re-ship the lost rounds, and finish with byte-identical
// results and final store state to the crash-free run — on every
// transport, including under seeded network faults. Without recovery,
// the failure must surface as a kUnavailable fault with a stall
// diagnostic instead of a hang.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "runtime/channel.h"
#include "runtime/cluster.h"
#include "runtime/storage_service.h"
#include "storage/kv_store.h"
#include "test_time.h"
#include "workload/micro.h"
#include "workload/tpcc.h"

namespace tpart {
namespace {

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = 405;
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

LocalClusterOptions CrashOpts(TransportKind kind, MachineId victim,
                              SinkEpoch at_epoch) {
  LocalClusterOptions opts = StreamingOpts(kind);
  opts.crash.machine = victim;
  opts.crash.at_epoch = at_epoch;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  return opts;
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

struct RunSnapshot {
  ClusterRunOutcome out;
  std::vector<std::pair<ObjectKey, Record>> state;
};

RunSnapshot RunOnce(const Workload& w, const LocalClusterOptions& opts) {
  LocalCluster cluster(&w, opts);
  RunSnapshot snap;
  snap.out = cluster.RunTPart();
  snap.state = cluster.store().Snapshot();
  return snap;
}

void ExpectRecovered(const ClusterRunOutcome& out, MachineId victim) {
  EXPECT_TRUE(out.fault.ok()) << out.fault.ToString();
  EXPECT_EQ(out.recovery.crashes_injected, 1u);
  EXPECT_EQ(out.recovery.crashed_machine, victim);
  EXPECT_GT(out.recovery.replayed_txns, 0u);
  EXPECT_GT(out.recovery.detection_latency_us, 0u);
  EXPECT_GT(out.recovery.checkpoint_records, 0u);
  EXPECT_GE(out.recovery.resent_rounds, 1u);
  EXPECT_GE(out.recovery.downtime_us, out.recovery.detection_latency_us);
}

// ---------------------------------------------------------------------
// Recovery: crashed runs match the crash-free run byte for byte.
// ---------------------------------------------------------------------

TEST(CrashTest, RecoveryMatchesCrashFreeRun) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  const RunSnapshot got =
      RunOnce(w, CrashOpts(TransportKind::kDirect, 1, 3));
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state)
      << "recovered final store diverged from the crash-free run";
  EXPECT_EQ(got.out.committed, ref.out.committed);
  EXPECT_EQ(got.out.aborted, ref.out.aborted);
  ExpectRecovered(got.out, 1);
}

TEST(CrashTest, ChaosMatrixAcrossVictimsEpochsTransportsAndFaults) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  struct Case {
    TransportKind kind;
    MachineId victim;
    SinkEpoch epoch;
    bool network_faults;
  };
  const Case cases[] = {
      {TransportKind::kDirect, 0, 2, false},
      {TransportKind::kDirect, 1, 5, false},
      {TransportKind::kDirect, 2, 8, false},
      {TransportKind::kInProcess, 1, 3, false},
      {TransportKind::kInProcess, 2, 4, true},
      {TransportKind::kTcp, 0, 5, false},
  };
  for (const Case& c : cases) {
    LocalClusterOptions opts = CrashOpts(c.kind, c.victim, c.epoch);
    if (c.network_faults) {
      // Crash + drop/dup/delay together: the reliability layer and the
      // idempotent round intake must compose. Delays stay far below the
      // detector deadline so only the real crash is ever declared.
      opts.transport.faults.seed = 0xC0FFEE;
      opts.transport.faults.drop_prob = 0.05;
      opts.transport.faults.duplicate_prob = 0.05;
      opts.transport.faults.delay_prob = 0.10;
      opts.transport.faults.max_delay_us = 1500;
      opts.transport.retry_timeout_us = 1000;
    }
    const RunSnapshot got = RunOnce(w, opts);
    const std::string label =
        "transport " + std::to_string(static_cast<int>(c.kind)) +
        " victim " + std::to_string(c.victim) + " epoch " +
        std::to_string(c.epoch);
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    ExpectRecovered(got.out, c.victim);
  }
}

TEST(CrashTest, MidRoundCrashReplaysPartialEpoch) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = CrashOpts(TransportKind::kInProcess, 1, 0);
  opts.crash.after_txns = 10;  // dies mid-round, not at a round boundary
  const RunSnapshot got = RunOnce(w, opts);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  ExpectRecovered(got.out, 1);
  // Exactly the logged prefix was replayed, deterministically.
  EXPECT_EQ(got.out.recovery.replayed_txns, 10u);
}

TEST(CrashTest, TpccCrashRecoveryOnEveryTransport) {
  TpccOptions o;
  o.num_machines = 3;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 100;
  o.num_txns = 300;
  o.abort_prob = 0.05;
  const Workload w = MakeTpccWorkload(o);
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  EXPECT_GT(ref.out.aborted, 0u);  // §5.3 abort path exercised too

  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    const RunSnapshot got = RunOnce(w, CrashOpts(kind, 1, 4));
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state)
        << "transport kind " << static_cast<int>(kind);
    EXPECT_EQ(got.out.committed, ref.out.committed);
    EXPECT_EQ(got.out.aborted, ref.out.aborted);
    ExpectRecovered(got.out, 1);
  }
}

TEST(CrashTest, CrashedRunIsDeterministicAcrossRuns) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const LocalClusterOptions opts = CrashOpts(TransportKind::kInProcess, 2, 4);
  const RunSnapshot first = RunOnce(w, opts);
  const RunSnapshot second = RunOnce(w, opts);
  ExpectSameResults(first.out.results, second.out.results);
  EXPECT_EQ(first.state, second.state);
  // The crash point is deterministic, so the replayed suffix is too.
  EXPECT_EQ(first.out.recovery.replayed_txns,
            second.out.recovery.replayed_txns);
  EXPECT_EQ(first.out.recovery.crash_epoch, second.out.recovery.crash_epoch);
}

// ---------------------------------------------------------------------
// Edge epochs: crash before any sink round, and after the last one.
// ---------------------------------------------------------------------

TEST(CrashTest, CrashAtStartBeforeAnySinkRoundRecovers) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = CrashOpts(TransportKind::kDirect, 1, 0);
  opts.crash.at_start = true;  // dies before executing anything at all
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.recovery.crashed_machine, 1);
  // Nothing executed before the crash: the replayed prefix is empty and
  // the whole stream is re-shipped.
  EXPECT_EQ(got.out.recovery.crash_epoch, 0u);
  EXPECT_GE(got.out.recovery.resent_rounds, 1u);
}

TEST(CrashTest, CrashAtFinalEpochAfterLastPlanRecovers) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  const SinkEpoch final_epoch =
      static_cast<SinkEpoch>(ref.out.pipeline.plans);
  ASSERT_GT(final_epoch, 0u);

  // Dies the moment the last sinking round drains — after every plan was
  // executed, before the stream-end drain completes. Recovery must
  // replay the full log and re-consume the end marker, never hang.
  const RunSnapshot got =
      RunOnce(w, CrashOpts(TransportKind::kDirect, 2, final_epoch));
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_EQ(got.out.recovery.crashes_injected, 1u);
  EXPECT_EQ(got.out.recovery.crash_epoch, final_epoch);
  EXPECT_GT(got.out.recovery.replayed_txns, 0u);
}

// ---------------------------------------------------------------------
// The seeded chaos matrix: sequential crashes of distinct machines, a
// repeat crash of a recovered machine, and a straggler that must never
// be declared failed — byte-identical on every transport.
// ---------------------------------------------------------------------

TEST(CrashTest, SeededChaosMatrixMatchesFaultFreeRunOnEveryTransport) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));
  const SinkEpoch span = static_cast<SinkEpoch>(ref.out.pipeline.plans);
  ASSERT_GE(span, 12u);

  struct Case {
    TransportKind kind;
    std::uint64_t seed;
    bool network_faults;
  };
  const Case cases[] = {
      {TransportKind::kDirect, 7, false},
      {TransportKind::kInProcess, 21, false},
      {TransportKind::kTcp, 7, false},
      {TransportKind::kInProcess, 7, true},
  };
  for (const Case& c : cases) {
    LocalClusterOptions opts = StreamingOpts(c.kind);
    opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
    opts.detector.deadline_us = test::ScaledUs(100000);
    const std::string schedule =
        ApplySeededChaos(c.seed, w.num_machines, span, opts);
    if (c.network_faults) {
      opts.transport.faults.seed = 0xC0FFEE;
      opts.transport.faults.drop_prob = 0.05;
      opts.transport.faults.duplicate_prob = 0.05;
      opts.transport.faults.delay_prob = 0.10;
      opts.transport.faults.max_delay_us = 1500;
      opts.transport.retry_timeout_us = 1000;
    }
    const std::string label = schedule + " on transport " +
                              std::to_string(static_cast<int>(c.kind));
    const RunSnapshot got = RunOnce(w, opts);
    EXPECT_TRUE(got.out.fault.ok())
        << label << ": " << got.out.fault.ToString();
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    // All three scheduled crashes fired and recovered (two distinct
    // victims plus the repeat of the first).
    EXPECT_EQ(got.out.recovery.crashes_injected, 3u) << label;
    EXPECT_GT(got.out.recovery.replayed_txns, 0u) << label;
  }
}

TEST(CrashTest, SeededChaosIsDeterministicForAFixedSeed) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions a = StreamingOpts(TransportKind::kDirect);
  LocalClusterOptions b = StreamingOpts(TransportKind::kDirect);
  const std::string sa = ApplySeededChaos(42, 3, 20, a);
  const std::string sb = ApplySeededChaos(42, 3, 20, b);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.crash.machine, b.crash.machine);
  EXPECT_EQ(a.crash.at_epoch, b.crash.at_epoch);
  ASSERT_EQ(a.crash.more.size(), 2u);
  ASSERT_EQ(b.crash.more.size(), 2u);
  EXPECT_EQ(a.crash.more[1].machine, a.crash.machine)
      << "third crash repeats the first victim";
  EXPECT_NE(a.crash.more[0].machine, a.crash.machine)
      << "second crash hits a different machine";
  EXPECT_LT(a.crash.at_epoch, a.crash.more[0].at_epoch);
  EXPECT_LT(a.crash.more[0].at_epoch, a.crash.more[1].at_epoch);
  EXPECT_TRUE(a.straggler.enabled());
  EXPECT_NE(a.straggler.machine, a.crash.machine);
  EXPECT_NE(a.straggler.machine, a.crash.more[0].machine);
}

TEST(CrashTest, StragglerDelaysHeartbeatsWithoutFalseFailure) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
  opts.detector.enabled = true;  // watchdog on, no crash scheduled
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  opts.straggler.machine = 1;
  opts.straggler.delay_us = opts.detector.deadline_us / 2;
  opts.straggler.period_us = 2 * opts.detector.deadline_us;
  const RunSnapshot got = RunOnce(w, opts);
  // Slow is not dead: no fault, no crash, byte-identical results.
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_EQ(got.out.recovery.crashes_injected, 0u);
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
}

// ---------------------------------------------------------------------
// Detection without recovery: fail loudly, never hang.
// ---------------------------------------------------------------------

TEST(CrashTest, DetectionOnlySurfacesUnavailableWithDiagnostic) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = CrashOpts(TransportKind::kDirect, 1, 2);
  opts.crash.recover = false;

  const auto t0 = std::chrono::steady_clock::now();
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_FALSE(out.fault.ok());
  EXPECT_EQ(out.fault.code(), StatusCode::kUnavailable);
  EXPECT_NE(out.fault.message().find("machine 1 failed"), std::string::npos)
      << out.fault.message();
  // The stall diagnostic names the dead machine's state and progress.
  EXPECT_NE(out.fault.message().find("state=down"), std::string::npos)
      << out.fault.message();
  EXPECT_NE(out.fault.message().find("executed="), std::string::npos)
      << out.fault.message();
  EXPECT_EQ(out.recovery.crashes_injected, 0u);
  // Detection, drain and teardown all happen promptly — no stall-timeout
  // or infinite hang on the way out.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// ---------------------------------------------------------------------
// Flight recorder: every declared fault ships a post-mortem whose tail
// carries the fault markers.
// ---------------------------------------------------------------------

bool LooksLikeChromeTrace(const std::string& json) {
  if (json.compare(0, 16, "{\"traceEvents\":[") != 0) return false;
  if (json.find("],\"displayTimeUnit\":\"ms\"}") == std::string::npos) {
    return false;
  }
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(CrashTest, ChaosCrashProducesLoadablePostmortem) {
#if defined(TPART_TRACING_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (TPART_DISABLE_TRACING)";
#endif
  obs::FlightRecorder rec;
  obs::InstallGlobalFlightRecorder(&rec);
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot got =
      RunOnce(w, CrashOpts(TransportKind::kDirect, 1, 3));
  obs::InstallGlobalFlightRecorder(nullptr);
  ExpectRecovered(got.out, 1);

  // The watchdog's stall diagnostic fired on the crashed machine and
  // dumped the black box.
  ASSERT_GE(rec.dumps(), 1u);
  const std::string json = rec.last_dump_json();
  EXPECT_TRUE(LooksLikeChromeTrace(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"name\":\"crash_stop\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"failure_declared\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"stall\""), std::string::npos);
  // The fault markers sit in the tail, after the steady-state stream.
  EXPECT_GT(json.find("\"name\":\"crash_stop\""),
            json.find("\"name\":\"admit_batch\""));
}

TEST(CrashTest, InducedStallWithoutRecoveryDumpsPostmortem) {
#if defined(TPART_TRACING_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (TPART_DISABLE_TRACING)";
#endif
  obs::FlightRecorder rec;
  obs::InstallGlobalFlightRecorder(&rec);
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = CrashOpts(TransportKind::kDirect, 1, 2);
  opts.crash.recover = false;  // fault surfaces instead of recovering
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  obs::InstallGlobalFlightRecorder(nullptr);
  EXPECT_FALSE(out.fault.ok());

  ASSERT_GE(rec.dumps(), 1u);
  const std::string json = rec.last_dump_json();
  EXPECT_TRUE(LooksLikeChromeTrace(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"name\":\"failure_declared\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"stall\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Deadline-aware primitives.
// ---------------------------------------------------------------------

TEST(CrashTest, ChannelReceiveForTimesOutAndDelivers) {
  BlockingQueue<int> q;
  const Result<int> none = q.ReceiveFor(std::chrono::microseconds(2000));
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kUnavailable);

  q.Send(7);
  const Result<int> got = q.ReceiveFor(std::chrono::microseconds(2000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 7);
}

TEST(CrashTest, StorageBlockingReadForTimesOutOnMissingVersion) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);

  // The initial version is current: served immediately.
  const Result<Record> now =
      svc.BlockingReadFor(1, kInvalidTxnId, std::chrono::microseconds(2000));
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->field(0), 10);

  // Version 7 never materialises (its producer "crashed").
  const Result<Record> never =
      svc.BlockingReadFor(1, /*expected_version=*/7,
                          std::chrono::microseconds(2000));
  ASSERT_FALSE(never.ok());
  EXPECT_EQ(never.status().code(), StatusCode::kUnavailable);

  // A late write-back still applies cleanly; the parked read's value is
  // discarded, not crashed on.
  svc.ApplyWriteBack(1, /*version=*/7, /*replaces=*/kInvalidTxnId,
                     Record{70}, /*awaits=*/0, /*sticky=*/false,
                     /*epoch=*/1);
  const Result<Record> after =
      svc.BlockingReadFor(1, /*expected_version=*/7,
                          std::chrono::microseconds(2000));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->field(0), 70);
}

TEST(CrashTest, RecoveryStatsSummaryReportsCrashes) {
  RecoveryStats stats;
  EXPECT_EQ(stats.Summary(), "crashes=0");
  stats.crashes_injected = 1;
  stats.crashed_machine = 2;
  stats.crash_epoch = 5;
  stats.detection_latency_us = 1000;
  stats.replayed_txns = 42;
  stats.resent_rounds = 3;
  stats.checkpoint_records = 200;
  stats.downtime_us = 2500;
  const std::string s = stats.Summary();
  EXPECT_NE(s.find("machine=2"), std::string::npos) << s;
  EXPECT_NE(s.find("replayed=42"), std::string::npos) << s;
  EXPECT_NE(s.find("downtime_us=2500"), std::string::npos) << s;
}

}  // namespace
}  // namespace tpart
