#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"

namespace tpart {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());

  m[7] = 70;
  m[8] = 80;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.count(8), 1u);
  EXPECT_TRUE(m.contains(8));
  EXPECT_FALSE(m.contains(9));

  auto it = m.find(7);
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->second, 70);

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.at(8), 80);
}

TEST(FlatMapTest, EmplaceDoesNotOverwrite) {
  FlatMap<std::uint64_t, std::string> m;
  auto [it1, ins1] = m.emplace(1, std::string("first"));
  EXPECT_TRUE(ins1);
  auto [it2, ins2] = m.emplace(1, std::string("second"));
  EXPECT_FALSE(ins2);
  EXPECT_EQ(it2->second, "first");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t, std::vector<int>> m;
  EXPECT_TRUE(m[5].empty());
  m[5].push_back(1);
  EXPECT_EQ(m[5].size(), 1u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, PairAndTupleKeys) {
  FlatMap<std::pair<std::uint64_t, std::uint64_t>, int> pm;
  pm[{1, 2}] = 12;
  pm[{2, 1}] = 21;
  EXPECT_EQ(pm.at({1, 2}), 12);
  EXPECT_EQ(pm.at({2, 1}), 21);

  FlatMap<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, int> tm;
  tm[{1, 2, 3}] = 123;
  tm[{3, 2, 1}] = 321;
  EXPECT_EQ(tm.at({1, 2, 3}), 123);
  EXPECT_EQ(tm.at({3, 2, 1}), 321);
  EXPECT_EQ(tm.count({2, 2, 2}), 0u);
}

TEST(FlatMapTest, IterationVisitsEveryElementOnce) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = k * 10;
  std::vector<std::uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(v, k * 10);
    seen.push_back(k);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(seen[k], k);
}

TEST(FlatMapTest, ClearReleasesAndReuses) {
  FlatMap<std::uint64_t, std::string> m;
  for (std::uint64_t k = 0; k < 50; ++k) m[k] = "v" + std::to_string(k);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), m.end());
  m[3] = "again";
  EXPECT_EQ(m.at(3), "again");
}

TEST(FlatMapTest, ReserveAvoidsGrowth) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(m.at(k), (int)k);
}

// The load-bearing property: backward-shift deletion must keep every
// remaining probe chain intact through arbitrary insert/erase
// interleavings, including clusters that wrap around the table end.
TEST(FlatMapTest, RandomizedAgainstUnorderedMap) {
  std::mt19937_64 rng(20260809);
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  // Small key space forces dense tables, collisions, and wrapping.
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = rng() % 512;
    switch (rng() % 4) {
      case 0:
      case 1: {  // upsert
        const std::uint64_t val = rng();
        m[key] = val;
        ref[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(m.erase(key), ref.erase(key));
        break;
      }
      case 3: {  // lookup
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(m.find(key), m.end());
        } else {
          ASSERT_NE(m.find(key), m.end());
          EXPECT_EQ(m.at(key), it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Full final sweep both ways.
  for (const auto& [k, v] : ref) EXPECT_EQ(m.at(k), v);
  std::size_t visited = 0;
  for (const auto& [k, v] : m) {
    ASSERT_TRUE(ref.count(k));
    EXPECT_EQ(ref.at(k), v);
    ++visited;
  }
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMapTest, EraseByIteratorAfterFind) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 32; ++k) m[k] = static_cast<int>(k);
  auto it = m.find(17);
  ASSERT_NE(it, m.end());
  m.erase(it);
  EXPECT_EQ(m.size(), 31u);
  EXPECT_EQ(m.find(17), m.end());
  for (std::uint64_t k = 0; k < 32; ++k) {
    if (k != 17) {
      EXPECT_EQ(m.at(k), (int)k);
    }
  }
}

TEST(FlatMapTest, DeterministicIterationOrder) {
  // Same operation history => same iteration order (the cross-transport
  // byte-identity oracle relies on this).
  auto build = [] {
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 200; k += 3) m[k * 97 + 5] = (int)k;
    for (std::uint64_t k = 0; k < 200; k += 6) m.erase(k * 97 + 5);
    return m;
  };
  const FlatMap<std::uint64_t, int> a = build();
  const FlatMap<std::uint64_t, int> b = build();
  std::vector<std::uint64_t> ka, kb;
  for (const auto& [k, v] : a) ka.push_back(k);
  for (const auto& [k, v] : b) kb.push_back(k);
  EXPECT_EQ(ka, kb);
}

}  // namespace
}  // namespace tpart
