// Reproduces the paper's worked example (Figure 3, §3.1-§3.4, §5.2):
// eight transactions over objects A..G on two machines, sunk with batch
// size 6, then two more arrivals and a second sinking round. Every plan
// line asserted here corresponds to a line of the push plans printed in
// the paper.

#include <gtest/gtest.h>

#include "storage/data_partition.h"
#include "tgraph/tgraph.h"

namespace tpart {
namespace {

// Objects.
constexpr ObjectKey A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6;

// Machines: S1 = machine 0 holds {C, D}; S2 = machine 1 holds the rest.
std::shared_ptr<const DataPartitionMap> MakeFig3Map() {
  auto fallback = std::make_shared<HashPartitionMap>(2);
  auto map = std::make_shared<LookupPartitionMap>(2, fallback);
  map->Assign(C, 0);
  map->Assign(D, 0);
  for (const ObjectKey k : {A, B, E, F, G}) map->Assign(k, 1);
  return map;
}

TxnSpec Txn(TxnId id, std::vector<ObjectKey> reads,
            std::vector<ObjectKey> writes) {
  TxnSpec spec;
  spec.id = id;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test() : graph_(MakeOptions(), MakeFig3Map()) {}

  static TGraph::Options MakeOptions() {
    TGraph::Options o;
    o.num_machines = 2;
    // The example has blind writes (T1: W{A,B}) and no sticky cache.
    o.read_own_writes = false;
    o.sticky_cache = false;
    return o;
  }

  void AddPaperTxns() {
    graph_.AddTxn(Txn(1, {}, {A, B}));
    graph_.AddTxn(Txn(2, {B, C}, {C}));
    graph_.AddTxn(Txn(3, {C}, {G}));
    graph_.AddTxn(Txn(4, {A}, {A, E}));
    graph_.AddTxn(Txn(5, {B, C}, {B, C}));
    graph_.AddTxn(Txn(6, {C}, {D}));
    graph_.AddTxn(Txn(7, {}, {G}));
    graph_.AddTxn(Txn(8, {A, B}, {F}));
  }

  void AssignFig3() {
    // Partitioning as drawn: {T2, T3, T5, T6} with S1; {T1, T4} with S2.
    for (const TxnId t : {2, 3, 5, 6}) graph_.mutable_node(t).assigned = 0;
    for (const TxnId t : {1, 4, 7, 8}) graph_.mutable_node(t).assigned = 1;
  }

  static const TxnPlan& PlanOf(const SinkPlan& plan, TxnId id) {
    for (const auto& p : plan.txns) {
      if (p.txn == id) return p;
    }
    ADD_FAILURE() << "no plan for T" << id;
    static TxnPlan empty;
    return empty;
  }

  TGraph graph_;
};

TEST_F(Figure3Test, FirstSinkMatchesPaperPlans) {
  AddPaperTxns();
  AssignFig3();
  const SinkPlan plan = graph_.Sink(6, 1);
  EXPECT_EQ(plan.epoch, 1u);
  ASSERT_EQ(plan.txns.size(), 6u);

  // "T1: Write cache: <A, T1, T4>; Push to S1: <B, T1, T2>, <B, T1, T5>."
  {
    const TxnPlan& p = PlanOf(plan, 1);
    EXPECT_EQ(p.machine, 1u);
    EXPECT_TRUE(p.reads.empty());
    ASSERT_EQ(p.pushes.size(), 2u);
    EXPECT_EQ(p.pushes[0], (PushStep{B, 2, 0, 1}));
    EXPECT_EQ(p.pushes[1], (PushStep{B, 5, 0, 1}));
    ASSERT_EQ(p.local_versions.size(), 1u);
    EXPECT_EQ(p.local_versions[0], (LocalVersionStep{A, 4, 1}));
    EXPECT_TRUE(p.cache_publishes.empty());
    EXPECT_TRUE(p.write_backs.empty());  // A, B superseded by T4, T5
  }

  // "T2: Read B from cache; C from storage. Write C to cache."
  {
    const TxnPlan& p = PlanOf(plan, 2);
    EXPECT_EQ(p.machine, 0u);
    ASSERT_EQ(p.reads.size(), 2u);
    EXPECT_EQ(p.reads[0].key, B);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kPush);
    EXPECT_EQ(p.reads[0].src_txn, 1u);
    EXPECT_EQ(p.reads[0].src_machine, 1u);
    EXPECT_EQ(p.reads[1].key, C);
    EXPECT_EQ(p.reads[1].kind, ReadSourceKind::kStorage);
    EXPECT_EQ(p.reads[1].src_machine, 0u);  // local storage
    EXPECT_EQ(p.reads[1].src_txn, kInvalidTxnId);  // initial version
    // T2's version of C hands off locally to T3 and T5.
    ASSERT_EQ(p.local_versions.size(), 2u);
    EXPECT_EQ(p.local_versions[0], (LocalVersionStep{C, 3, 2}));
    EXPECT_EQ(p.local_versions[1], (LocalVersionStep{C, 5, 2}));
    EXPECT_TRUE(p.write_backs.empty());
  }

  // "T3: Read C from cache." — and NO storage write for G: the
  // writing-back-the-latest principle (§4.2) leaves G's write-back to the
  // later writer T7.
  {
    const TxnPlan& p = PlanOf(plan, 3);
    ASSERT_EQ(p.reads.size(), 1u);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p.reads[0].src_txn, 2u);
    EXPECT_TRUE(p.write_backs.empty());
    EXPECT_TRUE(p.cache_publishes.empty());
  }

  // "T4: Read cache: <A, T1, T4>; Write cache: <A, Sink1>; storage: E."
  {
    const TxnPlan& p = PlanOf(plan, 4);
    EXPECT_EQ(p.machine, 1u);
    ASSERT_EQ(p.reads.size(), 1u);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p.reads[0].src_txn, 1u);
    ASSERT_EQ(p.cache_publishes.size(), 1u);
    EXPECT_EQ(p.cache_publishes[0], (CachePublishStep{A, 1}));
    ASSERT_EQ(p.write_backs.size(), 1u);
    EXPECT_EQ(p.write_backs[0].key, E);
    EXPECT_EQ(p.write_backs[0].home, 1u);
    EXPECT_EQ(p.write_backs[0].version_txn, 4u);
  }

  // "T5: Read B, C from cache. Write B, C to cache." — B published as
  // <B, Sink1> for the unsunk T8; C handed to T6 locally.
  {
    const TxnPlan& p = PlanOf(plan, 5);
    ASSERT_EQ(p.reads.size(), 2u);
    EXPECT_EQ(p.reads[0].key, B);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kPush);
    EXPECT_EQ(p.reads[1].key, C);
    EXPECT_EQ(p.reads[1].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p.reads[1].src_txn, 2u);
    ASSERT_EQ(p.local_versions.size(), 1u);
    EXPECT_EQ(p.local_versions[0], (LocalVersionStep{C, 6, 5}));
    ASSERT_EQ(p.cache_publishes.size(), 1u);
    EXPECT_EQ(p.cache_publishes[0], (CachePublishStep{B, 1}));
    EXPECT_TRUE(p.write_backs.empty());
  }

  // "T6: Read C from cache. Write C, D to storage." — T6 carries the
  // write-back of C although it never wrote it (§3.1: "even if T6 does
  // not write C, it needs to write back C").
  {
    const TxnPlan& p = PlanOf(plan, 6);
    ASSERT_EQ(p.reads.size(), 1u);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p.reads[0].src_txn, 5u);
    ASSERT_EQ(p.write_backs.size(), 2u);
    EXPECT_EQ(p.write_backs[0].key, C);
    EXPECT_EQ(p.write_backs[0].version_txn, 5u);
    EXPECT_EQ(p.write_backs[0].home, 0u);
    EXPECT_EQ(p.write_backs[1].key, D);
    EXPECT_EQ(p.write_backs[1].version_txn, 6u);
  }

  EXPECT_EQ(graph_.num_unsunk(), 2u);  // T7, T8 remain (Fig. 3(b))
}

TEST_F(Figure3Test, SecondRoundMatchesFigure3c) {
  AddPaperTxns();
  AssignFig3();
  graph_.Sink(6, 1);

  // Fig. 3(c): "suppose two new transactions arrive: T9: R{B,C,D}, W{B};
  // T10: R{E,F,G}."
  graph_.AddTxn(Txn(9, {B, C, D}, {B}));
  graph_.AddTxn(Txn(10, {E, F, G}, {}));

  graph_.mutable_node(7).assigned = 1;
  graph_.mutable_node(8).assigned = 1;
  graph_.mutable_node(9).assigned = 0;
  graph_.mutable_node(10).assigned = 1;
  const SinkPlan plan = graph_.Sink(4, 2);
  ASSERT_EQ(plan.txns.size(), 4u);

  // "T8: Read cache: <A, Sink1>, <B, Sink1>" — A locally (published by
  // T4 on machine 1), B remotely (published by T5 on machine 0).
  {
    const TxnPlan& p = PlanOf(plan, 8);
    ASSERT_EQ(p.reads.size(), 2u);
    EXPECT_EQ(p.reads[0].key, A);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kCacheLocal);
    EXPECT_EQ(p.reads[0].src_txn, 4u);
    EXPECT_EQ(p.reads[0].cache_epoch, 1u);
    EXPECT_TRUE(p.reads[0].invalidate_entry);  // sole reader of <A,Sink1>
    EXPECT_EQ(p.reads[0].entry_total_reads, 1u);
    EXPECT_EQ(p.reads[1].key, B);
    EXPECT_EQ(p.reads[1].kind, ReadSourceKind::kCacheRemote);
    EXPECT_EQ(p.reads[1].src_txn, 5u);
    EXPECT_EQ(p.reads[1].src_machine, 0u);
    EXPECT_FALSE(p.reads[1].invalidate_entry);  // T9 still reads it
    // The dirty A version T8 consumed gets written back by T8 (the text's
    // "similarly, [T8] needs to write back A and B" — B's duty lands on
    // T9, which overwrote it).
    ASSERT_EQ(p.write_backs.size(), 1u);
    EXPECT_EQ(p.write_backs[0].key, A);
    EXPECT_EQ(p.write_backs[0].version_txn, 4u);
    EXPECT_EQ(p.write_backs[0].home, 1u);
  }

  // "T9 needs to write back B to the storage holding S2, as B is read
  // from the cache."
  {
    const TxnPlan& p = PlanOf(plan, 9);
    EXPECT_EQ(p.machine, 0u);
    ASSERT_EQ(p.reads.size(), 3u);
    EXPECT_EQ(p.reads[0].key, B);
    EXPECT_EQ(p.reads[0].kind, ReadSourceKind::kCacheLocal);
    EXPECT_EQ(p.reads[0].src_txn, 5u);
    EXPECT_TRUE(p.reads[0].invalidate_entry);  // last reader, superseded
    EXPECT_EQ(p.reads[0].entry_total_reads, 2u);  // T8 + T9
    EXPECT_EQ(p.reads[1].key, C);
    EXPECT_EQ(p.reads[1].kind, ReadSourceKind::kStorage);
    EXPECT_EQ(p.reads[1].src_txn, 5u);           // T5's written-back version
    EXPECT_EQ(p.reads[1].storage_min_epoch, 1u);  // after round-1 write-back
    EXPECT_EQ(p.reads[2].key, D);
    EXPECT_EQ(p.reads[2].kind, ReadSourceKind::kStorage);
    EXPECT_EQ(p.reads[2].src_txn, 6u);
    ASSERT_EQ(p.write_backs.size(), 1u);
    EXPECT_EQ(p.write_backs[0].key, B);
    EXPECT_EQ(p.write_backs[0].home, 1u);  // "the storage holding S2"
    EXPECT_EQ(p.write_backs[0].version_txn, 9u);
  }

  // T7 hands its G to T10 locally; T10 reads E from storage and carries
  // the write-backs of the dirty F (T8's) and G (T7's) versions.
  {
    const TxnPlan& p7 = PlanOf(plan, 7);
    ASSERT_EQ(p7.local_versions.size(), 1u);
    EXPECT_EQ(p7.local_versions[0], (LocalVersionStep{G, 10, 7}));
    EXPECT_TRUE(p7.write_backs.empty());

    const TxnPlan& p10 = PlanOf(plan, 10);
    ASSERT_EQ(p10.reads.size(), 3u);
    EXPECT_EQ(p10.reads[0].key, E);
    EXPECT_EQ(p10.reads[0].kind, ReadSourceKind::kStorage);
    EXPECT_EQ(p10.reads[0].src_txn, 4u);
    EXPECT_EQ(p10.reads[1].key, F);
    EXPECT_EQ(p10.reads[1].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p10.reads[1].src_txn, 8u);
    EXPECT_EQ(p10.reads[2].key, G);
    EXPECT_EQ(p10.reads[2].kind, ReadSourceKind::kLocalVersion);
    EXPECT_EQ(p10.reads[2].src_txn, 7u);
    ASSERT_EQ(p10.write_backs.size(), 2u);
    EXPECT_EQ(p10.write_backs[0].key, F);
    EXPECT_EQ(p10.write_backs[0].version_txn, 8u);
    EXPECT_EQ(p10.write_backs[1].key, G);
    EXPECT_EQ(p10.write_backs[1].version_txn, 7u);
  }

  EXPECT_EQ(graph_.num_unsunk(), 0u);
}

TEST_F(Figure3Test, DistributedCountAndSinkWeights) {
  AddPaperTxns();
  AssignFig3();
  const SinkPlan plan = graph_.Sink(6, 1);
  // T2 and T5 wait on pushes from machine 1 -> distributed.
  EXPECT_EQ(plan.NumDistributed(), 2u);
  // Sink weights accumulated: 4 txns on machine 0, 2 on machine 1 (§3.1).
  EXPECT_DOUBLE_EQ(graph_.sink_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(graph_.sink_weight(1), 2.0);
  graph_.OnCommitted(2);
  EXPECT_DOUBLE_EQ(graph_.sink_weight(0), 3.0);
}

}  // namespace
}  // namespace tpart
