#include <gtest/gtest.h>

#include "storage/data_partition.h"
#include "storage/kv_store.h"
#include "storage/partitioned_store.h"
#include "storage/record.h"
#include "storage/table.h"

namespace tpart {
namespace {

// ---- Record -------------------------------------------------------------

TEST(RecordTest, FieldsAndPadding) {
  Record r(3, 100);
  EXPECT_EQ(r.num_fields(), 3u);
  EXPECT_EQ(r.field(1), 0);
  r.set_field(1, 42);
  r.add_to_field(1, 8);
  EXPECT_EQ(r.field(1), 50);
  EXPECT_EQ(r.SizeBytes(), 3 * 8 + 100u);
}

TEST(RecordTest, InitializerListAndEquality) {
  Record a{1, 2, 3};
  Record b{1, 2, 3};
  Record c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "[1, 2, 3]");
}

TEST(RecordTest, AbsentMarker) {
  EXPECT_TRUE(Record::Absent().is_absent());
  EXPECT_FALSE(Record{1}.is_absent());
  EXPECT_FALSE(Record::Absent() == Record());
}

// ---- Catalog --------------------------------------------------------------

TEST(CatalogTest, DenseIdsAndLookup) {
  Catalog cat;
  EXPECT_EQ(cat.AddTable({0, "A", 2, 10}), 0u);
  EXPECT_EQ(cat.AddTable({0, "B", 3, 20}), 1u);
  EXPECT_EQ(cat.table(1).name, "B");
  EXPECT_EQ(cat.FindTable("A")->num_fields, 2u);
  EXPECT_EQ(cat.FindTable("missing"), nullptr);
  EXPECT_EQ(cat.num_tables(), 2u);
}

// ---- KvStore -----------------------------------------------------------

TEST(KvStoreTest, CrudLifecycle) {
  KvStore store;
  EXPECT_TRUE(store.Insert(1, Record{10}).ok());
  EXPECT_EQ(store.Insert(1, Record{11}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Read(1)->field(0), 10);
  EXPECT_TRUE(store.Update(1, Record{20}).ok());
  EXPECT_EQ(store.Read(1)->field(0), 20);
  EXPECT_EQ(store.Update(2, Record{1}).code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Delete(1).ok());
  EXPECT_EQ(store.Delete(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Read(1).status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, UpsertInsertsOrOverwrites) {
  KvStore store;
  store.Upsert(5, Record{1});
  store.Upsert(5, Record{2});
  EXPECT_EQ(store.Read(5)->field(0), 2);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, ScanVisitsRangeInOrder) {
  KvStore store;
  for (ObjectKey k = 0; k < 100; k += 2) store.Upsert(k, Record{(long)k});
  std::vector<ObjectKey> seen;
  store.Scan(10, 20, [&](ObjectKey k, const Record&) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<ObjectKey>{10, 12, 14, 16, 18, 20}));
}

TEST(KvStoreTest, TotalBytesTracksMutations) {
  KvStore store;
  store.Upsert(1, Record(2, 100));  // 116 bytes
  EXPECT_EQ(store.TotalBytes(), 116u);
  store.Upsert(1, Record(1, 0));  // 8 bytes
  EXPECT_EQ(store.TotalBytes(), 8u);
  ASSERT_TRUE(store.Delete(1).ok());
  EXPECT_EQ(store.TotalBytes(), 0u);
}

TEST(KvStoreTest, ReadMutable) {
  KvStore store;
  store.Upsert(9, Record{1});
  Record* r = store.ReadMutable(9);
  ASSERT_NE(r, nullptr);
  r->set_field(0, 99);
  EXPECT_EQ(store.Read(9)->field(0), 99);
  EXPECT_EQ(store.ReadMutable(10), nullptr);
}

// ---- DataPartitionMap ------------------------------------------------------

TEST(DataPartitionTest, HashMapSpreadsKeys) {
  HashPartitionMap map(8);
  std::vector<int> counts(8, 0);
  for (ObjectKey k = 0; k < 8000; ++k) counts[map.Locate(k)]++;
  for (const int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(DataPartitionTest, HashMapIsStable) {
  HashPartitionMap map(5);
  for (ObjectKey k = 0; k < 100; ++k) {
    EXPECT_EQ(map.Locate(k), map.Locate(k));
  }
}

TEST(DataPartitionTest, RangeMapBlocks) {
  RangePartitionMap map(4, 100);
  EXPECT_EQ(map.Locate(MakeObjectKey(0, 0)), 0u);
  EXPECT_EQ(map.Locate(MakeObjectKey(0, 99)), 0u);
  EXPECT_EQ(map.Locate(MakeObjectKey(0, 100)), 1u);
  EXPECT_EQ(map.Locate(MakeObjectKey(0, 399)), 3u);
  EXPECT_EQ(map.Locate(MakeObjectKey(0, 400)), 0u);  // wraps
}

TEST(DataPartitionTest, LookupMapOverridesFallback) {
  auto fallback = std::make_shared<HashPartitionMap>(4);
  LookupPartitionMap map(4, fallback);
  const ObjectKey k = 12345;
  const MachineId fb = fallback->Locate(k);
  const MachineId other = (fb + 1) % 4;
  map.Assign(k, other);
  EXPECT_EQ(map.Locate(k), other);
  EXPECT_EQ(map.Locate(k + 1), fallback->Locate(k + 1));
  EXPECT_EQ(map.num_explicit_entries(), 1u);
}

// ---- PartitionedStore ------------------------------------------------------

TEST(PartitionedStoreTest, RoutesToHome) {
  auto map = std::make_shared<RangePartitionMap>(3, 10);
  PartitionedStore store(3, map);
  ASSERT_TRUE(store.Insert(MakeObjectKey(0, 5), Record{1}).ok());
  ASSERT_TRUE(store.Insert(MakeObjectKey(0, 15), Record{2}).ok());
  EXPECT_EQ(store.store(0).size(), 1u);
  EXPECT_EQ(store.store(1).size(), 1u);
  EXPECT_EQ(store.store(2).size(), 0u);
  EXPECT_EQ(store.Read(MakeObjectKey(0, 15))->field(0), 2);
  EXPECT_EQ(store.TotalRecords(), 2u);
}

TEST(PartitionedStoreTest, SnapshotSortedAndStateEquals) {
  auto map = std::make_shared<HashPartitionMap>(4);
  PartitionedStore a(4, map), b(4, map);
  for (ObjectKey k = 0; k < 50; ++k) {
    a.Upsert(k, Record{(long)k});
    b.Upsert(49 - k, Record{(long)(49 - k)});
  }
  auto snap = a.Snapshot();
  ASSERT_EQ(snap.size(), 50u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  EXPECT_TRUE(a.StateEquals(b));
  b.Upsert(7, Record{999});
  EXPECT_FALSE(a.StateEquals(b));
}

}  // namespace
}  // namespace tpart
