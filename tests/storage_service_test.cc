#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/storage_service.h"

namespace tpart {
namespace {

TEST(StorageServiceTest, ReadsInitialVersionImmediately) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  EXPECT_EQ(svc.BlockingRead(1, kInvalidTxnId).field(0), 10);
  EXPECT_EQ(svc.reads_served(), 1u);
}

TEST(StorageServiceTest, MissingKeyReadsAbsent) {
  KvStore store;
  StorageService svc(&store);
  EXPECT_TRUE(svc.BlockingRead(99, kInvalidTxnId).is_absent());
}

TEST(StorageServiceTest, ReadParksUntilExpectedVersionApplied) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  std::atomic<bool> served{false};
  Record got;
  std::thread reader([&] {
    got = svc.BlockingRead(1, /*expected=*/7);
    served = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(served.load());
  svc.ApplyWriteBack(1, /*version=*/7, /*replaces=*/kInvalidTxnId,
                     Record{70}, /*awaits=*/0, /*sticky=*/false,
                     /*epoch=*/1);
  reader.join();
  EXPECT_EQ(got.field(0), 70);
}

TEST(StorageServiceTest, WriteBackAwaitsOldReaders) {
  // wb(v7) must not overtake the 2 planned readers of the initial
  // version, even though it arrives first.
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  svc.ApplyWriteBack(1, 7, kInvalidTxnId, Record{70}, /*awaits=*/2,
                     false, 1);
  EXPECT_EQ(store.Read(1)->field(0), 10);  // parked
  EXPECT_EQ(svc.BlockingRead(1, kInvalidTxnId).field(0), 10);
  EXPECT_EQ(store.Read(1)->field(0), 10);  // still one reader owed
  EXPECT_EQ(svc.BlockingRead(1, kInvalidTxnId).field(0), 10);
  EXPECT_EQ(store.Read(1)->field(0), 70);  // applied after second read
  EXPECT_EQ(svc.write_backs_applied(), 1u);
}

TEST(StorageServiceTest, WriteBacksApplyInVersionOrder) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  // v9 arrives before v7; v9 awaits the (single) reader of v7.
  svc.ApplyWriteBack(1, 9, /*replaces=*/7, Record{90}, /*awaits=*/1,
                     false, 2);
  svc.ApplyWriteBack(1, 7, /*replaces=*/kInvalidTxnId, Record{70},
                     /*awaits=*/0, false, 1);
  EXPECT_EQ(store.Read(1)->field(0), 70);
  EXPECT_EQ(svc.BlockingRead(1, 7).field(0), 70);
  EXPECT_EQ(store.Read(1)->field(0), 90);
}

TEST(StorageServiceTest, AbsentWriteBackDeletes) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  svc.ApplyWriteBack(1, 3, kInvalidTxnId, Record::Absent(), 0, false, 1);
  EXPECT_FALSE(store.Contains(1));
  EXPECT_TRUE(svc.BlockingRead(1, 3).is_absent());
}

TEST(StorageServiceTest, UndoLogCoversWriteBacks) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  svc.ApplyWriteBack(1, 3, kInvalidTxnId, Record{30}, 0, false, 1);
  EXPECT_GE(svc.write_back_log().num_entries(), 1u);
  EXPECT_GE(svc.write_back_log().num_committed_batches(), 1u);
}

TEST(StorageServiceTest, StickyHitCounting) {
  KvStore store;
  store.Upsert(1, Record{10});
  StorageService svc(&store);
  svc.ApplyWriteBack(1, 3, kInvalidTxnId, Record{30}, 0, /*sticky=*/true, 1);
  EXPECT_EQ(svc.BlockingRead(1, 3).field(0), 30);
  EXPECT_EQ(svc.sticky_hits(), 1u);
}

TEST(StorageServiceTest, ShutdownReleasesParkedReaders) {
  KvStore store;
  StorageService svc(&store);
  std::optional<Record> got;
  std::thread reader([&] { got = svc.BlockingRead(1, /*expected=*/5); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  svc.Shutdown();
  reader.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_absent());
}

}  // namespace
}  // namespace tpart
