// Adversarial runtime stress: workloads with shapes the generators don't
// normally produce — write-only transactions, empty transactions,
// single-key global hotspots, long read chains, immediate
// delete/recreate — executed through the T-Part runtime and compared
// with the serial reference.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "workload/workload.h"

namespace tpart {
namespace {

constexpr ProcId kStressProc = 900;

// Same parameter scheme as the Microbenchmark: reads, then writes chosen
// among them, plus a mode selecting pathological behaviours.
// params: [mode, R, r..., W, w...]
Status StressProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const std::int64_t mode = p[0];
  const auto nreads = static_cast<std::size_t>(p[1]);
  std::int64_t acc = mode;
  std::vector<std::pair<ObjectKey, Record>> values;
  for (std::size_t i = 0; i < nreads; ++i) {
    const auto key = static_cast<ObjectKey>(p[2 + i]);
    TPART_ASSIGN_OR_RETURN(Record r, ctx.Get(key));
    if (!r.is_absent()) acc += r.field(0);
    values.emplace_back(key, std::move(r));
  }
  ctx.EmitOutput(acc);
  const std::size_t woff = 2 + nreads;
  const auto nwrites = static_cast<std::size_t>(p[woff]);
  for (std::size_t i = 0; i < nwrites; ++i) {
    const auto key = static_cast<ObjectKey>(p[woff + 1 + i]);
    if (mode == 3) {
      // Deleting transaction.
      TPART_RETURN_IF_ERROR(ctx.Put(key, Record::Absent()));
    } else {
      TPART_RETURN_IF_ERROR(ctx.Put(key, Record{acc + (std::int64_t)i}));
    }
  }
  if (mode == 4) return Status::Aborted("mode-4 always aborts");
  return Status::Ok();
}

Workload MakeStressWorkload(std::uint64_t seed, std::size_t machines,
                            std::size_t txns) {
  Workload w;
  w.name = "stress";
  w.num_machines = machines;
  w.partition_map = std::make_shared<HashPartitionMap>(machines);
  w.procedures = std::make_shared<ProcedureRegistry>();
  w.procedures->Register(kStressProc, "stress", StressProc);
  constexpr std::uint64_t kKeys = 40;  // tiny key space -> extreme conflict
  w.loader = [](PartitionedStore& store) {
    for (std::uint64_t k = 0; k < kKeys / 2; ++k) {
      store.Upsert(k, Record{(std::int64_t)k});  // other half starts absent
    }
  };

  Rng rng(seed);
  for (std::size_t t = 0; t < txns; ++t) {
    TxnSpec spec;
    spec.proc = kStressProc;
    const std::uint64_t mode = rng.NextBelow(5);
    KeySet reads, writes;
    switch (mode) {
      case 0: {  // plain read-modify-write on the hotspot key 0
        reads = {0, rng.NextBelow(kKeys)};
        writes = {0};
        break;
      }
      case 1: {  // read-only fan
        for (int i = 0; i < 6; ++i) reads.push_back(rng.NextBelow(kKeys));
        break;
      }
      case 2: {  // blind-ish write burst (writes still read, §5.3)
        for (int i = 0; i < 4; ++i) writes.push_back(rng.NextBelow(kKeys));
        reads = writes;
        break;
      }
      case 3: {  // delete then later recreate
        const ObjectKey k = rng.NextBelow(kKeys);
        reads = {k};
        writes = {k};
        break;
      }
      case 4: {  // aborting transaction with writes
        reads = {1, 2};
        writes = {1, 2};
        break;
      }
    }
    NormalizeKeySet(reads);
    NormalizeKeySet(writes);
    spec.params = {static_cast<std::int64_t>(mode),
                   static_cast<std::int64_t>(reads.size())};
    for (const ObjectKey k : reads) {
      spec.params.push_back(static_cast<std::int64_t>(k));
    }
    spec.params.push_back(static_cast<std::int64_t>(writes.size()));
    for (const ObjectKey k : writes) {
      spec.params.push_back(static_cast<std::int64_t>(k));
    }
    spec.rw.reads = reads;
    spec.rw.writes = writes;
    w.requests.push_back(std::move(spec));
  }
  return w;
}

class StressSweep : public ::testing::TestWithParam<int> {};

TEST_P(StressSweep, RuntimeMatchesSerialUnderPathologicalShapes) {
  const Workload w =
      MakeStressWorkload(static_cast<std::uint64_t>(GetParam()), 3, 400);

  auto one = std::make_shared<HashPartitionMap>(1);
  PartitionedStore reference(1, one);
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) reference.Upsert(k, rec);
  auto serial =
      RunSerial(*w.procedures, w.SequencedRequests(), reference.store(0));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  LocalClusterOptions opts;
  opts.scheduler.sink_size = 10;
  opts.executor_workers = 2;
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome outcome = cluster.RunTPart();
  ASSERT_EQ(outcome.results.size(), serial->results.size());
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    ASSERT_EQ(outcome.results[i].committed, serial->results[i].committed);
    ASSERT_EQ(outcome.results[i].output, serial->results[i].output)
        << "T" << outcome.results[i].id;
  }
  EXPECT_EQ(cluster.store().Snapshot(), reference.Snapshot());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace tpart
