#include <gtest/gtest.h>

#include "baselines/gstore.h"
#include "baselines/schism.h"
#include "workload/micro.h"
#include "workload/workload.h"

namespace tpart {
namespace {

TEST(SchismTest, ReducesDistributedRateOnPartitionableWorkload) {
  // A clusterable workload under a bad (hash) placement: Schism should
  // recover most of the locality (Fig. 6(a) -> (b)).
  MicroOptions o;
  o.num_machines = 4;
  o.records_per_machine = 500;
  o.hot_set_size = 50;
  o.num_txns = 4000;
  o.distributed_rate = 0.0;  // co-access clusters are machine-local
  const Workload w = MakeMicroWorkload(o);

  auto bad_map = std::make_shared<HashPartitionMap>(4);
  const double before = MeasureDistributedRate(w.requests, *bad_map);
  ASSERT_GT(before, 0.9);  // hash placement shreds the clusters

  SchismOptions opts;
  opts.num_machines = 4;
  const auto schism_map =
      BuildSchismPartition(w.requests, bad_map, opts);
  const double after = MeasureDistributedRate(w.requests, *schism_map);
  EXPECT_LT(after, before * 0.7);
  EXPECT_GT(schism_map->num_explicit_entries(), 0u);
}

TEST(SchismTest, LooksBackOnly) {
  // Partitions derived from one trace do not help a shifted workload —
  // the paper's core criticism of workload-driven data partitioning (§1).
  MicroOptions past;
  past.num_machines = 4;
  past.records_per_machine = 500;
  past.num_txns = 2000;
  past.distributed_rate = 0.0;
  past.seed = 1;
  MicroOptions future = past;
  future.seed = 99;  // different access pattern

  const Workload old_w = MakeMicroWorkload(past);
  const Workload new_w = MakeMicroWorkload(future);
  auto fallback = std::make_shared<HashPartitionMap>(4);
  SchismOptions opts;
  opts.num_machines = 4;
  const auto map = BuildSchismPartition(old_w.requests, fallback, opts);
  const double on_old = MeasureDistributedRate(old_w.requests, *map);
  const double on_new = MeasureDistributedRate(new_w.requests, *map);
  EXPECT_GT(on_new, on_old);
}

TEST(SchismTest, RespectsTraceCap) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 100;
  o.num_txns = 100;
  const Workload w = MakeMicroWorkload(o);
  SchismOptions opts;
  opts.num_machines = 2;
  opts.max_trace_txns = 10;
  const auto map =
      BuildSchismPartition(w.requests, w.partition_map, opts);
  // Only keys of the first 10 txns can be assigned (10 txns * <=10 keys).
  EXPECT_LE(map->num_explicit_entries(), 100u);
}

TEST(GStoreTest, OptionsReduceToSinkSizeOne) {
  TPartSimOptions base;
  base.scheduler.sink_size = 100;
  const TPartSimOptions g = MakeGStoreSimOptions(base);
  EXPECT_EQ(g.scheduler.sink_size, 1u);
  EXPECT_TRUE(g.scheduler.graph.always_write_back);
  EXPECT_FALSE(g.scheduler.optimize_plans);
  EXPECT_FALSE(g.scheduler.graph.sticky_cache);
}

}  // namespace
}  // namespace tpart
