#include <gtest/gtest.h>

#include "common/fit.h"

namespace tpart {
namespace {

TEST(FitTest, ExactLine) {
  std::vector<std::pair<double, double>> xy;
  for (double x = 0; x < 10; ++x) xy.push_back({x, 3.0 - 0.25 * x});
  const LinearFit fit = FitLine(xy);
  EXPECT_NEAR(fit.slope, -0.25, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitTest, NoisyLineStillRecovered) {
  std::vector<std::pair<double, double>> xy;
  for (int i = 0; i < 100; ++i) {
    const double x = i;
    const double noise = (i % 2 == 0 ? 1.0 : -1.0) * 0.5;
    xy.push_back({x, 10.0 + 2.0 * x + noise});
  }
  const LinearFit fit = FitLine(xy);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}).slope, 0.0);
  EXPECT_EQ(FitLine({{1, 1}}).slope, 0.0);
  // Vertical data (same x) cannot be fitted.
  const LinearFit f = FitLine({{2, 1}, {2, 5}});
  EXPECT_EQ(f.slope, 0.0);
}

TEST(FitTest, SigmoidMidpointFindsKnee) {
  std::vector<std::pair<double, double>> xy;
  for (double x = 0; x <= 400; x += 10) {
    xy.push_back({x, x < 200 ? 100.0 : 10.0});
  }
  EXPECT_NEAR(SigmoidMidpoint(xy), 200.0, 10.0);
}

TEST(FitTest, SigmoidMidpointFlatCurve) {
  std::vector<std::pair<double, double>> xy = {{0, 5}, {10, 5}, {20, 5}};
  // All values equal: first point is at the (degenerate) midpoint.
  EXPECT_EQ(SigmoidMidpoint(xy), 0.0);
}

}  // namespace
}  // namespace tpart
