#include <gtest/gtest.h>

#include "common/random.h"
#include "scheduler/plan_optimizer.h"
#include "scheduler/tpart_scheduler.h"
#include "storage/data_partition.h"

namespace tpart {
namespace {

TxnSpec Txn(std::vector<ObjectKey> reads, std::vector<ObjectKey> writes) {
  TxnSpec spec;
  spec.rw.reads = std::move(reads);
  spec.rw.writes = std::move(writes);
  spec.rw.Normalize();
  return spec;
}

std::vector<TxnSpec> RandomStream(std::size_t n, std::uint64_t seed,
                                  std::uint64_t key_space = 50) {
  Rng rng(seed);
  std::vector<TxnSpec> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<ObjectKey> reads, writes;
    for (int r = 0; r < 3; ++r) reads.push_back(rng.NextBelow(key_space));
    writes.push_back(reads[rng.NextBelow(3)]);
    TxnSpec spec = Txn(std::move(reads), std::move(writes));
    spec.id = static_cast<TxnId>(i + 1);
    out.push_back(std::move(spec));
  }
  return out;
}

TPartScheduler::Options SchedOpts(std::size_t sink_size,
                                  std::size_t machines) {
  TPartScheduler::Options o;
  o.sink_size = sink_size;
  o.graph.num_machines = machines;
  return o;
}

TEST(SchedulerTest, SinksWhenWindowReachesTwiceSinkSize) {
  TPartScheduler sched(SchedOpts(5, 2),
                       std::make_shared<HashPartitionMap>(2));
  std::size_t plans = 0;
  for (const TxnSpec& spec : RandomStream(9, 1)) {
    plans += sched.OnTxn(spec).size();
  }
  EXPECT_EQ(plans, 0u);  // 9 < 2 * 5
  TxnSpec tenth = Txn({1}, {});
  tenth.id = 10;
  const auto produced = sched.OnTxn(tenth);
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_EQ(produced[0].txns.size(), 5u);
  EXPECT_EQ(sched.graph().num_unsunk(), 5u);
}

TEST(SchedulerTest, DrainEmptiesTheGraph) {
  TPartScheduler sched(SchedOpts(4, 2),
                       std::make_shared<HashPartitionMap>(2));
  for (const TxnSpec& spec : RandomStream(6, 2)) sched.OnTxn(spec);
  const auto plans = sched.Drain();
  ASSERT_EQ(plans.size(), 2u);  // 4 + 2
  EXPECT_EQ(sched.graph().num_unsunk(), 0u);
  EXPECT_EQ(sched.num_sink_rounds(), 2u);
}

TEST(SchedulerTest, PlansCoverEveryRealTxnExactlyOnce) {
  TPartScheduler sched(SchedOpts(7, 3),
                       std::make_shared<HashPartitionMap>(3));
  std::vector<SinkPlan> plans;
  for (const TxnSpec& spec : RandomStream(100, 3)) {
    for (auto& p : sched.OnTxn(spec)) plans.push_back(std::move(p));
  }
  for (auto& p : sched.Drain()) plans.push_back(std::move(p));
  std::vector<TxnId> seen;
  for (const auto& plan : plans) {
    for (const auto& tp : plan.txns) seen.push_back(tp.txn);
  }
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // total order preserved
  }
}

TEST(SchedulerTest, IndependentSchedulersEmitIdenticalPlans) {
  // §3.3: schedulers never communicate; identical input => identical
  // plans. This is the determinism property the whole design rests on.
  auto map = std::make_shared<HashPartitionMap>(4);
  TPartScheduler a(SchedOpts(10, 4), map);
  TPartScheduler b(SchedOpts(10, 4), map);
  const auto stream = RandomStream(200, 4);
  std::vector<SinkPlan> pa, pb;
  for (const TxnSpec& spec : stream) {
    for (auto& p : a.OnTxn(spec)) pa.push_back(std::move(p));
    for (auto& p : b.OnTxn(spec)) pb.push_back(std::move(p));
  }
  for (auto& p : a.Drain()) pa.push_back(std::move(p));
  for (auto& p : b.Drain()) pb.push_back(std::move(p));
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i] == pb[i]) << "plans diverge at round " << i;
  }
}

TEST(SchedulerTest, DummiesCountTowardTriggerButNotPlans) {
  TPartScheduler sched(SchedOpts(3, 2),
                       std::make_shared<HashPartitionMap>(2));
  std::vector<SinkPlan> plans;
  for (TxnId id = 1; id <= 6; ++id) {
    TxnSpec spec = id <= 2 ? Txn({1}, {1}) : MakeDummyTxn();
    spec.id = id;
    for (auto& p : sched.OnTxn(spec)) plans.push_back(std::move(p));
  }
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].txns.size(), 2u);  // dummies discarded (§3.3)
}

TEST(SchedulerTest, TracksMaxTGraphSize) {
  TPartScheduler sched(SchedOpts(5, 2),
                       std::make_shared<HashPartitionMap>(2));
  for (const TxnSpec& spec : RandomStream(40, 5)) sched.OnTxn(spec);
  // Window oscillates in [sink_size, 2*sink_size).
  EXPECT_EQ(sched.max_tgraph_size(), 10u);
}

// ---- Plan optimisation (§4.3) ---------------------------------------------

TEST(PlanOptimizerTest, RelaysPushThroughCoLocatedReader) {
  // Writer W@m1 pushes to R1@m0 and R2@m0; optimisation keeps one push
  // and relays the second locally (the paper's T1 -> T5 via T2 example).
  SinkPlan plan;
  plan.epoch = 1;
  TxnPlan w;
  w.txn = 1;
  w.machine = 1;
  w.pushes = {PushStep{7, 2, 0, 1}, PushStep{7, 3, 0, 1}};
  TxnPlan r1;
  r1.txn = 2;
  r1.machine = 0;
  r1.reads = {ReadStep{.key = 7,
                       .kind = ReadSourceKind::kPush,
                       .src_txn = 1,
                       .src_machine = 1,
                       .provider_txn = 1}};
  TxnPlan r2;
  r2.txn = 3;
  r2.machine = 0;
  r2.reads = {ReadStep{.key = 7,
                       .kind = ReadSourceKind::kPush,
                       .src_txn = 1,
                       .src_machine = 1,
                       .provider_txn = 1}};
  plan.txns = {w, r1, r2};

  EXPECT_EQ(OptimizeSinkPlan(plan), 1u);
  EXPECT_EQ(plan.txns[0].pushes.size(), 1u);  // only the push to T2 left
  EXPECT_EQ(plan.txns[0].pushes[0].dst_txn, 2u);
  const ReadStep& opt = plan.txns[2].reads[0];
  EXPECT_EQ(opt.kind, ReadSourceKind::kLocalVersion);
  EXPECT_EQ(opt.provider_txn, 2u);
  EXPECT_EQ(opt.src_txn, 1u);  // version tag unchanged
  ASSERT_EQ(plan.txns[1].local_versions.size(), 1u);
  EXPECT_EQ(plan.txns[1].local_versions[0],
            (LocalVersionStep{7, 3, 1}));
}

TEST(PlanOptimizerTest, NoRelayAcrossMachines) {
  SinkPlan plan;
  TxnPlan w;
  w.txn = 1;
  w.machine = 1;
  w.pushes = {PushStep{7, 3, 0, 1}};
  TxnPlan r1;  // reader on a *different* machine than the later reader
  r1.txn = 2;
  r1.machine = 2;
  r1.reads = {ReadStep{.key = 7,
                       .kind = ReadSourceKind::kPush,
                       .src_txn = 1,
                       .src_machine = 1,
                       .provider_txn = 1}};
  TxnPlan r2;
  r2.txn = 3;
  r2.machine = 0;
  r2.reads = {ReadStep{.key = 7,
                       .kind = ReadSourceKind::kPush,
                       .src_txn = 1,
                       .src_machine = 1,
                       .provider_txn = 1}};
  plan.txns = {w, r1, r2};
  EXPECT_EQ(OptimizeSinkPlan(plan), 0u);
}

TEST(SchedulerTest, OptimizerReducesRemotePushesEndToEnd) {
  // Hot-key workload on 2 machines: many same-batch readers of one
  // version make relays likely.
  auto map = std::make_shared<HashPartitionMap>(2);
  TPartScheduler::Options with_opt = SchedOpts(20, 2);
  with_opt.optimize_plans = true;
  TPartScheduler sched(with_opt, map);
  Rng rng(6);
  for (TxnId id = 1; id <= 200; ++id) {
    TxnSpec spec =
        id % 10 == 1 ? Txn({}, {1}) : Txn({1, rng.NextBelow(40) + 10}, {});
    spec.id = id;
    sched.OnTxn(spec);
  }
  sched.Drain();
  EXPECT_GT(sched.num_pushes_eliminated(), 0u);
}

}  // namespace
}  // namespace tpart
