#include <gtest/gtest.h>

#include "storage/write_back_log.h"

namespace tpart {
namespace {

TEST(WriteBackLogTest, CommittedBatchNeedsNoUndo) {
  KvStore store;
  store.Upsert(1, Record{10});
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(1, Record{10});
  store.Upsert(1, Record{20});
  log.CommitBatch();
  EXPECT_EQ(log.UndoIncomplete(store), 0u);
  EXPECT_EQ(store.Read(1)->field(0), 20);
}

TEST(WriteBackLogTest, UndoRestoresPreImages) {
  KvStore store;
  store.Upsert(1, Record{10});
  store.Upsert(2, Record{20});
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(1, Record{10});
  store.Upsert(1, Record{11});
  log.LogWrite(2, Record{20});
  store.Upsert(2, Record{21});
  // Crash before CommitBatch.
  EXPECT_EQ(log.UndoIncomplete(store), 2u);
  EXPECT_EQ(store.Read(1)->field(0), 10);
  EXPECT_EQ(store.Read(2)->field(0), 20);
}

TEST(WriteBackLogTest, UndoDeletesFreshInserts) {
  KvStore store;
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(7, std::nullopt);  // key did not exist
  store.Upsert(7, Record{1});
  EXPECT_EQ(log.UndoIncomplete(store), 1u);
  EXPECT_FALSE(store.Contains(7));
}

TEST(WriteBackLogTest, UndoAppliesNewestFirst) {
  KvStore store;
  store.Upsert(1, Record{10});
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(1, Record{10});
  store.Upsert(1, Record{11});
  log.LogWrite(1, Record{11});
  store.Upsert(1, Record{12});
  EXPECT_EQ(log.UndoIncomplete(store), 2u);
  EXPECT_EQ(store.Read(1)->field(0), 10);
}

TEST(WriteBackLogTest, OnlyLastBatchCanBeIncomplete) {
  KvStore store;
  store.Upsert(1, Record{1});
  store.Upsert(2, Record{2});
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(1, Record{1});
  store.Upsert(1, Record{100});
  log.CommitBatch();
  log.BeginBatch(2);
  log.LogWrite(2, Record{2});
  store.Upsert(2, Record{200});
  EXPECT_EQ(log.UndoIncomplete(store), 1u);
  EXPECT_EQ(store.Read(1)->field(0), 100);  // committed batch untouched
  EXPECT_EQ(store.Read(2)->field(0), 2);
  EXPECT_EQ(log.num_committed_batches(), 1u);
}

TEST(WriteBackLogTest, TruncateCommittedKeepsOpenBatch) {
  KvStore store;
  WriteBackLog log;
  log.BeginBatch(1);
  log.LogWrite(1, std::nullopt);
  log.CommitBatch();
  log.BeginBatch(2);
  log.LogWrite(2, std::nullopt);
  store.Upsert(2, Record{1});
  log.TruncateCommitted();
  EXPECT_TRUE(log.HasOpenBatch());
  EXPECT_EQ(log.num_entries(), 1u);
  EXPECT_EQ(log.UndoIncomplete(store), 1u);
  EXPECT_FALSE(store.Contains(2));
}

}  // namespace
}  // namespace tpart
