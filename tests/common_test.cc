#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "common/zipf.h"

namespace tpart {
namespace {

// ---- Status / Result --------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TPART_ASSIGN_OR_RETURN(int h, Half(x));
  TPART_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
}

// ---- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 1000; ++i) seen[rng.NextBelow(5)]++;
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int truthy = 0;
  for (int i = 0; i < 10000; ++i) truthy += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(truthy / 10000.0, 0.3, 0.03);
}

// ---- Zipf --------------------------------------------------------------

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(1);
  ZipfGenerator zipf(10, 0.0);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 10u);
    EXPECT_NEAR(c / 20000.0, 0.1, 0.03);
  }
}

TEST(ZipfTest, SkewConcentratesOnSmallIds) {
  Rng rng(2);
  ZipfGenerator zipf(1000, 0.9);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 10) ++head;
  }
  // Top 1% of keys should receive far more than 1% of accesses.
  EXPECT_GT(head, n / 10);
}

TEST(ZipfTest, ValuesAlwaysInRange) {
  Rng rng(3);
  ZipfGenerator zipf(37, 0.7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 37u);
}

// ---- RunningStat / Histogram --------------------------------------------

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesCombined) {
  RunningStat a, b, all;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 10;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(HistogramTest, CountMeanMax) {
  Histogram h;
  h.Add(1);
  h.Add(3);
  h.Add(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean(), (1 + 3 + 1000) / 3.0, 1e-9);
  EXPECT_EQ(h.max_value(), 1000u);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
  EXPECT_GT(h.Quantile(0.99), 500u);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(5);
  b.Add(7);
  b.Add(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max_value(), 100000u);
}

// ---- Types --------------------------------------------------------------

TEST(TypesTest, ObjectKeyPacksTableAndPk) {
  const ObjectKey k = MakeObjectKey(7, 123456789);
  EXPECT_EQ(TableOf(k), 7u);
  EXPECT_EQ(PrimaryKeyOf(k), 123456789u);
}

TEST(TypesTest, DistinctTablesYieldDistinctKeys) {
  EXPECT_NE(MakeObjectKey(1, 5), MakeObjectKey(2, 5));
}

}  // namespace
}  // namespace tpart
