#include "metrics/run_stats.h"

#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "obs/metrics.h"

namespace tpart {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// TransportStats::MergeFrom: counters sum, high-water marks max.
// ---------------------------------------------------------------------

TEST(TransportStatsTest, MergeFromSumsCounters) {
  TransportStats a;
  a.messages_sent = 10;
  a.messages_delivered = 9;
  a.bytes_out = 1000;
  a.bytes_in = 900;
  a.packets_out = 20;
  a.packets_in = 18;
  a.acks_sent = 18;
  a.retries = 2;
  a.duplicates_dropped = 1;
  a.faults_dropped = 3;
  a.faults_duplicated = 4;
  a.faults_delayed = 5;
  a.backpressure_waits = 6;

  TransportStats b = a;
  a.MergeFrom(b);
  EXPECT_EQ(a.messages_sent, 20u);
  EXPECT_EQ(a.messages_delivered, 18u);
  EXPECT_EQ(a.bytes_out, 2000u);
  EXPECT_EQ(a.bytes_in, 1800u);
  EXPECT_EQ(a.packets_out, 40u);
  EXPECT_EQ(a.packets_in, 36u);
  EXPECT_EQ(a.acks_sent, 36u);
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.duplicates_dropped, 2u);
  EXPECT_EQ(a.faults_dropped, 6u);
  EXPECT_EQ(a.faults_duplicated, 8u);
  EXPECT_EQ(a.faults_delayed, 10u);
  EXPECT_EQ(a.backpressure_waits, 12u);
}

TEST(TransportStatsTest, MergeFromTakesMaxOfHighWaterNotSum) {
  TransportStats a;
  a.queue_high_water = 7;
  TransportStats b;
  b.queue_high_water = 12;
  a.MergeFrom(b);
  EXPECT_EQ(a.queue_high_water, 12u);  // max, not 19

  TransportStats c;
  c.queue_high_water = 3;
  a.MergeFrom(c);
  EXPECT_EQ(a.queue_high_water, 12u);  // smaller mark never lowers it
}

TEST(TransportStatsTest, MergeFromZeroIsIdentity) {
  TransportStats a;
  a.messages_sent = 5;
  a.queue_high_water = 4;
  const TransportStats before = a;
  a.MergeFrom(TransportStats{});
  EXPECT_EQ(a.messages_sent, before.messages_sent);
  EXPECT_EQ(a.queue_high_water, before.queue_high_water);
}

TEST(TransportStatsTest, SummaryShowsFaultsOnlyWhenInjected) {
  TransportStats s;
  s.messages_sent = 3;
  s.queue_high_water = 9;
  EXPECT_FALSE(Contains(s.Summary(), "faults"));
  EXPECT_TRUE(Contains(s.Summary(), "queue_hw=9"));
  s.faults_dropped = 1;
  EXPECT_TRUE(Contains(s.Summary(), "faults"));
}

// ---------------------------------------------------------------------
// RunningStat / Histogram merge paths.
// ---------------------------------------------------------------------

TEST(RunningStatTest, MergeMatchesSingleStream) {
  RunningStat left, right, whole;
  for (int i = 1; i <= 10; ++i) {
    (i <= 5 ? left : right).Add(i);
    whole.Add(i);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(HistogramTest, MergeMatchesSingleStream) {
  Histogram left, right, whole;
  for (std::uint64_t v : {0u, 1u, 3u, 10u, 100u, 5000u, 70000u}) {
    left.Add(v);
    whole.Add(v);
  }
  for (std::uint64_t v : {2u, 8u, 900u, 1u << 20}) {
    right.Add(v);
    whole.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_EQ(left.max_value(), whole.max_value());
  EXPECT_EQ(left.Quantile(0.5), whole.Quantile(0.5));
  EXPECT_EQ(left.Quantile(0.99), whole.Quantile(0.99));
  for (int i = 0; i < Histogram::num_buckets(); ++i) {
    EXPECT_EQ(left.bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------
// Summary gating: nested sections appear only when populated.
// ---------------------------------------------------------------------

TEST(RunStatsTest, SummaryGatesNestedSections) {
  RunStats stats;
  stats.txns = 100;
  stats.committed = 100;
  std::string s = stats.Summary();
  EXPECT_TRUE(Contains(s, "txns=100"));
  EXPECT_FALSE(Contains(s, "transport:"));
  EXPECT_FALSE(Contains(s, "pipeline:"));
  EXPECT_FALSE(Contains(s, "recovery:"));

  stats.transport.messages_sent = 1;
  stats.pipeline.admitted = 1;
  stats.recovery.crashes_injected = 1;
  s = stats.Summary();
  EXPECT_TRUE(Contains(s, "transport:"));
  EXPECT_TRUE(Contains(s, "pipeline:"));
  EXPECT_TRUE(Contains(s, "recovery:"));
}

TEST(RecoveryStatsTest, SummaryIsShortWithoutCrashes) {
  RecoveryStats r;
  EXPECT_EQ(r.Summary(), "crashes=0");
  r.crashes_injected = 1;
  r.crashed_machine = 2;
  r.replayed_txns = 40;
  EXPECT_TRUE(Contains(r.Summary(), "machine=2"));
  EXPECT_TRUE(Contains(r.Summary(), "replayed=40"));
}

TEST(PipelineStatsTest, AdmissionRateGuardsZeroSeconds) {
  PipelineStats p;
  p.admitted = 100;
  EXPECT_DOUBLE_EQ(p.AdmissionRate(), 0.0);
  p.admission_seconds = 2.0;
  EXPECT_DOUBLE_EQ(p.AdmissionRate(), 50.0);
}

// ---------------------------------------------------------------------
// MetricsRegistry semantics and exporters.
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, SetReplacesAddAccumulates) {
  obs::MetricsRegistry reg;
  reg.SetCounter("x_total", 5);
  reg.SetCounter("x_total", 7);
  EXPECT_DOUBLE_EQ(reg.Value("x_total"), 7.0);
  reg.AddCounter("y_total", 2);
  reg.AddCounter("y_total", 3);
  EXPECT_DOUBLE_EQ(reg.Value("y_total"), 5.0);
  EXPECT_DOUBLE_EQ(reg.Value("absent"), 0.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, PrometheusTextHasHelpTypeAndHistogram) {
  obs::MetricsRegistry reg;
  reg.SetCounter("demo_total", 3, "A demo counter");
  reg.SetGauge("demo_gauge", 1.5, "A demo gauge");
  Histogram h;
  h.Add(1);
  h.Add(100);
  reg.ObserveHistogram("demo_us", h, "A demo histogram");

  const std::string text = reg.PrometheusText();
  EXPECT_TRUE(Contains(text, "# HELP demo_total A demo counter"));
  EXPECT_TRUE(Contains(text, "# TYPE demo_total counter"));
  EXPECT_TRUE(Contains(text, "demo_total 3"));
  EXPECT_TRUE(Contains(text, "# TYPE demo_gauge gauge"));
  EXPECT_TRUE(Contains(text, "# TYPE demo_us histogram"));
  EXPECT_TRUE(Contains(text, "demo_us_bucket{le=\"+Inf\"} 2"));
  EXPECT_TRUE(Contains(text, "demo_us_count 2"));
  EXPECT_TRUE(Contains(text, "demo_us_sum 101"));
}

TEST(MetricsRegistryTest, JsonExportsHistogramSummary) {
  obs::MetricsRegistry reg;
  reg.SetCounter("a_total", 2);
  Histogram h;
  h.Add(10);
  reg.ObserveHistogram("lat_us", h);
  const std::string json = reg.Json();
  EXPECT_TRUE(Contains(json, "\"a_total\": 2"));
  EXPECT_TRUE(Contains(json, "\"lat_us\": {\"count\": 1"));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(MetricsRegistryTest, ObserveHistogramMergesUnderOneName) {
  obs::MetricsRegistry reg;
  Histogram a, b;
  a.Add(1);
  b.Add(2);
  b.Add(3);
  reg.ObserveHistogram("m_us", a);
  reg.ObserveHistogram("m_us", b);
  EXPECT_TRUE(Contains(reg.PrometheusText(), "m_us_count 3"));
  EXPECT_EQ(reg.size(), 1u);
}

// ---------------------------------------------------------------------
// PublishTo: stats structs land in the registry with gated sections.
// ---------------------------------------------------------------------

TEST(PublishToTest, RunStatsPublishesCoreAndGatesNested) {
  RunStats stats;
  stats.txns = 50;
  stats.committed = 48;
  stats.aborted = 2;
  stats.makespan = 1'000'000'000;  // 1 simulated second
  stats.latency_us.Add(100);

  obs::MetricsRegistry reg;
  stats.PublishTo(reg);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_txns_total"), 50.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_committed_total"), 48.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_aborted_total"), 2.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_throughput_tps"), 48.0);
  // No transport/pipeline/recovery activity => no series for them.
  const std::string text = reg.PrometheusText();
  EXPECT_FALSE(Contains(text, "tpart_transport_"));
  EXPECT_FALSE(Contains(text, "tpart_pipeline_"));
  EXPECT_FALSE(Contains(text, "tpart_recovery_"));
  EXPECT_TRUE(Contains(text, "tpart_latency_us_bucket"));
}

TEST(PublishToTest, NestedStatsPublishWhenPopulated) {
  RunStats stats;
  stats.transport.messages_sent = 7;
  stats.transport.queue_high_water = 4;
  stats.pipeline.admitted = 9;
  stats.pipeline.admission_seconds = 3.0;
  stats.recovery.crashes_injected = 1;
  stats.recovery.replayed_txns = 11;

  obs::MetricsRegistry reg;
  stats.PublishTo(reg);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_transport_messages_sent_total"), 7.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_transport_queue_peak_depth"), 4.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_pipeline_admitted_total"), 9.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_pipeline_admission_rate_tps"), 3.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_recovery_crashes_injected_total"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_recovery_replayed_txns_total"), 11.0);
}

TEST(PublishToTest, RecoveryWithoutCrashesPublishesDetectorActivity) {
  RecoveryStats r;
  r.suspicions_suppressed = 2;
  r.peak_healthy_phi = 3.5;
  obs::MetricsRegistry reg;
  r.PublishTo(reg);
  // The explicit "no crashes happened" counter and the adaptive
  // detector's activity gauges are published unconditionally (a run with
  // zero crashes still exercises the phi gate); the detection / replay /
  // downtime series stay gated on a crash occurring.
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_recovery_crashes_injected_total"), 0.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_fd_suspicions_suppressed_total"), 2.0);
  EXPECT_DOUBLE_EQ(reg.Value("tpart_fd_peak_healthy_phi_ratio"), 3.5);
  EXPECT_FALSE(Contains(reg.PrometheusText(), "tpart_recovery_downtime_us"));
}

}  // namespace
}  // namespace tpart
