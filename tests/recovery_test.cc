// §5.4 failure handling: each machine can rebuild its partition locally
// from its request log (own plans only) and its network log (PUSH-log
// generalised), starting from a checkpoint.

#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "runtime/recovery.h"
#include "workload/micro.h"
#include "workload/tpcc.h"

namespace tpart {
namespace {

LocalClusterOptions Opts(std::size_t sink = 15) {
  LocalClusterOptions o;
  o.scheduler.sink_size = sink;
  return o;
}

void CheckReplayRebuildsPartition(const Workload& w,
                                  LocalClusterOptions opts) {
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome live = cluster.RunTPart();

  for (MachineId m = 0; m < w.num_machines; ++m) {
    Machine& failed = cluster.machine(m);
    const ReplayResult replayed =
        ReplayMachine(w, m, failed.request_log(), failed.network_log(),
                      opts.sticky_ttl);

    // The replayed partition matches the pre-crash partition.
    auto live_snapshot = [&] {
      std::vector<std::pair<ObjectKey, Record>> out;
      cluster.store().store(m).Scan(
          0, ~ObjectKey{0},
          [&](ObjectKey k, const Record& r) { out.emplace_back(k, r); });
      return out;
    }();
    auto replay_snapshot = [&] {
      std::vector<std::pair<ObjectKey, Record>> out;
      replayed.store->store(m).Scan(
          0, ~ObjectKey{0},
          [&](ObjectKey k, const Record& r) { out.emplace_back(k, r); });
      return out;
    }();
    EXPECT_EQ(replay_snapshot, live_snapshot)
        << "machine " << m << " replay diverged";

    // Replayed transaction results match the live run's results for the
    // transactions this machine executed.
    std::size_t idx = 0;
    for (const TxnResult& r : replayed.results) {
      while (idx < live.results.size() && live.results[idx].id != r.id) {
        ++idx;
      }
      ASSERT_LT(idx, live.results.size());
      EXPECT_EQ(live.results[idx].committed, r.committed);
      EXPECT_EQ(live.results[idx].output, r.output);
    }
  }
}

TEST(RecoveryTest, MicroReplayMatchesLiveRun) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 150;
  o.hot_set_size = 15;
  o.num_txns = 300;
  CheckReplayRebuildsPartition(MakeMicroWorkload(o), Opts());
}

TEST(RecoveryTest, TpccReplayWithAborts) {
  TpccOptions o;
  o.num_machines = 2;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 80;
  o.num_txns = 250;
  o.abort_prob = 0.05;
  CheckReplayRebuildsPartition(MakeTpccWorkload(o), Opts());
}

TEST(RecoveryTest, RequestLogHoldsOnlyOwnPlans) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 100;
  o.hot_set_size = 10;
  o.num_txns = 200;
  const Workload w = MakeMicroWorkload(o);
  LocalCluster cluster(&w, Opts());
  cluster.RunTPart();
  std::size_t total_logged = 0;
  for (MachineId m = 0; m < 2; ++m) {
    for (const auto& entry : cluster.machine(m).request_log()) {
      EXPECT_EQ(entry.item.plan.machine, m);
      ++total_logged;
    }
  }
  EXPECT_EQ(total_logged, 200u);  // every txn logged exactly once
}

TEST(RecoveryTest, PushLogRecordsInboundPushes) {
  MicroOptions o;
  o.num_machines = 2;
  o.records_per_machine = 100;
  o.hot_set_size = 10;
  o.num_txns = 300;
  o.distributed_rate = 1.0;
  const Workload w = MakeMicroWorkload(o);
  LocalCluster cluster(&w, Opts());
  cluster.RunTPart();
  std::size_t pushes = 0;
  for (MachineId m = 0; m < 2; ++m) {
    for (const Message& msg : cluster.machine(m).network_log()) {
      if (msg.type == Message::Type::kPushVersion) ++pushes;
    }
  }
  EXPECT_GT(pushes, 0u);
}

}  // namespace
}  // namespace tpart
