// Periodic incremental checkpointing + log truncation tests: a streaming
// run with checkpoint_every set must capture per-machine checkpoints at
// quiescent epoch boundaries, truncate the §5.4 request/network logs and
// the cluster's resend window, and still finish byte-identical to the
// unchekpointed run on every transport. Log memory must plateau instead
// of growing with run length, and crash recovery on top of a mid-run
// checkpoint must replay only the suffix since the capture.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/resend_window.h"
#include "runtime/channel.h"
#include "runtime/cluster.h"
#include "storage/kv_store.h"
#include "storage/zigzag_checkpoint.h"
#include "test_time.h"
#include "workload/micro.h"

namespace tpart {
namespace {

MicroOptions SmallMicro(std::uint64_t num_txns = 405) {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  o.num_txns = num_txns;
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

struct RunSnapshot {
  ClusterRunOutcome out;
  std::vector<std::pair<ObjectKey, Record>> state;
};

RunSnapshot RunOnce(const Workload& w, const LocalClusterOptions& opts) {
  LocalCluster cluster(&w, opts);
  RunSnapshot snap;
  snap.out = cluster.RunTPart();
  snap.state = cluster.store().Snapshot();
  return snap;
}

// ---------------------------------------------------------------------
// Unit: the prunable resend window.
// ---------------------------------------------------------------------

TEST(CheckpointTest, ResendWindowPrunesAndReplaysInOrder) {
  ResendWindow window;
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.front_epoch(), 0u);
  for (SinkEpoch e = 1; e <= 10; ++e) {
    Message msg;
    msg.type = Message::Type::kSinkPlan;
    msg.epoch = e;
    window.Append(std::move(msg));
  }
  EXPECT_EQ(window.size(), 10u);
  EXPECT_EQ(window.front_epoch(), 1u);
  EXPECT_GT(window.bytes(), 0u);
  const std::size_t bytes_full = window.bytes();
  EXPECT_EQ(window.bytes_peak(), bytes_full);

  EXPECT_EQ(window.PruneThrough(4), 4u);
  EXPECT_EQ(window.size(), 6u);
  EXPECT_EQ(window.front_epoch(), 5u);
  EXPECT_EQ(window.pruned_rounds(), 4u);
  EXPECT_LT(window.bytes(), bytes_full);
  EXPECT_EQ(window.bytes_peak(), bytes_full);  // peak survives pruning

  std::vector<SinkEpoch> replayed;
  const std::size_t n = window.ForEachFrom(
      7, [&](const Message& m) { replayed.push_back(m.epoch); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(replayed, (std::vector<SinkEpoch>{7, 8, 9, 10}));

  // Pruning everything empties the window; front_epoch reports 0.
  EXPECT_EQ(window.PruneThrough(100), 6u);
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.front_epoch(), 0u);
  EXPECT_EQ(window.bytes(), 0u);
}

// ---------------------------------------------------------------------
// Unit: incremental refresh of a Zig-Zag checkpoint image.
// ---------------------------------------------------------------------

TEST(CheckpointTest, ApplyDirtyFoldsUpsertsAndDeletes) {
  KvStore source;
  source.Upsert(1, Record{10});
  source.Upsert(2, Record{20});
  source.Upsert(3, Record{30});

  ZigZagCheckpointStore image;
  source.Scan(0, 100,
              [&](ObjectKey k, const Record& v) { image.Put(k, v); });

  // Mutate the source: overwrite, insert, delete.
  source.Upsert(2, Record{21});
  source.Upsert(4, Record{40});
  (void)source.Delete(3);

  // Refreshing only the dirty keys makes the image equal the source.
  EXPECT_EQ(image.ApplyDirty(source, {2, 3, 4}), 3u);
  std::vector<std::pair<ObjectKey, Record>> from_image;
  image.Checkpoint([&](ObjectKey k, const Record& v) {
    from_image.emplace_back(k, v);
  });
  std::vector<std::pair<ObjectKey, Record>> from_source;
  source.Scan(0, 100, [&](ObjectKey k, const Record& v) {
    from_source.emplace_back(k, v);
  });
  std::sort(from_image.begin(), from_image.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(from_source.begin(), from_source.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(from_image, from_source);
}

// ---------------------------------------------------------------------
// Integration: checkpointed runs stay byte-identical and truncate logs.
// ---------------------------------------------------------------------

TEST(CheckpointTest, CheckpointedRunMatchesBaselineOnEveryTransport) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kInProcess,
                             TransportKind::kTcp}) {
    LocalClusterOptions opts = StreamingOpts(kind);
    opts.checkpoint_every = 5;
    const RunSnapshot got = RunOnce(w, opts);
    const std::string label = "transport " +
                              std::to_string(static_cast<int>(kind));
    EXPECT_TRUE(got.out.fault.ok()) << label << ": "
                                    << got.out.fault.ToString();
    ExpectSameResults(ref.out.results, got.out.results);
    EXPECT_EQ(got.state, ref.state) << label;
    // Every machine captured at the cadence and truncated its logs.
    EXPECT_GE(got.out.checkpoint.checkpoints_taken, 3u) << label;
    EXPECT_GE(got.out.checkpoint.last_epoch, 5u) << label;
    EXPECT_GT(got.out.checkpoint.records_captured, 0u) << label;
    EXPECT_GT(got.out.checkpoint.truncated_request_entries, 0u) << label;
    EXPECT_GT(got.out.checkpoint.truncated_network_messages, 0u) << label;
  }
}

TEST(CheckpointTest, CheckpointedRunUnderNetworkFaultsMatchesBaseline) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.checkpoint_every = 5;
  opts.transport.faults.seed = 0xC0FFEE;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  ExpectSameResults(ref.out.results, got.out.results);
  EXPECT_EQ(got.state, ref.state);
  EXPECT_GE(got.out.checkpoint.checkpoints_taken, 3u);
}

TEST(CheckpointTest, LogFootprintPlateausWithCheckpointing) {
  // Same workload at 1x and 4x the run length. Unchekpointed, the §5.4
  // log footprint grows with run length; with a checkpoint cadence the
  // peak plateaus (bounded by the cadence, not the run).
  const Workload w1 = MakeMicroWorkload(SmallMicro(405));
  const Workload w4 = MakeMicroWorkload(SmallMicro(1620));

  auto peak_bytes = [](const Workload& w, SinkEpoch every) {
    LocalClusterOptions opts;
    opts.scheduler.sink_size = 20;
    opts.streaming = true;
    opts.checkpoint_every = every;
    LocalCluster cluster(&w, opts);
    const ClusterRunOutcome out = cluster.RunTPart();
    EXPECT_TRUE(out.fault.ok()) << out.fault.ToString();
    return out.checkpoint.request_log_bytes_peak +
           out.checkpoint.network_log_bytes_peak;
  };

  const std::uint64_t plain_1x = peak_bytes(w1, 0);
  const std::uint64_t plain_4x = peak_bytes(w4, 0);
  const std::uint64_t ck_1x = peak_bytes(w1, 4);
  const std::uint64_t ck_4x = peak_bytes(w4, 4);
  ASSERT_GT(plain_1x, 0u);
  ASSERT_GT(ck_1x, 0u);
  // Without checkpointing the footprint scales with the run (~4x).
  EXPECT_GT(plain_4x, 2 * plain_1x);
  // With it, 4x the run costs well under 2x the peak: a plateau.
  EXPECT_LT(ck_4x, 2 * ck_1x);
  // And checkpointing strictly beats the unchekpointed footprint at 4x.
  EXPECT_LT(ck_4x, plain_4x);
}

TEST(CheckpointTest, ResendWindowPrunedDuringCheckpointedRun) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
  opts.checkpoint_every = 4;
  const RunSnapshot got = RunOnce(w, opts);
  EXPECT_TRUE(got.out.fault.ok()) << got.out.fault.ToString();
  EXPECT_GT(got.out.checkpoint.pruned_resend_rounds, 0u);
  EXPECT_GT(got.out.checkpoint.resend_window_bytes_peak, 0u);
}

// ---------------------------------------------------------------------
// Integration: crash recovery on top of a mid-run checkpoint replays
// only the suffix since the capture.
// ---------------------------------------------------------------------

TEST(CheckpointTest, CrashWithCheckpointReplaysOnlySuffix) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const RunSnapshot ref = RunOnce(w, StreamingOpts(TransportKind::kDirect));

  auto crash_opts = [&](SinkEpoch every) {
    LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
    opts.crash.machine = 1;
    opts.crash.at_epoch = 12;  // late crash: a long prefix to not replay
    opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
    opts.detector.deadline_us = test::ScaledUs(100000);
    opts.checkpoint_every = every;
    return opts;
  };

  const RunSnapshot full = RunOnce(w, crash_opts(0));
  const RunSnapshot incr = RunOnce(w, crash_opts(4));
  for (const RunSnapshot* got : {&full, &incr}) {
    EXPECT_TRUE(got->out.fault.ok()) << got->out.fault.ToString();
    EXPECT_EQ(got->out.recovery.crashes_injected, 1u);
    ExpectSameResults(ref.out.results, got->out.results);
    EXPECT_EQ(got->state, ref.state);
  }
  // The checkpointed run replays only the post-capture suffix.
  EXPECT_GT(full.out.recovery.replayed_txns, 0u);
  EXPECT_LT(incr.out.recovery.replayed_txns,
            full.out.recovery.replayed_txns);
  EXPECT_GE(incr.out.checkpoint.checkpoints_taken, 1u);
}

TEST(CheckpointTest, CheckpointedCrashRunIsDeterministic) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.crash.machine = 2;
  opts.crash.at_epoch = 9;
  opts.detector.heartbeat_interval_us = test::ScaledUs(2000);
  opts.detector.deadline_us = test::ScaledUs(100000);
  opts.checkpoint_every = 3;
  const RunSnapshot first = RunOnce(w, opts);
  const RunSnapshot second = RunOnce(w, opts);
  ExpectSameResults(first.out.results, second.out.results);
  EXPECT_EQ(first.state, second.state);
  EXPECT_EQ(first.out.recovery.replayed_txns,
            second.out.recovery.replayed_txns);
}

TEST(CheckpointTest, CheckpointStatsSummaryNamesTheCounters) {
  CheckpointStats stats;
  stats.checkpoints_taken = 6;
  stats.last_epoch = 20;
  stats.records_captured = 123;
  stats.truncated_request_entries = 300;
  stats.truncated_network_messages = 450;
  stats.pruned_resend_rounds = 15;
  stats.request_log_bytes_peak = 1111;
  const std::string s = stats.Summary();
  EXPECT_NE(s.find("checkpoints=6"), std::string::npos) << s;
  EXPECT_NE(s.find("last_epoch=20"), std::string::npos) << s;
  EXPECT_NE(s.find("truncated(req/net)=300/450"), std::string::npos) << s;
  EXPECT_NE(s.find("pruned_rounds=15"), std::string::npos) << s;
}

}  // namespace
}  // namespace tpart
