#include <gtest/gtest.h>

#include "runtime/channel.h"
#include "sim/sim_cluster.h"

namespace tpart {
namespace {

// ---- SimWorkerPool -------------------------------------------------------

TEST(SimWorkerPoolTest, EarliestWorkerTieBreaksLowestIndex) {
  SimWorkerPool pool(3);
  EXPECT_EQ(pool.EarliestWorker(), 0u);
  pool.set_free_at(0, 100);
  EXPECT_EQ(pool.EarliestWorker(), 1u);
  pool.set_free_at(1, 50);
  pool.set_free_at(2, 50);
  EXPECT_EQ(pool.EarliestWorker(), 1u);  // tie -> lower index
}

TEST(SimWorkerPoolTest, FrontierIsMaxFreeTime) {
  SimWorkerPool pool(2);
  pool.set_free_at(0, 10);
  pool.set_free_at(1, 30);
  EXPECT_EQ(pool.Frontier(), 30);
  EXPECT_EQ(pool.EarliestFreeTime(), 10);
}

// ---- SimLockTable ----------------------------------------------------------

TEST(SimLockTableTest, ReadersWaitOnlyForWriters) {
  SimLockTable locks;
  EXPECT_EQ(locks.ReadAvailable(1), 0);
  locks.ReleaseRead(1, 100);
  EXPECT_EQ(locks.ReadAvailable(1), 0);   // reads don't block reads
  EXPECT_EQ(locks.WriteAvailable(1), 100);  // but block writes
  locks.ReleaseWrite(1, 200);
  EXPECT_EQ(locks.ReadAvailable(1), 200);
  EXPECT_EQ(locks.WriteAvailable(1), 200);
}

TEST(SimLockTableTest, ReleasesKeepMaximum) {
  SimLockTable locks;
  locks.ReleaseWrite(1, 300);
  locks.ReleaseWrite(1, 100);  // out-of-order release must not regress
  EXPECT_EQ(locks.ReadAvailable(1), 300);
}

// ---- SimCluster ------------------------------------------------------------

TEST(SimClusterTest, ClusterNowAndMakespan) {
  CostModel cost;
  cost.workers_per_machine = 2;
  SimCluster cluster(2, cost);
  EXPECT_EQ(cluster.ClusterNow(), 0);
  cluster.machine(0).workers.set_free_at(0, 100);
  cluster.machine(0).workers.set_free_at(1, 200);
  cluster.machine(1).workers.set_free_at(0, 50);
  cluster.machine(1).workers.set_free_at(1, 60);
  EXPECT_EQ(cluster.ClusterNow(), 50);
  EXPECT_EQ(cluster.Makespan(), 200);
}

TEST(CostModelTest, SpeedScaling) {
  CostModel cost;
  cost.machine_speed = {2.0, 0.5};
  EXPECT_EQ(cost.Scaled(1000, 0), 500);
  EXPECT_EQ(cost.Scaled(1000, 1), 2000);
  EXPECT_EQ(cost.Scaled(1000, 2), 1000);  // default 1.0 beyond the vector
  EXPECT_EQ(cost.rtt(), 2 * cost.network_latency);
  EXPECT_FALSE(cost.ToString().empty());
}

// ---- Channel ---------------------------------------------------------------

TEST(ChannelTest, FifoOrder) {
  Channel ch;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.type = Message::Type::kPushVersion;
    m.version = static_cast<TxnId>(i);
    ch.Send(std::move(m));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ch.Receive().version, static_cast<TxnId>(i));
  }
}

TEST(ChannelTest, TryReceiveNonBlocking) {
  Channel ch;
  EXPECT_FALSE(ch.TryReceive().has_value());
  Message m;
  m.type = Message::Type::kShutdown;
  ch.Send(std::move(m));
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_TRUE(ch.TryReceive().has_value());
  EXPECT_EQ(ch.size(), 0u);
}

}  // namespace
}  // namespace tpart
