// Streaming-pipeline tests: RunTPart with streaming=true runs admission,
// scheduling, dissemination, and execution as concurrent bounded stages,
// with requests pulled incrementally and plans shipped as wire messages.
// The stream must produce byte-identical results and final state to the
// batch path and the serial reference — on every transport, under fault
// injection, and with the stage queues squeezed to capacity 1.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "exec/serial_executor.h"
#include "runtime/cluster.h"
#include "workload/micro.h"
#include "workload/tpcc.h"

namespace tpart {
namespace {

std::pair<std::vector<TxnResult>, std::vector<std::pair<ObjectKey, Record>>>
SerialReference(const Workload& w) {
  auto map = std::make_shared<HashPartitionMap>(1);
  PartitionedStore store(1, map);
  PartitionedStore scratch(w.num_machines, w.partition_map);
  w.loader(scratch);
  for (auto& [k, rec] : scratch.Snapshot()) store.Upsert(k, rec);
  auto result = RunSerial(*w.procedures, w.SequencedRequests(),
                          store.store(0));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {std::move(result->results), store.Snapshot()};
}

void ExpectSameResults(const std::vector<TxnResult>& a,
                       const std::vector<TxnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].committed, b[i].committed) << "T" << a[i].id;
    EXPECT_EQ(a[i].output, b[i].output) << "T" << a[i].id;
  }
}

MicroOptions SmallMicro() {
  MicroOptions o;
  o.num_machines = 3;
  o.records_per_machine = 200;
  o.hot_set_size = 25;
  // Not a multiple of the sequencer batch size, so the admission stage's
  // final Flush() really pads with dummies (§3.3).
  o.num_txns = 405;
  return o;
}

LocalClusterOptions StreamingOpts(TransportKind kind) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 20;
  opts.transport.kind = kind;
  opts.streaming = true;
  return opts;
}

// Runs the workload in streaming mode and checks results and final state
// against the batch path and the serial reference.
ClusterRunOutcome CheckStreamingMatchesBatchAndSerial(
    const Workload& w, LocalClusterOptions opts) {
  const auto [serial_results, serial_state] = SerialReference(w);

  LocalClusterOptions batch_opts = opts;
  batch_opts.streaming = false;
  LocalCluster batch(&w, batch_opts);
  const ClusterRunOutcome batch_out = batch.RunTPart();
  const auto batch_state = batch.store().Snapshot();
  ExpectSameResults(serial_results, batch_out.results);
  EXPECT_EQ(batch_state, serial_state);

  LocalCluster stream(&w, opts);
  const ClusterRunOutcome stream_out = stream.RunTPart();
  ExpectSameResults(batch_out.results, stream_out.results);
  EXPECT_EQ(stream.store().Snapshot(), batch_state)
      << "streaming final state diverged from batch";
  EXPECT_EQ(stream_out.committed, batch_out.committed);
  EXPECT_EQ(stream_out.aborted, batch_out.aborted);
  return stream_out;
}

TEST(PipelineTest, StreamingMatchesBatchAndSerialMicro) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  const ClusterRunOutcome out =
      CheckStreamingMatchesBatchAndSerial(w, StreamingOpts(TransportKind::kDirect));

  const PipelineStats& p = out.pipeline;
  EXPECT_EQ(p.admitted, w.requests.size());
  EXPECT_GT(p.dummies, 0u);  // 405 % 20 != 0, the tail was padded
  EXPECT_GT(p.batches, 0u);
  EXPECT_GT(p.plans, 0u);
  EXPECT_GT(p.admission_seconds, 0.0);
  EXPECT_GT(p.AdmissionRate(), 0.0);
  // Every real transaction's admission->result latency was closed out.
  EXPECT_EQ(p.admit_to_commit_us.count(), out.results.size());
}

TEST(PipelineTest, StreamingByteIdenticalOnEveryTransport) {
  const Workload w = MakeMicroWorkload(SmallMicro());

  LocalCluster ref(&w, StreamingOpts(TransportKind::kDirect));
  const ClusterRunOutcome ref_out = ref.RunTPart();
  const auto ref_state = ref.store().Snapshot();

  for (TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kTcp}) {
    LocalCluster cluster(&w, StreamingOpts(kind));
    const ClusterRunOutcome got = cluster.RunTPart();
    ExpectSameResults(ref_out.results, got.results);
    EXPECT_EQ(cluster.store().Snapshot(), ref_state)
        << "transport kind " << static_cast<int>(kind);
    // Plans really crossed the wire: the serialized transports count the
    // kSinkPlan/kPlanStreamEnd traffic like any other message.
    EXPECT_GT(got.transport.messages_sent, 0u);
    EXPECT_GT(got.transport.bytes_out, 0u);
  }
}

TEST(PipelineTest, StreamingTpccWithAbortsOverTcp) {
  TpccOptions o;
  o.num_machines = 3;
  o.warehouses_per_machine = 1;
  o.customers_per_district = 20;
  o.num_items = 100;
  o.num_txns = 300;
  o.abort_prob = 0.05;
  const ClusterRunOutcome out = CheckStreamingMatchesBatchAndSerial(
      MakeTpccWorkload(o), StreamingOpts(TransportKind::kTcp));
  EXPECT_GT(out.aborted, 0u);  // aborts actually exercised the §5.3 path
}

TEST(PipelineTest, StreamingSurvivesFaultyTransport) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.transport.faults.seed = 0xBADBEE;
  opts.transport.faults.drop_prob = 0.05;
  opts.transport.faults.duplicate_prob = 0.05;
  opts.transport.faults.delay_prob = 0.10;
  opts.transport.faults.max_delay_us = 1500;
  opts.transport.retry_timeout_us = 1000;

  const ClusterRunOutcome out = CheckStreamingMatchesBatchAndSerial(w, opts);
  // Faults really hit the plan stream too (delays can reorder rounds;
  // the machine-side reorder buffer restores epoch order).
  EXPECT_GT(out.transport.faults_dropped, 0u);
  EXPECT_GT(out.transport.retries, 0u);
}

TEST(PipelineTest, TinyBoundsBackpressureAndStayBounded) {
  // Squeeze every stage to one in-flight unit. The run must still be
  // correct, the squeeze must actually have been felt (waits > 0), and
  // the high-water marks must prove memory never exceeded the caps —
  // i.e. the stream never materialized the workload or the plan list.
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kDirect);
  opts.pipeline.batch_queue_capacity = 1;
  opts.pipeline.plan_queue_capacity = 1;
  opts.pipeline.epoch_queue_capacity = 1;

  const ClusterRunOutcome out = CheckStreamingMatchesBatchAndSerial(w, opts);
  const PipelineStats& p = out.pipeline;
  EXPECT_GT(p.backpressure_waits, 0u);
  EXPECT_LE(p.batch_queue_high_water, 1u);
  EXPECT_LE(p.plan_queue_high_water, 1u);
  EXPECT_LE(p.epoch_queue_high_water, 1u);
  EXPECT_GE(p.epoch_queue_high_water, 1u);
}

TEST(PipelineTest, StreamingWithMultipleExecutorWorkers) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalClusterOptions opts = StreamingOpts(TransportKind::kInProcess);
  opts.executor_workers = 2;
  CheckStreamingMatchesBatchAndSerial(w, opts);
}

TEST(PipelineTest, StreamingIsDeterministicAcrossRuns) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  LocalCluster cluster(&w, StreamingOpts(TransportKind::kInProcess));
  const ClusterRunOutcome first = cluster.RunTPart();
  const auto first_state = cluster.store().Snapshot();
  const ClusterRunOutcome second = cluster.RunTPart();
  ExpectSameResults(first.results, second.results);
  EXPECT_EQ(cluster.store().Snapshot(), first_state);
}

TEST(PipelineTest, EmptyWorkloadStreamsCleanly) {
  Workload w = MakeMicroWorkload(SmallMicro());
  w.requests.clear();
  LocalCluster cluster(&w, StreamingOpts(TransportKind::kInProcess));
  const ClusterRunOutcome out = cluster.RunTPart();
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.pipeline.admitted, 0u);
  EXPECT_EQ(out.pipeline.plans, 0u);
}

TEST(PipelineTest, RequestSourceYieldsTraceInOrder) {
  const Workload w = MakeMicroWorkload(SmallMicro());
  auto source = w.MakeRequestSource();
  std::size_t n = 0;
  while (auto spec = source->Next()) {
    ASSERT_LT(n, w.requests.size());
    EXPECT_EQ(*spec, w.requests[n]);
    ++n;
  }
  EXPECT_EQ(n, w.requests.size());
  EXPECT_FALSE(source->Next().has_value());  // stays exhausted
}

TEST(PipelineTest, PipelineStatsSummaryMentionsStages) {
  PipelineStats p;
  p.admitted = 10;
  p.plans = 2;
  p.admission_seconds = 0.5;
  const std::string s = p.Summary();
  EXPECT_NE(s.find("admitted="), std::string::npos);
  EXPECT_NE(s.find("plans="), std::string::npos);
  EXPECT_NE(s.find("queue_hw"), std::string::npos);
}

}  // namespace
}  // namespace tpart
