#include "workload/tpce.h"

#include <deque>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"

namespace tpart {

namespace {

ObjectKey CustomerKey(std::uint64_t c) {
  return MakeObjectKey(kTpceCustomer, c);
}
ObjectKey AccountKey(std::uint64_t a) { return MakeObjectKey(kTpceAccount, a); }
ObjectKey BrokerKey(std::uint64_t b) { return MakeObjectKey(kTpceBroker, b); }
ObjectKey SecurityKey(std::uint64_t s) {
  return MakeObjectKey(kTpceSecurity, s);
}
ObjectKey LastTradeKey(std::uint64_t s) {
  return MakeObjectKey(kTpceLastTrade, s);
}
ObjectKey TradeKey(std::uint64_t t) { return MakeObjectKey(kTpceTrade, t); }
ObjectKey TradeHistoryKey(std::uint64_t t) {
  return MakeObjectKey(kTpceTradeHistory, t);
}
ObjectKey HoldingKey(std::uint64_t account, std::uint64_t security,
                     std::uint64_t num_securities) {
  return MakeObjectKey(kTpceHolding, account * num_securities + security);
}

// Record layouts:
//   CUSTOMER   [tier]
//   ACCOUNT    [balance, trade_cnt]
//   BROKER     [commission_ytd, trade_cnt]
//   SECURITY   [issue]         (read-only here)
//   LAST_TRADE [price, volume]
//   TRADE      [account, security, qty, price, status]  status 0=pending
//   TRADE_HISTORY [trade, status]
//   HOLDING_SUMMARY [qty]

// Trade-Order params: [c, acct, broker, sec, trade_id, qty, n_securities,
//                       n_quotes, quote_sec...]
// Reads widely (customer profile, account, broker, security, quoted
// market data) but only *inserts* — TPC-C-E's order path does not settle
// money; contended updates happen at Trade-Result.
Status TradeOrderProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto c = static_cast<std::uint64_t>(p[0]);
  const auto acct = static_cast<std::uint64_t>(p[1]);
  const auto broker = static_cast<std::uint64_t>(p[2]);
  const auto sec = static_cast<std::uint64_t>(p[3]);
  const auto trade = static_cast<std::uint64_t>(p[4]);
  const std::int64_t qty = p[5];
  const auto nsec = static_cast<std::uint64_t>(p[6]);
  const auto n_quotes = static_cast<std::size_t>(p[7]);

  TPART_ASSIGN_OR_RETURN(Record customer, ctx.Get(CustomerKey(c)));
  (void)customer;
  TPART_ASSIGN_OR_RETURN(Record account, ctx.Get(AccountKey(acct)));
  (void)account;
  TPART_ASSIGN_OR_RETURN(Record security, ctx.Get(SecurityKey(sec)));
  (void)security;
  TPART_ASSIGN_OR_RETURN(Record last_trade, ctx.Get(LastTradeKey(sec)));
  TPART_ASSIGN_OR_RETURN(Record broker_rec, ctx.Get(BrokerKey(broker)));
  (void)broker_rec;
  std::int64_t quote_sum = 0;
  for (std::size_t i = 0; i < n_quotes; ++i) {
    const auto q = static_cast<std::uint64_t>(p[8 + i]);
    TPART_ASSIGN_OR_RETURN(Record quote, ctx.Get(LastTradeKey(q)));
    quote_sum += quote.field(0);
  }

  const std::int64_t price = last_trade.field(0);
  TPART_RETURN_IF_ERROR(
      ctx.Put(TradeKey(trade),
              Record{static_cast<std::int64_t>(acct),
                     static_cast<std::int64_t>(sec), qty, price, 0}));
  TPART_RETURN_IF_ERROR(
      ctx.Put(TradeHistoryKey(trade),
              Record{static_cast<std::int64_t>(trade), 0}));
  (void)nsec;
  ctx.EmitOutput(price * qty + quote_sum);
  return Status::Ok();
}

// Trade-Result params: [trade_id, acct, sec, broker, n_securities]
Status TradeResultProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto trade = static_cast<std::uint64_t>(p[0]);
  const auto acct = static_cast<std::uint64_t>(p[1]);
  const auto sec = static_cast<std::uint64_t>(p[2]);
  const auto broker = static_cast<std::uint64_t>(p[3]);
  const auto nsec = static_cast<std::uint64_t>(p[4]);

  TPART_ASSIGN_OR_RETURN(Record trade_rec, ctx.Get(TradeKey(trade)));
  TPART_ASSIGN_OR_RETURN(Record account, ctx.Get(AccountKey(acct)));
  TPART_ASSIGN_OR_RETURN(Record last_trade, ctx.Get(LastTradeKey(sec)));
  TPART_ASSIGN_OR_RETURN(Record holding,
                         ctx.Get(HoldingKey(acct, sec, nsec)));
  TPART_ASSIGN_OR_RETURN(Record broker_rec, ctx.Get(BrokerKey(broker)));

  const std::int64_t qty = trade_rec.field(2);
  const std::int64_t price = trade_rec.field(3);
  trade_rec.set_field(4, 1);  // settled
  TPART_RETURN_IF_ERROR(ctx.Put(TradeKey(trade), std::move(trade_rec)));

  account.add_to_field(0, -(qty * price));
  TPART_RETURN_IF_ERROR(ctx.Put(AccountKey(acct), std::move(account)));

  last_trade.set_field(0, price + (qty % 3) - 1);  // drift the quote
  last_trade.add_to_field(1, qty);
  TPART_RETURN_IF_ERROR(ctx.Put(LastTradeKey(sec), std::move(last_trade)));

  if (holding.is_absent()) holding = Record{0};
  holding.add_to_field(0, qty);
  TPART_RETURN_IF_ERROR(
      ctx.Put(HoldingKey(acct, sec, nsec), std::move(holding)));

  broker_rec.add_to_field(0, qty * price / 100);
  TPART_RETURN_IF_ERROR(ctx.Put(BrokerKey(broker), std::move(broker_rec)));
  ctx.EmitOutput(qty * price);
  return Status::Ok();
}

}  // namespace

Workload MakeTpceWorkload(const TpceOptions& o) {
  TPART_CHECK(o.num_machines >= 1);
  const std::uint64_t customers =
      o.customers_per_machine * o.num_machines;
  const std::uint64_t securities =
      o.securities_per_machine * o.num_machines;
  const std::uint64_t accounts = customers * o.accounts_per_customer;
  const std::uint64_t brokers =
      std::max<std::uint64_t>(1, customers / o.customers_per_broker);

  Workload w;
  w.name = "tpce";
  w.num_machines = o.num_machines;
  w.catalog.AddTable({0, "CUSTOMER", 1, 300});
  w.catalog.AddTable({0, "ACCOUNT", 2, 120});
  w.catalog.AddTable({0, "BROKER", 2, 150});
  w.catalog.AddTable({0, "SECURITY", 1, 180});
  w.catalog.AddTable({0, "LAST_TRADE", 2, 30});
  w.catalog.AddTable({0, "TRADE", 5, 140});
  w.catalog.AddTable({0, "TRADE_HISTORY", 2, 20});
  w.catalog.AddTable({0, "HOLDING_SUMMARY", 1, 16});
  // "We partition each table horizontally based on the hash value of the
  // primary key of each record" (§6.1.2).
  w.partition_map = std::make_shared<HashPartitionMap>(o.num_machines);

  w.procedures = std::make_shared<ProcedureRegistry>();
  w.procedures->Register(kTpceTradeOrder, "trade-order", TradeOrderProc);
  w.procedures->Register(kTpceTradeResult, "trade-result", TradeResultProc);

  const std::uint64_t nsec = securities;
  w.loader = [customers, securities, accounts, brokers,
              nsec](PartitionedStore& store) {
    for (std::uint64_t c = 0; c < customers; ++c) {
      store.Upsert(CustomerKey(c), Record{static_cast<std::int64_t>(c % 3)});
    }
    for (std::uint64_t a = 0; a < accounts; ++a) {
      store.Upsert(AccountKey(a), Record{100'000, 0});
    }
    for (std::uint64_t b = 0; b < brokers; ++b) {
      store.Upsert(BrokerKey(b), Record{0, 0});
    }
    for (std::uint64_t s = 0; s < securities; ++s) {
      store.Upsert(SecurityKey(s), Record{static_cast<std::int64_t>(s % 7)});
      store.Upsert(LastTradeKey(s),
                   Record{50 + static_cast<std::int64_t>(s % 100), 0});
    }
    (void)nsec;
  };

  Rng rng(o.seed);
  ZipfGenerator customer_zipf(customers, o.customer_zipf_theta);
  ZipfGenerator security_zipf(securities, o.security_zipf_theta);

  struct PendingTrade {
    std::uint64_t trade, acct, sec, broker;
  };
  std::deque<PendingTrade> pending;
  std::uint64_t next_trade_id = 1;

  w.requests.reserve(o.num_txns);
  for (std::size_t t = 0; t < o.num_txns; ++t) {
    TxnSpec spec;
    const bool do_order =
        pending.empty() || rng.NextBool(o.trade_order_fraction);
    if (do_order) {
      const std::uint64_t c = customer_zipf.Next(rng);
      const std::uint64_t acct =
          c * o.accounts_per_customer + rng.NextBelow(o.accounts_per_customer);
      const std::uint64_t broker = c / o.customers_per_broker % brokers;
      const std::uint64_t sec = security_zipf.Next(rng);
      const std::uint64_t trade = next_trade_id++;
      const std::int64_t qty =
          10 * (1 + static_cast<std::int64_t>(rng.NextBelow(10)));

      spec.proc = kTpceTradeOrder;
      spec.params = {static_cast<std::int64_t>(c),
                     static_cast<std::int64_t>(acct),
                     static_cast<std::int64_t>(broker),
                     static_cast<std::int64_t>(sec),
                     static_cast<std::int64_t>(trade),
                     qty,
                     static_cast<std::int64_t>(securities),
                     o.market_scan_quotes};
      spec.rw.reads = {CustomerKey(c), AccountKey(acct), BrokerKey(broker),
                       SecurityKey(sec), LastTradeKey(sec)};
      for (int q = 0; q < o.market_scan_quotes; ++q) {
        const std::uint64_t qs = security_zipf.Next(rng);
        spec.params.push_back(static_cast<std::int64_t>(qs));
        spec.rw.reads.push_back(LastTradeKey(qs));
      }
      spec.rw.writes = {TradeKey(trade), TradeHistoryKey(trade)};
      pending.push_back(PendingTrade{trade, acct, sec, broker});
    } else {
      const PendingTrade pt = pending.front();
      pending.pop_front();
      spec.proc = kTpceTradeResult;
      spec.params = {static_cast<std::int64_t>(pt.trade),
                     static_cast<std::int64_t>(pt.acct),
                     static_cast<std::int64_t>(pt.sec),
                     static_cast<std::int64_t>(pt.broker),
                     static_cast<std::int64_t>(securities)};
      spec.rw.reads = {TradeKey(pt.trade), AccountKey(pt.acct),
                       LastTradeKey(pt.sec),
                       HoldingKey(pt.acct, pt.sec, securities),
                       BrokerKey(pt.broker)};
      spec.rw.writes = {TradeKey(pt.trade), AccountKey(pt.acct),
                        LastTradeKey(pt.sec),
                        HoldingKey(pt.acct, pt.sec, securities),
                        BrokerKey(pt.broker)};
    }
    spec.rw.Normalize();
    w.requests.push_back(std::move(spec));
  }
  return w;
}

}  // namespace tpart
