#ifndef TPART_WORKLOAD_WORKLOAD_H_
#define TPART_WORKLOAD_WORKLOAD_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/data_partition.h"
#include "storage/partitioned_store.h"
#include "storage/table.h"
#include "txn/procedure.h"
#include "txn/txn.h"

namespace tpart {

/// Incremental source of client requests — what a streaming admission
/// stage pulls from instead of materializing the whole trace up front.
/// Next() yields requests in arrival order (ids unassigned; the
/// Sequencer assigns them) and nullopt once the source is exhausted.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  virtual std::optional<TxnSpec> Next() = 0;
};

/// A generated workload: schema, initial data loader, stored procedures,
/// data-partition map, and a totally ordered transaction trace. All four
/// engines (serial reference, Calvin sim, T-Part sim, threaded runtime)
/// consume the same Workload, which is what makes cross-engine
/// determinism checks meaningful.
struct Workload {
  std::string name;
  std::size_t num_machines = 0;
  Catalog catalog;
  std::shared_ptr<const DataPartitionMap> partition_map;
  std::shared_ptr<ProcedureRegistry> procedures;
  /// Populates the initial database (per-machine stores routed by
  /// partition_map).
  std::function<void(PartitionedStore&)> loader;
  /// Generated requests, ids unassigned (the Sequencer assigns them).
  std::vector<TxnSpec> requests;

  /// Requests with consecutive ids assigned starting at 1 — convenience
  /// for feeding engines directly without a Sequencer.
  std::vector<TxnSpec> SequencedRequests() const;

  /// One-at-a-time view over `requests` for the streaming pipeline. The
  /// source copies each spec on demand; it borrows this Workload, which
  /// must outlive it.
  std::unique_ptr<RequestSource> MakeRequestSource() const;
};

/// Fraction of `requests` whose footprint spans more than one machine
/// under `map` (the offered distributed-transaction rate).
double MeasureDistributedRate(const std::vector<TxnSpec>& requests,
                              const DataPartitionMap& map);

}  // namespace tpart

#endif  // TPART_WORKLOAD_WORKLOAD_H_
