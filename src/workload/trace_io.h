#ifndef TPART_WORKLOAD_TRACE_IO_H_
#define TPART_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "txn/txn.h"

namespace tpart {

/// Line-oriented text serialisation of transaction traces, so experiment
/// inputs can be archived, diffed, and replayed across builds:
///
///   txn <id> proc <p> dummy <0|1> weight <w>
///   params <n> v1 v2 ...
///   reads <n> k1 k2 ...
///   writes <n> k1 k2 ...
///
/// Round-trips exactly (the format carries everything TxnSpec holds).
void WriteTrace(std::ostream& out, const std::vector<TxnSpec>& txns);

/// Parses a trace written by WriteTrace. Fails with InvalidArgument on
/// any malformed line.
Result<std::vector<TxnSpec>> ReadTrace(std::istream& in);

}  // namespace tpart

#endif  // TPART_WORKLOAD_TRACE_IO_H_
