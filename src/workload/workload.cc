#include "workload/workload.h"

#include <unordered_set>

namespace tpart {

std::vector<TxnSpec> Workload::SequencedRequests() const {
  std::vector<TxnSpec> out = requests;
  TxnId id = 1;
  for (auto& spec : out) spec.id = id++;
  return out;
}

namespace {

class VectorRequestSource final : public RequestSource {
 public:
  explicit VectorRequestSource(const std::vector<TxnSpec>* requests)
      : requests_(requests) {}

  std::optional<TxnSpec> Next() override {
    if (next_ >= requests_->size()) return std::nullopt;
    return (*requests_)[next_++];
  }

 private:
  const std::vector<TxnSpec>* requests_;
  std::size_t next_ = 0;
};

}  // namespace

std::unique_ptr<RequestSource> Workload::MakeRequestSource() const {
  return std::make_unique<VectorRequestSource>(&requests);
}

double MeasureDistributedRate(const std::vector<TxnSpec>& requests,
                              const DataPartitionMap& map) {
  if (requests.empty()) return 0.0;
  std::size_t distributed = 0;
  for (const auto& spec : requests) {
    MachineId first = kInvalidMachine;
    bool multi = false;
    for (const ObjectKey k : spec.rw.AllKeys()) {
      const MachineId m = map.Locate(k);
      if (first == kInvalidMachine) {
        first = m;
      } else if (m != first) {
        multi = true;
        break;
      }
    }
    if (multi) ++distributed;
  }
  return static_cast<double>(distributed) /
         static_cast<double>(requests.size());
}

}  // namespace tpart
