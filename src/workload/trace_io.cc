#include "workload/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace tpart {

void WriteTrace(std::ostream& out, const std::vector<TxnSpec>& txns) {
  for (const TxnSpec& t : txns) {
    out << "txn " << t.id << " proc " << t.proc << " dummy "
        << (t.is_dummy ? 1 : 0) << " weight " << t.node_weight << "\n";
    out << "params " << t.params.size();
    for (const auto v : t.params) out << " " << v;
    out << "\n";
    out << "reads " << t.rw.reads.size();
    for (const auto k : t.rw.reads) out << " " << k;
    out << "\n";
    out << "writes " << t.rw.writes.size();
    for (const auto k : t.rw.writes) out << " " << k;
    out << "\n";
  }
}

namespace {

Status Malformed(const std::string& line) {
  return Status::InvalidArgument("malformed trace line: " + line);
}

template <typename T>
Status ParseList(std::istringstream& in, const std::string& line, T& out) {
  using V = typename T::value_type;
  std::size_t n = 0;
  if (!(in >> n)) return Malformed(line);
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    V v;
    if (!(in >> v)) return Malformed(line);
    out.push_back(v);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<TxnSpec>> ReadTrace(std::istream& in) {
  std::vector<TxnSpec> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "txn") return Malformed(line);
    TxnSpec spec;
    std::string k1, k2, k3;
    int dummy = 0;
    if (!(ls >> spec.id >> k1 >> spec.proc >> k2 >> dummy >> k3 >>
          spec.node_weight) ||
        k1 != "proc" || k2 != "dummy" || k3 != "weight") {
      return Malformed(line);
    }
    spec.is_dummy = dummy != 0;

    auto read_section = [&](const char* want,
                            auto& dst) -> Status {
      if (!std::getline(in, line)) return Malformed("<eof>");
      std::istringstream ss(line);
      std::string tag2;
      ss >> tag2;
      if (tag2 != want) return Malformed(line);
      return ParseList(ss, line, dst);
    };
    TPART_RETURN_IF_ERROR(read_section("params", spec.params));
    TPART_RETURN_IF_ERROR(read_section("reads", spec.rw.reads));
    TPART_RETURN_IF_ERROR(read_section("writes", spec.rw.writes));
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace tpart
