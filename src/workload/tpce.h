#ifndef TPART_WORKLOAD_TPCE_H_
#define TPART_WORKLOAD_TPCE_H_

#include <cstdint>

#include "workload/workload.h"

namespace tpart {

/// TPC-E-like brokerage workload (§6.1.2): "TPC-E ... has more
/// complicated and long-running transactions, non-uniform data access,
/// and hard-to-partition data. Because there is no well-known best
/// partitioning method for TPC-E, we partition each table horizontally
/// based on the hash value of the primary key ... we focus on the
/// Trade-Order and Trade-Result transactions ... the EGen program
/// generates non-uniform customer ID, thus the data access pattern is
/// skewed."
///
/// Tables: CUSTOMER, ACCOUNT, BROKER, SECURITY, LAST_TRADE, TRADE,
/// TRADE_HISTORY, HOLDING_SUMMARY. Customer selection is Zipfian
/// (standing in for EGen's non-uniform ids); every table is
/// hash-partitioned, so nearly every transaction is distributed with
/// remote records spread across almost all machines — the hard case the
/// paper targets.
struct TpceOptions {
  std::size_t num_machines = 4;
  std::uint64_t customers_per_machine = 1'000;
  std::uint64_t securities_per_machine = 500;
  std::uint64_t accounts_per_customer = 2;
  /// One broker per this many customers.
  std::uint64_t customers_per_broker = 50;
  std::size_t num_txns = 10'000;
  /// Fraction of Trade-Order requests (rest are Trade-Result for
  /// previously ordered trades).
  double trade_order_fraction = 0.5;
  /// Zipf exponent of customer selection (EGen-style non-uniformity).
  double customer_zipf_theta = 0.75;
  /// Zipf exponent of security popularity.
  double security_zipf_theta = 0.60;
  /// Extra quotes a Trade-Order consults (market scan): spreads the read
  /// set over "almost all machines" as the paper observes of TPC-E.
  int market_scan_quotes = 10;
  std::uint64_t seed = 1;
};

Workload MakeTpceWorkload(const TpceOptions& options);

inline constexpr ProcId kTpceTradeOrder = 300;
inline constexpr ProcId kTpceTradeResult = 301;

enum TpceTable : TableId {
  kTpceCustomer = 0,
  kTpceAccount = 1,
  kTpceBroker = 2,
  kTpceSecurity = 3,
  kTpceLastTrade = 4,
  kTpceTrade = 5,
  kTpceTradeHistory = 6,
  kTpceHolding = 7,
};

}  // namespace tpart

#endif  // TPART_WORKLOAD_TPCE_H_
