#include "workload/tpcc.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"

namespace tpart {

namespace {

// ---- Key construction ------------------------------------------------
// All key spaces embed the warehouse in the high bits so the
// warehouse-based partition map can route any table's key.

constexpr std::uint64_t kDistrictsPerW = 10;
constexpr std::uint64_t kMaxCustomersPerDistrict = 1 << 12;
constexpr std::uint64_t kMaxItems = 1 << 20;
constexpr std::uint64_t kMaxOrdersPerDistrict = 1 << 22;
constexpr std::uint64_t kMaxLinesPerOrder = 16;

ObjectKey WarehouseKey(std::uint64_t w) {
  return MakeObjectKey(kTpccWarehouse, w);
}
ObjectKey DistrictKey(std::uint64_t w, std::uint64_t d) {
  return MakeObjectKey(kTpccDistrict, w * kDistrictsPerW + d);
}
ObjectKey CustomerKey(std::uint64_t w, std::uint64_t d, std::uint64_t c) {
  return MakeObjectKey(
      kTpccCustomer,
      (w * kDistrictsPerW + d) * kMaxCustomersPerDistrict + c);
}
ObjectKey StockKey(std::uint64_t w, std::uint64_t i) {
  return MakeObjectKey(kTpccStock, w * kMaxItems + i);
}
ObjectKey OrderKey(std::uint64_t w, std::uint64_t d, std::uint64_t o) {
  return MakeObjectKey(
      kTpccOrder, (w * kDistrictsPerW + d) * kMaxOrdersPerDistrict + o);
}
ObjectKey NewOrderKey(std::uint64_t w, std::uint64_t d, std::uint64_t o) {
  return MakeObjectKey(
      kTpccNewOrderTbl,
      (w * kDistrictsPerW + d) * kMaxOrdersPerDistrict + o);
}
ObjectKey OrderLineKey(std::uint64_t w, std::uint64_t d, std::uint64_t o,
                       std::uint64_t line) {
  return MakeObjectKey(
      kTpccOrderLine,
      ((w * kDistrictsPerW + d) * kMaxOrdersPerDistrict + o) *
              kMaxLinesPerOrder +
          line);
}
ObjectKey HistoryKey(std::uint64_t w, std::uint64_t seq) {
  return MakeObjectKey(kTpccHistory, w * (1ULL << 28) + seq);
}

// Warehouse of any TPC-C key (inverse of the constructions above).
std::uint64_t WarehouseOf(ObjectKey key) {
  const std::uint64_t pk = PrimaryKeyOf(key);
  switch (TableOf(key)) {
    case kTpccWarehouse:
      return pk;
    case kTpccDistrict:
      return pk / kDistrictsPerW;
    case kTpccCustomer:
      return pk / kMaxCustomersPerDistrict / kDistrictsPerW;
    case kTpccStock:
      return pk / kMaxItems;
    case kTpccOrder:
    case kTpccNewOrderTbl:
      return pk / kMaxOrdersPerDistrict / kDistrictsPerW;
    case kTpccOrderLine:
      return pk / kMaxLinesPerOrder / kMaxOrdersPerDistrict / kDistrictsPerW;
    case kTpccHistory:
      return pk >> 28;
    default:
      return 0;
  }
}

/// Warehouse-based data partitioning: machine = warehouse % machines —
/// the "good" partitioning TPC-C admits (§6.1.1).
class TpccPartitionMap : public DataPartitionMap {
 public:
  explicit TpccPartitionMap(std::size_t num_machines)
      : num_machines_(num_machines) {}
  MachineId Locate(ObjectKey key) const override {
    return static_cast<MachineId>(WarehouseOf(key) % num_machines_);
  }
  std::size_t num_partitions() const override { return num_machines_; }

 private:
  std::size_t num_machines_;
};

// ---- Stored procedures -----------------------------------------------
// Record layouts:
//   WAREHOUSE  [ytd]
//   DISTRICT   [next_o_id, ytd]
//   CUSTOMER   [balance, ytd_payment, payment_cnt]
//   STOCK      [quantity, ytd, order_cnt, remote_cnt]
//   ORDER      [c_id, ol_cnt, all_local]
//   NEW_ORDER  [1]
//   ORDER_LINE [item, supply_w, qty, amount]
//   HISTORY    [amount]

// New-Order params: [w, d, c, o_id, abort_flag, ol_cnt,
//                    (item, supply_w, qty, price) * ol_cnt]
Status NewOrderProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto w = static_cast<std::uint64_t>(p[0]);
  const auto d = static_cast<std::uint64_t>(p[1]);
  const auto c = static_cast<std::uint64_t>(p[2]);
  const auto o_id = static_cast<std::uint64_t>(p[3]);
  const bool abort_flag = p[4] != 0;
  const auto ol_cnt = static_cast<std::size_t>(p[5]);

  TPART_ASSIGN_OR_RETURN(Record district, ctx.Get(DistrictKey(w, d)));
  TPART_ASSIGN_OR_RETURN(Record customer, ctx.Get(CustomerKey(w, d, c)));
  (void)customer;

  if (abort_flag) {
    // TPC-C: ~1% of New-Orders roll back on an unused item id. This is a
    // logic abort — the only abort kind in a deterministic system (§2.1).
    return Status::Aborted("invalid item");
  }

  std::int64_t total = 0;
  bool all_local = true;
  for (std::size_t l = 0; l < ol_cnt; ++l) {
    const auto item = static_cast<std::uint64_t>(p[6 + 4 * l]);
    const auto supply_w = static_cast<std::uint64_t>(p[7 + 4 * l]);
    const std::int64_t qty = p[8 + 4 * l];
    const std::int64_t price = p[9 + 4 * l];
    if (supply_w != w) all_local = false;

    TPART_ASSIGN_OR_RETURN(Record stock, ctx.Get(StockKey(supply_w, item)));
    std::int64_t quantity = stock.field(0);
    quantity = quantity - qty >= 10 ? quantity - qty : quantity - qty + 91;
    stock.set_field(0, quantity);
    stock.add_to_field(1, qty);
    stock.add_to_field(2, 1);
    if (supply_w != w) stock.add_to_field(3, 1);
    TPART_RETURN_IF_ERROR(ctx.Put(StockKey(supply_w, item), std::move(stock)));

    const std::int64_t amount = qty * price;
    total += amount;
    TPART_RETURN_IF_ERROR(
        ctx.Put(OrderLineKey(w, d, o_id, l),
                Record{static_cast<std::int64_t>(item),
                       static_cast<std::int64_t>(supply_w), qty, amount}));
  }

  district.set_field(0, static_cast<std::int64_t>(o_id) + 1);
  TPART_RETURN_IF_ERROR(ctx.Put(DistrictKey(w, d), std::move(district)));
  TPART_RETURN_IF_ERROR(
      ctx.Put(OrderKey(w, d, o_id),
              Record{static_cast<std::int64_t>(c),
                     static_cast<std::int64_t>(ol_cnt),
                     all_local ? 1 : 0}));
  TPART_RETURN_IF_ERROR(ctx.Put(NewOrderKey(w, d, o_id), Record{1}));
  ctx.EmitOutput(total);
  return Status::Ok();
}

// Delivery params (one district per request, simplified from the spec's
// all-10-districts batch): [w, d, o_id, carrier, c, ol_cnt]
// Consumes the oldest undelivered order: deletes its NEW_ORDER row (an
// Absent write — exercised through every engine), stamps the carrier on
// ORDER, and credits the customer with the order's total.
Status DeliveryProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto w = static_cast<std::uint64_t>(p[0]);
  const auto d = static_cast<std::uint64_t>(p[1]);
  const auto o_id = static_cast<std::uint64_t>(p[2]);
  const std::int64_t carrier = p[3];
  const auto c = static_cast<std::uint64_t>(p[4]);
  const auto ol_cnt = static_cast<std::size_t>(p[5]);

  TPART_ASSIGN_OR_RETURN(Record new_order, ctx.Get(NewOrderKey(w, d, o_id)));
  if (new_order.is_absent()) {
    // Already delivered (can only happen under a buggy generator).
    return Status::Aborted("no such undelivered order");
  }
  TPART_ASSIGN_OR_RETURN(Record order, ctx.Get(OrderKey(w, d, o_id)));
  std::int64_t total = 0;
  for (std::size_t l = 0; l < ol_cnt; ++l) {
    TPART_ASSIGN_OR_RETURN(Record line, ctx.Get(OrderLineKey(w, d, o_id, l)));
    total += line.field(3);
  }
  TPART_ASSIGN_OR_RETURN(Record customer, ctx.Get(CustomerKey(w, d, c)));

  TPART_RETURN_IF_ERROR(
      ctx.Put(NewOrderKey(w, d, o_id), Record::Absent()));  // delete
  order = Record{order.field(0), order.field(1), order.field(2), carrier};
  TPART_RETURN_IF_ERROR(ctx.Put(OrderKey(w, d, o_id), std::move(order)));
  customer.add_to_field(0, total);
  TPART_RETURN_IF_ERROR(ctx.Put(CustomerKey(w, d, c), std::move(customer)));
  ctx.EmitOutput(total);
  return Status::Ok();
}

// Order-Status params: [w, d, c, o_id, ol_cnt] — read-only.
Status OrderStatusProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto w = static_cast<std::uint64_t>(p[0]);
  const auto d = static_cast<std::uint64_t>(p[1]);
  const auto c = static_cast<std::uint64_t>(p[2]);
  const auto o_id = static_cast<std::uint64_t>(p[3]);
  const auto ol_cnt = static_cast<std::size_t>(p[4]);

  TPART_ASSIGN_OR_RETURN(Record customer, ctx.Get(CustomerKey(w, d, c)));
  ctx.EmitOutput(customer.field(0));  // balance
  TPART_ASSIGN_OR_RETURN(Record order, ctx.Get(OrderKey(w, d, o_id)));
  ctx.EmitOutput(order.field(1));  // line count
  std::int64_t total = 0;
  for (std::size_t l = 0; l < ol_cnt; ++l) {
    TPART_ASSIGN_OR_RETURN(Record line, ctx.Get(OrderLineKey(w, d, o_id, l)));
    total += line.field(3);
  }
  ctx.EmitOutput(total);
  return Status::Ok();
}

// Stock-Level params: [w, d, threshold, n_orders,
//                      (o_id, ol_cnt, (item, supply)*ol_cnt) * n_orders]
// Counts distinct recent stocks below the threshold — read-only with a
// wide footprint over order lines and stock rows.
Status StockLevelProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto w = static_cast<std::uint64_t>(p[0]);
  const auto d = static_cast<std::uint64_t>(p[1]);
  const std::int64_t threshold = p[2];
  const auto n_orders = static_cast<std::size_t>(p[3]);

  TPART_ASSIGN_OR_RETURN(Record district, ctx.Get(DistrictKey(w, d)));
  (void)district;
  std::int64_t low = 0;
  std::size_t idx = 4;
  std::vector<ObjectKey> counted;
  for (std::size_t o = 0; o < n_orders; ++o) {
    const auto o_id = static_cast<std::uint64_t>(p[idx++]);
    const auto ol_cnt = static_cast<std::size_t>(p[idx++]);
    for (std::size_t l = 0; l < ol_cnt; ++l) {
      const auto item = static_cast<std::uint64_t>(p[idx++]);
      const auto supply = static_cast<std::uint64_t>(p[idx++]);
      TPART_ASSIGN_OR_RETURN(Record line,
                             ctx.Get(OrderLineKey(w, d, o_id, l)));
      (void)line;
      const ObjectKey sk = StockKey(supply, item);
      if (std::find(counted.begin(), counted.end(), sk) != counted.end()) {
        continue;  // distinct stocks only
      }
      counted.push_back(sk);
      TPART_ASSIGN_OR_RETURN(Record stock, ctx.Get(sk));
      if (stock.field(0) < threshold) ++low;
    }
  }
  ctx.EmitOutput(low);
  return Status::Ok();
}

// Payment params: [w, d, c_w, c_d, c, amount, h_seq]
Status PaymentProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const auto w = static_cast<std::uint64_t>(p[0]);
  const auto d = static_cast<std::uint64_t>(p[1]);
  const auto c_w = static_cast<std::uint64_t>(p[2]);
  const auto c_d = static_cast<std::uint64_t>(p[3]);
  const auto c = static_cast<std::uint64_t>(p[4]);
  const std::int64_t amount = p[5];
  const auto h_seq = static_cast<std::uint64_t>(p[6]);

  TPART_ASSIGN_OR_RETURN(Record warehouse, ctx.Get(WarehouseKey(w)));
  warehouse.add_to_field(0, amount);
  TPART_RETURN_IF_ERROR(ctx.Put(WarehouseKey(w), std::move(warehouse)));

  TPART_ASSIGN_OR_RETURN(Record district, ctx.Get(DistrictKey(w, d)));
  district.add_to_field(1, amount);
  TPART_RETURN_IF_ERROR(ctx.Put(DistrictKey(w, d), std::move(district)));

  TPART_ASSIGN_OR_RETURN(Record customer,
                         ctx.Get(CustomerKey(c_w, c_d, c)));
  customer.add_to_field(0, -amount);
  customer.add_to_field(1, amount);
  customer.add_to_field(2, 1);
  ctx.EmitOutput(customer.field(0));
  TPART_RETURN_IF_ERROR(
      ctx.Put(CustomerKey(c_w, c_d, c), std::move(customer)));

  TPART_RETURN_IF_ERROR(ctx.Put(HistoryKey(w, h_seq), Record{amount}));
  return Status::Ok();
}

}  // namespace

Workload MakeTpccWorkload(const TpccOptions& o) {
  TPART_CHECK(o.num_machines >= 1);
  TPART_CHECK(o.customers_per_district <= kMaxCustomersPerDistrict);
  TPART_CHECK(o.num_items <= kMaxItems);
  const std::uint64_t num_warehouses =
      static_cast<std::uint64_t>(o.num_machines) * o.warehouses_per_machine;

  Workload w;
  w.name = "tpcc";
  w.num_machines = o.num_machines;
  w.catalog.AddTable({0, "WAREHOUSE", 1, 80});
  w.catalog.AddTable({0, "DISTRICT", 2, 88});
  w.catalog.AddTable({0, "CUSTOMER", 3, 640});
  w.catalog.AddTable({0, "STOCK", 4, 300});
  w.catalog.AddTable({0, "ORDER", 3, 24});
  w.catalog.AddTable({0, "NEW_ORDER", 1, 8});
  w.catalog.AddTable({0, "ORDER_LINE", 4, 50});
  w.catalog.AddTable({0, "HISTORY", 1, 46});
  w.partition_map = std::make_shared<TpccPartitionMap>(o.num_machines);

  w.procedures = std::make_shared<ProcedureRegistry>();
  w.procedures->Register(kTpccNewOrder, "new-order", NewOrderProc);
  w.procedures->Register(kTpccPayment, "payment", PaymentProc);
  w.procedures->Register(kTpccDelivery, "delivery", DeliveryProc);
  w.procedures->Register(kTpccOrderStatus, "order-status", OrderStatusProc);
  w.procedures->Register(kTpccStockLevel, "stock-level", StockLevelProc);

  const TpccOptions opts = o;
  w.loader = [opts, num_warehouses](PartitionedStore& store) {
    for (std::uint64_t wh = 0; wh < num_warehouses; ++wh) {
      store.Upsert(WarehouseKey(wh), Record{0});
      for (std::uint64_t d = 0; d < opts.districts_per_warehouse; ++d) {
        store.Upsert(DistrictKey(wh, d), Record{1, 0});
        for (std::uint64_t c = 0; c < opts.customers_per_district; ++c) {
          store.Upsert(CustomerKey(wh, d, c), Record{0, 0, 0});
        }
      }
      for (std::uint64_t i = 0; i < opts.num_items; ++i) {
        store.Upsert(StockKey(wh, i), Record{50, 0, 0, 0});
      }
    }
  };

  Rng rng(o.seed);
  // The generator tracks the committed next_o_id per district so order
  // ids in the trace match the ids execution will assign, plus enough
  // order metadata to parameterise Delivery / Order-Status / Stock-Level
  // with fully declared read/write sets.
  std::unordered_map<std::uint64_t, std::uint64_t> next_o_id;
  std::unordered_map<std::uint64_t, std::uint64_t> next_h_seq;
  struct PastOrder {
    std::uint64_t o_id;
    std::uint64_t customer;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lines;  // item,supply
  };
  std::unordered_map<std::uint64_t, std::deque<PastOrder>> undelivered;
  std::unordered_map<std::uint64_t, std::deque<PastOrder>> recent;
  std::unordered_map<std::uint64_t, PastOrder> last_order_of_customer;

  w.requests.reserve(o.num_txns);
  for (std::size_t t = 0; t < o.num_txns; ++t) {
    const std::uint64_t wh = rng.NextBelow(num_warehouses);
    const std::uint64_t d = rng.NextBelow(o.districts_per_warehouse);
    const std::uint64_t district_key_idx = wh * kDistrictsPerW + d;
    TxnSpec spec;

    double pick = rng.NextDouble();
    enum class Kind { kNewOrder, kPayment, kDelivery, kStatus, kStock };
    Kind kind = Kind::kPayment;
    if (pick < o.new_order_fraction) {
      kind = Kind::kNewOrder;
    } else if ((pick -= o.new_order_fraction) < o.delivery_fraction) {
      kind = Kind::kDelivery;
    } else if ((pick -= o.delivery_fraction) < o.order_status_fraction) {
      kind = Kind::kStatus;
    } else if ((pick -= o.order_status_fraction) < o.stock_level_fraction) {
      kind = Kind::kStock;
    }
    // Order-dependent transactions degrade to Payment when the district
    // has no eligible orders yet (deterministic fallback).
    if (kind == Kind::kDelivery && undelivered[district_key_idx].empty()) {
      kind = Kind::kPayment;
    }
    if (kind == Kind::kStock && recent[district_key_idx].empty()) {
      kind = Kind::kPayment;
    }

    if (kind == Kind::kDelivery) {
      PastOrder po = undelivered[district_key_idx].front();
      undelivered[district_key_idx].pop_front();
      spec.proc = kTpccDelivery;
      spec.params = {static_cast<std::int64_t>(wh),
                     static_cast<std::int64_t>(d),
                     static_cast<std::int64_t>(po.o_id),
                     1 + static_cast<std::int64_t>(rng.NextBelow(10)),
                     static_cast<std::int64_t>(po.customer),
                     static_cast<std::int64_t>(po.lines.size())};
      spec.rw.reads = {NewOrderKey(wh, d, po.o_id), OrderKey(wh, d, po.o_id),
                       CustomerKey(wh, d, po.customer)};
      for (std::size_t l = 0; l < po.lines.size(); ++l) {
        spec.rw.reads.push_back(OrderLineKey(wh, d, po.o_id, l));
      }
      spec.rw.writes = {NewOrderKey(wh, d, po.o_id), OrderKey(wh, d, po.o_id),
                        CustomerKey(wh, d, po.customer)};
      spec.rw.Normalize();
      w.requests.push_back(std::move(spec));
      continue;
    }
    if (kind == Kind::kStatus) {
      // Any customer that has ordered; fall back to Payment otherwise.
      const std::uint64_t c = rng.NextBelow(o.customers_per_district);
      auto it = last_order_of_customer.find(
          (district_key_idx << 20) | c);
      if (it == last_order_of_customer.end()) {
        kind = Kind::kPayment;
      } else {
        const PastOrder& po = it->second;
        spec.proc = kTpccOrderStatus;
        spec.params = {static_cast<std::int64_t>(wh),
                       static_cast<std::int64_t>(d),
                       static_cast<std::int64_t>(c),
                       static_cast<std::int64_t>(po.o_id),
                       static_cast<std::int64_t>(po.lines.size())};
        spec.rw.reads = {CustomerKey(wh, d, c), OrderKey(wh, d, po.o_id)};
        for (std::size_t l = 0; l < po.lines.size(); ++l) {
          spec.rw.reads.push_back(OrderLineKey(wh, d, po.o_id, l));
        }
        spec.rw.Normalize();
        w.requests.push_back(std::move(spec));
        continue;
      }
    }
    if (kind == Kind::kStock) {
      const auto& rec = recent[district_key_idx];
      const auto n = std::min<std::size_t>(
          rec.size(), static_cast<std::size_t>(o.stock_level_orders));
      spec.proc = kTpccStockLevel;
      spec.params = {static_cast<std::int64_t>(wh),
                     static_cast<std::int64_t>(d),
                     10 + static_cast<std::int64_t>(rng.NextBelow(11)),
                     static_cast<std::int64_t>(n)};
      spec.rw.reads = {DistrictKey(wh, d)};
      for (std::size_t i = rec.size() - n; i < rec.size(); ++i) {
        const PastOrder& po = rec[i];
        spec.params.push_back(static_cast<std::int64_t>(po.o_id));
        spec.params.push_back(static_cast<std::int64_t>(po.lines.size()));
        for (std::size_t l = 0; l < po.lines.size(); ++l) {
          const auto [item, supply] = po.lines[l];
          spec.params.push_back(static_cast<std::int64_t>(item));
          spec.params.push_back(static_cast<std::int64_t>(supply));
          spec.rw.reads.push_back(OrderLineKey(wh, d, po.o_id, l));
          spec.rw.reads.push_back(StockKey(supply, item));
        }
      }
      spec.rw.Normalize();
      w.requests.push_back(std::move(spec));
      continue;
    }

    if (kind == Kind::kNewOrder) {
      const std::uint64_t c = rng.NextBelow(o.customers_per_district);
      const bool abort_flag = rng.NextBool(o.abort_prob);
      const std::uint64_t district_idx = wh * kDistrictsPerW + d;
      const std::uint64_t o_id = 1 + next_o_id[district_idx];
      if (!abort_flag) ++next_o_id[district_idx];
      const std::size_t ol_cnt = 5 + rng.NextBelow(11);  // 5..15

      spec.proc = kTpccNewOrder;
      spec.params = {static_cast<std::int64_t>(wh),
                     static_cast<std::int64_t>(d),
                     static_cast<std::int64_t>(c),
                     static_cast<std::int64_t>(o_id),
                     abort_flag ? 1 : 0,
                     static_cast<std::int64_t>(ol_cnt)};
      spec.rw.reads = {WarehouseKey(wh), DistrictKey(wh, d),
                       CustomerKey(wh, d, c)};
      spec.rw.writes = {DistrictKey(wh, d), OrderKey(wh, d, o_id),
                        NewOrderKey(wh, d, o_id)};
      PastOrder po;
      po.o_id = o_id;
      po.customer = c;
      for (std::size_t l = 0; l < ol_cnt; ++l) {
        const std::uint64_t item = rng.NextBelow(o.num_items);
        std::uint64_t supply = wh;
        if (num_warehouses > 1 && rng.NextBool(o.remote_item_prob)) {
          supply = rng.NextBelow(num_warehouses - 1);
          if (supply >= wh) ++supply;
        }
        const std::int64_t qty = 1 + static_cast<std::int64_t>(
                                         rng.NextBelow(10));
        const std::int64_t price =
            1 + static_cast<std::int64_t>(rng.NextBelow(100));
        spec.params.push_back(static_cast<std::int64_t>(item));
        spec.params.push_back(static_cast<std::int64_t>(supply));
        spec.params.push_back(qty);
        spec.params.push_back(price);
        spec.rw.reads.push_back(StockKey(supply, item));
        spec.rw.writes.push_back(StockKey(supply, item));
        spec.rw.writes.push_back(OrderLineKey(wh, d, o_id, l));
        po.lines.emplace_back(item, supply);
      }
      if (!abort_flag) {
        undelivered[district_idx].push_back(po);
        auto& rec = recent[district_idx];
        rec.push_back(po);
        if (rec.size() > static_cast<std::size_t>(o.stock_level_orders)) {
          rec.pop_front();
        }
        last_order_of_customer[(district_idx << 20) | c] = std::move(po);
      }
    } else {
      std::uint64_t c_w = wh;
      std::uint64_t c_d = d;
      if (num_warehouses > 1 && rng.NextBool(o.remote_payment_prob)) {
        c_w = rng.NextBelow(num_warehouses - 1);
        if (c_w >= wh) ++c_w;
        c_d = rng.NextBelow(o.districts_per_warehouse);
      }
      const std::uint64_t c = rng.NextBelow(o.customers_per_district);
      const std::int64_t amount =
          1 + static_cast<std::int64_t>(rng.NextBelow(5000));
      const std::uint64_t h_seq = next_h_seq[wh]++;

      spec.proc = kTpccPayment;
      spec.params = {static_cast<std::int64_t>(wh),
                     static_cast<std::int64_t>(d),
                     static_cast<std::int64_t>(c_w),
                     static_cast<std::int64_t>(c_d),
                     static_cast<std::int64_t>(c),
                     amount,
                     static_cast<std::int64_t>(h_seq)};
      spec.rw.reads = {WarehouseKey(wh), DistrictKey(wh, d),
                       CustomerKey(c_w, c_d, c)};
      spec.rw.writes = {WarehouseKey(wh), DistrictKey(wh, d),
                        CustomerKey(c_w, c_d, c), HistoryKey(wh, h_seq)};
    }
    spec.rw.Normalize();
    w.requests.push_back(std::move(spec));
  }
  return w;
}

}  // namespace tpart
