#ifndef TPART_WORKLOAD_TPCC_H_
#define TPART_WORKLOAD_TPCC_H_

#include <cstdint>

#include "workload/workload.h"

namespace tpart {

/// TPC-C (§6.1.1): warehouse-centric order management. "Its data are
/// known to be partitionable based on warehouses because each transaction
/// has only 10% probability to access the data in more than one
/// warehouse" — the easy-to-partition contrast workload for Fig. 5(a).
///
/// From-scratch implementation of the New-Order and Payment transactions
/// over WAREHOUSE / DISTRICT / CUSTOMER / STOCK / ORDER / NEW_ORDER /
/// ORDER_LINE / HISTORY. The read-only ITEM catalog is treated as
/// replicated (prices travel in the procedure parameters), the standard
/// deterministic-database simplification. Order ids are pre-assigned by
/// the generator, which tracks the per-district sequence the committed
/// execution will produce — this keeps write sets fully declared before
/// execution, as determinism requires.
struct TpccOptions {
  std::size_t num_machines = 4;
  std::uint32_t warehouses_per_machine = 2;
  std::uint32_t districts_per_warehouse = 10;
  std::uint32_t customers_per_district = 300;   // spec: 3000
  std::uint32_t num_items = 10'000;             // spec: 100000
  std::size_t num_txns = 10'000;
  /// Transaction mix. Fractions are cumulative-normalised; anything left
  /// over goes to Payment. The spec mix is roughly 45/43/4/4/4.
  double new_order_fraction = 0.45;
  double delivery_fraction = 0.04;
  double order_status_fraction = 0.04;
  double stock_level_fraction = 0.04;
  /// Recent orders a Stock-Level transaction examines (spec: 20; scaled).
  int stock_level_orders = 4;
  /// Per-order-line probability of a remote supplying warehouse (spec:
  /// 0.01, yielding ~10% multi-warehouse New-Orders).
  double remote_item_prob = 0.01;
  /// Probability a Payment pays through a remote warehouse's customer
  /// (spec: 0.15).
  double remote_payment_prob = 0.15;
  /// New-Order logic-abort probability (spec: 1% invalid item).
  double abort_prob = 0.01;
  std::uint64_t seed = 1;
};

Workload MakeTpccWorkload(const TpccOptions& options);

inline constexpr ProcId kTpccNewOrder = 200;
inline constexpr ProcId kTpccPayment = 201;
inline constexpr ProcId kTpccDelivery = 202;
inline constexpr ProcId kTpccOrderStatus = 203;
inline constexpr ProcId kTpccStockLevel = 204;

/// TPC-C table ids (registration order in the catalog).
enum TpccTable : TableId {
  kTpccWarehouse = 0,
  kTpccDistrict = 1,
  kTpccCustomer = 2,
  kTpccStock = 3,
  kTpccOrder = 4,
  kTpccNewOrderTbl = 5,
  kTpccOrderLine = 6,
  kTpccHistory = 7,
};

}  // namespace tpart

#endif  // TPART_WORKLOAD_TPCC_H_
