#ifndef TPART_WORKLOAD_MICRO_H_
#define TPART_WORKLOAD_MICRO_H_

#include <cstdint>

#include "workload/workload.h"

namespace tpart {

/// The §6.3 Microbenchmark: "one table that [is] horizontally and evenly
/// partitioned across different machines. The size of each record is 164
/// bytes. We split each data partition into the hot set and cold set."
/// A transaction reads 10 records (1 hot + 9 cold); a read-write
/// transaction then "randomly writes back 5 of them"; a distributed
/// transaction places `remote_records` of its records on remote machines;
/// a skewed transaction "has 50% probability of accessing remote records
/// on machines that are numbered in the first one-fifth."
///
/// Defaults follow Table 1 (record count scaled down; the paper's
/// 1,000,000 records/machine is overridable).
struct MicroOptions {
  std::size_t num_machines = 4;
  std::uint64_t records_per_machine = 100'000;  // Table 1: 1,000,000
  std::size_t num_txns = 10'000;
  int records_per_txn = 10;        // "#Records Accessed per Txn."
  int remote_records = 9;          // "#Remote Records per Distributed Txn."
  int write_records = 5;           // "#Write Records per Read-write Txn."
  double distributed_rate = 1.0;   // "Distributed Txn. Rate"
  double read_write_rate = 0.5;    // "Read-write Txn. Rate"
  double skewed_rate = 0.3;        // "Skewed Txn. Rate"
  std::uint64_t hot_set_size = 10'000;  // "Txn. Conflict Rate 1% (10k)"
  std::size_t record_bytes = 164;
  std::uint64_t seed = 1;
};

/// Builds the workload (schema, loader, procedure, trace).
Workload MakeMicroWorkload(const MicroOptions& options);

/// Procedure id used by the Microbenchmark.
inline constexpr ProcId kMicroProc = 100;

}  // namespace tpart

#endif  // TPART_WORKLOAD_MICRO_H_
