#include "workload/micro.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "txn/rw_set.h"

namespace tpart {

namespace {

constexpr TableId kMicroTable = 0;

// Parameter layout shared by the generator (which derives the declared
// read/write sets) and the stored procedure (which replays the same keys):
// [delta, R, r_1..r_R, W, w_1..w_W].
std::vector<std::int64_t> EncodeParams(std::int64_t delta,
                                       const std::vector<ObjectKey>& reads,
                                       const std::vector<ObjectKey>& writes) {
  std::vector<std::int64_t> p;
  p.reserve(3 + reads.size() + writes.size());
  p.push_back(delta);
  p.push_back(static_cast<std::int64_t>(reads.size()));
  for (const ObjectKey k : reads) p.push_back(static_cast<std::int64_t>(k));
  p.push_back(static_cast<std::int64_t>(writes.size()));
  for (const ObjectKey k : writes) p.push_back(static_cast<std::int64_t>(k));
  return p;
}

Status MicroProc(TxnContext& ctx) {
  const auto& p = ctx.params();
  const std::int64_t delta = p[0];
  const auto nreads = static_cast<std::size_t>(p[1]);
  std::int64_t sum = 0;
  // Read phase: "a read-only transaction reads a constant 10 records".
  std::vector<std::pair<ObjectKey, Record>> values;
  values.reserve(nreads);
  for (std::size_t i = 0; i < nreads; ++i) {
    const auto key = static_cast<ObjectKey>(p[2 + i]);
    Result<Record> r = ctx.Get(key);
    if (!r.ok()) return r.status();
    sum += r->field(0);
    values.emplace_back(key, std::move(r).value());
  }
  ctx.EmitOutput(sum);
  // Write phase: "after reading 10 records, randomly writes back 5 of
  // them" (the 5 were chosen by the generator).
  const std::size_t woff = 2 + nreads;
  const auto nwrites = static_cast<std::size_t>(p[woff]);
  for (std::size_t i = 0; i < nwrites; ++i) {
    const auto key = static_cast<ObjectKey>(p[woff + 1 + i]);
    Record rec;
    for (const auto& [k, v] : values) {
      if (k == key) {
        rec = v;
        break;
      }
    }
    rec.add_to_field(0, delta);
    rec.add_to_field(1, 1);  // update counter
    TPART_RETURN_IF_ERROR(ctx.Put(key, std::move(rec)));
  }
  return Status::Ok();
}

}  // namespace

Workload MakeMicroWorkload(const MicroOptions& o) {
  TPART_CHECK(o.num_machines >= 1);
  TPART_CHECK(o.records_per_machine >= 2);
  const std::uint64_t hot = std::min<std::uint64_t>(
      o.hot_set_size, o.records_per_machine / 2);
  const std::uint64_t cold = o.records_per_machine - hot;

  Workload w;
  w.name = "micro";
  w.num_machines = o.num_machines;
  TableDef table;
  table.name = "MICRO";
  table.num_fields = 2;
  table.padding_bytes = o.record_bytes > 16 ? o.record_bytes - 16 : 0;
  w.catalog.AddTable(table);
  w.partition_map = std::make_shared<RangePartitionMap>(
      o.num_machines, o.records_per_machine);

  w.procedures = std::make_shared<ProcedureRegistry>();
  w.procedures->Register(kMicroProc, "micro", MicroProc);

  const std::size_t record_bytes = o.record_bytes;
  const std::size_t num_machines = o.num_machines;
  const std::uint64_t rpm = o.records_per_machine;
  w.loader = [num_machines, rpm, record_bytes](PartitionedStore& store) {
    for (std::size_t m = 0; m < num_machines; ++m) {
      for (std::uint64_t i = 0; i < rpm; ++i) {
        const std::uint64_t pk = m * rpm + i;
        Record rec(2, record_bytes > 16 ? record_bytes - 16 : 0);
        rec.set_field(0, static_cast<std::int64_t>(pk % 1000));
        store.Upsert(MakeObjectKey(kMicroTable, pk), std::move(rec));
      }
    }
  };

  // Skewed transactions target machines "numbered in the first one-fifth".
  const std::size_t skew_targets =
      std::max<std::size_t>(1, (o.num_machines + 4) / 5);

  Rng rng(o.seed);
  w.requests.reserve(o.num_txns);
  for (std::size_t t = 0; t < o.num_txns; ++t) {
    const auto home =
        static_cast<std::uint64_t>(rng.NextBelow(o.num_machines));
    const bool is_rw = rng.NextBool(o.read_write_rate);
    const bool is_dist =
        o.num_machines > 1 && rng.NextBool(o.distributed_rate);
    const bool is_skewed = rng.NextBool(o.skewed_rate);

    auto key_on = [&](std::uint64_t machine, bool hot_record) {
      const std::uint64_t offset =
          hot_record ? rng.NextBelow(hot) : hot + rng.NextBelow(cold);
      return MakeObjectKey(kMicroTable, machine * rpm + offset);
    };
    auto remote_machine = [&]() {
      // "A skewed transaction has 50% probability of accessing remote
      // records on machines that are numbered in the first one-fifth."
      if (is_skewed && rng.NextBool(0.5)) {
        return static_cast<std::uint64_t>(rng.NextBelow(skew_targets));
      }
      std::uint64_t m = rng.NextBelow(o.num_machines - 1);
      if (m >= home) ++m;  // any machine but home
      return m;
    };

    std::unordered_set<ObjectKey> chosen;
    std::vector<ObjectKey> reads;
    const int n_cold = o.records_per_txn - 1;
    const int n_remote =
        is_dist ? std::min(o.remote_records, n_cold) : 0;
    // 1 hot record from the home machine.
    while (true) {
      const ObjectKey k = key_on(home, /*hot_record=*/true);
      if (chosen.insert(k).second) {
        reads.push_back(k);
        break;
      }
    }
    for (int i = 0; i < n_cold; ++i) {
      const bool remote = i < n_remote;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::uint64_t m = remote ? remote_machine() : home;
        const ObjectKey k = key_on(m, /*hot_record=*/false);
        if (chosen.insert(k).second) {
          reads.push_back(k);
          break;
        }
      }
    }

    std::vector<ObjectKey> writes;
    if (is_rw) {
      // Choose `write_records` distinct indices among the reads.
      std::vector<std::size_t> idx(reads.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      for (std::size_t i = idx.size(); i > 1; --i) {
        std::swap(idx[i - 1], idx[rng.NextBelow(i)]);
      }
      const auto nw = std::min<std::size_t>(
          static_cast<std::size_t>(o.write_records), reads.size());
      for (std::size_t i = 0; i < nw; ++i) writes.push_back(reads[idx[i]]);
    }

    TxnSpec spec;
    spec.proc = kMicroProc;
    spec.params = EncodeParams(
        static_cast<std::int64_t>(rng.NextBelow(100)) + 1, reads, writes);
    spec.rw.reads = reads;
    spec.rw.writes = writes;
    spec.rw.Normalize();
    w.requests.push_back(std::move(spec));
  }
  return w;
}

}  // namespace tpart
