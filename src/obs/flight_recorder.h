#ifndef TPART_OBS_FLIGHT_RECORDER_H_
#define TPART_OBS_FLIGHT_RECORDER_H_

// Black-box flight recorder: an always-on, bounded-memory record of the
// last N events on the admit -> schedule -> disseminate -> execute ->
// commit path, kept in lock-free per-thread rings (single writer each,
// overwrite-oldest) of compact binary events — no strings, no
// allocation, no formatting on the hot path. When something goes wrong
// (the watchdog declares a failure, a stall diagnostic fires, a
// failover term starts, a migration step aborts), DumpPostmortem()
// renders the rings as a Chrome-trace JSON post-mortem: every
// chaos-matrix incident ships its own last-seconds trace without paying
// full --trace overhead.
//
// Write protocol per ring: the owning thread writes the slot at
// head % capacity, then publishes head+1 with a release store. A dump
// racing the writer may read one torn slot per ring (the one being
// overwritten); dumps happen on fault paths where a single garbled
// event is acceptable, and the renderer drops slots whose code is out
// of range.
//
// Like the trace recorder, the global instance is a relaxed-load null
// sink when absent, and the TPART_FLIGHT* macros compile to nothing
// under TPART_TRACING_DISABLED.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpart::obs {

/// Compact event codes. Names (FlightEventName) become the Chrome-trace
/// event names in the post-mortem dump.
enum class FlightEvent : std::uint16_t {
  kAdmitBatch = 1,     // a = batch txns, b = total admitted
  kScheduleRound,      // a = epoch, b = txns in round
  kDisseminateRound,   // a = epoch, b = txns in round
  kRoundReceived,      // a = epoch, b = local slice size
  kExecute,            // a = txn, b = epoch
  kCrashStop,          // a = machine, b = resume epoch
  kRecover,            // a = machine, b = replayed txns
  kFailureDeclared,    // a = machine, b = heartbeat seq
  kStall,              // a = machine, b = 0
  kElectionWon,        // a = term (leader index), b = detection us
  kTermStart,          // a = term, b = catch-up through epoch
  kMigrationStep,      // a = cut epoch, b = machines after
  kMigrationAbort,     // a = cut epoch, b = 0
  kCheckpoint,         // a = machine, b = epoch
  kFencedMessage,      // a = stale term, b = witnessed term
  kZombieRevival,      // a = deposed term, b = injection epoch
  kDump,               // a = dump ordinal, b = 0
};

const char* FlightEventName(FlightEvent ev);

class FlightRecorder {
 public:
  struct Options {
    /// Slots per thread ring; bounded memory = threads * ring_size * 40B.
    std::size_t ring_size = 4096;
    /// Post-mortem destination; empty keeps dumps in-memory only
    /// (last_dump_json()).
    std::string dump_path;
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Hot-path append to the calling thread's ring. pid follows the trace
  /// track model: 0 = control plane, 1 + m = machine m.
  void Record(FlightEvent ev, std::int32_t pid, std::uint64_t a,
              std::uint64_t b);

  /// Run context stamped into every subsequent dump as a top-level
  /// "runContext" key (chaos seed, fault-schedule summary, build id) so
  /// a post-mortem pulled off CI identifies the exact run that produced
  /// it. Free-form text; JSON-escaped at render time.
  void SetRunContext(const std::string& context);

  /// Renders the rings (merged, time-sorted) as Chrome trace JSON.
  std::string DumpJson(const std::string& reason = std::string()) const;

  /// Records a kDump marker, renders the post-mortem, writes it to
  /// options.dump_path (when set) and keeps it in last_dump_json().
  /// Reentrant-safe; later dumps overwrite earlier files (the rings keep
  /// history, so the last dump contains every prior marker still in
  /// window).
  Status DumpPostmortem(const std::string& reason);

  std::size_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  std::string last_dump_json() const;
  /// Total events ever recorded (monotonic; rings hold only the tail).
  std::size_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::uint64_t ts_ns = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint16_t code = 0;
    std::int32_t pid = 0;
  };

  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};
    int tid = 0;
  };

  Ring* LocalRing();
  std::uint64_t NowNs() const;

  const Options options_;
  const std::uint64_t recorder_id_;
  const std::chrono::steady_clock::time_point t0_;
  std::atomic<std::size_t> recorded_{0};
  std::atomic<std::size_t> dumps_{0};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  int next_tid_ = 0;

  mutable std::mutex dump_mu_;
  std::string last_dump_json_;

  mutable std::mutex context_mu_;
  std::string run_context_;
};

/// Global instance (nullptr = null sink), mirroring GlobalTrace().
FlightRecorder* GlobalFlightRecorder();
FlightRecorder* InstallGlobalFlightRecorder(FlightRecorder* recorder);

}  // namespace tpart::obs

#if !defined(TPART_TRACING_DISABLED)

#define TPART_FLIGHT(ev, pid, a, b)                                     \
  do {                                                                  \
    if (::tpart::obs::FlightRecorder* tpart_flight_rec_ =               \
            ::tpart::obs::GlobalFlightRecorder()) {                     \
      tpart_flight_rec_->Record(                                        \
          (ev), static_cast<std::int32_t>(pid),                         \
          static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b)); \
    }                                                                   \
  } while (0)

#define TPART_FLIGHT_DUMP(reason)                                       \
  do {                                                                  \
    if (::tpart::obs::FlightRecorder* tpart_flight_rec_ =               \
            ::tpart::obs::GlobalFlightRecorder()) {                     \
      (void)tpart_flight_rec_->DumpPostmortem(reason);                  \
    }                                                                   \
  } while (0)

#else  // TPART_TRACING_DISABLED

#define TPART_FLIGHT(ev, pid, a, b) \
  do {                              \
  } while (0)
#define TPART_FLIGHT_DUMP(reason) \
  do {                            \
  } while (0)

#endif  // TPART_TRACING_DISABLED

#endif  // TPART_OBS_FLIGHT_RECORDER_H_
