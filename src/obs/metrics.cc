#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace tpart::obs {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// Prometheus HELP text escaping: backslash and line feed only, per the
/// text exposition format.
void AppendHelpEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

/// Sample values: plain decimal, no exponent, trailing zeros trimmed —
/// deterministic and human-readable.
std::string FormatMetricValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

MetricsRegistry::Entry& MetricsRegistry::Upsert(const std::string& name,
                                                Kind kind,
                                                const std::string& help) {
  Entry& e = metrics_[name];
  e.kind = kind;
  if (!help.empty()) e.help = help;
  return e;
}

void MetricsRegistry::SetCounter(const std::string& name, double value,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(name, Kind::kCounter, help).value = value;
}

void MetricsRegistry::AddCounter(const std::string& name, double delta,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(name, Kind::kCounter, help).value += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(name, Kind::kGauge, help).value = value;
}

void MetricsRegistry::ObserveHistogram(const std::string& name,
                                       const Histogram& h,
                                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(name, Kind::kHistogram, help).hist.Merge(h);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void MetricsRegistry::ForEach(
    const std::function<void(const std::string& name, MetricKind kind)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        fn(name, MetricKind::kCounter);
        break;
      case Kind::kGauge:
        fn(name, MetricKind::kGauge);
        break;
      case Kind::kHistogram:
        fn(name, MetricKind::kHistogram);
        break;
    }
  }
}

double MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  if (it->second.kind == Kind::kHistogram) {
    return static_cast<double>(it->second.hist.count());
  }
  return it->second.value;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[96];
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      out.append("# HELP ").append(name).append(" ");
      AppendHelpEscaped(&out, e.help);
      out.push_back('\n');
    }
    out.append("# TYPE ").append(name).append(" ");
    switch (e.kind) {
      case Kind::kCounter:
        out.append("counter\n");
        out.append(name).append(" ").append(FormatMetricValue(e.value));
        out.push_back('\n');
        break;
      case Kind::kGauge:
        out.append("gauge\n");
        out.append(name).append(" ").append(FormatMetricValue(e.value));
        out.push_back('\n');
        break;
      case Kind::kHistogram: {
        out.append("histogram\n");
        // Cumulative le-buckets; empty power-of-two buckets are skipped
        // (the cumulative count is unchanged by them) to keep the
        // exposition readable across 64 buckets.
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::num_buckets(); ++i) {
          const std::uint64_t c = e.hist.bucket_count(i);
          if (c == 0) continue;
          cumulative += c;
          std::snprintf(buf, sizeof(buf), "{le=\"%" PRIu64 "\"} %" PRIu64
                        "\n",
                        Histogram::BucketUpperBound(i), cumulative);
          out.append(name).append("_bucket").append(buf);
        }
        std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %zu\n",
                      e.hist.count());
        out.append(name).append("_bucket").append(buf);
        out.append(name).append("_sum ").append(
            FormatMetricValue(e.hist.sum()));
        out.push_back('\n');
        std::snprintf(buf, sizeof(buf), "_count %zu\n", e.hist.count());
        out.append(name).append(buf);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  char buf[96];
  for (const auto& [name, e] : metrics_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  \"");
    AppendJsonEscaped(&out, name);
    out.append("\": ");
    if (e.kind == Kind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "{\"count\": %zu, \"mean\": %.3f, \"p50\": %" PRIu64
                    ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 "}",
                    e.hist.count(), e.hist.mean(), e.hist.Quantile(0.5),
                    e.hist.Quantile(0.99), e.hist.max_value());
      out.append(buf);
    } else {
      out.append(FormatMetricValue(e.value));
    }
  }
  out.append("\n}\n");
  return out;
}

Status MetricsRegistry::WriteFile(const std::string& path,
                                  const std::string& text) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kInternal, "cannot open metrics file " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status(StatusCode::kInternal,
                  "short write to metrics file " + path);
  }
  return Status::Ok();
}

}  // namespace tpart::obs
