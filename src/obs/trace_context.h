#ifndef TPART_OBS_TRACE_CONTEXT_H_
#define TPART_OBS_TRACE_CONTEXT_H_

// Compact per-transaction trace context, carried in Message::trace_ctx
// across the wire so a sampled transaction's causal timeline can be
// stitched across machines, transports, and coordinator terms without
// any global lookup on the receiving side.
//
// Packing (64 bits; 0 = "no context", which the varint codec encodes in
// one byte so unsampled traffic pays a single zero byte per frame):
//   bit  0        sampled flag
//   bits 1..15    origin machine (15 bits)
//   bits 16..63   coordinator term (48 bits)
//
// Sampling is deterministic and stateless: txn id modulo the --txn-sample
// stride, so every machine — and a recovered or failed-over coordinator —
// picks the same subset without coordination.

#include <cstdint>

#include "common/types.h"

namespace tpart::obs {

inline std::uint64_t PackTraceCtx(std::uint32_t origin_machine,
                                  std::uint64_t term) {
  return 1ull | (static_cast<std::uint64_t>(origin_machine & 0x7FFF) << 1) |
         (term << 16);
}

inline bool TraceCtxSampled(std::uint64_t ctx) { return (ctx & 1) != 0; }

inline std::uint32_t TraceCtxOrigin(std::uint64_t ctx) {
  return static_cast<std::uint32_t>((ctx >> 1) & 0x7FFF);
}

inline std::uint64_t TraceCtxTerm(std::uint64_t ctx) { return ctx >> 16; }

/// True when txn `id` is in the sampled subset for stride `every`
/// (--txn-sample=1/N). 0 disables sampling entirely.
inline bool SampledTxn(TxnId id, std::uint64_t every) {
  return every != 0 && id % every == 0;
}

}  // namespace tpart::obs

#endif  // TPART_OBS_TRACE_CONTEXT_H_
