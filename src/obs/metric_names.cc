#include "obs/metric_names.h"

#include <cctype>

namespace tpart::obs {

namespace {

bool HasSuffix(const std::string& name, const char* suffix) {
  const std::string s(suffix);
  return name.size() >= s.size() &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

bool HasAnySuffix(const std::string& name,
                  std::initializer_list<const char*> suffixes) {
  for (const char* s : suffixes) {
    if (HasSuffix(name, s)) return true;
  }
  return false;
}

}  // namespace

std::string CheckMetricName(const std::string& name, MetricKind kind) {
  if (name.compare(0, 6, "tpart_") != 0) {
    return "must start with tpart_";
  }
  char prev = '\0';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return "only [a-z0-9_] allowed";
    if (c == '_' && prev == '_') return "double underscore";
    prev = c;
  }
  if (name.back() == '_') return "trailing underscore";
  // `tpart_` plus at least subsystem + name + unit segments.
  switch (kind) {
    case MetricKind::kCounter:
      if (!HasSuffix(name, "_total")) return "counter must end in _total";
      break;
    case MetricKind::kHistogram:
      if (!HasAnySuffix(name, {"_us", "_bytes", "_seconds"})) {
        return "histogram must end in _us/_bytes/_seconds";
      }
      break;
    case MetricKind::kGauge:
      if (HasSuffix(name, "_total")) {
        return "gauge must not end in _total (that marks counters)";
      }
      if (!HasAnySuffix(name, {"_us", "_seconds", "_bytes", "_tps",
                               "_ratio", "_depth", "_size", "_count",
                               "_index", "_epoch", "_term"})) {
        return "gauge must end in a unit token "
               "(_us/_seconds/_bytes/_tps/_ratio/_depth/_size/_count/"
               "_index/_epoch/_term)";
      }
      break;
  }
  return std::string();
}

}  // namespace tpart::obs
