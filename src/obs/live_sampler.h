#ifndef TPART_OBS_LIVE_SAMPLER_H_
#define TPART_OBS_LIVE_SAMPLER_H_

// In-flight metrics sampling: the live counterpart to the snapshot
// MetricsRegistry. A LiveSampler periodically collects a small set of
// named values from the engine's existing hot-path counters (relaxed
// atomics, queue high-waters, T-graph size, hot-key share — the caller
// provides a Source callback that reads them) and appends one JSONL
// line per sample. The stream is the `--metrics-stream=out.jsonl`
// artifact, the newest snapshot backs the HTTP /metrics endpoint, and
// nothing here ever runs on a transaction's critical path: the engine
// only increments counters it already maintains, and the sampler reads
// them from its own (or the driver's) thread.
//
// Two clock domains, mirroring the trace recorder:
//  * kWall — a background thread samples every interval_us of real
//    time; lines carry "ts_us" (threaded runtime).
//  * kEpoch — no thread and no real clock: the driver calls TickEpoch()
//    at sink-epoch boundaries and lines carry "epoch". Values must be
//    deterministic functions of the run, so two same-seed simulator
//    runs produce byte-identical JSONL (asserted in trace_test).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tpart::obs {

class LiveSampler {
 public:
  enum class Domain {
    kWall,   // background thread, steady-clock timestamps
    kEpoch,  // explicit TickEpoch()/SampleEpoch(), sink-epoch numbering
  };

  /// One sample: (metric name, value) pairs. The sampler sorts by name
  /// before rendering, so sources may append in any order.
  using Sample = std::vector<std::pair<std::string, double>>;
  using Source = std::function<void(Sample&)>;

  explicit LiveSampler(Domain domain = Domain::kWall);
  ~LiveSampler();

  LiveSampler(const LiveSampler&) = delete;
  LiveSampler& operator=(const LiveSampler&) = delete;

  Domain domain() const { return domain_; }

  /// The gather callback. The cluster installs it at run start (reading
  /// its live counters) and clears it at run end; it must stay valid
  /// while installed.
  void set_source(Source source);
  void ClearSource();

  // ---- kWall ----------------------------------------------------------
  /// Spawns the sampling thread; one line every interval_us.
  void StartWall(std::uint64_t interval_us);
  /// Joins the thread and takes one final sample (short runs still get
  /// at least one line).
  void StopWall();

  // ---- kEpoch ---------------------------------------------------------
  /// Sample cadence in sink epochs (default 1 = every epoch).
  void set_epoch_every(std::uint64_t every);
  /// Driver hook at a sink-epoch boundary; samples via the Source when
  /// the epoch is on cadence (and not yet sampled).
  void TickEpoch(std::uint64_t epoch);
  /// Direct form (no Source): the simulator passes its own
  /// deterministic values. Applies the same cadence filter.
  void SampleEpoch(std::uint64_t epoch, const Sample& items);

  // ---- Results --------------------------------------------------------
  std::size_t samples() const;
  /// All lines, one JSON object per line.
  std::string Jsonl() const;
  Status WriteJsonl(const std::string& path) const;
  /// Newest snapshot in Prometheus text format (every series a gauge) —
  /// the /metrics scrape body.
  std::string PrometheusText() const;
  double Latest(const std::string& name) const;  // 0 when absent

 private:
  void SampleLocked(std::uint64_t epoch, bool has_epoch);
  void RenderLine(std::uint64_t epoch, bool has_epoch, Sample items);

  const Domain domain_;
  const std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  Source source_;
  std::vector<std::string> lines_;
  std::map<std::string, double> latest_;
  std::uint64_t seq_ = 0;
  std::uint64_t epoch_every_ = 1;
  bool sampled_any_epoch_ = false;
  std::uint64_t last_epoch_ = 0;

  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace tpart::obs

#endif  // TPART_OBS_LIVE_SAMPLER_H_
