#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace tpart::obs {

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<std::uint64_t> g_next_recorder_id{1};

/// Thread-local binding of this thread to the recorder it last emitted
/// into. Keyed by recorder id, not pointer: a new recorder allocated at a
/// dead one's address must not inherit its logs.
struct CachedLog {
  std::uint64_t recorder_id = 0;
  void* log = nullptr;
};
thread_local CachedLog t_cached_log;

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Chrome trace "ts" is in microseconds; keep ns resolution as a fixed
/// three-decimal fraction (deterministic formatting, no float rounding).
void AppendTimestamp(std::string* out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out->append(buf);
}

}  // namespace

TraceRecorder* GlobalTrace() {
  return g_trace.load(std::memory_order_acquire);
}

TraceRecorder* InstallGlobalTrace(TraceRecorder* recorder) {
  return g_trace.exchange(recorder, std::memory_order_acq_rel);
}

TraceRecorder::TraceRecorder(ClockDomain domain)
    : domain_(domain),
      recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      t0_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Never die while installed: a racing emitter would use freed memory.
  if (GlobalTrace() == this) InstallGlobalTrace(nullptr);
}

void TraceRecorder::AdvanceTo(std::uint64_t ns) {
  std::uint64_t cur = manual_ns_.load(std::memory_order_relaxed);
  while (ns > cur && !manual_ns_.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t TraceRecorder::NowNs() const {
  if (domain_ == ClockDomain::kManual) {
    return manual_ns_.load(std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

TraceRecorder::ThreadLog* TraceRecorder::Log() {
  if (t_cached_log.recorder_id == recorder_id_) {
    return static_cast<ThreadLog*>(t_cached_log.log);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto log = std::make_unique<ThreadLog>();
  log->tid = next_tid_++;
  ThreadLog* raw = log.get();
  logs_.push_back(std::move(log));
  t_cached_log = CachedLog{recorder_id_, raw};
  return raw;
}

void TraceRecorder::Append(ThreadLog* log, Event e) {
  {
    std::lock_guard<std::mutex> lock(log->mu);
    log->events.push_back(std::move(e));
  }
  event_count_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::AppendHere(Event e) {
  ThreadLog* log = Log();
  e.pid = log->pid;
  e.tid = log->tid;
  Append(log, std::move(e));
}

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  process_names_[pid] = name;
}

void TraceRecorder::SetThreadInfo(int pid, const char* name) {
  ThreadLog* log = Log();
  std::lock_guard<std::mutex> lock(log->mu);
  log->pid = pid;
  log->name = name;
}

void TraceRecorder::Begin(const char* name, const char* cat,
                          std::initializer_list<TraceArg> args) {
  ThreadLog* log = Log();
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'B';
  e.ts_ns = NowNs();
  e.pid = log->pid;
  e.tid = log->tid;
  for (const TraceArg& a : args) {
    if (e.nargs < 3) e.args[e.nargs++] = a;
  }
  {
    std::lock_guard<std::mutex> lock(log->mu);
    log->open_spans.emplace_back(name, cat);
    log->events.push_back(std::move(e));
  }
  event_count_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::End() {
  ThreadLog* log = Log();
  Event e;
  e.ph = 'E';
  e.ts_ns = NowNs();
  e.pid = log->pid;
  e.tid = log->tid;
  {
    std::lock_guard<std::mutex> lock(log->mu);
    if (log->open_spans.empty()) return;  // unbalanced End: drop
    e.name = log->open_spans.back().first;
    e.cat = log->open_spans.back().second;
    log->open_spans.pop_back();
    log->events.push_back(std::move(e));
  }
  event_count_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::Instant(const char* name, const char* cat,
                            std::initializer_list<TraceArg> args,
                            std::string detail) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_ns = NowNs();
  for (const TraceArg& a : args) {
    if (e.nargs < 3) e.args[e.nargs++] = a;
  }
  e.detail = std::move(detail);
  AppendHere(std::move(e));
}

void TraceRecorder::Counter(const char* name, std::uint64_t value) {
  Event e;
  e.name = name;
  e.cat = "counter";
  e.ph = 'C';
  e.ts_ns = NowNs();
  e.id = value;
  AppendHere(std::move(e));
}

void TraceRecorder::FlowStart(const char* name, std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = "flow";
  e.ph = 's';
  e.ts_ns = NowNs();
  e.id = id;
  AppendHere(std::move(e));
}

void TraceRecorder::FlowEnd(const char* name, std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = "flow";
  e.ph = 'f';
  e.ts_ns = NowNs();
  e.id = id;
  AppendHere(std::move(e));
}

void TraceRecorder::AsyncBegin(const char* name, const char* cat,
                               std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'b';
  e.ts_ns = NowNs();
  e.id = id;
  AppendHere(std::move(e));
}

void TraceRecorder::AsyncEnd(const char* name, const char* cat,
                             std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'e';
  e.ts_ns = NowNs();
  e.id = id;
  AppendHere(std::move(e));
}

void TraceRecorder::AsyncInstant(const char* name, const char* cat,
                                 std::uint64_t id,
                                 std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'n';
  e.ts_ns = NowNs();
  e.id = id;
  for (const TraceArg& a : args) {
    if (e.nargs < 3) e.args[e.nargs++] = a;
  }
  AppendHere(std::move(e));
}

void TraceRecorder::CompleteAt(int pid, int tid, const char* name,
                               const char* cat, std::uint64_t ts_ns,
                               std::uint64_t dur_ns,
                               std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.pid = pid;
  e.tid = tid;
  for (const TraceArg& a : args) {
    if (e.nargs < 3) e.args[e.nargs++] = a;
  }
  Append(Log(), std::move(e));
}

void TraceRecorder::InstantAt(int pid, int tid, const char* name,
                              const char* cat, std::uint64_t ts_ns,
                              std::initializer_list<TraceArg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  for (const TraceArg& a : args) {
    if (e.nargs < 3) e.args[e.nargs++] = a;
  }
  Append(Log(), std::move(e));
}

void TraceRecorder::CounterAt(int pid, const char* name, std::uint64_t ts_ns,
                              std::uint64_t value) {
  Event e;
  e.name = name;
  e.cat = "counter";
  e.ph = 'C';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = 0;
  e.id = value;
  Append(Log(), std::move(e));
}

void TraceRecorder::FlowStartAt(int pid, int tid, const char* name,
                                std::uint64_t ts_ns, std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = "flow";
  e.ph = 's';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  e.id = id;
  Append(Log(), std::move(e));
}

void TraceRecorder::FlowEndAt(int pid, int tid, const char* name,
                              std::uint64_t ts_ns, std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = "flow";
  e.ph = 'f';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  e.id = id;
  Append(Log(), std::move(e));
}

std::size_t TraceRecorder::event_count() const {
  return event_count_.load(std::memory_order_relaxed);
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  std::string out;
  out.reserve(1024 + 128 * event_count());
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  const auto sep = [&] {
    if (!first) out.append(",\n");
    first = false;
  };

  char buf[96];
  // Metadata first: process names (sorted by pid), then thread names in
  // registration order — a deterministic prefix.
  for (const auto& [pid, name] : process_names_) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  pid);
    out.append(buf);
    AppendEscaped(&out, name);
    out.append("\"}}");
  }
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> lock(log->mu);
    if (log->name.empty()) continue;
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  log->pid, log->tid);
    out.append(buf);
    AppendEscaped(&out, log->name);
    out.append("\"}}");
  }

  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> lock(log->mu);
    for (const Event& e : log->events) {
      sep();
      out.append("{\"name\":\"");
      AppendEscaped(&out, e.name != nullptr ? e.name : "");
      out.append("\",\"cat\":\"");
      AppendEscaped(&out, e.cat != nullptr ? e.cat : "");
      out.append("\",\"ph\":\"");
      out.push_back(e.ph);
      out.append("\",\"ts\":");
      AppendTimestamp(&out, e.ts_ns);
      if (e.ph == 'X') {
        out.append(",\"dur\":");
        AppendTimestamp(&out, e.dur_ns);
      }
      std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", e.pid,
                    e.tid);
      out.append(buf);
      if (e.ph == 's' || e.ph == 'f' || e.ph == 'b' || e.ph == 'e' ||
          e.ph == 'n') {
        std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%" PRIx64 "\"", e.id);
        out.append(buf);
        // Flow ends bind to the enclosing slice.
        if (e.ph == 'f') out.append(",\"bp\":\"e\"");
      }
      if (e.ph == 'C') {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRIu64 "}",
                      e.id);
        out.append(buf);
      } else if (e.nargs > 0 || !e.detail.empty()) {
        out.append(",\"args\":{");
        for (int i = 0; i < e.nargs; ++i) {
          if (i > 0) out.push_back(',');
          out.append("\"");
          AppendEscaped(&out, e.args[i].key);
          std::snprintf(buf, sizeof(buf), "\":%" PRIu64, e.args[i].value);
          out.append(buf);
        }
        if (!e.detail.empty()) {
          if (e.nargs > 0) out.push_back(',');
          out.append("\"detail\":\"");
          AppendEscaped(&out, e.detail);
          out.append("\"");
        }
        out.push_back('}');
      }
      out.push_back('}');
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kInternal, "cannot open trace file " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status(StatusCode::kInternal, "short write to trace file " + path);
  }
  return Status::Ok();
}

}  // namespace tpart::obs
