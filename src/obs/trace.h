#ifndef TPART_OBS_TRACE_H_
#define TPART_OBS_TRACE_H_

// Event-level tracing for the whole engine, emitted as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design goals, in order:
//  1. Near-zero cost when off. Instrumentation sites go through the
//     TPART_TRACE* macros, which reduce to one relaxed atomic load and a
//     predictable branch when no recorder is installed (the runtime null
//     sink), and to nothing at all when the build defines
//     TPART_TRACING_DISABLED (the compile-time guard, CMake option
//     TPART_DISABLE_TRACING).
//  2. Deterministic traces from the simulator. A recorder in kManual
//     clock domain never reads a real clock: timestamps come from
//     AdvanceTo() (driven by SimTime) and the explicit *At() emitters,
//     so two same-seed simulator runs produce byte-identical JSON —
//     traces are diffable artifacts.
//  3. Low overhead when on. Events are buffered per thread (one
//     registration per thread per recorder, then an uncontended
//     per-buffer mutex), names/categories are static strings, and
//     nothing is formatted until export.
//
// Event taxonomy (see DESIGN.md "Observability"):
//   duration spans (B/E)  nested begin/end pairs on one thread;
//   instants (i)          point events, optionally with a free-text
//                         detail (StallDiagnostic, crash markers);
//   counters (C)          named time series (queue depths, T-graph size);
//   flow events (s/f)     arrows between spans on different threads or
//                         machines — forward-pushes render as an arrow
//                         from the producing transaction's span to the
//                         consuming one's;
//   async spans (b/e)     cross-thread intervals tied by id — the
//                         per-transaction admit->commit lifecycle.
//
// Track model: pid = 0 is the control plane (admission, scheduler,
// dissemination, watchdog, transport); pid = 1 + m is machine m. Within
// a pid, tids are per-thread tracks (executor, service, ...).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpart::obs {

/// One key/value pair attached to an event. Keys must be static strings;
/// values are integral (rendered as JSON numbers).
struct TraceArg {
  const char* key;
  std::uint64_t value;
};

class TraceRecorder {
 public:
  enum class ClockDomain {
    /// steady_clock, zeroed at recorder construction (threaded runtime).
    kSteady,
    /// Virtual time set via AdvanceTo()/the *At() emitters (simulator);
    /// no real clock is ever read, so traces are deterministic.
    kManual,
  };

  explicit TraceRecorder(ClockDomain domain = ClockDomain::kSteady);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  ClockDomain domain() const { return domain_; }

  /// Manual-domain clock, in ns. Monotonic-max: never moves backwards.
  void AdvanceTo(std::uint64_t ns);
  /// Current timestamp in ns (steady: since construction; manual: the
  /// AdvanceTo() frontier).
  std::uint64_t NowNs() const;

  // ---- Track naming ---------------------------------------------------
  void SetProcessName(int pid, const std::string& name);
  /// Binds the calling thread to track (pid, name). Idempotent per
  /// thread; call once at thread entry.
  void SetThreadInfo(int pid, const char* name);

  // ---- Clocked emitters (calling thread's track) ----------------------
  void Begin(const char* name, const char* cat,
             std::initializer_list<TraceArg> args = {});
  void End();
  void Instant(const char* name, const char* cat,
               std::initializer_list<TraceArg> args = {},
               std::string detail = std::string());
  void Counter(const char* name, std::uint64_t value);
  /// Flow arrow between two spans: FlowStart inside the source span,
  /// FlowEnd inside the destination span, tied by (name, id).
  void FlowStart(const char* name, std::uint64_t id);
  void FlowEnd(const char* name, std::uint64_t id);
  /// Cross-thread interval tied by (cat, id) — e.g. one transaction's
  /// admit->commit lifecycle.
  void AsyncBegin(const char* name, const char* cat, std::uint64_t id);
  void AsyncEnd(const char* name, const char* cat, std::uint64_t id);
  /// Point event inside an async interval (ph 'n'): a phase marker on a
  /// transaction's admit->commit timeline, tied by (cat, id) like
  /// AsyncBegin/AsyncEnd so Perfetto nests it under the open interval.
  void AsyncInstant(const char* name, const char* cat, std::uint64_t id,
                    std::initializer_list<TraceArg> args = {});

  // ---- Explicit-timestamp emitters (virtual tracks; simulator) --------
  void CompleteAt(int pid, int tid, const char* name, const char* cat,
                  std::uint64_t ts_ns, std::uint64_t dur_ns,
                  std::initializer_list<TraceArg> args = {});
  void InstantAt(int pid, int tid, const char* name, const char* cat,
                 std::uint64_t ts_ns,
                 std::initializer_list<TraceArg> args = {});
  void CounterAt(int pid, const char* name, std::uint64_t ts_ns,
                 std::uint64_t value);
  void FlowStartAt(int pid, int tid, const char* name, std::uint64_t ts_ns,
                   std::uint64_t id);
  void FlowEndAt(int pid, int tid, const char* name, std::uint64_t ts_ns,
                 std::uint64_t id);

  // ---- Export ---------------------------------------------------------
  /// Total events recorded so far (all threads).
  std::size_t event_count() const;
  /// The full trace as Chrome trace-event JSON. Deterministic: metadata
  /// first (pids, then tids, in sorted/registration order), then each
  /// thread's events in emission order.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    const char* name = nullptr;
    const char* cat = nullptr;
    char ph = 'i';
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    /// Flow / async id (ph s,f,b,e) or counter value (ph C).
    std::uint64_t id = 0;
    int nargs = 0;
    TraceArg args[3] = {};
    /// Optional free-text payload (args.detail); empty for most events.
    std::string detail;
  };

  struct ThreadLog {
    std::mutex mu;
    std::vector<Event> events;
    /// Open Begin()s, for End() naming and balance.
    std::vector<std::pair<const char*, const char*>> open_spans;
    int pid = 0;
    int tid = 0;
    std::string name;
  };

  ThreadLog* Log();
  void Append(ThreadLog* log, Event e);
  void AppendHere(Event e);

  const ClockDomain domain_;
  const std::uint64_t recorder_id_;
  const std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> manual_ns_{0};
  std::atomic<std::size_t> event_count_{0};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  int next_tid_ = 0;
  std::map<int, std::string> process_names_;
};

/// Stable id for a forward-push flow arrow: the producing transaction
/// (version_txn) publishing `key` for consumer dst_txn. FNV-1a so the
/// runtime and simulator emitters label the same push identically.
inline std::uint64_t PushFlowId(std::uint64_t key, std::uint64_t version_txn,
                                std::uint64_t dst_txn) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t v : {key, version_txn, dst_txn}) {
    h ^= v;
    h *= 1099511628211ull;
  }
  return h;
}

/// The installed recorder, or nullptr (the null sink — every macro is a
/// load + branch). Instrumentation must tolerate concurrent install/
/// uninstall only at run boundaries: install before starting threads,
/// uninstall after joining them.
TraceRecorder* GlobalTrace();
/// Installs `recorder` as the global sink (nullptr restores the null
/// sink). Returns the previous recorder.
TraceRecorder* InstallGlobalTrace(TraceRecorder* recorder);

/// RAII duration span on the calling thread's track.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* cat,
            std::initializer_list<TraceArg> args = {})
      : recorder_(recorder) {
    if (recorder_ != nullptr) recorder_->Begin(name, cat, args);
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
};

}  // namespace tpart::obs

// ---- Instrumentation macros -------------------------------------------
// TPART_TRACE(Call(...)) invokes TraceRecorder::Call on the global
// recorder when one is installed; TPART_TRACE_SPAN opens an RAII span for
// the enclosing scope. Both compile away under TPART_TRACING_DISABLED.

#if !defined(TPART_TRACING_DISABLED)

#define TPART_TRACE_CONCAT_INNER(a, b) a##b
#define TPART_TRACE_CONCAT(a, b) TPART_TRACE_CONCAT_INNER(a, b)

#define TPART_TRACE(...)                                              \
  do {                                                                \
    if (::tpart::obs::TraceRecorder* tpart_trace_rec_ =               \
            ::tpart::obs::GlobalTrace()) {                            \
      tpart_trace_rec_->__VA_ARGS__;                                  \
    }                                                                 \
  } while (0)

#define TPART_TRACE_SPAN(...)                                         \
  ::tpart::obs::TraceSpan TPART_TRACE_CONCAT(tpart_trace_span_,       \
                                             __LINE__) {              \
    ::tpart::obs::GlobalTrace(), __VA_ARGS__                          \
  }

#else  // TPART_TRACING_DISABLED

#define TPART_TRACE(...) \
  do {                   \
  } while (0)
#define TPART_TRACE_SPAN(...) \
  do {                        \
  } while (0)

#endif  // TPART_TRACING_DISABLED

#endif  // TPART_OBS_TRACE_H_
