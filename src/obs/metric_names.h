#ifndef TPART_OBS_METRIC_NAMES_H_
#define TPART_OBS_METRIC_NAMES_H_

// The one metric-naming convention, enforceable in tests:
//
//   tpart_<subsystem>_<name>_<unit>
//
//  * Every name starts with `tpart_` and is lowercase
//    [a-z0-9_] (the Prometheus-safe subset; no leading/trailing/double
//    underscores).
//  * Counters end in `_total`.
//  * Histograms end in a measurement unit: `_us`, `_bytes`, or
//    `_seconds`.
//  * Gauges end in a unit token naming what the number is:
//    `_us` / `_seconds` / `_bytes` / `_tps` / `_ratio` / `_total`-free
//    structural units (`_depth`, `_size`, `_count`, `_index`, `_epoch`,
//    `_term`).
//
// stats_test's audit publishes every stats struct into a registry and
// validates each (name, kind) pair through CheckMetricName(); the live
// sampler's JSONL keys go through the same check.

#include <string>

#include "obs/metrics.h"

namespace tpart::obs {

/// Empty string when `name` conforms for `kind`; otherwise a short
/// reason ("counter must end in _total", ...).
std::string CheckMetricName(const std::string& name, MetricKind kind);

inline bool IsValidMetricName(const std::string& name, MetricKind kind) {
  return CheckMetricName(name, kind).empty();
}

}  // namespace tpart::obs

#endif  // TPART_OBS_METRIC_NAMES_H_
