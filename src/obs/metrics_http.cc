#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tpart::obs {

namespace {

void SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away: drop the response
    off += static_cast<std::size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& body,
                         const char* content_type) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                code, reason, content_type, body.size());
  return std::string(head) + body;
}

}  // namespace

Status MetricsHttpServer::Start(std::uint16_t port, MetricsFn metrics) {
  if (listen_fd_ >= 0) {
    return Status(StatusCode::kInternal, "metrics server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status(StatusCode::kInternal, "bind/listen: " + err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status(StatusCode::kInternal, "getsockname: " + err);
  }
  port_ = ::ntohs(addr.sin_port);
  metrics_ = std::move(metrics);
  listen_fd_ = fd;
  acceptor_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void MetricsHttpServer::Serve() {
  for (;;) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) return;  // listener closed during Stop()
    // One short request per connection: read what arrives first (the
    // request line is all we route on), answer, close.
    char buf[1024];
    const ssize_t n = ::recv(cfd, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      const std::string req(buf);
      if (req.compare(0, 13, "GET /healthz ") == 0) {
        SendAll(cfd, HttpResponse(200, "OK", "ok\n", "text/plain"));
      } else if (req.compare(0, 13, "GET /metrics ") == 0) {
        const std::string body = metrics_ ? metrics_() : std::string();
        SendAll(cfd, HttpResponse(200, "OK", body,
                                  "text/plain; version=0.0.4"));
      } else {
        SendAll(cfd,
                HttpResponse(404, "Not Found", "not found\n", "text/plain"));
      }
    }
    ::close(cfd);
  }
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  // Shutdown wakes the blocked accept(); close() alone does not on all
  // platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  acceptor_.join();
  listen_fd_ = -1;
}

}  // namespace tpart::obs
