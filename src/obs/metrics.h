#ifndef TPART_OBS_METRICS_H_
#define TPART_OBS_METRICS_H_

// Named-metric registry with snapshot export in Prometheus text
// exposition format and JSON. The engine's stats structs
// (RunStats / TransportStats / PipelineStats / RecoveryStats) publish
// into a registry via their PublishTo() methods; cluster_cli writes the
// snapshot with --metrics=out.prom.
//
// Deliberately a snapshot registry, not a live one: runs are finite, the
// engine already aggregates its own counters on the hot paths, and a
// post-run publish keeps the registry entirely off those paths.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.h"
#include "common/status.h"

namespace tpart::obs {

/// Exporter-facing metric kind, used by ForEach() introspection (the
/// metric-name audit) and by callers that mirror registry entries.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Canonical sample-value rendering shared by every exporter (Prometheus
/// text, JSON, the live sampler's JSONL): plain decimal, integers exact,
/// no exponent — deterministic across runs.
std::string FormatMetricValue(double v);

class MetricsRegistry {
 public:
  /// Monotonic total (Prometheus `counter`). Set replaces; Add sums —
  /// use Add when several machines/runs publish the same name.
  void SetCounter(const std::string& name, double value,
                  const std::string& help = std::string());
  void AddCounter(const std::string& name, double delta,
                  const std::string& help = std::string());
  /// Point-in-time value (Prometheus `gauge`), e.g. high-water marks.
  void SetGauge(const std::string& name, double value,
                const std::string& help = std::string());
  /// Distribution; merged into any histogram already under `name`.
  void ObserveHistogram(const std::string& name, const Histogram& h,
                        const std::string& help = std::string());

  std::size_t size() const;
  double Value(const std::string& name) const;  // 0 when absent

  /// Visits every registered metric in sorted name order. The audit test
  /// validates each (name, kind) against the naming convention
  /// (obs/metric_names.h).
  void ForEach(
      const std::function<void(const std::string& name, MetricKind kind)>& fn)
      const;

  /// Prometheus text exposition format (HELP/TYPE + samples; histograms
  /// as cumulative le-buckets with _sum and _count).
  std::string PrometheusText() const;
  /// One flat JSON object; histograms as {count, mean, p50, p99, max}.
  std::string Json() const;
  Status WriteFile(const std::string& path, const std::string& text) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kGauge;
    double value = 0.0;
    Histogram hist;
    std::string help;
  };

  Entry& Upsert(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // sorted: deterministic export
};

}  // namespace tpart::obs

#endif  // TPART_OBS_METRICS_H_
