#ifndef TPART_OBS_METRICS_HTTP_H_
#define TPART_OBS_METRICS_HTTP_H_

// Minimal HTTP/1.1 endpoint for Prometheus scraping of live runs:
// GET /metrics returns the body produced by the metrics callback (the
// LiveSampler's newest snapshot in text exposition format) and
// GET /healthz returns "ok". One accept-loop thread, one short-lived
// connection per request, loopback only — this is a scrape target for
// `--serve`-style runs, not a general web server.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace tpart::obs {

class MetricsHttpServer {
 public:
  /// Returns the /metrics response body on each scrape.
  using MetricsFn = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:port (0 = ephemeral; see port() for the choice)
  /// and starts the accept loop.
  Status Start(std::uint16_t port, MetricsFn metrics);
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void Serve();

  MetricsFn metrics_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
};

}  // namespace tpart::obs

#endif  // TPART_OBS_METRICS_HTTP_H_
