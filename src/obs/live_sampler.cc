#include "obs/live_sampler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tpart::obs {

LiveSampler::LiveSampler(Domain domain)
    : domain_(domain), t0_(std::chrono::steady_clock::now()) {}

LiveSampler::~LiveSampler() { StopWall(); }

void LiveSampler::set_source(Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  source_ = std::move(source);
}

void LiveSampler::ClearSource() {
  std::lock_guard<std::mutex> lock(mu_);
  source_ = nullptr;
}

void LiveSampler::StartWall(std::uint64_t interval_us) {
  TPART_CHECK(domain_ == Domain::kWall)
      << "StartWall on an epoch-domain sampler";
  std::lock_guard<std::mutex> lock(mu_);
  TPART_CHECK(!thread_.joinable()) << "sampler already running";
  stop_ = false;
  thread_ = std::thread([this, interval_us] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto interval = std::chrono::microseconds(
        interval_us > 0 ? interval_us : 100'000);
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      SampleLocked(0, /*has_epoch=*/false);
    }
  });
}

void LiveSampler::StopWall() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked(0, /*has_epoch=*/false);
}

void LiveSampler::set_epoch_every(std::uint64_t every) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_every_ = every > 0 ? every : 1;
}

void LiveSampler::TickEpoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch % epoch_every_ != 0) return;
  if (sampled_any_epoch_ && epoch <= last_epoch_) return;
  SampleLocked(epoch, /*has_epoch=*/true);
}

void LiveSampler::SampleEpoch(std::uint64_t epoch, const Sample& items) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch % epoch_every_ != 0) return;
  if (sampled_any_epoch_ && epoch <= last_epoch_) return;
  sampled_any_epoch_ = true;
  last_epoch_ = epoch;
  RenderLine(epoch, /*has_epoch=*/true, items);
}

void LiveSampler::SampleLocked(std::uint64_t epoch, bool has_epoch) {
  if (!source_) return;
  Sample items;
  source_(items);
  if (has_epoch) {
    sampled_any_epoch_ = true;
    last_epoch_ = epoch;
  }
  RenderLine(epoch, has_epoch, std::move(items));
}

void LiveSampler::RenderLine(std::uint64_t epoch, bool has_epoch,
                             Sample items) {
  std::sort(items.begin(), items.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::string line;
  line.reserve(48 + 32 * items.size());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"seq\":%" PRIu64, seq_++);
  line.append(buf);
  if (has_epoch) {
    std::snprintf(buf, sizeof(buf), ",\"epoch\":%" PRIu64, epoch);
    line.append(buf);
  } else {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    std::snprintf(buf, sizeof(buf), ",\"ts_us\":%lld",
                  static_cast<long long>(us));
    line.append(buf);
  }
  for (const auto& [name, value] : items) {
    line.append(",\"").append(name).append("\":");
    line.append(FormatMetricValue(value));
    latest_[name] = value;
  }
  line.append("}\n");
  lines_.push_back(std::move(line));
}

std::size_t LiveSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::string LiveSampler::Jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : lines_) out.append(line);
  return out;
}

Status LiveSampler::WriteJsonl(const std::string& path) const {
  const std::string text = Jsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kInternal,
                  "cannot open metrics stream " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status(StatusCode::kInternal,
                  "short write to metrics stream " + path);
  }
  return Status::Ok();
}

std::string LiveSampler::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : latest_) {
    out.append("# TYPE ").append(name).append(" gauge\n");
    out.append(name).append(" ").append(FormatMetricValue(value));
    out.push_back('\n');
  }
  return out;
}

double LiveSampler::Latest(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(name);
  return it == latest_.end() ? 0.0 : it->second;
}

}  // namespace tpart::obs
