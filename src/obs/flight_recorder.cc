#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace tpart::obs {

namespace {

std::atomic<FlightRecorder*> g_flight{nullptr};
std::atomic<std::uint64_t> g_next_flight_id{1};

/// Thread-local ring binding, keyed by recorder id exactly like the
/// trace recorder's CachedLog: a new recorder at a dead one's address
/// must not inherit rings.
struct CachedRing {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local CachedRing t_cached_ring;

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

const char* FlightEventName(FlightEvent ev) {
  switch (ev) {
    case FlightEvent::kAdmitBatch:
      return "admit_batch";
    case FlightEvent::kScheduleRound:
      return "schedule_round";
    case FlightEvent::kDisseminateRound:
      return "disseminate_round";
    case FlightEvent::kRoundReceived:
      return "round_received";
    case FlightEvent::kExecute:
      return "execute";
    case FlightEvent::kCrashStop:
      return "crash_stop";
    case FlightEvent::kRecover:
      return "recover";
    case FlightEvent::kFailureDeclared:
      return "failure_declared";
    case FlightEvent::kStall:
      return "stall";
    case FlightEvent::kElectionWon:
      return "election_won";
    case FlightEvent::kTermStart:
      return "term_start";
    case FlightEvent::kMigrationStep:
      return "migration_step";
    case FlightEvent::kMigrationAbort:
      return "migration_abort";
    case FlightEvent::kCheckpoint:
      return "checkpoint";
    case FlightEvent::kFencedMessage:
      return "fenced_stale_term";
    case FlightEvent::kZombieRevival:
      return "zombie_revival";
    case FlightEvent::kDump:
      return "postmortem_dump";
  }
  return nullptr;
}

FlightRecorder* GlobalFlightRecorder() {
  return g_flight.load(std::memory_order_acquire);
}

FlightRecorder* InstallGlobalFlightRecorder(FlightRecorder* recorder) {
  return g_flight.exchange(recorder, std::memory_order_acq_rel);
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)),
      recorder_id_(g_next_flight_id.fetch_add(1, std::memory_order_relaxed)),
      t0_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() {
  // Never die while installed: a racing Record() would use freed memory.
  if (GlobalFlightRecorder() == this) InstallGlobalFlightRecorder(nullptr);
}

std::uint64_t FlightRecorder::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  if (t_cached_ring.recorder_id == recorder_id_) {
    return static_cast<Ring*>(t_cached_ring.ring);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto ring = std::make_unique<Ring>(std::max<std::size_t>(options_.ring_size,
                                                           16));
  ring->tid = next_tid_++;
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  t_cached_ring = CachedRing{recorder_id_, raw};
  return raw;
}

void FlightRecorder::Record(FlightEvent ev, std::int32_t pid,
                            std::uint64_t a, std::uint64_t b) {
  Ring* ring = LocalRing();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % ring->slots.size()];
  slot.ts_ns = NowNs();
  slot.a = a;
  slot.b = b;
  slot.code = static_cast<std::uint16_t>(ev);
  slot.pid = pid;
  ring->head.store(head + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  struct Rendered {
    Slot slot;
    int tid;
  };
  std::vector<Rendered> events;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(head, ring->slots.size());
      for (std::uint64_t i = head - n; i < head; ++i) {
        events.push_back(
            Rendered{ring->slots[i % ring->slots.size()], ring->tid});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Rendered& x, const Rendered& y) {
                     return x.slot.ts_ns < y.slot.ts_ns;
                   });

  std::string out;
  out.reserve(256 + 96 * events.size());
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  char buf[160];
  for (const Rendered& r : events) {
    const char* name = FlightEventName(static_cast<FlightEvent>(r.slot.code));
    if (name == nullptr) continue;  // torn or garbled slot: drop
    if (!first) out.append(",\n");
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"i\","
                  "\"ts\":%" PRIu64 ".%03" PRIu64
                  ",\"pid\":%d,\"tid\":%d,\"args\":{\"a\":%" PRIu64
                  ",\"b\":%" PRIu64 "}}",
                  name, r.slot.ts_ns / 1000, r.slot.ts_ns % 1000, r.slot.pid,
                  r.tid, r.slot.a, r.slot.b);
    out.append(buf);
  }
  if (!reason.empty()) {
    if (!first) out.append(",\n");
    const std::uint64_t now = NowNs();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"postmortem\",\"cat\":\"flight\",\"ph\":\"i\","
                  "\"ts\":%" PRIu64 ".%03" PRIu64
                  ",\"pid\":0,\"tid\":0,\"args\":{\"reason\":\"",
                  now / 1000, now % 1000);
    out.append(buf);
    AppendEscaped(&out, reason);
    out.append("\"}}");
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"");
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    if (!run_context_.empty()) {
      out.append(",\"runContext\":\"");
      AppendEscaped(&out, run_context_);
      out.append("\"");
    }
  }
  out.append("}\n");
  return out;
}

void FlightRecorder::SetRunContext(const std::string& context) {
  std::lock_guard<std::mutex> lock(context_mu_);
  run_context_ = context;
}

Status FlightRecorder::DumpPostmortem(const std::string& reason) {
  const std::size_t ordinal =
      dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  Record(FlightEvent::kDump, 0, ordinal, 0);
  const std::string json = DumpJson(reason);
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    last_dump_json_ = json;
  }
  if (options_.dump_path.empty()) return Status::Ok();
  std::FILE* f = std::fopen(options_.dump_path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kInternal,
                  "cannot open flight-recorder dump " + options_.dump_path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status(StatusCode::kInternal,
                  "short write to flight-recorder dump " + options_.dump_path);
  }
  return Status::Ok();
}

std::string FlightRecorder::last_dump_json() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return last_dump_json_;
}

}  // namespace tpart::obs
