#ifndef TPART_COMMON_FIT_H_
#define TPART_COMMON_FIT_H_

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace tpart {

/// Ordinary least-squares line fit y = intercept + slope * x.
/// Used to reproduce the paper's Fig. 4(a) procedure: "our approach is to
/// regard w_{i,j} as a function of (j - i), and fit the function to the
/// inverse of our measurements" — the average stall is fitted by a
/// linear function of the distance.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r2 = 0.0;

  double At(double x) const { return intercept + slope * x; }
};

inline LinearFit FitLine(const std::vector<std::pair<double, double>>& xy) {
  LinearFit fit;
  const std::size_t n = xy.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double nd = static_cast<double>(n);
  const double denom = nd * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (nd * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / nd;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / nd;
  for (const auto& [x, y] : xy) {
    const double e = y - fit.At(x);
    ss_res += e * e;
    ss_tot += (y - mean_y) * (y - mean_y);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

/// Estimates the midpoint of a decreasing step/sigmoid curve: the x at
/// which y first drops below (max + min) / 2. The paper's Fig. 4(b)
/// observes "the jump around (j-i) = 200"; this locates that knee in the
/// measured maximum-stall curve.
inline double SigmoidMidpoint(
    const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double lo = xy.front().second, hi = xy.front().second;
  for (const auto& [x, y] : xy) {
    (void)x;
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  const double mid = (lo + hi) / 2.0;
  for (const auto& [x, y] : xy) {
    if (y <= mid) return x;
  }
  return xy.back().first;
}

}  // namespace tpart

#endif  // TPART_COMMON_FIT_H_
