#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace tpart {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0.0 && theta < 1.0);
  if (theta_ == 0.0) {
    alpha_ = zetan_ = eta_ = 0.0;
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfGenerator::Next(Rng& rng) const {
  if (theta_ == 0.0) return rng.NextBelow(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace tpart
