#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tpart {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
int BucketIndex(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min(63, 64 - std::countl_zero(value));
}
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

void Histogram::Add(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketIndex(value))]++;
  ++count_;
  sum_ += static_cast<double>(value);
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > target) {
      // Upper bound of bucket i.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

}  // namespace tpart
