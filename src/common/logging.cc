#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tpart {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kError) {
    // Errors at this level indicate broken invariants in a deterministic
    // engine; continuing would silently diverge replicas.
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace tpart
