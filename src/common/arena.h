#ifndef TPART_COMMON_ARENA_H_
#define TPART_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace tpart {

/// Epoch-scoped slab arena (DESIGN.md §4h): bump allocation out of
/// geometrically growing slabs, freed all at once by Reset() at a
/// sink-epoch drain instead of per-object delete. Reset() rewinds the
/// cursor but keeps every slab, so a steady-state round allocates zero
/// bytes from the system allocator — the hot loop touches only memory it
/// already owns.
///
/// Objects placed in the arena are never individually destroyed; callers
/// must only park trivially destructible state here (or run destructors
/// themselves before Reset). ArenaAllocator below statically enforces
/// this for containers.
///
/// Not thread-safe: one arena per owning thread/stage, matching the
/// pipeline's single-writer stage structure.
class Arena {
 public:
  explicit Arena(std::size_t first_slab_bytes = 16 * 1024)
      : next_slab_bytes_(first_slab_bytes < 64 ? 64 : first_slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Movable so owning objects (e.g. TGraph) stay movable. Pointers handed
  // out remain valid — slabs move wholesale.
  Arena(Arena&& o) noexcept { *this = std::move(o); }
  Arena& operator=(Arena&& o) noexcept {
    slabs_ = std::move(o.slabs_);
    slab_sizes_ = std::move(o.slab_sizes_);
    live_ = o.live_;
    cursor_ = o.cursor_;
    limit_ = o.limit_;
    next_slab_bytes_ = o.next_slab_bytes_;
    bytes_used_ = o.bytes_used_;
    bytes_reserved_ = o.bytes_reserved_;
    o.slabs_.clear();
    o.slab_sizes_.clear();
    o.live_ = 0;
    o.cursor_ = o.limit_ = 0;
    o.bytes_used_ = o.bytes_reserved_ = 0;
    return *this;
  }

  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      AddSlab(bytes + align);
      p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Placement-constructs a T in the arena. T must be trivially
  /// destructible — nothing will ever run its destructor.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return ::new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Rewinds to empty, retaining all slabs for reuse. Everything handed
  /// out since the last Reset is invalidated.
  void Reset() {
    bytes_used_ = 0;
    if (slabs_.empty()) {
      live_ = 0;
      return;
    }
    // live_ counts slabs consumed since Reset; slab 0 becomes current, so
    // the refill walk in AddSlab must start at slab 1 — starting at 0
    // would hand slab 0 out twice and overwrite live data.
    live_ = 1;
    cursor_ = reinterpret_cast<std::uintptr_t>(slabs_[0].get());
    limit_ = cursor_ + slab_sizes_[0];
  }

  /// Bytes handed out since the last Reset.
  std::size_t bytes_used() const { return bytes_used_; }
  /// Bytes of slab capacity owned (survives Reset).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t num_slabs() const { return slabs_.size(); }

 private:
  void AddSlab(std::size_t min_bytes) {
    // After Reset, walk the already-owned slabs before growing.
    while (live_ < slabs_.size()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(slabs_[live_].get());
      limit_ = cursor_ + slab_sizes_[live_];
      ++live_;
      if (limit_ - cursor_ >= min_bytes) return;
    }
    std::size_t size = next_slab_bytes_;
    while (size < min_bytes) size *= 2;
    next_slab_bytes_ = size * 2;  // geometric growth caps slab count
    slabs_.push_back(std::unique_ptr<std::byte[]>(new std::byte[size]));
    slab_sizes_.push_back(size);
    bytes_reserved_ += size;
    live_ = slabs_.size();
    cursor_ = reinterpret_cast<std::uintptr_t>(slabs_.back().get());
    limit_ = cursor_ + size;
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::size_t> slab_sizes_;
  std::size_t live_ = 0;  // slabs in use since last Reset
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_slab_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// std-compatible allocator over an Arena for container scratch whose
/// lifetime ends at the next Reset. deallocate() is a no-op, so containers
/// using it must themselves be cleared/abandoned before Reset — and their
/// elements must be trivially destructible.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  static_assert(std::is_trivially_destructible_v<T>,
                "arena-backed containers must hold trivially destructible "
                "elements (nothing runs element destructors at Reset)");

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // freed wholesale by Arena::Reset

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace tpart

#endif  // TPART_COMMON_ARENA_H_
