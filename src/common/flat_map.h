#ifndef TPART_COMMON_FLAT_MAP_H_
#define TPART_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace tpart {

/// splitmix64 finalizer: a full-avalanche mixer, so sequential keys
/// (txn ids, edge ids, dense object keys) spread uniformly over a
/// power-of-two table.
inline std::uint64_t MixHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash functor for FlatMap: integral keys and pairs/tuples of them.
/// A pure function of the key value — FlatMap iteration order is therefore
/// a deterministic function of the operation history, which keeps the
/// byte-identity oracle across transports intact (every machine performs
/// the same operations in the same order).
struct FlatHash {
  std::size_t operator()(std::uint64_t k) const {
    return static_cast<std::size_t>(MixHash64(k));
  }
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return Combine((*this)(static_cast<std::uint64_t>(p.first)),
                   (*this)(static_cast<std::uint64_t>(p.second)));
  }
  template <typename... Ts>
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    std::size_t h = 0;
    std::apply(
        [&](const auto&... elems) {
          ((h = Combine(h, (*this)(static_cast<std::uint64_t>(elems)))), ...);
        },
        t);
    return h;
  }
  static std::size_t Combine(std::size_t a, std::size_t b) {
    return static_cast<std::size_t>(
        MixHash64(static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ull +
                  static_cast<std::uint64_t>(b)));
  }
};

/// Open-addressing hash map (linear probing, power-of-two capacity,
/// backward-shift deletion — no tombstones) for the hot path: one flat
/// slot array instead of a heap node per entry, so inserts/lookups on the
/// executor and scheduler paths stop allocating and chase no pointers.
///
/// Deliberate scope limits (this is an internal container, not a drop-in
/// std::unordered_map):
///  * K and V must be default-constructible and movable; empty slots hold
///    default-constructed pairs.
///  * erase() moves other elements (backward shift): it invalidates ALL
///    iterators and references, not just the erased one. Do not erase
///    while holding references to other entries, and do not erase inside
///    a range-for over the map — collect keys first, then erase.
///  * rehash (any insert may trigger it) also invalidates everything.
///  * iterators expose std::pair<K, V>&; callers must not mutate .first.
template <typename K, typename V, typename Hash = FlatHash>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(MapT* map, std::size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }
    /// const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), idx_(other.idx_) {}

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const Iter& o) const { return idx_ == o.idx_; }
    bool operator!=(const Iter& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;
    void SkipEmpty() {
      while (map_ != nullptr && idx_ < map_->slots_.size() &&
             !map_->full_[idx_]) {
        ++idx_;
      }
    }
    MapT* map_ = nullptr;
    std::size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Grows the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    // max load factor 7/8.
    while (want - want / 8 < n) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

  void clear() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (full_[i]) {
        slots_[i] = value_type();
        full_[i] = 0;
      }
    }
    size_ = 0;
  }

  iterator find(const K& key) {
    const std::size_t i = FindSlot(key);
    return i == kNpos ? end() : iterator(this, i);
  }
  const_iterator find(const K& key) const {
    const std::size_t i = FindSlot(key);
    return i == kNpos ? end() : const_iterator(this, i);
  }
  std::size_t count(const K& key) const {
    return FindSlot(key) == kNpos ? 0 : 1;
  }
  bool contains(const K& key) const { return FindSlot(key) != kNpos; }

  V& at(const K& key) {
    const std::size_t i = FindSlot(key);
    assert(i != kNpos && "FlatMap::at: key not present");
    return slots_[i].second;
  }
  const V& at(const K& key) const {
    const std::size_t i = FindSlot(key);
    assert(i != kNpos && "FlatMap::at: key not present");
    return slots_[i].second;
  }

  V& operator[](const K& key) {
    return slots_[InsertSlot(key).first].second;
  }

  template <typename KK, typename VV>
  std::pair<iterator, bool> emplace(KK&& key, VV&& value) {
    const K k(std::forward<KK>(key));
    const auto [i, inserted] = InsertSlot(k);
    if (inserted) slots_[i].second = V(std::forward<VV>(value));
    return {iterator(this, i), inserted};
  }

  /// Erases by key; returns the number of elements removed (0 or 1).
  std::size_t erase(const K& key) {
    const std::size_t i = FindSlot(key);
    if (i == kNpos) return 0;
    EraseSlot(i);
    return 1;
  }

  /// Erases the pointed-to element. Invalidates all iterators (backward
  /// shift moves elements); do not use while iterating the map.
  void erase(const_iterator it) {
    assert(it.map_ == this && it.idx_ < slots_.size() && full_[it.idx_]);
    EraseSlot(it.idx_);
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t Mask() const { return slots_.size() - 1; }
  std::size_t HomeOf(const K& key) const { return Hash{}(key) & Mask(); }

  std::size_t FindSlot(const K& key) const {
    if (slots_.empty()) return kNpos;
    std::size_t i = HomeOf(key);
    while (full_[i]) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & Mask();
    }
    return kNpos;
  }

  /// Returns (slot, inserted). Rehashes first when at the load limit.
  std::pair<std::size_t, bool> InsertSlot(const K& key) {
    if (slots_.empty()) Rehash(kMinCapacity);
    std::size_t i = HomeOf(key);
    while (full_[i]) {
      if (slots_[i].first == key) return {i, false};
      i = (i + 1) & Mask();
    }
    if (size_ + 1 > slots_.size() - slots_.size() / 8) {
      Rehash(slots_.size() * 2);
      i = HomeOf(key);
      while (full_[i]) i = (i + 1) & Mask();
    }
    full_[i] = 1;
    slots_[i].first = key;
    ++size_;
    return {i, true};
  }

  void EraseSlot(std::size_t i) {
    // Backward-shift deletion: walk the cluster after the hole and pull
    // back every element whose home position lies at or before the hole.
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & Mask();
      if (!full_[j]) break;
      const std::size_t home = HomeOf(slots_[j].first);
      // j may fill the hole iff the hole lies cyclically in [home, j).
      if (((hole - home) & Mask()) <= ((j - home) & Mask())) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = value_type();  // release held resources
    full_[hole] = 0;
    --size_;
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(new_capacity, value_type());
    full_.assign(new_capacity, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      std::size_t j = HomeOf(old_slots[i].first);
      while (full_[j]) j = (j + 1) & Mask();
      slots_[j] = std::move(old_slots[i]);
      full_[j] = 1;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> full_;
  std::size_t size_ = 0;
};

}  // namespace tpart

#endif  // TPART_COMMON_FLAT_MAP_H_
