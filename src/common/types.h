#ifndef TPART_COMMON_TYPES_H_
#define TPART_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace tpart {

/// Position of a transaction in the global total order decided by the
/// sequencers. Total-order ids start at 1; 0 means "no transaction"
/// (used e.g. as the source of a storage read).
using TxnId = std::uint64_t;

/// Identifier of a machine (equivalently: a data partition / a sink node).
using MachineId = std::uint32_t;

/// Identifier of a table in the storage layer.
using TableId = std::uint32_t;

/// Flat identifier of a record: table id in the high 16 bits, primary key
/// in the low 48 bits. See MakeObjectKey().
using ObjectKey = std::uint64_t;

/// Monotone counter of sinking rounds ("the p-th sinking process", §5.2).
using SinkEpoch = std::uint64_t;

/// Simulated time in nanoseconds (discrete-event simulator).
using SimTime = std::int64_t;

inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr MachineId kInvalidMachine =
    std::numeric_limits<MachineId>::max();
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

inline constexpr int kTableShift = 48;
inline constexpr ObjectKey kPrimaryKeyMask = (ObjectKey{1} << kTableShift) - 1;

/// Packs a (table, primary key) pair into a flat ObjectKey.
constexpr ObjectKey MakeObjectKey(TableId table, std::uint64_t primary_key) {
  return (static_cast<ObjectKey>(table) << kTableShift) |
         (primary_key & kPrimaryKeyMask);
}

/// Extracts the table id from a flat ObjectKey.
constexpr TableId TableOf(ObjectKey key) {
  return static_cast<TableId>(key >> kTableShift);
}

/// Extracts the primary key from a flat ObjectKey.
constexpr std::uint64_t PrimaryKeyOf(ObjectKey key) {
  return key & kPrimaryKeyMask;
}

}  // namespace tpart

#endif  // TPART_COMMON_TYPES_H_
