#include "common/status.h"

namespace tpart {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tpart
