#ifndef TPART_COMMON_ZIPF_H_
#define TPART_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace tpart {

/// Zipfian distribution over {0, ..., n-1} with exponent `theta`.
/// Used to model the non-uniform customer-id generation of the TPC-E
/// EGen driver (§6.1.2): "the BGen program provided by TPC generates
/// non-uniform customer ID, thus the data access pattern is skewed."
///
/// Implementation: the classic Gray et al. rejection-free inverse method
/// with precomputed zeta constants.
class ZipfGenerator {
 public:
  /// `n` must be >= 1; `theta` in [0, 1) for the standard YCSB-style
  /// distribution (theta = 0 degenerates to uniform).
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draws a value in [0, n).
  std::uint64_t Next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace tpart

#endif  // TPART_COMMON_ZIPF_H_
