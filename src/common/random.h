#ifndef TPART_COMMON_RANDOM_H_
#define TPART_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>

namespace tpart {

/// Deterministic, fast pseudo-random generator (splitmix64 seeding a
/// xoshiro256** core). All workload generation and tie-breaking in the
/// library flows through this type so that a fixed seed reproduces an
/// entire experiment bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
    for (auto& s : state_) {
      std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  std::uint64_t NextBelow(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift bounded generation (slightly biased for
    // astronomically large bounds; fine for workload generation).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tpart

#endif  // TPART_COMMON_RANDOM_H_
