#ifndef TPART_COMMON_SMALL_VEC_H_
#define TPART_COMMON_SMALL_VEC_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace tpart {

/// Vector with inline storage for the first `N` elements (DESIGN.md §4h).
/// Transaction footprints are tiny — a handful of keys and parameters —
/// so the hot path's per-txn containers (RwSet key sets, TxnSpec params)
/// fit inline and copying a spec stops touching the heap entirely; only
/// oversized outliers spill to a heap buffer, with ordinary geometric
/// growth from there.
///
/// API is the std::vector subset the codebase uses (plus conversion from
/// std::vector so call sites that build with std containers keep working).
/// Iterators are raw pointers; the usual invalidation rules apply.
template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  explicit SmallVector(std::size_t n, const T& value = T()) {
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) ::new (data_ + i) T(value);
    size_ = n;
  }

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  SmallVector(const SmallVector& o) { assign(o.begin(), o.end()); }

  SmallVector(SmallVector&& o) noexcept { MoveFrom(std::move(o)); }

  /// Implicit on purpose: lets `rw.reads = locally_built_std_vector` keep
  /// working across the std::vector -> SmallVector migration.
  SmallVector(const std::vector<T>& o) { assign(o.begin(), o.end()); }

  ~SmallVector() { Free(); }

  SmallVector& operator=(const SmallVector& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }
  SmallVector& operator=(SmallVector&& o) noexcept {
    if (this != &o) {
      Free();
      MoveFrom(std::move(o));
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  SmallVector& operator=(const std::vector<T>& o) {
    assign(o.begin(), o.end());
    return *this;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    reserve(static_cast<std::size_t>(std::distance(first, last)));
    for (; first != last; ++first) {
      ::new (data_ + size_) T(*first);
      ++size_;
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    Grow(n);
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* p = ::new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  void resize(std::size_t n, const T& value = T()) {
    if (n < size_) {
      for (std::size_t i = n; i < size_; ++i) data_[i].~T();
      size_ = n;
    } else {
      reserve(n);
      while (size_ < n) {
        ::new (data_ + size_) T(value);
        ++size_;
      }
    }
  }

  iterator erase(const_iterator first, const_iterator last) {
    iterator f = data_ + (first - data_);
    iterator l = data_ + (last - data_);
    iterator out = std::move(l, end(), f);
    for (iterator it = out; it != end(); ++it) it->~T();
    size_ = static_cast<std::size_t>(out - data_);
    return f;
  }
  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  void Grow(std::size_t want) {
    std::size_t cap = capacity_;
    while (cap < want) cap *= 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = fresh;
    capacity_ = cap;
  }

  void MoveFrom(SmallVector&& o) noexcept {
    if (o.data_ != o.InlineData()) {
      // Steal the heap buffer.
      data_ = o.data_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.data_ = o.InlineData();
      o.capacity_ = N;
      o.size_ = 0;
    } else {
      data_ = InlineData();
      capacity_ = N;
      size_ = o.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (data_ + i) T(std::move(o.data_[i]));
        o.data_[i].~T();
      }
      o.size_ = 0;
    }
  }

  void Free() {
    clear();
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
      data_ = InlineData();
      capacity_ = N;
    }
  }

  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = InlineData();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace tpart

#endif  // TPART_COMMON_SMALL_VEC_H_
