#ifndef TPART_COMMON_STATS_H_
#define TPART_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpart {

/// Streaming summary of a sequence of samples: count / mean / min / max /
/// variance (Welford). Cheap enough to keep one per metric per machine.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another summary into this one.
  void Merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram with exponentially growing bucket bounds,
/// suitable for latency distributions spanning several orders of magnitude.
class Histogram {
 public:
  /// Buckets: [0,1), [1,2), [2,4), [4,8), ... up to 2^62 and an overflow
  /// bucket, in the caller's unit (typically microseconds).
  Histogram();

  void Add(std::uint64_t value);
  std::size_t count() const { return count_; }
  double mean() const;
  double sum() const { return sum_; }
  std::uint64_t max_value() const { return max_; }

  /// Value at quantile q in [0,1], approximated by the bucket upper bound.
  std::uint64_t Quantile(double q) const;

  /// Bucket introspection, for exporters (Prometheus cumulative buckets).
  /// Bucket 0 holds {0}; bucket i>0 holds [2^(i-1), 2^i - 1]; the last
  /// bucket is the overflow.
  static constexpr int num_buckets() { return kNumBuckets; }
  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  static std::uint64_t BucketUpperBound(int i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

 private:
  static constexpr int kNumBuckets = 64;
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
};

}  // namespace tpart

#endif  // TPART_COMMON_STATS_H_
