#ifndef TPART_COMMON_LOGGING_H_
#define TPART_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tpart {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are discarded.
/// Defaults to kWarning so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via the TPART_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// No-op sink used when the level is disabled.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace tpart

#define TPART_LOG(level)                                          \
  if (::tpart::LogLevel::level < ::tpart::GetLogLevel()) {        \
  } else                                                          \
    ::tpart::internal_logging::LogMessage(::tpart::LogLevel::level, \
                                          __FILE__, __LINE__)

#define TPART_CHECK(cond)                                              \
  if (cond) {                                                          \
  } else                                                               \
    ::tpart::internal_logging::LogMessage(::tpart::LogLevel::kError,   \
                                          __FILE__, __LINE__)          \
        << "Check failed: " #cond " "

#endif  // TPART_COMMON_LOGGING_H_
