#ifndef TPART_COMMON_STATUS_H_
#define TPART_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tpart {

/// Error category for Status. Mirrors the small set of failure modes a
/// deterministic engine can encounter; everything else aborts the process.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kInternal,
  kAborted,        // transaction-logic abort (the only abort kind, §5.3)
  kUnavailable,    // e.g. machine marked failed in the runtime
};

/// Returns a human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight error-or-success value used across all module boundaries.
/// The library never throws across its public API.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status, in the spirit of absl::StatusOr. The value is only
/// accessible when ok().
template <typename T>
class Result {
 public:
  /// Implicit from value: enables `return value;` from Result-returning code.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Implicit from error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tpart

#define TPART_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::tpart::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define TPART_INTERNAL_CONCAT2(a, b) a##b
#define TPART_INTERNAL_CONCAT(a, b) TPART_INTERNAL_CONCAT2(a, b)

#define TPART_ASSIGN_OR_RETURN(lhs, expr)                       \
  TPART_INTERNAL_ASSIGN_OR_RETURN_IMPL(                         \
      TPART_INTERNAL_CONCAT(_tpart_res_, __LINE__), lhs, expr)

#define TPART_INTERNAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)    \
  auto tmp = (expr);                                            \
  if (!tmp.ok()) return tmp.status();                           \
  lhs = std::move(tmp).value()

#endif  // TPART_COMMON_STATUS_H_
