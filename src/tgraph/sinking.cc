// Implementation of TGraph::Sink — the sinking process (§3.3), push-plan
// generation (§3.3, §5.2), the forward-push -> cache-access edge
// transformation (§3.4), and write-back duty assignment (§4.2).

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "tgraph/tgraph.h"

namespace tpart {

SinkPlan TGraph::Sink(std::size_t count, SinkEpoch epoch) {
  TPART_CHECK(epoch == last_epoch_ + 1)
      << "sink epochs must be consecutive (got " << epoch << " after "
      << last_epoch_ << ")";
  last_epoch_ = epoch;
  count = std::min(count, nodes_.size());
  // Per-epoch scratch below (the stranded-edge grouping) lives in the
  // sink arena; rewinding it here frees last round's scratch wholesale.
  sink_arena_.Reset();

  SinkPlan plan;
  plan.epoch = epoch;
  if (count == 0) return plan;

  const TxnId last_sunk = first_id_ + count - 1;
  std::vector<TxnPlan> slots(count);
  for (std::size_t i = 0; i < count; ++i) {
    TxnNode& n = nodes_[i];
    if (n.assigned == kInvalidMachine) {
      TPART_CHECK(n.spec.is_dummy)
          << "sinking unassigned transaction T" << n.spec.id;
      n.assigned = 0;
    }
    n.sunk = true;
    slots[i].txn = n.spec.id;
    slots[i].machine = n.assigned;
    slots[i].num_reads = static_cast<std::uint32_t>(n.spec.rw.reads.size());
    slots[i].num_writes = static_cast<std::uint32_t>(n.spec.rw.writes.size());
  }
  auto slot_of = [&](TxnId id) -> TxnPlan& {
    return slots[static_cast<std::size_t>(id - first_id_)];
  };

  // ---- Pass 1: reads. Each batch transaction's in-edges become ReadSteps;
  // forward-push edges simultaneously append the matching Push /
  // LocalVersion step to their source transaction's plan.
  for (std::size_t i = 0; i < count; ++i) {
    const TxnNode& n = nodes_[i];
    if (n.spec.is_dummy) continue;
    const TxnId v = n.spec.id;
    TxnPlan& p = slots[i];
    for (const std::size_t eid : n.edges) {
      auto it = edges_.find(eid);
      if (it == edges_.end()) continue;
      TEdge& e = it->second;
      if (e.stale || e.dst_txn != v) continue;

      ReadStep r;
      r.key = e.key;
      r.src_txn = e.src_txn;
      r.provider_txn = e.src_txn;
      switch (e.kind) {
        case EdgeKind::kForwardPush: {
          TPART_CHECK(e.src_txn >= first_id_ && e.src_txn <= last_sunk)
              << "forward-push edge from non-batch source T" << e.src_txn;
          TxnPlan& src_plan = slot_of(e.src_txn);
          r.src_machine = src_plan.machine;
          if (src_plan.machine == p.machine) {
            r.kind = ReadSourceKind::kLocalVersion;
            src_plan.local_versions.push_back(
                LocalVersionStep{e.key, v, e.src_txn});
          } else {
            r.kind = ReadSourceKind::kPush;
            src_plan.pushes.push_back(
                PushStep{e.key, v, p.machine, e.src_txn});
          }
          break;
        }
        case EdgeKind::kCacheRead: {
          auto ce = cache_entries_.find({e.key, e.src_txn});
          TPART_CHECK(ce != cache_entries_.end())
              << "missing cache entry for key " << e.key << " v" << e.src_txn;
          CacheEntryState& entry = ce->second;
          auto& readers = entry.unsunk_readers;
          readers.erase(std::remove(readers.begin(), readers.end(), v),
                        readers.end());
          r.kind = entry.machine == p.machine ? ReadSourceKind::kCacheLocal
                                              : ReadSourceKind::kCacheRemote;
          r.src_machine = entry.machine;
          r.cache_epoch = entry.epoch;
          ++entry.reads_planned;
          if (readers.empty()) {
            const ObjectState& st = objects_[e.key];
            const bool is_current = st.loc == Loc::kCache &&
                                    st.version_writer == e.src_txn;
            if (!is_current) {
              // Superseded version: last reader frees the entry (§5.2);
              // no write-back needed (writing-back-the-latest, §4.2).
              r.invalidate_entry = true;
              r.entry_total_reads = entry.reads_planned;
              cache_entries_.erase(ce);
            }
            // Otherwise the write-back pass below invalidates it.
          }
          break;
        }
        case EdgeKind::kStorageRead: {
          r.kind = ReadSourceKind::kStorage;
          r.src_machine = e.sink;
          r.storage_min_epoch = e.storage_min_epoch;
          r.sticky_hint =
              options_.sticky_cache && e.src_txn != kInvalidTxnId;
          break;
        }
        case EdgeKind::kStorageWrite:
          continue;  // out-edge; handled in pass 3
      }
      p.reads.push_back(r);
    }
  }

  // ---- Pass 2: versions written by batch transactions that still have
  // unsunk readers. T-Part publishes them as cache entries and transforms
  // the dangling forward-push edges into cache-read edges (§3.4). In
  // G-Store emulation (always_write_back) the version is instead written
  // back immediately and the readers become storage readers.
  for (std::size_t i = 0; i < count; ++i) {
    const TxnNode& n = nodes_[i];
    if (n.spec.is_dummy) continue;
    const TxnId w = n.spec.id;
    // (key, edge) pairs grouped by key in the sink arena; the stable sort
    // reproduces the old std::map iteration (ascending key, edges in
    // discovery order within a key), so plan bytes are unchanged.
    using StrandedEdge = std::pair<ObjectKey, std::size_t>;
    std::vector<StrandedEdge, ArenaAllocator<StrandedEdge>> stranded{
        ArenaAllocator<StrandedEdge>(&sink_arena_)};
    stranded.reserve(n.edges.size());
    for (const std::size_t eid : n.edges) {
      auto it = edges_.find(eid);
      if (it == edges_.end()) continue;
      const TEdge& e = it->second;
      if (e.stale || e.kind != EdgeKind::kForwardPush) continue;
      if (e.src_txn == w && e.dst_txn > last_sunk) {
        stranded.emplace_back(e.key, eid);
      }
    }
    std::stable_sort(
        stranded.begin(), stranded.end(),
        [](const StrandedEdge& a, const StrandedEdge& b) {
          return a.first < b.first;
        });
    for (std::size_t lo = 0; lo < stranded.size();) {
      std::size_t hi = lo + 1;
      while (hi < stranded.size() && stranded[hi].first == stranded[lo].first) {
        ++hi;
      }
      const ObjectKey key = stranded[lo].first;
      ObjectState& st = objects_[key];
      const MachineId machine = slots[i].machine;
      if (!options_.always_write_back) {
        slots[i].cache_publishes.push_back(CachePublishStep{key, epoch});
        CacheEntryState entry;
        entry.machine = machine;
        entry.epoch = epoch;
        entry.dirty = true;
        for (std::size_t si = lo; si < hi; ++si) {
          TEdge& e = edges_.at(stranded[si].second);
          entry.unsunk_readers.push_back(e.dst_txn);
          e.kind = EdgeKind::kCacheRead;
          e.sink = machine;
          e.cache_epoch = epoch;
          // Weight unchanged: "the partitioning will be unchanged if the
          // cache-read edges have the same weights as those of the
          // corresponding forward-push edges" (§3.4).
        }
        std::sort(entry.unsunk_readers.begin(), entry.unsunk_readers.end());
        cache_entries_[{key, w}] = std::move(entry);
        if (st.loc == Loc::kUnsunkTxn && st.version_writer == w) {
          st.loc = Loc::kCache;
          st.cache_machine = machine;
          st.cache_epoch = epoch;
        }
      } else {
        WriteBackStep wb;
        wb.key = key;
        wb.home = data_map_->Locate(key);
        wb.version_txn = w;
        wb.make_sticky = options_.sticky_cache;
        wb.readers_to_await = st.storage_readers_since_wb;
        wb.replaces_version = st.storage_version;
        slots[i].write_backs.push_back(wb);
        st.storage_readers_since_wb = 0;
        st.storage_version = wb.version_txn;
        for (std::size_t si = lo; si < hi; ++si) {
          TEdge& e = edges_.at(stranded[si].second);
          e.kind = EdgeKind::kStorageRead;
          e.sink = wb.home;
          e.storage_min_epoch = epoch;
          e.weight = options_.storage_read_weight;
          ++st.storage_readers_since_wb;
        }
        st.write_back_epoch = epoch;
        st.ever_written_back = true;
        if (st.loc == Loc::kUnsunkTxn && st.version_writer == w) {
          st.loc = Loc::kStorage;
          st.dirty = false;
          if (st.wb_edge != kNoEdge) {
            auto wit = edges_.find(st.wb_edge);
            if (wit != edges_.end()) wit->second.stale = true;
            st.wb_edge = kNoEdge;
          }
        }
      }
      lo = hi;
    }
  }

  // ---- Pass 3: write-backs. A live storage-write edge owned by a batch
  // transaction means the dirty object's latest accessor is being sunk
  // with no remaining readers: it writes the version back (§4.2) and
  // frees any cache entry holding it.
  for (std::size_t i = 0; i < count; ++i) {
    const TxnNode& n = nodes_[i];
    if (n.spec.is_dummy) continue;
    const TxnId a = n.spec.id;
    for (const std::size_t eid : n.edges) {
      auto it = edges_.find(eid);
      if (it == edges_.end()) continue;
      const TEdge& e = it->second;
      if (e.stale || e.kind != EdgeKind::kStorageWrite || e.src_txn != a) {
        continue;
      }
      ObjectState& st = objects_[e.key];
      if (st.wb_edge != eid) continue;  // superseded duty
      WriteBackStep wb;
      wb.key = e.key;
      wb.home = e.sink;
      wb.version_txn = st.version_writer;
      wb.make_sticky = options_.sticky_cache;
      wb.readers_to_await = st.storage_readers_since_wb;
      wb.replaces_version = st.storage_version;
      slots[i].write_backs.push_back(wb);
      st.storage_readers_since_wb = 0;
      st.storage_version = wb.version_txn;
      if (st.loc == Loc::kCache) {
        std::uint32_t total_reads = 0;
        auto ce = cache_entries_.find({e.key, st.version_writer});
        if (ce != cache_entries_.end()) {
          total_reads = ce->second.reads_planned;
          cache_entries_.erase(ce);
        }
        for (auto& r : slots[i].reads) {
          if (r.key == e.key && r.src_txn == st.version_writer &&
              (r.kind == ReadSourceKind::kCacheLocal ||
               r.kind == ReadSourceKind::kCacheRemote)) {
            r.invalidate_entry = true;
            r.entry_total_reads = total_reads;
            break;
          }
        }
      }
      st.loc = Loc::kStorage;
      st.dirty = false;
      st.write_back_epoch = epoch;
      st.ever_written_back = true;
      st.wb_edge = kNoEdge;
    }
  }

  // ---- Pass 4: account sunk load into the sink nodes ("the weight of a
  // sink node ... is the sum of weights of nodes that have already been
  // sent to the executor on that machine, but not committed yet", §3.1),
  // garbage-collect dead edges, and drop the sunk nodes.
  for (std::size_t i = 0; i < count; ++i) {
    const TxnNode& n = nodes_[i];
    if (!n.spec.is_dummy) {
      sink_weight_[n.assigned] += n.weight;
      outstanding_[n.spec.id] = {n.assigned, n.weight};
    }
    for (const std::size_t eid : n.edges) {
      auto it = edges_.find(eid);
      if (it == edges_.end()) continue;
      const TEdge& e = it->second;
      bool dead = false;
      switch (e.kind) {
        case EdgeKind::kForwardPush:
          dead = e.dst_txn <= last_sunk;
          break;
        case EdgeKind::kStorageRead:
        case EdgeKind::kCacheRead:
          dead = e.dst_txn <= last_sunk;
          break;
        case EdgeKind::kStorageWrite:
          dead = e.stale || e.src_txn <= last_sunk;
          break;
      }
      if (dead) edges_.erase(it);
    }
  }
  nodes_.erase(nodes_.begin(),
               nodes_.begin() + static_cast<std::ptrdiff_t>(count));
  first_id_ += count;

  // Emit plans for real transactions only ("the schedulers discard these
  // dummy requests when generating a push plan", §3.3). Dummies are never
  // recorded in outstanding_, which identifies them here.
  plan.txns.reserve(count);
  for (auto& slot : slots) {
    if (outstanding_.count(slot.txn) > 0) {
      plan.txns.push_back(std::move(slot));
    }
  }
  return plan;
}

}  // namespace tpart
