#include "tgraph/tgraph.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/logging.h"
#include "txn/rw_set.h"

namespace tpart {

TGraph::TGraph(Options options,
               std::shared_ptr<const DataPartitionMap> data_map)
    : options_(std::move(options)),
      data_map_(std::move(data_map)),
      sink_weight_(options_.num_machines, 0.0) {
  TPART_CHECK(options_.num_machines >= 1);
  TPART_CHECK(data_map_->num_partitions() >= options_.num_machines);
}

const TxnNode& TGraph::node(TxnId id) const {
  assert(HasNode(id));
  return nodes_[static_cast<std::size_t>(id - first_id_)];
}

TxnNode& TGraph::mutable_node(TxnId id) {
  assert(HasNode(id));
  return nodes_[static_cast<std::size_t>(id - first_id_)];
}

std::size_t TGraph::AddEdge(TEdge edge) {
  const std::size_t id = next_edge_id_++;
  edges_.emplace(id, edge);
  return id;
}

void TGraph::MoveWriteBackEdge(ObjectState& st, ObjectKey key,
                               TxnId new_owner) {
  if (st.wb_edge != kNoEdge) {
    auto it = edges_.find(st.wb_edge);
    if (it != edges_.end()) {
      if (it->second.src_txn == new_owner) return;  // already owns the duty
      it->second.stale = true;
    }
  }
  TEdge e;
  e.kind = EdgeKind::kStorageWrite;
  e.key = key;
  e.src_txn = new_owner;
  e.dst_txn = kInvalidTxnId;
  e.sink = data_map_->Locate(key);
  e.weight = options_.storage_write_weight;
  st.wb_edge = AddEdge(e);
  mutable_node(new_owner).edges.push_back(st.wb_edge);
}

void TGraph::AddTxn(const TxnSpec& spec) {
  TPART_CHECK(spec.id == next_expected_id_)
      << "non-consecutive txn id " << spec.id << " (expected "
      << next_expected_id_ << ")";
  ++next_expected_id_;

  nodes_.push_back(TxnNode{});
  TxnNode& node = nodes_.back();
  node.spec = spec;
  node.weight = spec.is_dummy ? 0.0 : spec.node_weight;
  if (spec.is_dummy) return;

  const TxnId v = spec.id;

  // §5.3: a transaction reads the objects it writes so that, on a logic
  // abort, it can push the (old) read data forward unchanged.
  const KeySet effective_reads =
      options_.read_own_writes ? spec.rw.AllKeys() : spec.rw.reads;

  // Each read contributes at most one edge id; each access of a dirty
  // object can additionally move a write-back edge here.
  node.edges.reserve(effective_reads.size() + spec.rw.writes.size() +
                     spec.rw.reads.size());

  for (const ObjectKey o : effective_reads) {
    ObjectState& st = StateOf(o);
    TEdge e;
    e.key = o;
    e.dst_txn = v;
    switch (st.loc) {
      case Loc::kUnsunkTxn: {
        // reading-from-the-earliest (§4.2): source is the version writer.
        e.kind = EdgeKind::kForwardPush;
        e.src_txn = st.version_writer;
        e.weight = options_.push_weight->Weight(st.version_writer, v);
        const std::size_t id = AddEdge(e);
        node.edges.push_back(id);
        mutable_node(st.version_writer).edges.push_back(id);
        break;
      }
      case Loc::kCache: {
        e.kind = EdgeKind::kCacheRead;
        e.src_txn = st.version_writer;
        e.sink = st.cache_machine;
        e.cache_epoch = st.cache_epoch;
        // Same weight as the forward-push edge it replaced (§3.4).
        e.weight = options_.push_weight->Weight(st.version_writer, v);
        const std::size_t id = AddEdge(e);
        node.edges.push_back(id);
        cache_entries_[{o, st.version_writer}].unsunk_readers.push_back(v);
        break;
      }
      case Loc::kStorage: {
        e.kind = EdgeKind::kStorageRead;
        e.src_txn = st.version_writer;  // 0 for the initially loaded version
        e.sink = data_map_->Locate(o);
        e.storage_min_epoch = st.write_back_epoch;
        e.weight = options_.storage_read_weight;
        const std::size_t id = AddEdge(e);
        node.edges.push_back(id);
        ++st.storage_readers_since_wb;
        break;
      }
    }
    st.last_accessor = v;
    // writing-back-the-latest (§4.2): the storage-write duty for a dirty
    // object follows its latest accessor (cf. T6 writing back C, Fig. 3).
    if (st.dirty) MoveWriteBackEdge(st, o, v);
  }

  for (const ObjectKey o : spec.rw.writes) {
    ObjectState& st = StateOf(o);
    st.version_writer = v;
    st.loc = Loc::kUnsunkTxn;
    st.dirty = true;
    st.last_accessor = v;
    MoveWriteBackEdge(st, o, v);
  }
}

void TGraph::OnCommitted(TxnId id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  sink_weight_[it->second.first] -= it->second.second;
  if (sink_weight_[it->second.first] < 0.0) {
    sink_weight_[it->second.first] = 0.0;
  }
  outstanding_.erase(it);
}

void TGraph::Rehome(std::size_t new_n) {
  TPART_CHECK(new_n >= 1);
  TPART_CHECK(data_map_->num_partitions() >= new_n)
      << "membership " << new_n << " exceeds the map's machine slots";
  options_.num_machines = new_n;
  if (sink_weight_.size() < new_n) sink_weight_.resize(new_n, 0.0);
  for (auto& [eid, e] : edges_) {
    (void)eid;
    if (e.stale) continue;
    if (e.kind == EdgeKind::kStorageRead ||
        e.kind == EdgeKind::kStorageWrite) {
      e.sink = data_map_->Locate(e.key);
    }
  }
  for (auto& n : nodes_) {
    if (n.assigned != kInvalidMachine &&
        n.assigned >= static_cast<MachineId>(new_n)) {
      n.assigned = kInvalidMachine;
    }
  }
}

void TGraph::ForEachUnsunk(
    const std::function<void(const TxnNode&)>& fn) const {
  for (const auto& n : nodes_) fn(n);
}

void TGraph::AccumulateAffinity(TxnId id,
                                const std::function<bool(TxnId)>& peer_placed,
                                std::vector<double>& affinity) const {
  const TxnNode& n = node(id);
  for (const std::size_t eid : n.edges) {
    auto it = edges_.find(eid);
    if (it == edges_.end()) continue;
    const TEdge& e = it->second;
    if (e.stale) continue;
    if (e.kind == EdgeKind::kForwardPush) {
      const TxnId peer = e.src_txn == id ? e.dst_txn : e.src_txn;
      if (!HasNode(peer)) continue;
      if (!peer_placed(peer)) continue;
      const MachineId m = node(peer).assigned;
      if (m == kInvalidMachine) continue;
      affinity[m] += e.weight;
    } else if (e.sink < affinity.size()) {
      // A cache-read edge may point at a holder outside the current
      // membership after a shrink (a zombie still serving residual
      // pulls); it then exerts no placement pull.
      affinity[e.sink] += e.weight;
    }
  }
}

double TGraph::CutWeight() const {
  double cut = 0.0;
  for (const auto& [eid, e] : edges_) {
    (void)eid;
    if (e.stale) continue;
    MachineId a = kInvalidMachine;
    MachineId b = kInvalidMachine;
    if (e.kind == EdgeKind::kForwardPush) {
      if (!HasNode(e.src_txn) || !HasNode(e.dst_txn)) continue;
      a = node(e.src_txn).assigned;
      b = node(e.dst_txn).assigned;
    } else if (e.kind == EdgeKind::kStorageWrite) {
      if (!HasNode(e.src_txn)) continue;
      a = node(e.src_txn).assigned;
      b = e.sink;
    } else {
      if (!HasNode(e.dst_txn)) continue;
      a = node(e.dst_txn).assigned;
      b = e.sink;
    }
    if (a == kInvalidMachine || b == kInvalidMachine) continue;
    if (a != b) cut += e.weight;
  }
  return cut;
}

std::vector<double> TGraph::AssignedLoad() const {
  std::vector<double> load(options_.num_machines, 0.0);
  for (const auto& n : nodes_) {
    if (n.assigned != kInvalidMachine) load[n.assigned] += n.weight;
  }
  return load;
}

TGraph::Snapshot TGraph::ExportSnapshot() const {
  Snapshot snap;
  const std::size_t k = options_.num_machines;
  const std::size_t total = k + nodes_.size();
  snap.vertex_weight.resize(total, 0.0);
  snap.fixed.assign(total, -1);
  snap.adj.resize(total);
  snap.vertex_txn.resize(total, kInvalidTxnId);

  for (std::size_t m = 0; m < k; ++m) {
    snap.vertex_weight[m] = sink_weight_[m];
    snap.fixed[m] = static_cast<int>(m);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    snap.vertex_weight[k + i] = nodes_[i].weight;
    snap.vertex_txn[k + i] = nodes_[i].spec.id;
  }

  auto vtx_of_txn = [&](TxnId id) {
    return static_cast<int>(k + (id - first_id_));
  };

  // Merge parallel edges via a temporary map per vertex at the end; here
  // we just append, then coalesce.
  for (const auto& [eid, e] : edges_) {
    (void)eid;
    if (e.stale) continue;
    int u, v;
    if (e.kind == EdgeKind::kForwardPush) {
      if (!HasNode(e.src_txn) || !HasNode(e.dst_txn)) continue;
      u = vtx_of_txn(e.src_txn);
      v = vtx_of_txn(e.dst_txn);
    } else if (e.kind == EdgeKind::kStorageWrite) {
      if (!HasNode(e.src_txn)) continue;
      if (e.sink >= k) continue;  // zombie holder after a shrink
      u = vtx_of_txn(e.src_txn);
      v = static_cast<int>(e.sink);
    } else {
      if (!HasNode(e.dst_txn)) continue;
      if (e.sink >= k) continue;  // zombie holder after a shrink
      u = static_cast<int>(e.sink);
      v = vtx_of_txn(e.dst_txn);
    }
    snap.adj[static_cast<std::size_t>(u)].emplace_back(v, e.weight);
    snap.adj[static_cast<std::size_t>(v)].emplace_back(u, e.weight);
  }

  for (auto& nbrs : snap.adj) {
    std::sort(nbrs.begin(), nbrs.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < nbrs.size();) {
      int target = nbrs[i].first;
      double w = 0.0;
      while (i < nbrs.size() && nbrs[i].first == target) {
        w += nbrs[i].second;
        ++i;
      }
      nbrs[out++] = {target, w};
    }
    nbrs.resize(out);
  }
  return snap;
}

bool TGraph::CheckInvariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::unordered_map<ObjectKey, std::size_t> live_wb;
  for (const auto& [eid, e] : edges_) {
    if (e.stale) continue;
    switch (e.kind) {
      case EdgeKind::kForwardPush:
        if (!HasNode(e.src_txn) || !HasNode(e.dst_txn)) {
          return fail("live push edge with sunk endpoint");
        }
        if (e.src_txn >= e.dst_txn) {
          return fail("push edge not forward in the total order");
        }
        break;
      case EdgeKind::kCacheRead: {
        if (!HasNode(e.dst_txn)) {
          return fail("live cache-read edge to sunk reader");
        }
        auto it = cache_entries_.find({e.key, e.src_txn});
        if (it == cache_entries_.end()) {
          return fail("cache-read edge without a cache entry");
        }
        if (it->second.machine != e.sink) {
          return fail("cache-read edge points at the wrong machine");
        }
        const auto& readers = it->second.unsunk_readers;
        if (std::find(readers.begin(), readers.end(), e.dst_txn) ==
            readers.end()) {
          return fail("cache-read edge reader not registered on entry");
        }
        break;
      }
      case EdgeKind::kStorageRead:
        if (!HasNode(e.dst_txn)) {
          return fail("live storage-read edge to sunk reader");
        }
        break;
      case EdgeKind::kStorageWrite: {
        if (!HasNode(e.src_txn)) {
          return fail("live storage-write edge owned by sunk node");
        }
        auto [it, inserted] = live_wb.emplace(e.key, eid);
        if (!inserted) {
          return fail("two live storage-write edges for one object");
        }
        auto oit = objects_.find(e.key);
        if (oit == objects_.end() || oit->second.wb_edge != eid) {
          return fail("storage-write edge not the recorded duty holder");
        }
        if (!oit->second.dirty) {
          return fail("storage-write edge for a clean object");
        }
        break;
      }
    }
  }
  for (const auto& [key, entry] : cache_entries_) {
    for (const TxnId r : entry.unsunk_readers) {
      if (!HasNode(r)) {
        return fail("cache entry holds a sunk reader");
      }
    }
    auto oit = objects_.find(key.first);
    if (oit == objects_.end()) return fail("cache entry without state");
  }
  for (const auto& [key, st] : objects_) {
    if (st.loc == Loc::kCache &&
        cache_entries_.count({key, st.version_writer}) == 0) {
      return fail("object marked cached without an entry");
    }
    if (st.loc == Loc::kUnsunkTxn && !HasNode(st.version_writer)) {
      return fail("object version held by a sunk/unknown writer");
    }
  }
  return true;
}

void TGraph::ApplySnapshotAssignment(const Snapshot& snapshot,
                                     const std::vector<int>& assignment) {
  TPART_CHECK(assignment.size() == snapshot.vertex_weight.size());
  for (std::size_t v = options_.num_machines; v < assignment.size(); ++v) {
    const TxnId id = snapshot.vertex_txn[v];
    if (!HasNode(id)) continue;
    mutable_node(id).assigned = static_cast<MachineId>(assignment[v]);
  }
}

}  // namespace tpart
