#include "tgraph/edge_weight.h"

#include <algorithm>
#include <cmath>

namespace tpart {

double LinearDecayEdgeWeight::Weight(TxnId i, TxnId j) const {
  const double d = j > i ? static_cast<double>(j - i) : 0.0;
  return std::max(floor_, w0_ - slope_ * d);
}

double SigmoidEdgeWeight::Weight(TxnId i, TxnId j) const {
  const double d = j > i ? static_cast<double>(j - i) : 0.0;
  return lo_ + (hi_ - lo_) / (1.0 + std::exp((d - midpoint_) / steepness_));
}

}  // namespace tpart
