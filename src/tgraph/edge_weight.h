#ifndef TPART_TGRAPH_EDGE_WEIGHT_H_
#define TPART_TGRAPH_EDGE_WEIGHT_H_

#include <memory>

#include "common/types.h"

namespace tpart {

/// Weight model for forward-push (and cache-read) edges, §4.1: the weight
/// of edge e_{i,j} "should reflect the machine synchronization cost ...
/// the amount of time v_j stalls to wait for the push from v_i.
/// Intuitively, the larger the transaction distance (j - i), the lower the
/// weight should be."
class EdgeWeightModel {
 public:
  virtual ~EdgeWeightModel() = default;

  /// Weight for a wr-dependency between total-order positions i < j.
  virtual double Weight(TxnId i, TxnId j) const = 0;

  /// Human-readable model name, for benchmark output.
  virtual const char* name() const = 0;
};

/// All edges weigh 1 ("for simplicity, here we assume that all node/edge
/// weights equal to 1", §3.1).
class ConstantEdgeWeight : public EdgeWeightModel {
 public:
  explicit ConstantEdgeWeight(double w = 1.0) : w_(w) {}
  double Weight(TxnId, TxnId) const override { return w_; }
  const char* name() const override { return "constant"; }

 private:
  double w_;
};

/// Linear decay fitted to the *average* stall measurements (Fig. 4(a)):
/// w(d) = max(floor, w0 - slope * d).
class LinearDecayEdgeWeight : public EdgeWeightModel {
 public:
  LinearDecayEdgeWeight(double w0, double slope, double floor)
      : w0_(w0), slope_(slope), floor_(floor) {}
  /// Defaults calibrated so weight halves around distance ~100 and
  /// bottoms out at 10% for very distant pairs.
  LinearDecayEdgeWeight() : LinearDecayEdgeWeight(1.0, 0.005, 0.1) {}

  double Weight(TxnId i, TxnId j) const override;
  const char* name() const override { return "linear-decay"; }

 private:
  double w0_, slope_, floor_;
};

/// Sigmoid fitted to the *maximum* stall measurements (Fig. 4(b)): high
/// plateau for close pairs, a drop around distance `midpoint` (the paper
/// observes "the jump around (j-i) = 200"), low plateau beyond. The paper
/// leaves evaluating this model to future work (§8); we ship it for the
/// ablation bench.
class SigmoidEdgeWeight : public EdgeWeightModel {
 public:
  SigmoidEdgeWeight(double lo, double hi, double midpoint, double steepness)
      : lo_(lo), hi_(hi), midpoint_(midpoint), steepness_(steepness) {}
  SigmoidEdgeWeight() : SigmoidEdgeWeight(0.1, 1.0, 200.0, 25.0) {}

  double Weight(TxnId i, TxnId j) const override;
  const char* name() const override { return "sigmoid"; }

 private:
  double lo_, hi_, midpoint_, steepness_;
};

}  // namespace tpart

#endif  // TPART_TGRAPH_EDGE_WEIGHT_H_
