#ifndef TPART_TGRAPH_TGRAPH_H_
#define TPART_TGRAPH_TGRAPH_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/types.h"
#include "scheduler/push_plan.h"
#include "storage/data_partition.h"
#include "tgraph/edge_weight.h"
#include "txn/txn.h"

namespace tpart {

/// Kinds of T-graph edges (§3.1, §3.4).
enum class EdgeKind {
  /// wr-dependency between two unsunk transactions; becomes a push or a
  /// local version hand-off at sink time.
  kForwardPush,
  /// Sink -> txn: the version must be fetched from storage.
  kStorageRead,
  /// Txn -> sink: the dirty version must eventually be written back.
  kStorageWrite,
  /// Sink -> txn: the version lives in the cache area of some machine
  /// (produced by the §3.4 transformation or created on arrival when the
  /// source version is already cached).
  kCacheRead,
};

/// One T-graph edge. Txn endpoints are referenced by id; sink endpoints by
/// machine id. Exactly one of src_txn / sink is meaningful on the source
/// side depending on kind.
struct TEdge {
  EdgeKind kind = EdgeKind::kForwardPush;
  ObjectKey key = 0;
  /// Source transaction (kForwardPush) or the version tag for cache /
  /// storage reads (the txn that wrote the version; 0 = initial load).
  TxnId src_txn = kInvalidTxnId;
  /// Destination transaction (0 for kStorageWrite).
  TxnId dst_txn = kInvalidTxnId;
  /// Sink endpoint: record home (storage edges) or cache holder
  /// (kCacheRead). kInvalidMachine for kForwardPush.
  MachineId sink = kInvalidMachine;
  /// Cache-entry sink number (kCacheRead only).
  SinkEpoch cache_epoch = 0;
  /// Write-back watermark the reader must observe (kStorageRead only).
  SinkEpoch storage_min_epoch = 0;
  double weight = 1.0;
  /// Storage-write edges move to the latest accessor; superseded copies
  /// are marked stale and ignored everywhere.
  bool stale = false;
};

/// A transaction node of the T-graph.
struct TxnNode {
  TxnSpec spec;
  double weight = 1.0;
  /// Current partition assignment (mutable until sunk, §3.3: "the
  /// partition assignment of each transaction changes over time").
  MachineId assigned = kInvalidMachine;
  bool sunk = false;
  /// Ids of edges incident to this node (both directions).
  std::vector<std::size_t> edges;
};

/// The T-graph: transaction nodes, per-machine sink nodes, and dependency
/// edges, built incrementally from the totally ordered request stream.
///
/// The graph additionally tracks per-object version state so that edges
/// follow the paper's modelling principles:
///  * reading-from-the-earliest (§4.2): a read edge's source is the
///    transaction that *wrote* the required version (the earliest holder);
///  * writing-back-the-latest (§4.2): only the current latest version of a
///    dirty object carries a storage-write edge, attached to its latest
///    accessor (cf. T6 writing back C in Fig. 3).
///
/// All mutations are pure functions of the total order, so independent
/// TGraph instances fed the same stream stay identical (§3.3 determinism).
class TGraph {
 public:
  struct Options {
    std::size_t num_machines = 2;
    /// Weight model for forward-push / cache-read edges.
    std::shared_ptr<const EdgeWeightModel> push_weight =
        std::make_shared<ConstantEdgeWeight>();
    /// Weight of storage-read / storage-write edges relative to pushes.
    double storage_read_weight = 1.0;
    double storage_write_weight = 1.0;
    /// §5.3: require each transaction to read the objects it writes so an
    /// aborting transaction can push the old values forward. Disable only
    /// to mirror the paper's Fig. 3 example, which has blind writes.
    bool read_own_writes = false;
    /// Mark write-backs sticky (§5.2) in generated plans.
    bool sticky_cache = true;
    /// G-Store emulation (§6.2): never publish cross-batch cache entries;
    /// every dirty version is written back at its writer's sinking.
    bool always_write_back = false;
  };

  TGraph(Options options, std::shared_ptr<const DataPartitionMap> data_map);

  /// Adds the next totally ordered transaction as a node, creating its
  /// read-side edges and updating version state. Ids must be consecutive.
  /// Dummy transactions become isolated zero-weight nodes.
  void AddTxn(const TxnSpec& spec);

  /// Sinks the `count` earliest unsunk transactions (§3.3): fixes their
  /// current assignments, emits their push plans, performs the
  /// forward-push -> cache-access edge transformation (§3.4), assigns
  /// write-back duties, and removes the nodes. `epoch` is the 1-based
  /// sinking-round number and must increase by one per call.
  SinkPlan Sink(std::size_t count, SinkEpoch epoch);

  /// Engine feedback: transaction committed, so its weight no longer
  /// counts toward its machine's sink-node weight (§3.1).
  void OnCommitted(TxnId id);

  /// Elastic membership change at a sink-epoch cut: the data map has just
  /// advanced to a new version, and rounds from here on address `new_n`
  /// machines. Re-homes every live storage-read/storage-write edge to the
  /// key's new home (their sinks were fixed at arrival time under the old
  /// map) and un-assigns unsunk nodes parked on machines leaving the
  /// membership, so the streaming partitioner re-places them. Cache-read
  /// edges keep their holder: published epoch entries stay valid on the
  /// machine that published them, even one leaving the membership (it
  /// keeps serving residual pulls). The sink-weight vector only ever
  /// grows — OnCommitted() for transactions sunk on a leaver before the
  /// cut still indexes its slot.
  void Rehome(std::size_t new_n);

  // --- Introspection / partitioner interface -------------------------

  std::size_t num_machines() const { return options_.num_machines; }
  std::size_t num_unsunk() const { return nodes_.size(); }
  TxnId first_unsunk_id() const { return first_id_; }

  /// Node for id (must be unsunk and present).
  const TxnNode& node(TxnId id) const;
  TxnNode& mutable_node(TxnId id);
  bool HasNode(TxnId id) const {
    return id >= first_id_ && id < first_id_ + nodes_.size();
  }

  /// Sink-node weight of machine `m` (sunk-but-uncommitted load, §3.1).
  double sink_weight(MachineId m) const { return sink_weight_[m]; }
  /// Tests/benches may seed sink weights to model pre-existing load.
  void set_sink_weight(MachineId m, double w) { sink_weight_[m] = w; }

  const TEdge& edge(std::size_t edge_id) const { return edges_.at(edge_id); }

  /// Visits unsunk nodes in total order.
  void ForEachUnsunk(const std::function<void(const TxnNode&)>& fn) const;

  /// Adds, for every non-stale edge incident to node `id`, the edge weight
  /// to `affinity[p]` where p is the partition of the peer endpoint. Txn
  /// peers contribute only when `peer_placed(peer_id)` returns true (the
  /// streaming pass decides which neighbours count as placed).
  void AccumulateAffinity(TxnId id,
                          const std::function<bool(TxnId)>& peer_placed,
                          std::vector<double>& affinity) const;

  /// Sum of weights of non-stale edges crossing partitions, counting txn
  /// assignments plus sink placements. Unassigned nodes are skipped.
  double CutWeight() const;

  /// Total unsunk node weight currently assigned to each machine.
  std::vector<double> AssignedLoad() const;

  /// Data-partition map in use.
  const DataPartitionMap& data_map() const { return *data_map_; }
  const Options& options() const { return options_; }

  /// Exports an undirected snapshot for offline partitioners (METIS-like):
  /// vertices 0..k-1 are the sinks (fixed to their machine), then unsunk
  /// txns in order. Parallel edges are merged.
  struct Snapshot {
    /// Vertex weights; first num_machines entries are sinks.
    std::vector<double> vertex_weight;
    /// fixed[v] = machine for sinks, -1 for free vertices.
    std::vector<int> fixed;
    /// Adjacency: (neighbour vertex, accumulated weight).
    std::vector<std::vector<std::pair<int, double>>> adj;
    /// Txn id of vertex v (>= num_machines).
    std::vector<TxnId> vertex_txn;
  };
  Snapshot ExportSnapshot() const;

  /// Applies `assignment[v]` from a Snapshot back to the unsunk nodes.
  void ApplySnapshotAssignment(const Snapshot& snapshot,
                               const std::vector<int>& assignment);

  /// Structural invariants, checked by tests after arbitrary add/sink
  /// interleavings: live forward-push edges connect two unsunk nodes in
  /// order; live cache-read edges reference an existing entry on the
  /// right machine with the reader registered; at most one live
  /// storage-write edge per object, owned by its recorded duty holder;
  /// object version state agrees with the entry map. Returns false and
  /// fills `why` on the first violation.
  bool CheckInvariants(std::string* why = nullptr) const;

 private:
  // Keyed by (object, version txn): the paper's <obj, sink#> entries plus
  // the version tag, which disambiguates the rare case of two versions of
  // one object needing cross-round entries.
  struct CacheEntryState {
    MachineId machine = kInvalidMachine;
    SinkEpoch epoch = 0;
    bool dirty = true;
    std::vector<TxnId> unsunk_readers;
    std::uint32_t reads_planned = 0;  // for ReadStep::entry_total_reads
  };

  // Location of an object's current (latest) version.
  enum class Loc { kStorage, kUnsunkTxn, kCache };

  struct ObjectState {
    TxnId version_writer = kInvalidTxnId;  // last writer ever (0 = load)
    TxnId storage_version = kInvalidTxnId;  // version currently in storage
    Loc loc = Loc::kStorage;
    MachineId cache_machine = kInvalidMachine;
    SinkEpoch cache_epoch = 0;
    bool dirty = false;
    SinkEpoch write_back_epoch = 0;
    bool ever_written_back = false;  // sticky-hint basis
    TxnId last_accessor = kInvalidTxnId;
    std::size_t wb_edge = kNoEdge;   // live storage-write edge
    // Planned storage reads of the current storage version since the last
    // write-back; recorded into the next WriteBackStep::readers_to_await.
    std::uint32_t storage_readers_since_wb = 0;
  };

  static constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);

  std::size_t AddEdge(TEdge edge);
  void MoveWriteBackEdge(ObjectState& st, ObjectKey key, TxnId new_owner);
  ObjectState& StateOf(ObjectKey key) { return objects_[key]; }

  Options options_;
  std::shared_ptr<const DataPartitionMap> data_map_;

  std::deque<TxnNode> nodes_;  // unsunk nodes; nodes_[id - first_id_]
  TxnId first_id_ = 1;         // id of nodes_.front()
  TxnId next_expected_id_ = 1;

  // Open-addressing tables (common/flat_map.h): AddTxn/Sink run once per
  // transaction on the scheduler hot path, and node-based maps spent it
  // allocating. Iteration order is a pure function of the operation
  // history, so independent TGraph replicas still agree byte-for-byte.
  FlatMap<std::size_t, TEdge> edges_;
  std::size_t next_edge_id_ = 0;

  FlatMap<ObjectKey, ObjectState> objects_;
  FlatMap<std::pair<ObjectKey, TxnId>, CacheEntryState> cache_entries_;

  std::vector<double> sink_weight_;
  // weight of sunk-but-uncommitted txns, per txn (for OnCommitted).
  FlatMap<TxnId, std::pair<MachineId, double>> outstanding_;

  SinkEpoch last_epoch_ = 0;

  // Epoch-scoped slab memory (common/arena.h) for Sink's transient
  // grouping state: reset at the top of every Sink call, so per-epoch
  // scratch costs zero steady-state allocations once the slabs warm up.
  Arena sink_arena_;
};

}  // namespace tpart

#endif  // TPART_TGRAPH_TGRAPH_H_
