#ifndef TPART_ELASTIC_ELASTIC_MAP_H_
#define TPART_ELASTIC_ELASTIC_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/data_partition.h"

namespace tpart {

/// How a membership step picks the keys that move (ISSUE: key-range /
/// hot-key driven, Lion-style adaptive provision).
enum class MigrationPolicy : std::uint8_t {
  /// Closed-form minimal movement: on a grow n -> n', key moves iff its
  /// rendezvous hash lands in [n, n'); on a shrink, only keys homed on a
  /// removed machine move. No per-key state needed.
  kRehash = 0,
  /// Lion-style: the scheduler picks the hottest keys (by observed access
  /// frequency in the request stream) and places them explicitly via the
  /// step's override table; everything else follows kRehash movement
  /// rules. Deterministic because the frequency counts are a pure
  /// function of the totally ordered stream prefix.
  kHotKey = 1,
};

/// One membership change: sinking rounds <= cut_epoch run with n_before
/// machines, rounds > cut_epoch with n_after. The override table is
/// filled (hot-key policy) by the scheduler *before* the step is
/// published via ElasticPartitionMap::Advance(), so concurrent readers
/// never observe a half-built step.
struct MembershipStep {
  SinkEpoch cut_epoch = 0;
  std::size_t n_before = 0;
  std::size_t n_after = 0;
  MigrationPolicy policy = MigrationPolicy::kRehash;
  /// How many hot keys the scheduler pins explicitly (kHotKey only).
  std::size_t hot_keys = 64;
  /// Explicit per-key placement, filled at the cut (kHotKey), always a
  /// machine < n_after.
  std::unordered_map<ObjectKey, MachineId> overrides;
};

/// Epoch-versioned key -> machine map: a fixed base map plus an ordered
/// list of membership steps. Version v means "the first v steps have been
/// applied"; Locate() answers at the atomically published active version,
/// LocateAt() at any version (the control plane diffs v-1 vs v to compute
/// the moved-key set). num_partitions() reports the total machine slots
/// the run ever uses, so stores and machines are allocated once up front
/// and a membership change never reallocates anything — it only changes
/// where keys are homed.
///
/// Thread-safety: AddStep() is construction-time only. The scheduler
/// thread mutates step v's override table and then calls Advance() (a
/// release store); any thread may call Locate()/LocateAt() concurrently
/// (acquire load) and will only ever read fully published steps.
class ElasticPartitionMap : public DataPartitionMap {
 public:
  ElasticPartitionMap(std::shared_ptr<const DataPartitionMap> base,
                      std::size_t total_slots)
      : base_(std::move(base)), total_slots_(total_slots) {}

  /// Appends a step (construction time, before the run starts).
  void AddStep(MembershipStep step) { steps_.push_back(std::move(step)); }

  /// Home of `key` after the first `version` steps.
  MachineId LocateAt(std::size_t version, ObjectKey key) const;

  MachineId Locate(ObjectKey key) const override {
    return LocateAt(active_version_.load(std::memory_order_acquire), key);
  }

  /// Total machine slots allocated for the run (max membership).
  std::size_t num_partitions() const override { return total_slots_; }

  /// Active machine count (membership, not slots) at `version`.
  std::size_t membership_at(std::size_t version) const;

  std::size_t active_version() const {
    return active_version_.load(std::memory_order_acquire);
  }

  /// Publishes the next step (scheduler thread, at the cut).
  void Advance() { active_version_.fetch_add(1, std::memory_order_release); }

  std::size_t num_steps() const { return steps_.size(); }
  const MembershipStep& step(std::size_t i) const { return steps_.at(i); }
  /// Mutable access for the scheduler to fill hot-key overrides before
  /// publishing; never call for an already-published step.
  MembershipStep& mutable_step(std::size_t i) { return steps_.at(i); }

  const DataPartitionMap& base() const { return *base_; }

 private:
  static MachineId ApplyStep(const MembershipStep& step, std::size_t step_idx,
                             ObjectKey key, MachineId home);

  std::shared_ptr<const DataPartitionMap> base_;
  std::size_t total_slots_;
  std::vector<MembershipStep> steps_;
  std::atomic<std::size_t> active_version_{0};
};

}  // namespace tpart

#endif  // TPART_ELASTIC_ELASTIC_MAP_H_
