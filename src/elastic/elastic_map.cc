#include "elastic/elastic_map.h"

#include "common/logging.h"

namespace tpart {

namespace {

// splitmix64 finalizer — decorrelated from HashPartitionMap's Fibonacci
// hash so rehash movement doesn't systematically chase the base layout.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

MachineId ElasticPartitionMap::ApplyStep(const MembershipStep& step,
                                         std::size_t step_idx, ObjectKey key,
                                         MachineId home) {
  auto it = step.overrides.find(key);
  if (it != step.overrides.end()) return it->second;
  if (step.n_after > step.n_before) {
    // Grow: a key moves iff its rendezvous slot lands on a new machine.
    // Exactly a (n_after - n_before)/n_after fraction of the keyspace
    // moves — the minimal-movement property.
    const auto slot = static_cast<MachineId>(Mix(key) % step.n_after);
    return slot >= static_cast<MachineId>(step.n_before) ? slot : home;
  }
  // Shrink: only keys homed on a removed machine move; they rendezvous
  // into the surviving set (salted by the step index so repeated shrinks
  // don't correlate).
  if (home >= static_cast<MachineId>(step.n_after)) {
    return static_cast<MachineId>(Mix(key ^ (0xE1A5u + step_idx)) %
                                  step.n_after);
  }
  return home;
}

MachineId ElasticPartitionMap::LocateAt(std::size_t version,
                                        ObjectKey key) const {
  TPART_CHECK(version <= steps_.size())
      << "elastic map version " << version << " past " << steps_.size()
      << " steps";
  MachineId home = base_->Locate(key);
  for (std::size_t i = 0; i < version; ++i) {
    home = ApplyStep(steps_[i], i, key, home);
  }
  return home;
}

std::size_t ElasticPartitionMap::membership_at(std::size_t version) const {
  TPART_CHECK(version <= steps_.size());
  return version == 0 ? base_->num_partitions() : steps_[version - 1].n_after;
}

}  // namespace tpart
