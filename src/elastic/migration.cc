#include "elastic/migration.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "net/wire.h"

namespace tpart {

std::vector<MigrationRoute> PlanMigration(
    const ElasticPartitionMap& map, std::size_t version,
    const std::vector<std::pair<MachineId, std::vector<ObjectKey>>>&
        keys_by_source) {
  TPART_CHECK(version >= 1) << "no step to migrate for";
  std::map<std::pair<MachineId, MachineId>, std::vector<ObjectKey>> routes;
  for (const auto& [source, keys] : keys_by_source) {
    for (const ObjectKey key : keys) {
      const MachineId before = map.LocateAt(version - 1, key);
      if (before != source) continue;  // stale holder; not ours to move
      const MachineId after = map.LocateAt(version, key);
      if (after == before) continue;
      routes[{source, after}].push_back(key);
    }
  }
  std::vector<MigrationRoute> out;
  out.reserve(routes.size());
  for (auto& [pair, keys] : routes) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    out.push_back(MigrationRoute{pair.first, pair.second, std::move(keys)});
  }
  return out;
}

void FillHotKeyOverrides(
    MembershipStep& step,
    const std::vector<std::pair<ObjectKey, std::uint64_t>>& frequencies,
    const ElasticPartitionMap& map, std::size_t version) {
  TPART_CHECK(version >= 1);
  // Hottest first; ties broken by key so the pick is deterministic.
  std::vector<std::pair<ObjectKey, std::uint64_t>> order = frequencies;
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (order.size() > step.hot_keys) order.resize(step.hot_keys);

  const bool grow = step.n_after > step.n_before;
  // Grow: spread the hot set over the machines the step adds (that is the
  // Lion move — new capacity absorbs the hottest keys). Shrink: spread it
  // over the whole surviving set.
  const MachineId lo = grow ? static_cast<MachineId>(step.n_before) : 0;
  const MachineId hi = static_cast<MachineId>(step.n_after);
  TPART_CHECK(hi > lo);
  MachineId next = lo;
  for (const auto& [key, freq] : order) {
    (void)freq;
    const MachineId target = next;
    next = next + 1 >= hi ? lo : next + 1;
    // Only pin when pinning changes the key's home: gratuitous overrides
    // would inflate the moved set for nothing.
    if (map.LocateAt(version - 1, key) == target) continue;
    step.overrides[key] = target;
  }
}

// ---------------------------------------------------------------------
// Partition-image codec
// ---------------------------------------------------------------------

namespace {
inline constexpr std::uint8_t kFlagPresent = 1u << 0;
inline constexpr std::uint8_t kFlagState = 1u << 1;
inline constexpr std::uint8_t kFlagSticky = 1u << 2;
inline constexpr std::uint8_t kFlagCacheSticky = 1u << 3;
}  // namespace

std::string EncodePartitionImage(const PartitionImage& image) {
  std::string out;
  WireWriter w(&out);
  w.PutU8(kWireFormatVersion);
  w.PutVarint(image.entries.size());
  for (const auto& e : image.entries) {
    w.PutVarint(e.key);
    std::uint8_t flags = 0;
    if (e.present) flags |= kFlagPresent;
    if (e.has_state) flags |= kFlagState;
    if (e.has_sticky) flags |= kFlagSticky;
    if (e.has_cache_sticky) flags |= kFlagCacheSticky;
    w.PutU8(flags);
    if (e.present) EncodeRecord(e.value, w);
    if (e.has_state) {
      w.PutVarint(e.current);
      w.PutVarint(e.reads_served_since_wb);
      w.PutVarint(e.sticky_expire);
    }
    if (e.has_cache_sticky) {
      EncodeRecord(e.cache_sticky_value, w);
      w.PutVarint(e.cache_sticky_version);
      w.PutVarint(e.cache_sticky_expire);
    }
  }
  return out;
}

Result<PartitionImage> DecodePartitionImage(std::string_view bytes) {
  const auto truncated = [] {
    return Status::InvalidArgument("truncated partition image");
  };
  WireReader r(bytes);
  std::uint8_t version = 0;
  if (!r.GetU8(&version)) return truncated();
  if (version != kWireFormatVersion) {
    return Status::InvalidArgument("unknown partition-image version");
  }
  std::uint64_t count = 0;
  if (!r.GetVarint(&count)) return truncated();
  PartitionImage image;
  image.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PartitionImage::KeyEntry e;
    std::uint8_t flags = 0;
    if (!r.GetVarint(&e.key) || !r.GetU8(&flags)) return truncated();
    e.present = (flags & kFlagPresent) != 0;
    e.has_state = (flags & kFlagState) != 0;
    e.has_sticky = (flags & kFlagSticky) != 0;
    e.has_cache_sticky = (flags & kFlagCacheSticky) != 0;
    if (e.present && !DecodeRecord(r, &e.value)) return truncated();
    if (e.has_state) {
      std::uint64_t reads = 0;
      if (!r.GetVarint(&e.current) || !r.GetVarint(&reads) ||
          !r.GetVarint(&e.sticky_expire)) {
        return truncated();
      }
      e.reads_served_since_wb = static_cast<std::uint32_t>(reads);
    }
    if (e.has_cache_sticky) {
      if (!DecodeRecord(r, &e.cache_sticky_value) ||
          !r.GetVarint(&e.cache_sticky_version) ||
          !r.GetVarint(&e.cache_sticky_expire)) {
        return truncated();
      }
    }
    image.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after partition image");
  }
  return image;
}

std::string EncodeKeyList(const std::vector<ObjectKey>& keys) {
  std::string out;
  WireWriter w(&out);
  w.PutU8(kWireFormatVersion);
  w.PutVarint(keys.size());
  for (const ObjectKey key : keys) w.PutVarint(key);
  return out;
}

Result<std::vector<ObjectKey>> DecodeKeyList(std::string_view bytes) {
  WireReader r(bytes);
  std::uint8_t version = 0;
  std::uint64_t count = 0;
  if (!r.GetU8(&version) || version != kWireFormatVersion ||
      !r.GetVarint(&count)) {
    return Status::InvalidArgument("bad migration key list");
  }
  std::vector<ObjectKey> keys;
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ObjectKey key = 0;
    if (!r.GetVarint(&key)) {
      return Status::InvalidArgument("truncated migration key list");
    }
    keys.push_back(key);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after migration key list");
  }
  return keys;
}

std::vector<std::string> ChunkImage(const std::string& encoded) {
  std::vector<std::string> chunks;
  if (encoded.empty()) {
    chunks.emplace_back();  // commit-side accounting expects >= 1 chunk
    return chunks;
  }
  for (std::size_t off = 0; off < encoded.size(); off += kImageChunkBytes) {
    chunks.push_back(
        encoded.substr(off, std::min(kImageChunkBytes,
                                     encoded.size() - off)));
  }
  return chunks;
}

}  // namespace tpart
