#ifndef TPART_ELASTIC_MIGRATION_H_
#define TPART_ELASTIC_MIGRATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "elastic/elastic_map.h"
#include "storage/record.h"

namespace tpart {

/// One source -> target key shipment of a membership step. The control
/// plane computes routes at the migration barrier by diffing the elastic
/// map across the step; each route becomes one kMigrateBegin +
/// kPartitionImage chunk stream + kMigrateCommit exchange on the wire.
struct MigrationRoute {
  MachineId source = kInvalidMachine;
  MachineId target = kInvalidMachine;
  std::vector<ObjectKey> keys;  // sorted, deterministic
};

/// Diffs `map` across step `version-1 -> version` for the given per-source
/// key universes (everything a source machine holds state for: records,
/// storage-service key state, sticky entries) and groups the moved keys
/// into routes sorted by (source, target). Keys within a route are sorted,
/// so same-seed runs produce byte-identical migration traffic.
std::vector<MigrationRoute> PlanMigration(
    const ElasticPartitionMap& map, std::size_t version,
    const std::vector<std::pair<MachineId, std::vector<ObjectKey>>>&
        keys_by_source);

/// Fills a kHotKey step's override table from observed key frequencies
/// (Lion-style): the `step.hot_keys` hottest keys — ties broken by key so
/// the choice is a pure function of the stream prefix — are pinned
/// round-robin across the machines the step adds (grow) or across the
/// surviving set (shrink). Keys that would not otherwise move under the
/// rehash rule still get an override only if pinning changes their home.
void FillHotKeyOverrides(
    MembershipStep& step,
    const std::vector<std::pair<ObjectKey, std::uint64_t>>& frequencies,
    const ElasticPartitionMap& map, std::size_t version);

// ---------------------------------------------------------------------
// Partition image: what actually crosses the wire during a migration.
// ---------------------------------------------------------------------

/// Per-key migration state: the record (if present in the store) plus the
/// storage-service version discipline (current tag, reads served toward
/// the next write-back's gate, sticky flags) and any sticky cache entry.
/// Keys the run never touched have default state on both sides and are
/// shipped with just their record.
struct PartitionImage {
  struct KeyEntry {
    ObjectKey key = 0;
    bool present = false;  // record exists in the store
    Record value = Record::Absent();
    /// StorageService::KeyState projection.
    bool has_state = false;
    TxnId current = kInvalidTxnId;
    std::uint32_t reads_served_since_wb = 0;
    bool has_sticky = false;
    SinkEpoch sticky_expire = 0;
    /// CacheArea sticky entry (if the key has one).
    bool has_cache_sticky = false;
    Record cache_sticky_value = Record::Absent();
    TxnId cache_sticky_version = kInvalidTxnId;
    SinkEpoch cache_sticky_expire = 0;
  };
  std::vector<KeyEntry> entries;
};

std::string EncodePartitionImage(const PartitionImage& image);
Result<PartitionImage> DecodePartitionImage(std::string_view bytes);

/// Moved-key list carried in kMigrateBegin's plan_bytes.
std::string EncodeKeyList(const std::vector<ObjectKey>& keys);
Result<std::vector<ObjectKey>> DecodeKeyList(std::string_view bytes);

/// Splits an encoded image into wire chunks. Chunks are well under the
/// frame ceiling so one chunk is one transport message.
inline constexpr std::size_t kImageChunkBytes = 32 * 1024;
std::vector<std::string> ChunkImage(const std::string& encoded);

/// Stream id carried in Message::req_id for every message of one route:
/// (migration sequence number, source, target) packed so duplicate
/// deliveries across retries dedupe app-level by (stream, chunk index).
inline std::uint64_t MigrationStreamId(std::uint64_t seq, MachineId src,
                                       MachineId dst) {
  return (seq << 16) | (static_cast<std::uint64_t>(src) << 8) |
         static_cast<std::uint64_t>(dst);
}

}  // namespace tpart

#endif  // TPART_ELASTIC_MIGRATION_H_
