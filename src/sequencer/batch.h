#ifndef TPART_SEQUENCER_BATCH_H_
#define TPART_SEQUENCER_BATCH_H_

#include <cstdint>
#include <vector>

#include "txn/txn.h"

namespace tpart {

/// A totally ordered batch of transaction requests, as emitted by the
/// sequencers: "each sequencer ... periodically compiles its requests
/// arriving within a time interval into a batch ... and uses the
/// total-ordering protocol to determine the total order of that batch
/// only" (§3.1).
struct TxnBatch {
  std::uint64_t batch_id = 0;
  std::vector<TxnSpec> txns;

  /// Number of non-dummy requests.
  std::size_t NumRealTxns() const;

  /// Ids are consecutive and ascending, dummies flagged. Used by tests.
  bool CheckWellFormed(TxnId expected_first_id) const;
};

}  // namespace tpart

#endif  // TPART_SEQUENCER_BATCH_H_
