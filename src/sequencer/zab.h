#ifndef TPART_SEQUENCER_ZAB_H_
#define TPART_SEQUENCER_ZAB_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sequencer/batch.h"

namespace tpart {

/// Deterministic in-process simulation of Zab-style atomic broadcast —
/// the total-ordering protocol the paper's prototype runs ("We
/// implemented Zab, a well-known simplification of Paxos, as our total
/// ordering protocol ... we pull the leader out of the database nodes as
/// a standalone node", §6).
///
/// The simulation is a single-threaded message pump: Propose() enqueues a
/// client batch at the leader; the leader assigns a zxid
/// (epoch << 32 | counter) and broadcasts; followers append to their
/// accepted log and ack; on a quorum of acks the leader commits and all
/// alive nodes deliver in zxid order. CrashLeader() elects the alive node
/// with the longest accepted history (ties toward the lower node id),
/// starts a new epoch, truncates unacknowledged tails, and re-commits the
/// quorum-accepted prefix — the Zab safety property the tests check:
/// **a batch delivered by any node is delivered by every alive node, in
/// the same order**.
///
/// This class exists to pin down the ordering substrate's semantics (and
/// its failure behaviour) that the rest of the system assumes; the
/// engines consume its delivered stream exactly as they consume a plain
/// Sequencer's.
class ZabCluster {
 public:
  struct Options {
    std::size_t num_nodes = 3;
  };

  explicit ZabCluster(Options options);

  /// Enqueues a client batch at the current leader. No-op delivery until
  /// Run() pumps messages.
  void Propose(TxnBatch batch);

  /// Processes messages until quiescent. Deterministic: FIFO pump.
  void Run();

  /// Crashes the current leader (it stops acking/committing); triggers
  /// election + synchronisation on the next Run().
  void CrashLeader();

  /// Restarts a crashed node as a follower; it syncs from the leader on
  /// the next Run().
  void Restart(std::size_t node);

  std::size_t leader() const { return leader_; }
  bool alive(std::size_t node) const { return nodes_[node].alive; }
  std::uint64_t epoch() const { return epoch_; }

  /// Batches delivered (committed) at `node`, in delivery order.
  const std::vector<TxnBatch>& DeliveredAt(std::size_t node) const {
    return nodes_[node].delivered;
  }

  /// Committed zxids at `node` (parallel to DeliveredAt).
  const std::vector<std::uint64_t>& DeliveredZxidsAt(std::size_t node) const {
    return nodes_[node].delivered_zxids;
  }

 private:
  struct LogEntry {
    std::uint64_t zxid;
    TxnBatch batch;
  };
  struct Node {
    bool alive = true;
    std::vector<LogEntry> accepted;
    std::vector<TxnBatch> delivered;
    std::vector<std::uint64_t> delivered_zxids;
    std::uint64_t committed_upto = 0;  // highest committed zxid delivered
  };
  struct Message {
    enum class Type { kProposal, kAck, kCommit } type;
    std::size_t from;
    std::size_t to;
    std::uint64_t zxid;
    TxnBatch batch;  // kProposal only
  };

  std::uint64_t MakeZxid() {
    return (epoch_ << 32) | (counter_++ & 0xFFFFFFFFULL);
  }
  std::size_t Quorum() const { return nodes_.size() / 2 + 1; }
  void Broadcast(const LogEntry& entry);
  void DeliverUpTo(Node& node, std::uint64_t zxid);
  void ElectLeader();

  Options options_;
  std::vector<Node> nodes_;
  std::size_t leader_ = 0;
  std::uint64_t epoch_ = 1;
  std::uint64_t counter_ = 1;
  std::deque<Message> network_;
  // Ack counts per in-flight zxid (leader-side).
  std::vector<std::pair<std::uint64_t, std::size_t>> acks_;
  bool election_pending_ = false;
};

}  // namespace tpart

#endif  // TPART_SEQUENCER_ZAB_H_
