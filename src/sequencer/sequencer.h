#ifndef TPART_SEQUENCER_SEQUENCER_H_
#define TPART_SEQUENCER_SEQUENCER_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "sequencer/batch.h"
#include "txn/txn.h"

namespace tpart {

/// Total-order sequencer.
///
/// The paper runs Zab (a Paxos simplification) across the cluster to agree
/// on batch order; per the substitution table in DESIGN.md we model the
/// agreed outcome — a single stream of consecutively numbered requests,
/// delivered in batches — since the ordering delay "does not count into
/// the contention footprint" and is identical for Calvin and Calvin+TP
/// (§2.1, §6.3.1).
///
/// Dummy padding (§3.3): schedulers only sink after seeing a fixed number
/// of ordered transactions, so during client silence "each sequencer [adds]
/// dummy requests into every batch ... if there are not enough requests
/// from the clients."
class Sequencer {
 public:
  struct Options {
    /// Number of requests per ordered batch.
    std::size_t batch_size = 20;
    /// Pad short batches with dummy requests on Flush().
    bool pad_with_dummies = true;
  };

  explicit Sequencer(Options options) : options_(options) {}
  Sequencer() : Sequencer(Options{}) {}

  /// Enqueues a client request (id is assigned at batch formation).
  void Submit(TxnSpec spec);

  /// Returns the next full batch, or nullopt when fewer than batch_size
  /// requests are pending.
  std::optional<TxnBatch> NextBatch();

  /// Forms a batch immediately from whatever is pending, dummy-padding to
  /// batch_size when enabled. Models the periodic batch timer firing
  /// during client silence. Returns nullopt if padding is disabled and no
  /// requests are pending.
  std::optional<TxnBatch> Flush();

  /// Id the next sequenced transaction will receive.
  TxnId next_txn_id() const { return next_id_; }

  /// Resumes numbering mid-stream: a failed-over coordinator's fresh
  /// sequencer continues ids/batch-ids exactly where the committed log
  /// left off, so batch composition stays a pure function of stream
  /// position (DESIGN §4i). Only valid before any Submit().
  void Prime(TxnId next_txn_id, std::uint64_t next_batch_id) {
    next_id_ = next_txn_id;
    next_batch_id_ = next_batch_id;
  }

  std::size_t pending() const { return pending_.size(); }
  std::uint64_t num_dummies_issued() const { return num_dummies_; }
  std::uint64_t num_batches_issued() const { return next_batch_id_; }

 private:
  TxnBatch FormBatch(std::size_t take, std::size_t pad);

  Options options_;
  std::deque<TxnSpec> pending_;
  TxnId next_id_ = 1;
  std::uint64_t next_batch_id_ = 0;
  std::uint64_t num_dummies_ = 0;
};

}  // namespace tpart

#endif  // TPART_SEQUENCER_SEQUENCER_H_
