#include "sequencer/zab.h"

#include <algorithm>

#include "common/logging.h"

namespace tpart {

ZabCluster::ZabCluster(Options options) : options_(options) {
  TPART_CHECK(options_.num_nodes >= 1);
  nodes_.resize(options_.num_nodes);
}

void ZabCluster::Propose(TxnBatch batch) {
  // Client request arrives at the leader; the leader logs and broadcasts.
  Node& leader = nodes_[leader_];
  if (!leader.alive) return;  // lost until election installs a new leader
  LogEntry entry{MakeZxid(), std::move(batch)};
  leader.accepted.push_back(entry);
  acks_.push_back({entry.zxid, 1});  // leader implicitly acks its own log
  if (Quorum() == 1) {
    // Single-node cluster: the leader's own log is the quorum.
    DeliverUpTo(leader, entry.zxid);
  }
  Broadcast(entry);
}

void ZabCluster::Broadcast(const LogEntry& entry) {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (n == leader_) continue;
    Message m;
    m.type = Message::Type::kProposal;
    m.from = leader_;
    m.to = n;
    m.zxid = entry.zxid;
    m.batch = entry.batch;
    network_.push_back(std::move(m));
  }
}

void ZabCluster::DeliverUpTo(Node& node, std::uint64_t zxid) {
  for (const LogEntry& e : node.accepted) {
    if (e.zxid <= node.committed_upto || e.zxid > zxid) continue;
    node.delivered.push_back(e.batch);
    node.delivered_zxids.push_back(e.zxid);
  }
  node.committed_upto = std::max(node.committed_upto, zxid);
}

void ZabCluster::Run() {
  if (election_pending_) ElectLeader();
  while (!network_.empty()) {
    Message m = std::move(network_.front());
    network_.pop_front();
    Node& dst = nodes_[m.to];
    if (!dst.alive) continue;
    switch (m.type) {
      case Message::Type::kProposal: {
        // Follower accepts in zxid order (drop stale-epoch proposals).
        if ((m.zxid >> 32) < epoch_) break;
        dst.accepted.push_back(LogEntry{m.zxid, m.batch});
        Message ack;
        ack.type = Message::Type::kAck;
        ack.from = m.to;
        ack.to = m.from;
        ack.zxid = m.zxid;
        network_.push_back(std::move(ack));
        break;
      }
      case Message::Type::kAck: {
        if (m.to != leader_ || !nodes_[leader_].alive) break;
        for (auto& [zxid, count] : acks_) {
          if (zxid != m.zxid) continue;
          if (++count == Quorum()) {
            // Commit: deliver at the leader and notify everyone.
            DeliverUpTo(nodes_[leader_], zxid);
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
              if (n == leader_) continue;
              Message commit;
              commit.type = Message::Type::kCommit;
              commit.from = leader_;
              commit.to = n;
              commit.zxid = zxid;
              network_.push_back(std::move(commit));
            }
          }
          break;
        }
        break;
      }
      case Message::Type::kCommit: {
        DeliverUpTo(dst, m.zxid);
        break;
      }
    }
  }
}

void ZabCluster::CrashLeader() {
  nodes_[leader_].alive = false;
  election_pending_ = true;
}

void ZabCluster::Restart(std::size_t node) {
  Node& n = nodes_[node];
  if (n.alive) return;
  n.alive = true;
  // Sync from the current leader: adopt its accepted log and committed
  // point (Zab's synchronisation phase, condensed).
  const Node& lead = nodes_[leader_];
  n.accepted = lead.accepted;
  n.delivered = lead.delivered;
  n.delivered_zxids = lead.delivered_zxids;
  n.committed_upto = lead.committed_upto;
}

void ZabCluster::ElectLeader() {
  election_pending_ = false;
  // In-flight traffic from the dead epoch is discarded (network
  // partition semantics around an election).
  network_.clear();
  acks_.clear();

  // Leader = alive node with the most advanced accepted history
  // (lexicographic on last zxid), ties toward the lower id.
  std::size_t best = nodes_.size();
  std::uint64_t best_last = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].alive) continue;
    const std::uint64_t last =
        nodes_[n].accepted.empty() ? 0 : nodes_[n].accepted.back().zxid;
    if (best == nodes_.size() || last > best_last) {
      best = n;
      best_last = last;
    }
  }
  TPART_CHECK(best < nodes_.size()) << "no alive node to lead";
  leader_ = best;
  ++epoch_;
  counter_ = 1;

  // Synchronisation: the new leader's history becomes authoritative. A
  // quorum-accepted prefix is re-committed; everything else is truncated
  // on the followers.
  Node& lead = nodes_[leader_];
  // Determine the highest zxid accepted by a quorum (counting the
  // leader's own copy).
  std::uint64_t quorum_zxid = lead.committed_upto;
  for (const LogEntry& e : lead.accepted) {
    std::size_t copies = 0;
    for (const Node& n : nodes_) {
      if (!n.alive) continue;
      for (const LogEntry& o : n.accepted) {
        if (o.zxid == e.zxid) {
          ++copies;
          break;
        }
      }
    }
    if (copies >= Quorum()) quorum_zxid = std::max(quorum_zxid, e.zxid);
  }
  // Leader keeps only entries up to the quorum point... no: Zab keeps the
  // leader's whole accepted history; entries beyond the quorum point are
  // re-proposed under the new epoch. We re-commit the quorum prefix and
  // drop the unacknowledged tail (it was never visible anywhere).
  lead.accepted.erase(
      std::remove_if(lead.accepted.begin(), lead.accepted.end(),
                     [&](const LogEntry& e) { return e.zxid > quorum_zxid; }),
      lead.accepted.end());
  DeliverUpTo(lead, quorum_zxid);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (n == leader_ || !nodes_[n].alive) continue;
    Node& f = nodes_[n];
    f.accepted = lead.accepted;
    DeliverUpTo(f, quorum_zxid);
  }
}

}  // namespace tpart
