#include "sequencer/batch.h"

namespace tpart {

std::size_t TxnBatch::NumRealTxns() const {
  std::size_t n = 0;
  for (const auto& t : txns) {
    if (!t.is_dummy) ++n;
  }
  return n;
}

bool TxnBatch::CheckWellFormed(TxnId expected_first_id) const {
  TxnId expect = expected_first_id;
  for (const auto& t : txns) {
    if (t.id != expect) return false;
    ++expect;
  }
  return true;
}

}  // namespace tpart
