#include "sequencer/sequencer.h"

#include "obs/trace.h"

namespace tpart {

void Sequencer::Submit(TxnSpec spec) {
  spec.id = kInvalidTxnId;
  spec.is_dummy = false;
  pending_.push_back(std::move(spec));
}

TxnBatch Sequencer::FormBatch(std::size_t take, std::size_t pad) {
  TxnBatch batch;
  batch.batch_id = next_batch_id_++;
  batch.txns.reserve(take + pad);
  for (std::size_t i = 0; i < take; ++i) {
    TxnSpec spec = std::move(pending_.front());
    pending_.pop_front();
    spec.id = next_id_++;
    batch.txns.push_back(std::move(spec));
  }
  for (std::size_t i = 0; i < pad; ++i) {
    TxnSpec dummy = MakeDummyTxn();
    dummy.id = next_id_++;
    batch.txns.push_back(std::move(dummy));
    ++num_dummies_;
  }
  TPART_TRACE(Instant("batch_formed", "sequencer",
                      {{"batch", batch.batch_id},
                       {"take", take},
                       {"pad", pad}}));
  return batch;
}

std::optional<TxnBatch> Sequencer::NextBatch() {
  if (pending_.size() < options_.batch_size) return std::nullopt;
  return FormBatch(options_.batch_size, 0);
}

std::optional<TxnBatch> Sequencer::Flush() {
  const std::size_t take = std::min(pending_.size(), options_.batch_size);
  std::size_t pad = 0;
  if (options_.pad_with_dummies && take < options_.batch_size) {
    pad = options_.batch_size - take;
  }
  if (take + pad == 0) return std::nullopt;
  return FormBatch(take, pad);
}

}  // namespace tpart
