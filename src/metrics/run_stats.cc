#include "metrics/run_stats.h"

#include <sstream>

namespace tpart {

std::string RunStats::Summary() const {
  std::ostringstream out;
  out << "txns=" << txns << " committed=" << committed
      << " aborted=" << aborted << " tps=" << Throughput()
      << " avg_latency_us=" << latency.mean() / 1000.0
      << " p50_us=" << latency_us.Quantile(0.5)
      << " p99_us=" << latency_us.Quantile(0.99)
      << " stalled=" << NetworkStalledFraction() * 100.0 << "%"
      << " avg_stall_us=" << stall_wait.mean() / 1000.0
      << " distributed=" << distributed_txns;
  return out.str();
}

}  // namespace tpart
