#include "metrics/run_stats.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace tpart {

void TransportStats::MergeFrom(const TransportStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  batches_sent += other.batches_sent;
  batched_messages += other.batched_messages;
  bytes_out += other.bytes_out;
  bytes_in += other.bytes_in;
  packets_out += other.packets_out;
  packets_in += other.packets_in;
  acks_sent += other.acks_sent;
  retries += other.retries;
  duplicates_dropped += other.duplicates_dropped;
  faults_dropped += other.faults_dropped;
  faults_duplicated += other.faults_duplicated;
  faults_delayed += other.faults_delayed;
  faults_severed += other.faults_severed;
  faults_slowed += other.faults_slowed;
  backpressure_waits += other.backpressure_waits;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
}

std::string TransportStats::Summary() const {
  std::ostringstream out;
  out << "msgs=" << messages_sent << "/" << messages_delivered;
  if (batches_sent > 0) {
    out << " batches=" << batches_sent << " batched_msgs=" << batched_messages;
  }
  out << " bytes=" << bytes_out << "/" << bytes_in
      << " packets=" << packets_out << "/" << packets_in
      << " acks=" << acks_sent << " retries=" << retries
      << " dups_dropped=" << duplicates_dropped;
  if (faults_dropped + faults_duplicated + faults_delayed > 0) {
    out << " faults(drop/dup/delay)=" << faults_dropped << "/"
        << faults_duplicated << "/" << faults_delayed;
  }
  if (faults_severed + faults_slowed > 0) {
    out << " links(severed/slowed)=" << faults_severed << "/"
        << faults_slowed;
  }
  out << " backpressure=" << backpressure_waits
      << " queue_hw=" << queue_high_water;
  return out.str();
}

std::string PipelineStats::Summary() const {
  std::ostringstream out;
  out << "admitted=" << admitted << " dummies=" << dummies
      << " batches=" << batches << " plans=" << plans
      << " admission_rate=" << AdmissionRate()
      << " backpressure=" << backpressure_waits
      << " queue_hw(batch/plan/epoch/inbound)=" << batch_queue_high_water
      << "/" << plan_queue_high_water << "/" << epoch_queue_high_water << "/"
      << machine_inbound_high_water
      << " inbound_spills=" << machine_inbound_spills;
  if (admit_to_commit_us.count() > 0) {
    out << " admit_to_commit_us(p50/p99)=" << admit_to_commit_us.Quantile(0.5)
        << "/" << admit_to_commit_us.Quantile(0.99);
  }
  return out.str();
}

std::string RecoveryStats::Summary() const {
  std::ostringstream out;
  out << "crashes=" << crashes_injected;
  if (crashes_injected > 0) {
    out << " machine=" << crashed_machine << " crash_epoch=" << crash_epoch
        << " detection_us=" << detection_latency_us
        << " replayed=" << replayed_txns << " resent_rounds=" << resent_rounds
        << " checkpoint_records=" << checkpoint_records
        << " downtime_us=" << downtime_us;
  }
  if (suspicions_suppressed > 0 || peak_healthy_phi > 0.0) {
    out << " suspicions_suppressed=" << suspicions_suppressed
        << " peak_healthy_phi=" << peak_healthy_phi;
  }
  return out.str();
}

std::string CheckpointStats::Summary() const {
  std::ostringstream out;
  out << "checkpoints=" << checkpoints_taken << " last_epoch=" << last_epoch
      << " records=" << records_captured
      << " truncated(req/net)=" << truncated_request_entries << "/"
      << truncated_network_messages
      << " pruned_rounds=" << pruned_resend_rounds
      << " capture_us=" << capture_us
      << " bytes_peak(req/net/window)=" << request_log_bytes_peak << "/"
      << network_log_bytes_peak << "/" << resend_window_bytes_peak;
  return out.str();
}

void CheckpointStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.SetCounter("tpart_checkpoint_captures_total",
                      static_cast<double>(checkpoints_taken),
                      "Periodic checkpoint captures completed");
  registry.SetGauge("tpart_checkpoint_last_epoch",
                    static_cast<double>(last_epoch),
                    "Highest epoch any machine has checkpointed");
  registry.SetCounter("tpart_checkpoint_records_captured_total",
                      static_cast<double>(records_captured),
                      "Records folded into checkpoint images");
  registry.SetCounter("tpart_checkpoint_truncated_request_entries_total",
                      static_cast<double>(truncated_request_entries),
                      "Request-log entries freed by truncation");
  registry.SetCounter("tpart_checkpoint_truncated_network_messages_total",
                      static_cast<double>(truncated_network_messages),
                      "Network-log messages freed by truncation");
  registry.SetCounter("tpart_checkpoint_pruned_resend_rounds_total",
                      static_cast<double>(pruned_resend_rounds),
                      "Resend-window rounds freed by pruning");
  registry.SetGauge("tpart_checkpoint_capture_us",
                    static_cast<double>(capture_us),
                    "Wall-clock microseconds spent inside captures");
  registry.SetGauge("tpart_checkpoint_request_log_peak_bytes",
                    static_cast<double>(request_log_bytes_peak),
                    "High-water byte footprint of any request log");
  registry.SetGauge("tpart_checkpoint_network_log_peak_bytes",
                    static_cast<double>(network_log_bytes_peak),
                    "High-water byte footprint of any network log");
  registry.SetGauge("tpart_checkpoint_resend_window_peak_bytes",
                    static_cast<double>(resend_window_bytes_peak),
                    "High-water byte footprint of the resend window");
}

void TransportStats::PublishTo(obs::MetricsRegistry& registry) const {
  const auto c = [&](const char* name, std::uint64_t v, const char* help) {
    registry.SetCounter(std::string("tpart_transport_") + name,
                        static_cast<double>(v), help);
  };
  c("messages_sent_total", messages_sent, "Messages handed to the transport");
  c("messages_delivered_total", messages_delivered,
    "Messages delivered to their destination machine");
  c("batches_sent_total", batches_sent,
    "Multi-message batch frames sent (one link seq each)");
  c("batched_messages_total", batched_messages,
    "Messages that travelled inside batch frames");
  c("bytes_out_total", bytes_out, "Serialized bytes entering the network");
  c("bytes_in_total", bytes_in, "Serialized bytes leaving the network");
  c("packets_out_total", packets_out, "Packets sent (data + acks + retries)");
  c("packets_in_total", packets_in, "Packets received");
  c("acks_sent_total", acks_sent, "Reliability-layer acknowledgements");
  c("retries_total", retries, "Retransmitted data packets");
  c("duplicates_dropped_total", duplicates_dropped,
    "Receiver-side duplicate suppressions");
  c("faults_dropped_total", faults_dropped, "Injected packet drops");
  c("faults_duplicated_total", faults_duplicated, "Injected duplications");
  c("faults_delayed_total", faults_delayed, "Injected delays");
  c("faults_severed_total", faults_severed,
    "Packets swallowed by severed (partitioned or flapping) links");
  c("faults_slowed_total", faults_slowed,
    "Packets slowed by gray-failure slow links");
  c("backpressure_waits_total", backpressure_waits,
    "Sends that blocked on a full queue");
  registry.SetGauge("tpart_transport_queue_peak_depth",
                    static_cast<double>(queue_high_water),
                    "Deepest any transport queue ever got");
}

void PipelineStats::PublishTo(obs::MetricsRegistry& registry) const {
  const auto c = [&](const char* name, double v, const char* help) {
    registry.SetCounter(std::string("tpart_pipeline_") + name, v, help);
  };
  c("admitted_total", static_cast<double>(admitted),
    "Real client requests admitted");
  c("dummies_total", static_cast<double>(dummies),
    "Dummy padding requests issued (section 3.3)");
  c("batches_total", static_cast<double>(batches),
    "Sequencer batches forwarded to the scheduler stage");
  c("plans_total", static_cast<double>(plans),
    "Sink plans disseminated");
  c("backpressure_waits_total", static_cast<double>(backpressure_waits),
    "Stage sends that blocked on a full queue or exhausted credits");
  registry.SetGauge("tpart_pipeline_batch_queue_peak_depth",
                    static_cast<double>(batch_queue_high_water),
                    "Deepest the admission->scheduler queue ever got");
  registry.SetGauge("tpart_pipeline_plan_queue_peak_depth",
                    static_cast<double>(plan_queue_high_water),
                    "Deepest the scheduler->dissemination queue ever got");
  registry.SetGauge("tpart_pipeline_epoch_queue_peak_depth",
                    static_cast<double>(epoch_queue_high_water),
                    "Most sinking rounds in flight at any machine");
  registry.SetGauge("tpart_pipeline_machine_inbound_peak_depth",
                    static_cast<double>(machine_inbound_high_water),
                    "Deepest any machine's inbound service FIFO ever got");
  c("machine_inbound_spills_total",
    static_cast<double>(machine_inbound_spills),
    "Inbound ring overflows onto the locked spill deque");
  registry.SetGauge("tpart_pipeline_admission_seconds", admission_seconds,
                    "Wall-clock span of the admission stage");
  registry.SetGauge("tpart_pipeline_admission_rate_tps", AdmissionRate(),
                    "Admitted transactions per wall-clock second");
  registry.ObserveHistogram("tpart_pipeline_admit_to_commit_us",
                            admit_to_commit_us,
                            "Admission-to-commit latency, microseconds");
}

void RecoveryStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.SetCounter("tpart_recovery_crashes_injected_total",
                      static_cast<double>(crashes_injected),
                      "Machines crash-stopped during the run");
  registry.SetCounter("tpart_fd_suspicions_suppressed_total",
                      static_cast<double>(suspicions_suppressed),
                      "Deadline expiries the phi-accrual gate suppressed");
  registry.SetGauge("tpart_fd_peak_healthy_phi_ratio", peak_healthy_phi,
                    "Highest phi any machine that stayed live reached");
  if (crashes_injected == 0) return;
  registry.SetGauge("tpart_recovery_detection_latency_us",
                    static_cast<double>(detection_latency_us),
                    "Crash-stop to failure declaration");
  registry.SetCounter("tpart_recovery_replayed_txns_total",
                      static_cast<double>(replayed_txns),
                      "Request-log entries re-executed (section 5.4)");
  registry.SetCounter("tpart_recovery_resent_rounds_total",
                      static_cast<double>(resent_rounds),
                      "Sinking rounds re-shipped after recovery");
  registry.SetCounter("tpart_recovery_checkpoint_records_total",
                      static_cast<double>(checkpoint_records),
                      "Records restored from the Zig-Zag checkpoint");
  registry.SetGauge("tpart_recovery_downtime_us",
                    static_cast<double>(downtime_us),
                    "Crash-stop until the machine rejoined the stream");
}

std::string FailoverStats::Summary() const {
  std::ostringstream out;
  out << "replicas_committed_batches=" << committed_batches
      << " appends=" << log_appends << " acks=" << log_acks
      << " coordinator_crashes=" << coordinator_crashes;
  if (coordinator_crashes > 0) {
    out << " elections=" << elections_won << " leader=" << leader
        << " replayed_batches=" << replayed_batches
        << " catchup_rounds=" << catchup_rounds
        << " reshipped_rounds=" << reshipped_rounds
        << " dueling_claims=" << dueling_claims
        << " fenced(msgs/appends)=" << fenced_messages << "/"
        << fenced_appends << " zombies=" << zombie_revivals
        << " detection_us=" << detection_latency_us
        << " election_us=" << election_us << " replan_us=" << replan_us
        << " gap_us=" << plan_stream_gap_us;
  }
  return out.str();
}

void FailoverStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.SetCounter("tpart_failover_committed_batches_total",
                      static_cast<double>(committed_batches),
                      "Batches quorum-committed into the replicated log");
  registry.SetCounter("tpart_failover_log_appends_total",
                      static_cast<double>(log_appends),
                      "Log entries replicated leader -> standbys");
  registry.SetCounter("tpart_failover_log_acks_total",
                      static_cast<double>(log_acks),
                      "Replication acks received by leaders");
  registry.SetCounter("tpart_failover_coordinator_crashes_total",
                      static_cast<double>(coordinator_crashes),
                      "Coordinator crash-stops injected");
  if (coordinator_crashes == 0) return;
  registry.SetCounter("tpart_failover_elections_won_total",
                      static_cast<double>(elections_won),
                      "Elections won by a standby");
  registry.SetCounter("tpart_failover_replayed_batches_total",
                      static_cast<double>(replayed_batches),
                      "Committed-log batches replayed by a new leader");
  registry.SetCounter("tpart_failover_catchup_rounds_total",
                      static_cast<double>(catchup_rounds),
                      "Regenerated rounds at or below the shipped frontier");
  registry.SetCounter("tpart_failover_reshipped_rounds_total",
                      static_cast<double>(reshipped_rounds),
                      "Per-machine catch-up sends past the watermarks");
  registry.SetCounter("tpart_failover_dueling_claims_total",
                      static_cast<double>(dueling_claims),
                      "Simultaneous leadership claims observed");
  registry.SetCounter("tpart_failover_fenced_messages_total",
                      static_cast<double>(fenced_messages),
                      "Stale-term plan/round/migration messages rejected");
  registry.SetCounter("tpart_failover_fenced_appends_total",
                      static_cast<double>(fenced_appends),
                      "Stale-term appends/claims replicas rejected");
  registry.SetCounter("tpart_failover_zombie_revivals_total",
                      static_cast<double>(zombie_revivals),
                      "Paused ex-leaders revived to replay stale traffic");
  registry.SetGauge("tpart_failover_detection_latency_us",
                    static_cast<double>(detection_latency_us),
                    "Leader crash until a standby's election timer fired");
  registry.SetGauge("tpart_failover_election_us",
                    static_cast<double>(election_us),
                    "Election timer firing until the claim broadcast");
  registry.SetGauge("tpart_failover_replan_us",
                    static_cast<double>(replan_us),
                    "New term start until its first fresh round shipped");
  registry.SetGauge("tpart_failover_plan_stream_gap_us",
                    static_cast<double>(plan_stream_gap_us),
                    "Leader crash until the plan stream resumed");
  registry.SetGauge("tpart_failover_leader_index", static_cast<double>(leader),
                    "Replica index leading when the run finished");
  registry.ObserveHistogram("tpart_failover_phase_detection_us",
                            phase_detection_us,
                            "Per-failover detection phase, microseconds");
  registry.ObserveHistogram("tpart_failover_phase_election_us",
                            phase_election_us,
                            "Per-failover election phase, microseconds");
  registry.ObserveHistogram("tpart_failover_phase_replan_us", phase_replan_us,
                            "Per-failover replan phase, microseconds");
  registry.ObserveHistogram("tpart_failover_phase_plan_stream_gap_us",
                            phase_plan_stream_gap_us,
                            "Per-failover plan-stream outage, microseconds");
}

std::string MigrationStats::Summary() const {
  std::ostringstream out;
  out << "steps=" << membership_steps << " routes=" << routes
      << " keys=" << keys_moved << " records=" << records_moved
      << " bytes=" << bytes_shipped << " chunks=" << chunks_shipped
      << " dup_chunks=" << duplicate_chunks_dropped
      << " forced_checkpoints=" << forced_checkpoints
      << " barrier_us=" << barrier_us << " last_cut=" << last_cut_epoch;
  return out.str();
}

void MigrationStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.SetCounter("tpart_migration_steps_total",
                      static_cast<double>(membership_steps),
                      "Membership steps executed (grow or shrink)");
  registry.SetCounter("tpart_migration_routes_total",
                      static_cast<double>(routes),
                      "Source->target key shipments");
  registry.SetCounter("tpart_migration_keys_moved_total",
                      static_cast<double>(keys_moved),
                      "Keys whose home machine changed");
  registry.SetCounter("tpart_migration_records_moved_total",
                      static_cast<double>(records_moved),
                      "Moved keys carrying a live record");
  registry.SetCounter("tpart_migration_bytes_shipped_total",
                      static_cast<double>(bytes_shipped),
                      "Encoded partition-image bytes shipped");
  registry.SetCounter("tpart_migration_chunks_shipped_total",
                      static_cast<double>(chunks_shipped),
                      "Partition-image chunks shipped");
  registry.SetCounter("tpart_migration_duplicate_chunks_dropped_total",
                      static_cast<double>(duplicate_chunks_dropped),
                      "Target-side app-level duplicate suppressions");
  registry.SetCounter("tpart_migration_forced_checkpoints_total",
                      static_cast<double>(forced_checkpoints),
                      "Post-migration forced checkpoint captures");
  registry.SetGauge("tpart_migration_barrier_us",
                    static_cast<double>(barrier_us),
                    "Wall-clock microseconds the stream paused at barriers");
  registry.ObserveHistogram("tpart_migration_phase_barrier_us",
                            phase_barrier_us,
                            "Per-step barrier pause, microseconds");
  registry.SetGauge("tpart_migration_last_cut_epoch",
                    static_cast<double>(last_cut_epoch),
                    "Cut epoch of the last executed membership step");
}

void RunStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.SetCounter("tpart_txns_total", static_cast<double>(txns),
                      "Transactions executed");
  registry.SetCounter("tpart_committed_total", static_cast<double>(committed),
                      "Transactions committed");
  registry.SetCounter("tpart_aborted_total", static_cast<double>(aborted),
                      "Transactions aborted");
  registry.SetGauge("tpart_throughput_tps", Throughput(),
                    "Committed transactions per (simulated) second");
  registry.ObserveHistogram("tpart_latency_us", latency_us,
                            "Dispatch-to-commit latency, microseconds");
  registry.SetCounter("tpart_network_stalled_txns_total",
                      static_cast<double>(network_stalled_txns),
                      "Transactions that waited for remote records");
  registry.SetGauge("tpart_network_stalled_ratio",
                    NetworkStalledFraction(),
                    "Fraction of transactions network-stalled");
  registry.SetCounter("tpart_distributed_txns_total",
                      static_cast<double>(distributed_txns),
                      "Transactions touching more than one machine");
  registry.SetGauge("tpart_scheduling_seconds", scheduling_seconds,
                    "Wall-clock seconds spent partitioning + sinking");
  registry.SetCounter("tpart_pushes_eliminated_total",
                      static_cast<double>(pushes_eliminated),
                      "Forward-pushes removed by the section 4.3 optimizer");
  registry.SetGauge("tpart_tgraph_peak_size",
                    static_cast<double>(max_tgraph_size),
                    "Peak unsunk T-graph size (Fig. 4c)");
  registry.SetCounter("tpart_sticky_hits_total",
                      static_cast<double>(sticky_hits),
                      "Storage reads served from sticky cache entries");
  if (transport.messages_sent > 0) transport.PublishTo(registry);
  if (pipeline.admitted > 0) pipeline.PublishTo(registry);
  if (recovery.crashes_injected > 0) recovery.PublishTo(registry);
  if (failover.committed_batches > 0 || failover.coordinator_crashes > 0) {
    failover.PublishTo(registry);
  }
  if (checkpoint.checkpoints_taken > 0) checkpoint.PublishTo(registry);
  if (migration.membership_steps > 0) migration.PublishTo(registry);
}

std::string RunStats::Summary() const {
  std::ostringstream out;
  out << "txns=" << txns << " committed=" << committed
      << " aborted=" << aborted << " tps=" << Throughput()
      << " avg_latency_us=" << latency.mean() / 1000.0
      << " p50_us=" << latency_us.Quantile(0.5)
      << " p99_us=" << latency_us.Quantile(0.99)
      << " stalled=" << NetworkStalledFraction() * 100.0 << "%"
      << " avg_stall_us=" << stall_wait.mean() / 1000.0
      << " distributed=" << distributed_txns;
  if (transport.messages_sent > 0) {
    out << " | transport: " << transport.Summary();
  }
  if (pipeline.admitted > 0) {
    out << " | pipeline: " << pipeline.Summary();
  }
  if (recovery.crashes_injected > 0) {
    out << " | recovery: " << recovery.Summary();
  }
  if (failover.committed_batches > 0 || failover.coordinator_crashes > 0) {
    out << " | failover: " << failover.Summary();
  }
  if (checkpoint.checkpoints_taken > 0) {
    out << " | checkpoint: " << checkpoint.Summary();
  }
  if (migration.membership_steps > 0) {
    out << " | migration: " << migration.Summary();
  }
  return out.str();
}

}  // namespace tpart
