#include "metrics/run_stats.h"

#include <algorithm>
#include <sstream>

namespace tpart {

void TransportStats::MergeFrom(const TransportStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  bytes_out += other.bytes_out;
  bytes_in += other.bytes_in;
  packets_out += other.packets_out;
  packets_in += other.packets_in;
  acks_sent += other.acks_sent;
  retries += other.retries;
  duplicates_dropped += other.duplicates_dropped;
  faults_dropped += other.faults_dropped;
  faults_duplicated += other.faults_duplicated;
  faults_delayed += other.faults_delayed;
  backpressure_waits += other.backpressure_waits;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
}

std::string TransportStats::Summary() const {
  std::ostringstream out;
  out << "msgs=" << messages_sent << "/" << messages_delivered
      << " bytes=" << bytes_out << "/" << bytes_in
      << " packets=" << packets_out << "/" << packets_in
      << " acks=" << acks_sent << " retries=" << retries
      << " dups_dropped=" << duplicates_dropped;
  if (faults_dropped + faults_duplicated + faults_delayed > 0) {
    out << " faults(drop/dup/delay)=" << faults_dropped << "/"
        << faults_duplicated << "/" << faults_delayed;
  }
  out << " backpressure=" << backpressure_waits
      << " queue_hw=" << queue_high_water;
  return out.str();
}

std::string PipelineStats::Summary() const {
  std::ostringstream out;
  out << "admitted=" << admitted << " dummies=" << dummies
      << " batches=" << batches << " plans=" << plans
      << " admission_rate=" << AdmissionRate()
      << " backpressure=" << backpressure_waits
      << " queue_hw(batch/plan/epoch)=" << batch_queue_high_water << "/"
      << plan_queue_high_water << "/" << epoch_queue_high_water;
  if (admit_to_commit_us.count() > 0) {
    out << " admit_to_commit_us(p50/p99)=" << admit_to_commit_us.Quantile(0.5)
        << "/" << admit_to_commit_us.Quantile(0.99);
  }
  return out.str();
}

std::string RecoveryStats::Summary() const {
  std::ostringstream out;
  out << "crashes=" << crashes_injected;
  if (crashes_injected > 0) {
    out << " machine=" << crashed_machine << " crash_epoch=" << crash_epoch
        << " detection_us=" << detection_latency_us
        << " replayed=" << replayed_txns << " resent_rounds=" << resent_rounds
        << " checkpoint_records=" << checkpoint_records
        << " downtime_us=" << downtime_us;
  }
  return out.str();
}

std::string RunStats::Summary() const {
  std::ostringstream out;
  out << "txns=" << txns << " committed=" << committed
      << " aborted=" << aborted << " tps=" << Throughput()
      << " avg_latency_us=" << latency.mean() / 1000.0
      << " p50_us=" << latency_us.Quantile(0.5)
      << " p99_us=" << latency_us.Quantile(0.99)
      << " stalled=" << NetworkStalledFraction() * 100.0 << "%"
      << " avg_stall_us=" << stall_wait.mean() / 1000.0
      << " distributed=" << distributed_txns;
  if (transport.messages_sent > 0) {
    out << " | transport: " << transport.Summary();
  }
  if (pipeline.admitted > 0) {
    out << " | pipeline: " << pipeline.Summary();
  }
  if (recovery.crashes_injected > 0) {
    out << " | recovery: " << recovery.Summary();
  }
  return out.str();
}

}  // namespace tpart
