#ifndef TPART_METRICS_BREAKDOWN_H_
#define TPART_METRICS_BREAKDOWN_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace tpart {

/// Execution-time components of a transaction, matching the Fig. 7
/// breakdown ("we inject the probing code ... to record the execution
/// time of every major component").
enum class Component : int {
  /// T-graph analysis + partitioning + plan generation ("Schedule").
  kSchedule = 0,
  /// Waiting for a worker / for deterministic locks (queueing).
  kQueueWait,
  /// Local storage reads.
  kStorageRead,
  /// Stalls waiting for remote records (pushes / peer read sets / remote
  /// storage and cache responses).
  kRemoteWait,
  /// Stored-procedure CPU.
  kExecute,
  /// Storage writes / write-backs.
  kStorageWrite,
  /// Cache management (version entries, publishes) — T-Part's replacement
  /// for Calvin's conservative locking CC (§6.3.1).
  kCacheMgmt,
  kNumComponents,
};

inline constexpr int kNumComponents =
    static_cast<int>(Component::kNumComponents);

const char* ComponentName(Component c);

/// Accumulated per-component time (nanoseconds of simulated time).
class BreakdownAccumulator {
 public:
  BreakdownAccumulator() { totals_.fill(0); }

  void Add(Component c, SimTime t) {
    totals_[static_cast<std::size_t>(c)] += t;
  }
  void AddTxn() { ++txns_; }

  SimTime total(Component c) const {
    return totals_[static_cast<std::size_t>(c)];
  }
  /// Mean nanoseconds per transaction for component `c`.
  double MeanPerTxn(Component c) const {
    return txns_ == 0 ? 0.0
                      : static_cast<double>(total(c)) /
                            static_cast<double>(txns_);
  }
  std::uint64_t txns() const { return txns_; }

  void Merge(const BreakdownAccumulator& other);

  std::string ToString() const;

 private:
  std::array<SimTime, static_cast<std::size_t>(kNumComponents)> totals_;
  std::uint64_t txns_ = 0;
};

}  // namespace tpart

#endif  // TPART_METRICS_BREAKDOWN_H_
