#include "metrics/breakdown.h"

#include <sstream>

namespace tpart {

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kSchedule:
      return "schedule";
    case Component::kQueueWait:
      return "queue-wait";
    case Component::kStorageRead:
      return "storage-read";
    case Component::kRemoteWait:
      return "remote-wait";
    case Component::kExecute:
      return "execute";
    case Component::kStorageWrite:
      return "storage-write";
    case Component::kCacheMgmt:
      return "cache-mgmt";
    case Component::kNumComponents:
      break;
  }
  return "?";
}

void BreakdownAccumulator::Merge(const BreakdownAccumulator& other) {
  for (int i = 0; i < kNumComponents; ++i) {
    totals_[static_cast<std::size_t>(i)] +=
        other.totals_[static_cast<std::size_t>(i)];
  }
  txns_ += other.txns_;
}

std::string BreakdownAccumulator::ToString() const {
  std::ostringstream out;
  for (int i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<Component>(i);
    if (i > 0) out << " ";
    out << ComponentName(c) << "="
        << MeanPerTxn(c) / 1000.0 << "us";
  }
  return out.str();
}

}  // namespace tpart
