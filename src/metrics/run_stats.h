#ifndef TPART_METRICS_RUN_STATS_H_
#define TPART_METRICS_RUN_STATS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "metrics/breakdown.h"

namespace tpart {

/// Aggregate outcome of one simulated (or real) engine run. Produced by
/// CalvinSim / TPartSim and by the threaded runtime; consumed by every
/// benchmark.
struct RunStats {
  std::uint64_t txns = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;

  /// Simulated wall-clock span from first dispatch to last commit (ns).
  SimTime makespan = 0;

  /// Committed transactions per simulated second.
  double Throughput() const {
    return makespan <= 0 ? 0.0
                         : static_cast<double>(committed) * 1e9 /
                               static_cast<double>(makespan);
  }

  /// Latency from dispatch to commit, ns.
  RunningStat latency;
  /// Latency distribution in microseconds (for p50/p99 reporting).
  Histogram latency_us;

  /// Network-stall accounting (§6.3.3): a transaction is network-stalled
  /// when it "needs to wait for remote records"; wait is the stall span.
  std::uint64_t network_stalled_txns = 0;
  RunningStat stall_wait;  // over stalled transactions only, ns

  double NetworkStalledFraction() const {
    return txns == 0 ? 0.0
                     : static_cast<double>(network_stalled_txns) /
                           static_cast<double>(txns);
  }

  /// Transactions that touched data on more than one machine.
  std::uint64_t distributed_txns = 0;

  BreakdownAccumulator breakdown;

  /// Scheduler-side statistics (T-Part runs only).
  double scheduling_seconds = 0.0;
  std::uint64_t pushes_eliminated = 0;
  std::size_t max_tgraph_size = 0;
  std::uint64_t sticky_hits = 0;

  std::string Summary() const;
};

}  // namespace tpart

#endif  // TPART_METRICS_RUN_STATS_H_
