#ifndef TPART_METRICS_RUN_STATS_H_
#define TPART_METRICS_RUN_STATS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "metrics/breakdown.h"

namespace tpart {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Counters for the wire transport subsystem (src/net): all inter-machine
/// traffic of a threaded-runtime run, including the reliability layer's
/// retransmissions and the fault injector's activity. Produced by
/// Transport::stats(); zero/absent for simulator runs and for the direct
/// (unserialized) transport's byte counters.
struct TransportStats {
  /// Message-level sends/deliveries (one Message each).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  /// Batched round frames: multi-message wire packets carrying one link
  /// sequence number each (the coalesced publish-phase fan-out), and the
  /// total messages that travelled inside them.
  std::uint64_t batches_sent = 0;
  std::uint64_t batched_messages = 0;
  /// Serialized bytes entering / leaving the network (frame overhead
  /// included for stream transports).
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  /// Packet-level traffic (data + acks, including retransmissions).
  std::uint64_t packets_out = 0;
  std::uint64_t packets_in = 0;
  std::uint64_t acks_sent = 0;
  /// Reliability layer: retransmitted data packets and receiver-side
  /// duplicate suppressions.
  std::uint64_t retries = 0;
  std::uint64_t duplicates_dropped = 0;
  /// Fault injector activity (FaultyPacketNetwork only).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  /// Link-schedule faults: packets swallowed by a severed (partitioned or
  /// flapping-down) link, and packets slowed by a gray-failure slow link.
  std::uint64_t faults_severed = 0;
  std::uint64_t faults_slowed = 0;
  /// Sender-side flow control: sends that blocked on a full queue, and
  /// the deepest any outgoing/delivery queue ever got.
  std::uint64_t backpressure_waits = 0;
  std::uint64_t queue_high_water = 0;

  /// Accumulates `other` (sums counters, maxes high-water marks).
  void MergeFrom(const TransportStats& other);

  std::string Summary() const;

  /// Publishes as tpart_transport_* counters/gauges.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Counters for the streaming execution pipeline (admission → scheduler →
/// dissemination → execution as concurrent bounded stages). Zero/absent
/// for batch-mode and simulator runs.
struct PipelineStats {
  /// Real client requests admitted (dummy padding counted separately).
  std::uint64_t admitted = 0;
  std::uint64_t dummies = 0;
  /// Sequencer batches forwarded to the scheduler stage.
  std::uint64_t batches = 0;
  /// Sink plans emitted/disseminated.
  std::uint64_t plans = 0;
  /// Sends that blocked on a full stage queue or exhausted epoch credits.
  std::uint64_t backpressure_waits = 0;
  /// Deepest each bounded stage queue ever got — a streaming run never
  /// exceeds the configured capacities (the memory-bound claim).
  std::uint64_t batch_queue_high_water = 0;
  std::uint64_t plan_queue_high_water = 0;
  std::uint64_t epoch_queue_high_water = 0;
  /// Deepest any machine's inbound service FIFO ever got (the per-machine
  /// stage of the pipeline; unbounded, so growth here is the first sign
  /// of a service thread falling behind).
  std::uint64_t machine_inbound_high_water = 0;
  /// Times any machine's inbound ring overflowed its fixed slots and fell
  /// back to the locked spill deque (runtime/ring_channel.h). Spills are
  /// correct but slow — sustained growth means the ring is undersized for
  /// the offered burst rate.
  std::uint64_t machine_inbound_spills = 0;
  /// Wall-clock seconds the admission stage spent end to end.
  double admission_seconds = 0.0;
  /// Admitted transactions per wall-clock second.
  double AdmissionRate() const {
    return admission_seconds <= 0.0
               ? 0.0
               : static_cast<double>(admitted) / admission_seconds;
  }
  /// Wall-clock latency from admission to commit, microseconds.
  Histogram admit_to_commit_us;

  std::string Summary() const;

  /// Publishes as tpart_pipeline_* metrics (admit_to_commit as a
  /// histogram).
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Counters for the crash-fault-tolerance subsystem (heartbeat failure
/// detection + §5.4 local replay). Zero/absent unless a crash was
/// injected (LocalClusterOptions::crash) or the failure detector fired.
/// With a multi-crash chaos schedule, count fields accumulate across
/// crashes while machine/epoch/detection reflect the last one handled.
struct RecoveryStats {
  /// Machines crash-stopped during the run.
  std::uint64_t crashes_injected = 0;
  MachineId crashed_machine = kInvalidMachine;
  /// Last sinking round the crashed machine fully executed before dying.
  SinkEpoch crash_epoch = 0;
  /// Crash-stop to watchdog declaring the machine failed (heartbeat
  /// sequence stalled past the deadline, and — with the adaptive
  /// detector — past the phi-accrual suspicion threshold too).
  std::uint64_t detection_latency_us = 0;
  /// Adaptive (phi-accrual) detector activity: deadline expiries the phi
  /// gate suppressed (gray failure / straggler, not a crash), and the
  /// highest suspicion level any machine that stayed live ever reached.
  /// A false-positive recovery requires peak healthy phi to cross the
  /// threshold; the partition tests assert it never does.
  std::uint64_t suspicions_suppressed = 0;
  double peak_healthy_phi = 0.0;
  /// Request-log entries re-executed by the §5.4 local replay.
  std::uint64_t replayed_txns = 0;
  /// Sinking rounds the dissemination stage re-shipped after recovery
  /// (lost in flight or queued-but-unexecuted at the crash).
  std::uint64_t resent_rounds = 0;
  /// Records restored from the Zig-Zag checkpoint of the crashed
  /// partition.
  std::uint64_t checkpoint_records = 0;
  /// Crash-stop until the rebuilt machine finished re-executing its
  /// request log and rejoined the stream (detection + restore + replay).
  std::uint64_t downtime_us = 0;

  std::string Summary() const;

  /// Publishes as tpart_recovery_* metrics.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Counters for coordinator replication + failover (DESIGN §4i): the
/// leader/standby request-log replication that removes the streaming
/// coordinator as a single point of failure. Zero/absent unless
/// LocalClusterOptions::coordinator.standbys > 0.
struct FailoverStats {
  /// Coordinator (leader) crash-stops injected during the run.
  std::uint64_t coordinator_crashes = 0;
  /// Elections won by a standby (== successful failovers).
  std::uint64_t elections_won = 0;
  /// Log entries replicated leader -> standbys, and acks received.
  std::uint64_t log_appends = 0;
  std::uint64_t log_acks = 0;
  /// Batches quorum-committed into the replicated request log.
  std::uint64_t committed_batches = 0;
  /// Committed-log batches the new leader re-ran through a fresh
  /// scheduler to rebuild the T-graph (deterministic replay, §5.4).
  std::uint64_t replayed_batches = 0;
  /// Regenerated rounds at or below the old leader's shipped frontier,
  /// and the per-machine sends among them that were actually re-shipped
  /// (the rest were filtered by dissemination watermarks).
  std::uint64_t catchup_rounds = 0;
  std::uint64_t reshipped_rounds = 0;
  /// Simultaneous leadership claims observed (randomized election
  /// backoff should keep this at zero even under stragglers).
  std::uint64_t dueling_claims = 0;
  /// Term fencing: stale-term plan/round/migration messages worker
  /// machines rejected, stale-term log appends / leadership claims the
  /// coordinator replicas rejected, and zombie-leader revivals injected
  /// (a paused ex-leader coming back and replaying its in-flight
  /// traffic, all of which must land in the fenced counters).
  std::uint64_t fenced_messages = 0;
  std::uint64_t fenced_appends = 0;
  std::uint64_t zombie_revivals = 0;
  /// Leader crash-stop until a standby's election timer fired.
  std::uint64_t detection_latency_us = 0;
  /// Election timer firing until the claim was broadcast (backoff incl.).
  std::uint64_t election_us = 0;
  /// New leader's term start until its first fresh round shipped
  /// (replica sync + log replay + catch-up filtering).
  std::uint64_t replan_us = 0;
  /// Leader crash until the plan stream resumed with a fresh round — the
  /// end-to-end gap machines observed.
  std::uint64_t plan_stream_gap_us = 0;
  /// Replica index leading when the run finished.
  std::uint32_t leader = 0;
  /// Per-failover phase distributions: one observation per handled
  /// failover, so repeated coordinator crashes in a single run aggregate
  /// into p50/p99 instead of overwriting a last-value gauge. The scalar
  /// *_us fields above keep reporting the most recent failover.
  Histogram phase_detection_us;
  Histogram phase_election_us;
  Histogram phase_replan_us;
  Histogram phase_plan_stream_gap_us;

  std::string Summary() const;

  /// Publishes as tpart_failover_* metrics.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Counters for the periodic checkpointing / log-truncation subsystem.
/// Zero/absent unless LocalClusterOptions::checkpoint_every is set.
/// Aggregated across machines; byte peaks are maxima over machines.
struct CheckpointStats {
  /// Captures completed (across all machines).
  std::uint64_t checkpoints_taken = 0;
  /// Highest epoch any machine has checkpointed.
  SinkEpoch last_epoch = 0;
  /// Records folded into checkpoint images (incremental dirty passes).
  std::uint64_t records_captured = 0;
  /// Log entries freed by truncation.
  std::uint64_t truncated_request_entries = 0;
  std::uint64_t truncated_network_messages = 0;
  /// Resend-window rounds freed by pruning.
  std::uint64_t pruned_resend_rounds = 0;
  /// Total wall-clock microseconds spent inside captures.
  std::uint64_t capture_us = 0;
  /// Log-growth visibility: the high-water byte footprint of the §5.4
  /// logs and the resend window. With checkpointing on, these plateau
  /// instead of growing with run length.
  std::uint64_t request_log_bytes_peak = 0;
  std::uint64_t network_log_bytes_peak = 0;
  std::uint64_t resend_window_bytes_peak = 0;

  std::string Summary() const;

  /// Publishes as tpart_checkpoint_* counters plus the
  /// tpart_*_bytes_peak log-size gauges.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Counters for the elastic-membership subsystem (src/elastic): live
/// partition migration at sink-epoch cuts. Zero/absent unless
/// LocalClusterOptions::resize is armed.
struct MigrationStats {
  /// Membership steps executed (grow or shrink events).
  std::uint64_t membership_steps = 0;
  /// Source -> target key shipments across all steps.
  std::uint64_t routes = 0;
  /// Keys whose home changed (records + version-discipline state).
  std::uint64_t keys_moved = 0;
  /// Moved keys that carried a live record.
  std::uint64_t records_moved = 0;
  /// Encoded partition-image bytes shipped over the transport.
  std::uint64_t bytes_shipped = 0;
  std::uint64_t chunks_shipped = 0;
  /// Target-side app-level duplicate suppressions (exactly-once install).
  std::uint64_t duplicate_chunks_dropped = 0;
  /// Post-migration forced checkpoints (log truncation at the cut).
  std::uint64_t forced_checkpoints = 0;
  /// Total wall-clock microseconds the stream was paused at barriers.
  std::uint64_t barrier_us = 0;
  /// Per-step barrier pause distribution: one observation per membership
  /// step, so multi-step resize schedules aggregate into p50/p99.
  Histogram phase_barrier_us;
  /// Cut epoch of the last executed step.
  SinkEpoch last_cut_epoch = 0;

  std::string Summary() const;

  /// Publishes as tpart_migration_* metrics.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

/// Aggregate outcome of one simulated (or real) engine run. Produced by
/// CalvinSim / TPartSim and by the threaded runtime; consumed by every
/// benchmark.
struct RunStats {
  std::uint64_t txns = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;

  /// Simulated wall-clock span from first dispatch to last commit (ns).
  SimTime makespan = 0;

  /// Committed transactions per simulated second.
  double Throughput() const {
    return makespan <= 0 ? 0.0
                         : static_cast<double>(committed) * 1e9 /
                               static_cast<double>(makespan);
  }

  /// Latency from dispatch to commit, ns.
  RunningStat latency;
  /// Latency distribution in microseconds (for p50/p99 reporting).
  Histogram latency_us;

  /// Network-stall accounting (§6.3.3): a transaction is network-stalled
  /// when it "needs to wait for remote records"; wait is the stall span.
  std::uint64_t network_stalled_txns = 0;
  RunningStat stall_wait;  // over stalled transactions only, ns

  double NetworkStalledFraction() const {
    return txns == 0 ? 0.0
                     : static_cast<double>(network_stalled_txns) /
                           static_cast<double>(txns);
  }

  /// Transactions that touched data on more than one machine.
  std::uint64_t distributed_txns = 0;

  BreakdownAccumulator breakdown;

  /// Scheduler-side statistics (T-Part runs only).
  double scheduling_seconds = 0.0;
  std::uint64_t pushes_eliminated = 0;
  std::size_t max_tgraph_size = 0;
  std::uint64_t sticky_hits = 0;

  /// Wire transport counters (threaded runtime over a real transport).
  TransportStats transport;

  /// Streaming pipeline counters (threaded runtime, streaming mode only).
  PipelineStats pipeline;

  /// Crash-fault-tolerance counters (crash-injection runs only).
  RecoveryStats recovery;

  /// Coordinator replication + failover counters (standby runs only).
  FailoverStats failover;

  /// Periodic checkpointing counters (checkpoint_every runs only).
  CheckpointStats checkpoint;

  /// Elastic-membership counters (resize runs only).
  MigrationStats migration;

  std::string Summary() const;

  /// Publishes the whole run — core counters, latency histograms, and
  /// every nested stats struct — as tpart_* metrics.
  void PublishTo(obs::MetricsRegistry& registry) const;
};

}  // namespace tpart

#endif  // TPART_METRICS_RUN_STATS_H_
