#ifndef TPART_CACHE_CACHE_AREA_H_
#define TPART_CACHE_CACHE_AREA_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "storage/record.h"

namespace tpart {

/// The executor's key-value cache area (§3.4, §5.2), "implemented above
/// the buffer manager of the storage engine" to hold objects written by
/// earlier local transactions or pushed from remote machines.
///
/// Three entry families, exactly as §5.2 describes:
///  * version entries <obj, source txn, destination txn> — one per
///    forward-push / local hand-off, read exactly once and invalidated by
///    that read;
///  * epoch entries <obj, sink#> (here additionally tagged with the
///    version txn) — published for transactions sunk in later rounds,
///    freed after all planned reads have been served;
///  * sticky entries <obj> — clean copies retained after a write-back for
///    a bounded number of sinking rounds, serving "immediate storage reads
///    after write" cheaply.
///
/// Internally synchronized: local executor threads and the network
/// receiver both touch it, and readers block until the wanted version
/// materialises — this *is* the version-based deterministic concurrency
/// control ("the transaction stalls if the object is not available in
/// memory yet", §3.4).
class CacheArea {
 public:
  /// Stores a version entry <key, version, dst> and wakes waiters.
  void PutVersion(ObjectKey key, TxnId version, TxnId dst, Record value);

  /// Blocks until entry <key, version, dst> exists, then consumes it.
  /// Returns nullopt only after Shutdown().
  std::optional<Record> AwaitVersion(ObjectKey key, TxnId version, TxnId dst);

  /// Non-blocking probe of a version entry (does not consume).
  bool HasVersion(ObjectKey key, TxnId version, TxnId dst) const;

  /// Publishes epoch entry <key, version> (the paper's <obj, sink#>).
  void PublishEpochEntry(ObjectKey key, TxnId version, SinkEpoch epoch,
                         Record value);

  /// Blocks until epoch entry <key, version> exists and serves one read.
  /// When `invalidate` is set, this read also announces the entry's final
  /// read count `total_reads`; the entry is freed once that many reads
  /// (including earlier and still-outstanding ones) have been served.
  /// Returns nullopt only after Shutdown().
  std::optional<Record> AwaitEpochEntry(ObjectKey key, TxnId version,
                                        bool invalidate,
                                        std::uint32_t total_reads);

  /// Non-blocking variant for service threads (remote pulls are parked by
  /// the machine until the entry appears). Serves one read when present.
  std::optional<Record> TryEpochEntry(ObjectKey key, TxnId version,
                                      bool invalidate,
                                      std::uint32_t total_reads);

  /// Inserts/refreshes a sticky entry for `key` (§5.2), valid through
  /// sinking round `expire_epoch`.
  void PutSticky(ObjectKey key, TxnId version, Record value,
                 SinkEpoch expire_epoch);

  /// Returns the sticky value when present, version-matched, and not
  /// expired relative to `now_epoch`.
  std::optional<Record> ReadSticky(ObjectKey key, TxnId expected_version,
                                   SinkEpoch now_epoch) const;

  /// Drops sticky entries expired at `now_epoch`.
  void EvictExpiredSticky(SinkEpoch now_epoch);

  /// Releases every blocked reader (they observe nullopt). Used on
  /// machine shutdown / simulated failure.
  void Shutdown();

  /// Crash-recovery wipe: drops all entries (a crash loses the volatile
  /// cache area) and re-opens the cache after a Shutdown(). Cumulative
  /// counters (sticky hits, peak) are deliberately kept.
  void Reset();

  /// Checkpoint image of the cache: every live version, epoch, and sticky
  /// entry, in deterministic (key-sorted) order. Captured at a quiescent
  /// epoch boundary so a truncated-log replay can resume with exactly the
  /// entries the suffix expects to find.
  struct Image {
    struct VersionEntryImage {
      ObjectKey key;
      TxnId version;
      TxnId dst;
      Record value;
    };
    struct EpochEntryImage {
      ObjectKey key;
      TxnId version;
      Record value;
      SinkEpoch epoch;
      std::uint32_t reads_served;
      std::uint32_t total_reads;
    };
    struct StickyImage {
      ObjectKey key;
      Record value;
      TxnId version;
      SinkEpoch expire_epoch;
    };
    std::vector<VersionEntryImage> versions;
    std::vector<EpochEntryImage> epochs;
    std::vector<StickyImage> sticky;
  };

  /// Copies the full live state into an Image (caller must ensure no
  /// concurrent blocked readers are relying on entries being consumed —
  /// i.e. capture only at a drained epoch boundary).
  Image Capture() const;

  /// Replaces the cache contents with `image` and re-opens the cache.
  /// Cumulative counters are kept, mirroring Reset().
  void Restore(const Image& image);

  /// Removes and returns the sticky entry for `key`, if any (elastic
  /// migration source side: the sticky copy follows the record to its new
  /// home so post-cut immediate-reads-after-write still hit).
  std::optional<Image::StickyImage> ExtractSticky(ObjectKey key);

  /// Installs a migrated sticky entry (elastic migration target side).
  void InstallSticky(const Image::StickyImage& entry);

  // --- Introspection ---------------------------------------------------
  std::size_t num_version_entries() const;
  std::size_t num_epoch_entries() const;
  std::size_t num_sticky_entries() const;
  std::uint64_t sticky_hits() const { return sticky_hits_; }
  /// High-water mark of live (version + epoch) entries; the §5.2 claim is
  /// that this stays proportional to the assigned working set.
  std::size_t peak_entries() const { return peak_entries_; }

 private:
  struct EpochEntry {
    Record value;
    SinkEpoch epoch = 0;
    std::uint32_t reads_served = 0;
    // 0 until the invalidating read announces the total.
    std::uint32_t total_reads = 0;
  };
  struct StickyEntry {
    Record value;
    TxnId version = kInvalidTxnId;
    SinkEpoch expire_epoch = 0;
  };

  void NotePeakLocked() {
    const std::size_t live = versions_.size() + epochs_.size();
    if (live > peak_entries_) peak_entries_ = live;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;

  // Open-addressing tables (common/flat_map.h): entry churn on the
  // executor hot path stops allocating a tree node per entry. Capture()
  // sorts its output, preserving the deterministic checkpoint image the
  // ordered maps used to provide.
  FlatMap<std::tuple<ObjectKey, TxnId, TxnId>, Record> versions_;
  FlatMap<std::pair<ObjectKey, TxnId>, EpochEntry> epochs_;
  FlatMap<ObjectKey, StickyEntry> sticky_;

  std::size_t peak_entries_ = 0;
  mutable std::uint64_t sticky_hits_ = 0;
};

}  // namespace tpart

#endif  // TPART_CACHE_CACHE_AREA_H_
