#include "cache/cache_area.h"

#include <algorithm>

namespace tpart {

void CacheArea::PutVersion(ObjectKey key, TxnId version, TxnId dst,
                           Record value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    versions_[{key, version, dst}] = std::move(value);
    NotePeakLocked();
  }
  cv_.notify_all();
}

std::optional<Record> CacheArea::AwaitVersion(ObjectKey key, TxnId version,
                                              TxnId dst) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::tuple<ObjectKey, TxnId, TxnId> k{key, version, dst};
  cv_.wait(lock,
           [&] { return shutdown_ || versions_.count(k) > 0; });
  if (shutdown_ && versions_.count(k) == 0) return std::nullopt;
  auto it = versions_.find(k);
  Record out = std::move(it->second);
  // "After reading an object from the cache area, the destination
  // transaction can invalidate the enclosing entry immediately" (§5.2).
  versions_.erase(it);
  return out;
}

bool CacheArea::HasVersion(ObjectKey key, TxnId version, TxnId dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.count({key, version, dst}) > 0;
}

void CacheArea::PublishEpochEntry(ObjectKey key, TxnId version,
                                  SinkEpoch epoch, Record value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EpochEntry& e = epochs_[{key, version}];
    e.value = std::move(value);
    e.epoch = epoch;
    NotePeakLocked();
  }
  cv_.notify_all();
}

std::optional<Record> CacheArea::AwaitEpochEntry(ObjectKey key, TxnId version,
                                                 bool invalidate,
                                                 std::uint32_t total_reads) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::pair<ObjectKey, TxnId> k{key, version};
  cv_.wait(lock, [&] { return shutdown_ || epochs_.count(k) > 0; });
  auto it = epochs_.find(k);
  if (it == epochs_.end()) return std::nullopt;  // shutdown
  EpochEntry& e = it->second;
  Record out = e.value;
  ++e.reads_served;
  if (invalidate) e.total_reads = total_reads;
  if (e.total_reads != 0 && e.reads_served >= e.total_reads) {
    epochs_.erase(it);
  }
  return out;
}

std::optional<Record> CacheArea::TryEpochEntry(ObjectKey key, TxnId version,
                                               bool invalidate,
                                               std::uint32_t total_reads) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = epochs_.find({key, version});
  if (it == epochs_.end()) return std::nullopt;
  EpochEntry& e = it->second;
  Record out = e.value;
  ++e.reads_served;
  if (invalidate) e.total_reads = total_reads;
  if (e.total_reads != 0 && e.reads_served >= e.total_reads) {
    epochs_.erase(it);
  }
  return out;
}

void CacheArea::PutSticky(ObjectKey key, TxnId version, Record value,
                          SinkEpoch expire_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  sticky_[key] = StickyEntry{std::move(value), version, expire_epoch};
}

std::optional<Record> CacheArea::ReadSticky(ObjectKey key,
                                            TxnId expected_version,
                                            SinkEpoch now_epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sticky_.find(key);
  if (it == sticky_.end()) return std::nullopt;
  const StickyEntry& e = it->second;
  if (e.version != expected_version || e.expire_epoch < now_epoch) {
    return std::nullopt;
  }
  ++sticky_hits_;
  return e.value;
}

void CacheArea::EvictExpiredSticky(SinkEpoch now_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  // FlatMap::erase shifts elements, so collect first, then erase.
  std::vector<ObjectKey> expired;
  for (const auto& [key, e] : sticky_) {
    if (e.expire_epoch < now_epoch) expired.push_back(key);
  }
  for (const ObjectKey key : expired) sticky_.erase(key);
}

void CacheArea::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void CacheArea::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    versions_.clear();
    epochs_.clear();
    sticky_.clear();
    shutdown_ = false;
  }
  cv_.notify_all();
}

CacheArea::Image CacheArea::Capture() const {
  std::lock_guard<std::mutex> lock(mu_);
  Image image;
  image.versions.reserve(versions_.size());
  for (const auto& [k, value] : versions_) {
    image.versions.push_back(Image::VersionEntryImage{
        std::get<0>(k), std::get<1>(k), std::get<2>(k), value});
  }
  image.epochs.reserve(epochs_.size());
  for (const auto& [k, e] : epochs_) {
    image.epochs.push_back(Image::EpochEntryImage{
        k.first, k.second, e.value, e.epoch, e.reads_served, e.total_reads});
  }
  image.sticky.reserve(sticky_.size());
  for (const auto& [key, e] : sticky_) {
    image.sticky.push_back(
        Image::StickyImage{key, e.value, e.version, e.expire_epoch});
  }
  // The hash tables iterate in table order; sort so the image (and any
  // checkpoint bytes derived from it) stays key-ordered and deterministic.
  std::sort(image.versions.begin(), image.versions.end(),
            [](const Image::VersionEntryImage& a,
               const Image::VersionEntryImage& b) {
              return std::tie(a.key, a.version, a.dst) <
                     std::tie(b.key, b.version, b.dst);
            });
  std::sort(image.epochs.begin(), image.epochs.end(),
            [](const Image::EpochEntryImage& a,
               const Image::EpochEntryImage& b) {
              return std::tie(a.key, a.version) < std::tie(b.key, b.version);
            });
  std::sort(image.sticky.begin(), image.sticky.end(),
            [](const Image::StickyImage& a, const Image::StickyImage& b) {
              return a.key < b.key;
            });
  return image;
}

void CacheArea::Restore(const Image& image) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    versions_.clear();
    epochs_.clear();
    sticky_.clear();
    for (const auto& v : image.versions) {
      versions_[{v.key, v.version, v.dst}] = v.value;
    }
    for (const auto& e : image.epochs) {
      EpochEntry& entry = epochs_[{e.key, e.version}];
      entry.value = e.value;
      entry.epoch = e.epoch;
      entry.reads_served = e.reads_served;
      entry.total_reads = e.total_reads;
    }
    for (const auto& s : image.sticky) {
      sticky_[s.key] = StickyEntry{s.value, s.version, s.expire_epoch};
    }
    shutdown_ = false;
    NotePeakLocked();
  }
  cv_.notify_all();
}

std::optional<CacheArea::Image::StickyImage> CacheArea::ExtractSticky(
    ObjectKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sticky_.find(key);
  if (it == sticky_.end()) return std::nullopt;
  Image::StickyImage out{key, it->second.value, it->second.version,
                         it->second.expire_epoch};
  sticky_.erase(it);
  return out;
}

void CacheArea::InstallSticky(const Image::StickyImage& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  sticky_[entry.key] = StickyEntry{entry.value, entry.version,
                                   entry.expire_epoch};
}

std::size_t CacheArea::num_version_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

std::size_t CacheArea::num_epoch_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.size();
}

std::size_t CacheArea::num_sticky_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sticky_.size();
}

}  // namespace tpart
