#ifndef TPART_TPART_H_
#define TPART_TPART_H_

/// Umbrella header: everything a downstream user needs to build and run a
/// T-Part (or Calvin-baseline) deterministic database, in dependency
/// order. Individual headers remain self-contained; include them directly
/// when compile time matters.

#include "common/random.h"    // IWYU pragma: export
#include "common/stats.h"     // IWYU pragma: export
#include "common/status.h"    // IWYU pragma: export
#include "common/types.h"     // IWYU pragma: export
#include "common/zipf.h"      // IWYU pragma: export

#include "storage/data_partition.h"      // IWYU pragma: export
#include "storage/kv_store.h"            // IWYU pragma: export
#include "storage/ordered_index.h"       // IWYU pragma: export
#include "storage/partitioned_store.h"   // IWYU pragma: export
#include "storage/record.h"              // IWYU pragma: export
#include "storage/table.h"               // IWYU pragma: export
#include "storage/write_back_log.h"      // IWYU pragma: export
#include "storage/zigzag_checkpoint.h"   // IWYU pragma: export

#include "txn/procedure.h"  // IWYU pragma: export
#include "txn/rw_set.h"     // IWYU pragma: export
#include "txn/txn.h"        // IWYU pragma: export

#include "sequencer/batch.h"      // IWYU pragma: export
#include "sequencer/sequencer.h"  // IWYU pragma: export
#include "sequencer/zab.h"        // IWYU pragma: export

#include "tgraph/edge_weight.h"  // IWYU pragma: export
#include "tgraph/tgraph.h"       // IWYU pragma: export

#include "partition/multilevel.h"         // IWYU pragma: export
#include "partition/partition_metrics.h"  // IWYU pragma: export
#include "partition/partitioner.h"        // IWYU pragma: export
#include "partition/pin_reduction.h"      // IWYU pragma: export
#include "partition/streaming_greedy.h"   // IWYU pragma: export

#include "scheduler/plan_optimizer.h"   // IWYU pragma: export
#include "scheduler/push_plan.h"        // IWYU pragma: export
#include "scheduler/tpart_scheduler.h"  // IWYU pragma: export

#include "cache/cache_area.h"      // IWYU pragma: export
#include "exec/lock_table.h"       // IWYU pragma: export
#include "exec/serial_executor.h"  // IWYU pragma: export

#include "runtime/cluster.h"   // IWYU pragma: export
#include "runtime/recovery.h"  // IWYU pragma: export

#include "sim/calvin_sim.h"  // IWYU pragma: export
#include "sim/tpart_sim.h"   // IWYU pragma: export

#include "workload/micro.h"     // IWYU pragma: export
#include "workload/tpcc.h"      // IWYU pragma: export
#include "workload/tpce.h"      // IWYU pragma: export
#include "workload/workload.h"  // IWYU pragma: export

#include "baselines/gstore.h"  // IWYU pragma: export
#include "baselines/schism.h"  // IWYU pragma: export

#include "metrics/breakdown.h"  // IWYU pragma: export
#include "metrics/run_stats.h"  // IWYU pragma: export

#endif  // TPART_TPART_H_
