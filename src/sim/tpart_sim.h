#ifndef TPART_SIM_TPART_SIM_H_
#define TPART_SIM_TPART_SIM_H_

#include <memory>
#include <vector>

#include "metrics/run_stats.h"
#include "scheduler/tpart_scheduler.h"
#include "sim/cost_model.h"
#include "sim/stall_tracker.h"
#include "storage/data_partition.h"
#include "txn/txn.h"

namespace tpart {

namespace obs {
class LiveSampler;
}  // namespace obs

/// Timing simulation of Calvin+TP: the *real* T-Part scheduler
/// (T-graph, streaming partitioning, sinking, push plans — the paper's
/// contribution, §3) drives a simulated cluster. Each transaction runs on
/// exactly one machine; reads wait on forward-pushed versions, local
/// cache entries, remote cache pulls, or (write-back-ordered) storage
/// versions; writes flow out as pushes, cache publishes, and write-backs
/// per the plan.
struct TPartSimOptions {
  CostModel cost;
  std::size_t num_machines = 2;
  TPartScheduler::Options scheduler;
  /// Custom partitioner (defaults to streaming greedy / Algorithm 1).
  std::shared_ptr<GraphPartitioner> partitioner;
  /// Sticky-cache lifetime in sinking rounds (§5.2); 0 disables hits.
  SinkEpoch sticky_ttl = 2;
  /// §8 future-work extension: each data partition is replicated on this
  /// many machines (home plus the next replicas-1 machines, mod M).
  /// Storage reads are served by a reader-local replica when one exists;
  /// write-backs fan out to every replica (one extra hop beyond the
  /// home). 1 = the paper's configuration.
  std::size_t storage_replicas = 1;
  /// Live sampling pinned to sink epochs: a kEpoch-domain sampler gets
  /// one SampleEpoch() per sinking round with values that are pure
  /// functions of the run, so two same-seed sims produce byte-identical
  /// metrics JSONL (asserted in trace_test). Must be kEpoch domain.
  obs::LiveSampler* live_sampler = nullptr;
};

/// Runs the totally ordered `txns` and returns aggregate statistics.
/// `stalls`, when given, receives one sample per version dependency,
/// keyed by sequencing distance (j - i) — the Fig. 4 measurement.
RunStats RunTPartSim(const TPartSimOptions& options,
                     std::shared_ptr<const DataPartitionMap> data_map,
                     const std::vector<TxnSpec>& txns,
                     StallTracker* stalls = nullptr);

}  // namespace tpart

#endif  // TPART_SIM_TPART_SIM_H_
