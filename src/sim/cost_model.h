#ifndef TPART_SIM_COST_MODEL_H_
#define TPART_SIM_COST_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

/// Cost model of the simulated cluster (see DESIGN.md substitution table:
/// this stands in for the paper's EC2 / in-house machines). All times are
/// nanoseconds of simulated time; per-machine speed factors model the
/// heterogeneous-instance effect the paper reports ("not all EC2 instances
/// yield equivalent performance", §6.2).
struct CostModel {
  /// CPU per record operation inside the stored procedure.
  SimTime cpu_per_op = 2'000;
  /// Storage engine read / write of one record (buffer miss: index +
  /// fetch + latch). Re-reads of a record already resident in a
  /// machine's buffer pool cost `buffer_hit_read` instead — both engines
  /// get this (the datasets fit in the paper's 7.5 GB nodes).
  SimTime storage_read = 12'000;
  SimTime buffer_hit_read = 2'500;
  SimTime storage_write = 15'000;
  /// One cache-area operation (put/get of a version entry).
  SimTime cache_op = 800;
  /// Lock-manager work per key (Calvin's conservative 2PL, §3.4).
  SimTime lock_op = 600;
  /// One-way network latency between machines.
  SimTime network_latency = 100'000;
  /// Fixed per-transaction overhead (dispatch, logging, result path).
  SimTime txn_overhead = 8'000;
  /// T-Part scheduler pipeline: fixed cost per sinking round (plan
  /// assembly/distribution) and per unsunk node re-streamed. Small sink
  /// sizes pay the round overhead per transaction; very large ones delay
  /// plan release (Fig. 11(a)'s "too large or too small" effect).
  SimTime sched_round_overhead = 8'000;
  SimTime sched_per_node = 150;
  /// Executor worker threads per machine (the paper's C3.xlarge nodes
  /// have 4 virtual cores).
  int workers_per_machine = 4;
  /// Per-machine speed factor (>1 = faster). Missing entries default 1.0.
  std::vector<double> machine_speed;

  SimTime rtt() const { return 2 * network_latency; }

  double SpeedOf(MachineId m) const {
    return m < machine_speed.size() && machine_speed[m] > 0.0
               ? machine_speed[m]
               : 1.0;
  }

  /// Cost `t` executed on machine `m` (slower machines take longer).
  SimTime Scaled(SimTime t, MachineId m) const {
    return static_cast<SimTime>(static_cast<double>(t) / SpeedOf(m));
  }

  std::string ToString() const;
};

}  // namespace tpart

#endif  // TPART_SIM_COST_MODEL_H_
