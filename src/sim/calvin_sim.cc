#include "sim/calvin_sim.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/sim_cluster.h"
#include "txn/rw_set.h"

namespace tpart {

RunStats RunCalvinSim(const CalvinSimOptions& options,
                      const DataPartitionMap& data_map,
                      const std::vector<TxnSpec>& txns,
                      StallTracker* stalls) {
  (void)stalls;  // distance-keyed stalls are a T-Part notion (Fig. 4)
  TPART_CHECK(data_map.num_partitions() == options.num_machines);
  SimCluster cluster(options.num_machines, options.cost);
  const CostModel& cost = options.cost;
  RunStats stats;

  struct Participant {
    MachineId m = 0;
    std::size_t worker = 0;
    std::vector<ObjectKey> local_reads;
    std::vector<ObjectKey> local_writes;
    SimTime t_dispatchable = 0;  // worker picked
    SimTime t_lock = 0;          // locks granted
    SimTime t_read_done = 0;     // local reads collected / broadcast
    SimTime t_done = 0;          // written + locks released
    SimTime stall = 0;           // waiting for peer pushes
    SimTime read_cost = 0;       // local storage read service time
  };

  std::vector<Participant> parts;
  for (const auto& spec : txns) {
    if (spec.is_dummy) continue;
    ++stats.txns;

    parts.clear();
    auto part_of = [&](MachineId m) -> Participant& {
      for (auto& p : parts) {
        if (p.m == m) return p;
      }
      parts.push_back(Participant{});
      parts.back().m = m;
      return parts.back();
    };
    for (const ObjectKey k : spec.rw.reads) {
      part_of(data_map.Locate(k)).local_reads.push_back(k);
    }
    for (const ObjectKey k : spec.rw.writes) {
      part_of(data_map.Locate(k)).local_writes.push_back(k);
    }
    if (parts.empty()) continue;
    std::sort(parts.begin(), parts.end(),
              [](const Participant& a, const Participant& b) {
                return a.m < b.m;
              });
    if (parts.size() > 1) ++stats.distributed_txns;

    const SimTime dispatch = cluster.ClusterNow();

    // Phase 1: acquire worker + deterministic locks, read locally.
    for (auto& p : parts) {
      SimMachine& mach = cluster.machine(p.m);
      p.worker = mach.workers.EarliestWorker();
      p.t_dispatchable =
          std::max(mach.workers.free_at(p.worker), dispatch) +
          cost.Scaled(cost.txn_overhead, p.m);
      SimTime lock_avail = 0;
      for (const ObjectKey k : p.local_reads) {
        if (KeySetContains(spec.rw.writes, k)) continue;  // write lock below
        lock_avail = std::max(lock_avail, mach.locks.ReadAvailable(k));
      }
      for (const ObjectKey k : p.local_writes) {
        lock_avail = std::max(lock_avail, mach.locks.WriteAvailable(k));
      }
      p.t_lock = std::max(p.t_dispatchable, lock_avail);
      const std::size_t nkeys = p.local_reads.size() + p.local_writes.size();
      const SimTime lock_cost =
          cost.Scaled(cost.lock_op * static_cast<SimTime>(nkeys), p.m);
      SimTime read_cost = 0;
      for (const ObjectKey k : p.local_reads) {
        read_cost += cost.Scaled(mach.StorageReadCost(k, cost), p.m);
      }
      p.read_cost = read_cost;
      for (const ObjectKey k : p.local_writes) mach.buffered.insert(k);
      p.t_read_done = p.t_lock + lock_cost + read_cost;
    }

    // Phase 2: peer-push — each participant waits for every peer that
    // holds part of the read set, then all execute the full procedure
    // and write their local keys.
    const SimTime exec_cost_base =
        cost.cpu_per_op * static_cast<SimTime>(spec.rw.reads.size() +
                                               spec.rw.writes.size());
    SimTime commit = 0;
    const Participant* critical = nullptr;
    for (auto& p : parts) {
      SimTime ready = p.t_read_done;
      for (const auto& q : parts) {
        if (q.m == p.m || q.local_reads.empty()) continue;
        ready = std::max(ready, q.t_read_done + cost.network_latency);
      }
      p.stall = ready - p.t_read_done;
      const SimTime exec_cost = cost.Scaled(exec_cost_base, p.m);
      const SimTime write_cost = cost.Scaled(
          cost.storage_write * static_cast<SimTime>(p.local_writes.size()),
          p.m);
      p.t_done = ready + exec_cost + write_cost;
      if (p.t_done > commit) {
        commit = p.t_done;
        critical = &p;
      }
    }

    // Release locks and free workers.
    for (auto& p : parts) {
      SimMachine& mach = cluster.machine(p.m);
      for (const ObjectKey k : p.local_reads) {
        if (!KeySetContains(spec.rw.writes, k)) {
          mach.locks.ReleaseRead(k, p.t_done);
        }
      }
      for (const ObjectKey k : p.local_writes) {
        mach.locks.ReleaseWrite(k, p.t_done);
      }
      mach.workers.set_free_at(p.worker, p.t_done);
    }

    ++stats.committed;
    stats.latency.Add(static_cast<double>(commit - dispatch));
    stats.latency_us.Add(
        static_cast<std::uint64_t>((commit - dispatch) / 1000));
    stats.makespan = std::max(stats.makespan, commit);

    bool stalled = false;
    for (const auto& p : parts) {
      if (p.stall > 0) stalled = true;
    }
    if (stalled) {
      ++stats.network_stalled_txns;
      SimTime max_stall = 0;
      for (const auto& p : parts) max_stall = std::max(max_stall, p.stall);
      stats.stall_wait.Add(static_cast<double>(max_stall));
    }

    // Breakdown along the critical participant's path.
    if (critical != nullptr) {
      const Participant& p = *critical;
      stats.breakdown.AddTxn();
      stats.breakdown.Add(Component::kQueueWait,
                          p.t_lock - dispatch);
      stats.breakdown.Add(
          Component::kCacheMgmt,
          cost.Scaled(cost.lock_op * static_cast<SimTime>(
                                         p.local_reads.size() +
                                         p.local_writes.size()),
                      p.m));
      stats.breakdown.Add(Component::kStorageRead, p.read_cost);
      stats.breakdown.Add(Component::kRemoteWait, p.stall);
      stats.breakdown.Add(Component::kExecute,
                          cost.Scaled(exec_cost_base, p.m));
      stats.breakdown.Add(
          Component::kStorageWrite,
          cost.Scaled(cost.storage_write *
                          static_cast<SimTime>(p.local_writes.size()),
                      p.m));
    }
  }
  return stats;
}

}  // namespace tpart
