#include "sim/sim_cluster.h"

#include <algorithm>

namespace tpart {

std::size_t SimWorkerPool::EarliestWorker() const {
  std::size_t best = 0;
  for (std::size_t w = 1; w < free_at_.size(); ++w) {
    if (free_at_[w] < free_at_[best]) best = w;
  }
  return best;
}

SimTime SimWorkerPool::Frontier() const {
  SimTime t = 0;
  for (const SimTime f : free_at_) t = std::max(t, f);
  return t;
}

SimTime SimLockTable::ReadAvailable(ObjectKey key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.last_write_release;
}

SimTime SimLockTable::WriteAvailable(ObjectKey key) const {
  auto it = keys_.find(key);
  if (it == keys_.end()) return 0;
  return std::max(it->second.last_write_release,
                  it->second.max_read_release);
}

void SimLockTable::ReleaseRead(ObjectKey key, SimTime t) {
  KeyState& st = keys_[key];
  st.max_read_release = std::max(st.max_read_release, t);
}

void SimLockTable::ReleaseWrite(ObjectKey key, SimTime t) {
  KeyState& st = keys_[key];
  st.last_write_release = std::max(st.last_write_release, t);
}

SimCluster::SimCluster(std::size_t num_machines, const CostModel& cost)
    : cost_(cost) {
  machines_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    machines_.emplace_back(cost.workers_per_machine);
  }
}

SimTime SimCluster::ClusterNow() const {
  SimTime t = machines_.empty() ? 0 : machines_[0].workers.EarliestFreeTime();
  for (const auto& m : machines_) {
    t = std::min(t, m.workers.EarliestFreeTime());
  }
  return t;
}

SimTime SimCluster::Makespan() const {
  SimTime t = 0;
  for (const auto& m : machines_) t = std::max(t, m.workers.Frontier());
  return t;
}

}  // namespace tpart
