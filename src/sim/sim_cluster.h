#ifndef TPART_SIM_SIM_CLUSTER_H_
#define TPART_SIM_SIM_CLUSTER_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/cost_model.h"

namespace tpart {

/// Worker pool of one simulated machine: `free_at[w]` is the simulated
/// time worker `w` becomes idle.
class SimWorkerPool {
 public:
  explicit SimWorkerPool(int workers)
      : free_at_(static_cast<std::size_t>(workers), 0) {}

  /// Index of the earliest-free worker (deterministic: lowest index wins
  /// ties).
  std::size_t EarliestWorker() const;

  SimTime free_at(std::size_t w) const { return free_at_[w]; }
  void set_free_at(std::size_t w, SimTime t) { free_at_[w] = t; }

  /// Earliest time any worker is free.
  SimTime EarliestFreeTime() const { return free_at_[EarliestWorker()]; }
  /// Time the machine finishes everything currently accepted.
  SimTime Frontier() const;

  std::size_t size() const { return free_at_.size(); }

 private:
  std::vector<SimTime> free_at_;
};

/// Deterministic-locking timing state of one machine (Calvin mode): when
/// the previous holders of each key release, a later transaction in the
/// total order may acquire (§2.2's conservative locking).
class SimLockTable {
 public:
  /// Earliest time a read lock on `key` can be granted.
  SimTime ReadAvailable(ObjectKey key) const;
  /// Earliest time a write lock on `key` can be granted.
  SimTime WriteAvailable(ObjectKey key) const;

  /// Registers that a transaction holding a read lock on `key` releases
  /// at `t`.
  void ReleaseRead(ObjectKey key, SimTime t);
  /// Registers a write-lock release at `t`.
  void ReleaseWrite(ObjectKey key, SimTime t);

 private:
  struct KeyState {
    SimTime last_write_release = 0;
    SimTime max_read_release = 0;
  };
  std::unordered_map<ObjectKey, KeyState> keys_;
};

/// Per-machine simulation state shared by both engines.
struct SimMachine {
  explicit SimMachine(int workers) : workers(workers) {}
  SimWorkerPool workers;
  SimLockTable locks;  // used by the Calvin engine only

  /// Buffer-pool model: keys this machine's storage has touched. First
  /// access pays the miss cost; later accesses pay the hit cost.
  std::unordered_set<ObjectKey> buffered;
  /// Storage-read service cost for `key` on this machine, marking it
  /// resident.
  SimTime StorageReadCost(ObjectKey key, const CostModel& cost) {
    if (buffered.insert(key).second) return cost.storage_read;
    return cost.buffer_hit_read;
  }
};

/// Cluster of simulated machines.
class SimCluster {
 public:
  SimCluster(std::size_t num_machines, const CostModel& cost);

  SimMachine& machine(MachineId m) { return machines_[m]; }
  const SimMachine& machine(MachineId m) const { return machines_[m]; }
  std::size_t size() const { return machines_.size(); }
  const CostModel& cost() const { return cost_; }

  /// Earliest free-worker time across the whole cluster — the simulation's
  /// notion of "now" for dispatch/backlog purposes.
  SimTime ClusterNow() const;
  /// Time the last machine finishes all accepted work (makespan).
  SimTime Makespan() const;

 private:
  std::vector<SimMachine> machines_;
  CostModel cost_;
};

}  // namespace tpart

#endif  // TPART_SIM_SIM_CLUSTER_H_
