#ifndef TPART_SIM_STALL_TRACKER_H_
#define TPART_SIM_STALL_TRACKER_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace tpart {

/// Records per-dependency stall samples keyed by transaction distance
/// (j - i), producing the Fig. 4(a)/(b) curves: "the average and maximum
/// stalls we observed over different (j-i)'s, which can be fitted by the
/// linear and Sigmoid functions".
class StallTracker {
 public:
  /// Distances above `max_distance` aggregate into the last bucket.
  explicit StallTracker(std::size_t max_distance = 512)
      : stats_(max_distance + 1) {}

  /// One dependency edge: destination `dst` stalled `stall` ns waiting on
  /// the value produced by `src` (0 stall allowed; it still counts toward
  /// the average).
  void Record(TxnId src, TxnId dst, SimTime stall);

  std::size_t max_distance() const { return stats_.size() - 1; }
  const RunningStat& AtDistance(std::size_t d) const {
    return stats_[d < stats_.size() ? d : stats_.size() - 1];
  }

  /// Mean stall over buckets [lo, hi] (weighted by sample count).
  double MeanStallInRange(std::size_t lo, std::size_t hi) const;
  /// Max stall over buckets [lo, hi].
  double MaxStallInRange(std::size_t lo, std::size_t hi) const;

 private:
  std::vector<RunningStat> stats_;
};

}  // namespace tpart

#endif  // TPART_SIM_STALL_TRACKER_H_
