#include "sim/cost_model.h"

#include <sstream>

namespace tpart {

std::string CostModel::ToString() const {
  std::ostringstream out;
  out << "cpu=" << cpu_per_op << "ns sread=" << storage_read
      << "ns swrite=" << storage_write << "ns cache=" << cache_op
      << "ns lock=" << lock_op << "ns net=" << network_latency
      << "ns overhead=" << txn_overhead
      << "ns workers=" << workers_per_machine;
  return out.str();
}

}  // namespace tpart
