#ifndef TPART_SIM_CALVIN_SIM_H_
#define TPART_SIM_CALVIN_SIM_H_

#include <memory>
#include <vector>

#include "metrics/run_stats.h"
#include "sim/cost_model.h"
#include "sim/stall_tracker.h"
#include "storage/data_partition.h"
#include "txn/txn.h"

namespace tpart {

/// Timing simulation of the Calvin baseline (§2.1): every machine holding
/// any of a transaction's data participates; participants take
/// deterministic locks on their local keys in total order, read locally,
/// exchange read sets by peer-pushing, all execute the full procedure,
/// and each writes only its local keys. Machines that fall behind stall
/// every peer of every distributed transaction they participate in — the
/// synchronization problem (§2.2).
struct CalvinSimOptions {
  CostModel cost;
  std::size_t num_machines = 2;
};

/// Runs the totally ordered `txns` (dummies ignored) and returns
/// aggregate statistics. `stalls`, when given, receives one sample per
/// peer-push wait, keyed by sequencing distance.
RunStats RunCalvinSim(const CalvinSimOptions& options,
                      const DataPartitionMap& data_map,
                      const std::vector<TxnSpec>& txns,
                      StallTracker* stalls = nullptr);

}  // namespace tpart

#endif  // TPART_SIM_CALVIN_SIM_H_
