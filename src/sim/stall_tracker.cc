#include "sim/stall_tracker.h"

#include <algorithm>

namespace tpart {

void StallTracker::Record(TxnId src, TxnId dst, SimTime stall) {
  const std::size_t d =
      dst > src ? static_cast<std::size_t>(dst - src) : 0;
  stats_[std::min(d, stats_.size() - 1)].Add(
      static_cast<double>(std::max<SimTime>(stall, 0)));
}

double StallTracker::MeanStallInRange(std::size_t lo, std::size_t hi) const {
  double sum = 0.0;
  std::size_t count = 0;
  hi = std::min(hi, stats_.size() - 1);
  for (std::size_t d = lo; d <= hi; ++d) {
    sum += stats_[d].sum();
    count += stats_[d].count();
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double StallTracker::MaxStallInRange(std::size_t lo, std::size_t hi) const {
  double mx = 0.0;
  hi = std::min(hi, stats_.size() - 1);
  for (std::size_t d = lo; d <= hi; ++d) {
    mx = std::max(mx, stats_[d].max());
  }
  return mx;
}

}  // namespace tpart
