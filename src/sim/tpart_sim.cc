#include "sim/tpart_sim.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "obs/live_sampler.h"
#include "obs/trace.h"
#include "sim/sim_cluster.h"

namespace tpart {

namespace {

struct WbInfo {
  SimTime apply_time = 0;
  SinkEpoch epoch = 0;
};

}  // namespace

RunStats RunTPartSim(const TPartSimOptions& options,
                     std::shared_ptr<const DataPartitionMap> data_map,
                     const std::vector<TxnSpec>& txns,
                     StallTracker* stalls) {
  TPART_CHECK(data_map->num_partitions() == options.num_machines);
  TPartScheduler::Options sched_opts = options.scheduler;
  sched_opts.graph.num_machines = options.num_machines;
  TPartScheduler scheduler(sched_opts, data_map, options.partitioner);

  SimCluster cluster(options.num_machines, options.cost);
  const CostModel& cost = options.cost;
  RunStats stats;

  // Simulated transactions trace onto virtual per-machine tracks via the
  // explicit-timestamp emitters; a kManual recorder makes the resulting
  // JSON a deterministic function of the run (same seed → same bytes).
#if !defined(TPART_TRACING_DISABLED)
  const bool tracing = obs::GlobalTrace() != nullptr;
  if (tracing) {
    obs::TraceRecorder* rec = obs::GlobalTrace();
    rec->SetProcessName(0, "scheduler");
    for (std::size_t m = 0; m < options.num_machines; ++m) {
      rec->SetProcessName(static_cast<int>(1 + m),
                          "machine-" + std::to_string(m));
    }
    rec->SetThreadInfo(0, "sim");
  }
#else
  constexpr bool tracing = false;
#endif
  // Simulated track of each committed transaction, for flow arrows.
  std::unordered_map<TxnId, std::pair<int, int>> sim_track;

  std::unordered_map<TxnId, SimTime> commit_time;
  // Storage version availability: (key, version txn) -> write-back info.
  std::map<std::pair<ObjectKey, TxnId>, WbInfo> wb_state;
  // Per machine: commit times of sunk-but-possibly-uncommitted txns, for
  // the sink-node weights (§3.1).
  std::vector<std::vector<SimTime>> backlog(options.num_machines);

  auto commit_of = [&](TxnId id) -> SimTime {
    auto it = commit_time.find(id);
    TPART_CHECK(it != commit_time.end())
        << "read of version from unexecuted T" << id;
    return it->second;
  };

  // The scheduler runs as a sequential pipeline stage: each sinking round
  // re-streams the unsunk window (~2x the round's size) and assembles
  // plans before the executors may start them.
  SimTime sched_ready = 0;
  std::uint64_t sim_rounds = 0;

  auto simulate_plan = [&](const SinkPlan& plan) {
    sched_ready = std::max(sched_ready, cluster.ClusterNow()) +
                  cost.sched_round_overhead +
                  cost.sched_per_node *
                      static_cast<SimTime>(2 * plan.txns.size());
    const SimTime dispatch_floor =
        std::max(cluster.ClusterNow(), sched_ready);
    for (const TxnPlan& p : plan.txns) {
      const MachineId m = p.machine;
      SimMachine& mach = cluster.machine(m);
      const std::size_t w = mach.workers.EarliestWorker();
      const SimTime dispatch =
          std::max(mach.workers.free_at(w), dispatch_floor);
      const SimTime t0 = dispatch + cost.Scaled(cost.txn_overhead, m);

      // Local read service costs and remote/version availability
      // constraints.
      SimTime local_cost = 0;
      SimTime cache_mgmt = 0;
      SimTime storage_read_time = 0;
      SimTime version_wait_until = 0;  // local version dependencies
      SimTime remote_until = 0;        // remote arrivals
      bool has_remote = false;
      bool is_distributed = false;

      struct DepSample {
        TxnId src;
        SimTime avail;
      };
      std::vector<DepSample> deps;
      struct PushFlow {
        ObjectKey key;
        TxnId version;
        TxnId provider;
      };
      std::vector<PushFlow> push_flows;

      for (const ReadStep& r : p.reads) {
        switch (r.kind) {
          case ReadSourceKind::kLocalVersion: {
            const SimTime avail =
                commit_of(r.provider_txn) + cost.Scaled(cost.cache_op, m);
            version_wait_until = std::max(version_wait_until, avail);
            cache_mgmt += cost.Scaled(cost.cache_op, m);
            local_cost += cost.Scaled(cost.cache_op, m);
            deps.push_back({r.provider_txn, avail});
            break;
          }
          case ReadSourceKind::kPush: {
            const SimTime avail = commit_of(r.provider_txn) +
                                  cost.Scaled(cost.cache_op, r.src_machine) +
                                  cost.network_latency;
            remote_until = std::max(remote_until, avail);
            has_remote = true;
            is_distributed = true;
            cache_mgmt += cost.Scaled(cost.cache_op, m);
            local_cost += cost.Scaled(cost.cache_op, m);
            deps.push_back({r.provider_txn, avail});
            if (tracing) {
              push_flows.push_back({r.key, r.src_txn, r.provider_txn});
            }
            break;
          }
          case ReadSourceKind::kCacheLocal: {
            const SimTime avail =
                commit_of(r.provider_txn) + cost.Scaled(cost.cache_op, m);
            version_wait_until = std::max(version_wait_until, avail);
            cache_mgmt += cost.Scaled(cost.cache_op, m);
            local_cost += cost.Scaled(cost.cache_op, m);
            deps.push_back({r.provider_txn, avail});
            break;
          }
          case ReadSourceKind::kCacheRemote: {
            // Synchronous pull from the holding machine: request leaves at
            // t0, is served once the entry exists, response returns.
            const SimTime served =
                std::max(t0 + cost.network_latency,
                         commit_of(r.provider_txn)) +
                cost.Scaled(cost.cache_op, r.src_machine);
            const SimTime avail = served + cost.network_latency;
            remote_until = std::max(remote_until, avail);
            has_remote = true;
            is_distributed = true;
            deps.push_back({r.provider_txn, avail});
            break;
          }
          case ReadSourceKind::kStorage: {
            SimTime base = 0;
            bool sticky = false;
            if (r.src_txn != kInvalidTxnId) {
              auto it = wb_state.find({r.key, r.src_txn});
              TPART_CHECK(it != wb_state.end())
                  << "storage read of unapplied version T" << r.src_txn;
              base = it->second.apply_time;
              sticky = r.sticky_hint && options.sticky_ttl > 0 &&
                       plan.epoch <= it->second.epoch + options.sticky_ttl;
            }
            // Replication extension (§8): serve from a reader-local
            // replica when the placement covers this machine. The replica
            // applies write-backs one hop after the home.
            bool local_replica = false;
            if (options.storage_replicas > 1 && r.src_machine != m) {
              for (std::size_t i = 1; i < options.storage_replicas; ++i) {
                if ((r.src_machine + i) % options.num_machines == m) {
                  local_replica = true;
                  break;
                }
              }
            }
            if (local_replica) {
              const SimTime service = cost.Scaled(
                  sticky ? cost.cache_op
                         : cluster.machine(m).StorageReadCost(r.key, cost),
                  m);
              const SimTime replica_base =
                  base == 0 ? 0 : base + cost.network_latency;
              version_wait_until =
                  std::max(version_wait_until, replica_base);
              local_cost += service;
              storage_read_time += service;
              if (sticky) ++stats.sticky_hits;
              break;
            }
            if (r.src_machine == m) {
              const SimTime service = cost.Scaled(
                  sticky ? cost.cache_op
                         : cluster.machine(m).StorageReadCost(r.key, cost),
                  m);
              version_wait_until = std::max(version_wait_until, base);
              local_cost += service;
              storage_read_time += service;
              if (sticky) ++stats.sticky_hits;
            } else {
              const SimTime service = cost.Scaled(
                  sticky ? cost.cache_op
                         : cluster.machine(r.src_machine)
                               .StorageReadCost(r.key, cost),
                  r.src_machine);
              const SimTime avail =
                  std::max(t0 + cost.network_latency, base) + service +
                  cost.network_latency;
              remote_until = std::max(remote_until, avail);
              has_remote = true;
              is_distributed = true;
              storage_read_time += service;
              if (sticky) ++stats.sticky_hits;
            }
            break;
          }
        }
      }

      const SimTime t_local = std::max(t0 + local_cost, version_wait_until);
      const SimTime ready = std::max(t_local, remote_until);
      const SimTime remote_stall = has_remote ? ready - t_local : 0;

      if (stalls != nullptr) {
        for (const auto& d : deps) {
          stalls->Record(d.src, p.txn, std::max<SimTime>(d.avail - t_local, 0));
        }
      }

      const SimTime exec_cost = cost.Scaled(
          cost.cpu_per_op *
              static_cast<SimTime>(p.num_reads + p.num_writes),
          m);
      const SimTime commit = ready + exec_cost;
      commit_time[p.txn] = commit;

      // Post-commit outbound work occupies the worker.
      SimTime post = 0;
      post += cost.Scaled(
          cost.cache_op * static_cast<SimTime>(p.pushes.size() +
                                               p.local_versions.size() +
                                               p.cache_publishes.size()),
          m);
      cache_mgmt += post;
      SimTime write_time = 0;
      for (const WriteBackStep& wb : p.write_backs) {
        WbInfo info;
        info.epoch = plan.epoch;
        cluster.machine(wb.home).buffered.insert(wb.key);
        if (wb.home == m) {
          const SimTime service = cost.Scaled(cost.storage_write, m);
          post += service;
          write_time += service;
          info.apply_time = commit + post;
        } else {
          const SimTime send = cost.Scaled(cost.cache_op, m);
          post += send;
          is_distributed = true;
          info.apply_time = commit + post + cost.network_latency +
                            cost.Scaled(cost.storage_write, wb.home);
          write_time += send;
        }
        wb_state[{wb.key, wb.version_txn}] = info;
      }

      const SimTime worker_done = commit + post;
      mach.workers.set_free_at(w, worker_done);
      backlog[m].push_back(commit);

      if (tracing) {
        const int pid = static_cast<int>(1 + m);
        const int tid = static_cast<int>(w);
        sim_track[p.txn] = {pid, tid};
        TPART_TRACE(CompleteAt(
            pid, tid, "txn", "exec", static_cast<std::uint64_t>(dispatch),
            static_cast<std::uint64_t>(worker_done - dispatch),
            {{"txn", p.txn}, {"epoch", plan.epoch}}));
        if (remote_stall > 0) {
          TPART_TRACE(InstantAt(pid, tid, "net_stall", "exec",
                                static_cast<std::uint64_t>(t_local),
                                {{"txn", p.txn},
                                 {"stall_ns",
                                  static_cast<std::uint64_t>(remote_stall)}}));
        }
        for (const auto& f : push_flows) {
          // Arrow from the producer's committed span to this one; ids
          // match the runtime emitters so both render identically.
          const auto src = sim_track.find(f.provider);
          if (src == sim_track.end()) continue;
          const std::uint64_t id = obs::PushFlowId(f.key, f.version, p.txn);
          TPART_TRACE(FlowStartAt(
              src->second.first, src->second.second, "push",
              static_cast<std::uint64_t>(commit_of(f.provider)), id));
          TPART_TRACE(FlowEndAt(pid, tid, "push",
                                static_cast<std::uint64_t>(ready), id));
        }
      }

      // Statistics.
      ++stats.txns;
      ++stats.committed;
      stats.latency.Add(static_cast<double>(commit - dispatch_floor));
      stats.latency_us.Add(
          static_cast<std::uint64_t>((commit - dispatch_floor) / 1000));
      stats.makespan = std::max(stats.makespan, worker_done);
      if (is_distributed) ++stats.distributed_txns;
      if (remote_stall > 0) {
        ++stats.network_stalled_txns;
        stats.stall_wait.Add(static_cast<double>(remote_stall));
      }
      stats.breakdown.AddTxn();
      stats.breakdown.Add(Component::kQueueWait, t0 - dispatch_floor);
      stats.breakdown.Add(Component::kStorageRead, storage_read_time);
      stats.breakdown.Add(Component::kRemoteWait, remote_stall);
      stats.breakdown.Add(Component::kExecute, exec_cost);
      stats.breakdown.Add(Component::kStorageWrite, write_time);
      stats.breakdown.Add(Component::kCacheMgmt, cache_mgmt);
    }

    // Deterministic in-flight sampling: every value below is a pure
    // function of the totally ordered input, so two same-seed runs emit
    // byte-identical JSONL (no wall clock anywhere on this path).
    if (options.live_sampler != nullptr) {
      ++sim_rounds;
      obs::LiveSampler::Sample s;
      s.emplace_back("tpart_live_committed_total",
                     static_cast<double>(stats.committed));
      s.emplace_back("tpart_live_distributed_ratio",
                     stats.committed > 0
                         ? static_cast<double>(stats.distributed_txns) /
                               static_cast<double>(stats.committed)
                         : 0.0);
      s.emplace_back("tpart_live_plans_total",
                     static_cast<double>(sim_rounds));
      s.emplace_back("tpart_live_tgraph_size",
                     static_cast<double>(scheduler.graph().num_unsunk()));
      options.live_sampler->SampleEpoch(plan.epoch, s);
    }
  };

  for (const TxnSpec& spec : txns) {
    // Refresh sink-node weights from the simulated backlog: txns sunk to a
    // machine and not yet committed at the cluster's current frontier.
    const SimTime now = cluster.ClusterNow();
    // Clocked scheduler events (sink rounds, T-graph counters) land at
    // the simulated frontier: manual-domain recorders never read a real
    // clock, so the trace is deterministic.
    TPART_TRACE(AdvanceTo(static_cast<std::uint64_t>(std::max<SimTime>(now, 0))));
    for (std::size_t m = 0; m < options.num_machines; ++m) {
      auto& b = backlog[m];
      b.erase(std::remove_if(b.begin(), b.end(),
                             [&](SimTime c) { return c <= now; }),
              b.end());
      scheduler.mutable_graph().set_sink_weight(
          static_cast<MachineId>(m), static_cast<double>(b.size()));
    }
    for (const SinkPlan& plan : scheduler.OnTxn(spec)) simulate_plan(plan);
  }
  for (const SinkPlan& plan : scheduler.Drain()) simulate_plan(plan);

  stats.scheduling_seconds = scheduler.scheduling_seconds();
  stats.pushes_eliminated = scheduler.num_pushes_eliminated();
  stats.max_tgraph_size = scheduler.max_tgraph_size();
  // The "Schedule" component is real (measured) time; it is charged here
  // so Fig. 7 can show it is negligible next to the simulated components.
  stats.breakdown.Add(Component::kSchedule,
                      static_cast<SimTime>(stats.scheduling_seconds * 1e9));
  return stats;
}

}  // namespace tpart
