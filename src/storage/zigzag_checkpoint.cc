#include "storage/zigzag_checkpoint.h"

#include <mutex>

namespace tpart {

void ZigZagCheckpointStore::Put(ObjectKey key, Record value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Slot& s = slots_[key];
  s.copy[s.mw] = std::move(value);
  // Reads follow the freshest copy (zig-zag's MR <- MW on update).
  s.mr = s.mw;
}

Record ZigZagCheckpointStore::Get(ObjectKey key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return Record::Absent();
  return it->second.copy[it->second.mr];
}

void ZigZagCheckpointStore::Delete(ObjectKey key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;
  Slot& s = it->second;
  s.copy[s.mw] = Record::Absent();
  s.mr = s.mw;
}

std::size_t ZigZagCheckpointStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [k, s] : slots_) {
    (void)k;
    if (!s.copy[s.mr].is_absent()) ++n;
  }
  return n;
}

std::size_t ZigZagCheckpointStore::Checkpoint(
    const std::function<void(ObjectKey, const Record&)>& emit) {
  // Phase 1 (brief exclusive section): freeze the current committed copy
  // of every key by pointing writes at the other one.
  std::vector<std::pair<ObjectKey, std::uint8_t>> frozen;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    frozen.reserve(slots_.size());
    for (auto& [key, s] : slots_) {
      s.mw = static_cast<std::uint8_t>(1 - s.mr);
      frozen.emplace_back(key, s.mr);
    }
  }
  // Phase 2: stream the frozen copies. Concurrent Put()s write the other
  // copy; a Put also flips mr to the written copy, so later reads see the
  // new value while our frozen index keeps snapshotting the old one.
  // `emit` runs outside the lock so it may itself touch the store.
  std::size_t captured = 0;
  for (const auto& [key, idx] : frozen) {
    Record rec;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end()) continue;
      rec = it->second.copy[idx];
    }
    if (rec.is_absent()) continue;
    emit(key, rec);
    ++captured;
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ++rounds_;
  }
  return captured;
}

std::size_t ZigZagCheckpointStore::ApplyDirty(
    const KvStore& source, const std::vector<ObjectKey>& dirty_keys) {
  std::size_t folded = 0;
  for (const ObjectKey key : dirty_keys) {
    Result<Record> r = source.Read(key);
    if (r.ok()) {
      Put(key, std::move(r).value());
    } else {
      Delete(key);
    }
    ++folded;
  }
  return folded;
}

std::uint64_t ZigZagCheckpointStore::rounds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rounds_;
}

}  // namespace tpart
