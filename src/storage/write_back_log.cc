#include "storage/write_back_log.h"

#include <cassert>

namespace tpart {

void WriteBackLog::BeginBatch(SinkEpoch epoch) {
  assert(!open_ && "previous batch still open");
  assert((batch_epochs_.empty() || batch_epochs_.back() < epoch) &&
         "batch epochs must increase");
  batch_starts_.push_back(entries_.size());
  batch_epochs_.push_back(epoch);
  open_ = true;
}

void WriteBackLog::LogWrite(ObjectKey key, std::optional<Record> old_value) {
  assert(open_ && "LogWrite outside a batch");
  entries_.push_back(Entry{batch_epochs_.back(), key, std::move(old_value)});
}

void WriteBackLog::CommitBatch() {
  assert(open_);
  open_ = false;
  ++committed_batches_;
}

std::size_t WriteBackLog::UndoIncomplete(KvStore& store) const {
  if (!open_) return 0;
  // Only the last batch can be incomplete (batches are sequential).
  const std::size_t start = batch_starts_.back();
  std::size_t undone = 0;
  for (std::size_t i = entries_.size(); i > start; --i) {
    const Entry& e = entries_[i - 1];
    if (e.old_value.has_value()) {
      store.Upsert(e.key, *e.old_value);
    } else {
      // Record did not exist before the batch; remove it if present.
      (void)store.Delete(e.key);
    }
    ++undone;
  }
  return undone;
}

void WriteBackLog::TruncateCommitted() {
  if (open_) {
    // Keep only the open batch's entries.
    const std::size_t start = batch_starts_.back();
    const SinkEpoch epoch = batch_epochs_.back();
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(start));
    batch_starts_.assign(1, 0);
    batch_epochs_.assign(1, epoch);
  } else {
    entries_.clear();
    batch_starts_.clear();
    batch_epochs_.clear();
  }
  committed_batches_ = 0;
}

}  // namespace tpart
