#ifndef TPART_STORAGE_KV_STORE_H_
#define TPART_STORAGE_KV_STORE_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "common/flat_map.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/ordered_index.h"
#include "storage/record.h"

namespace tpart {

/// Single-machine record store with the CRUD interface T-Part assumes
/// ("works alongside any storage with the CRUD interface", §1).
///
/// Internally an open-addressing hash primary index (common/flat_map.h —
/// no per-record heap node, no pointer chase per probe), plus an optional
/// ordered secondary index (B+-tree) maintained on every mutation so the
/// workloads can run range scans. Not internally synchronized: each
/// machine/executor owns its store and accesses it from one thread (the
/// deterministic execution model guarantees this).
class KvStore {
 public:
  /// If `maintain_ordered_index` is true, an ordered index over ObjectKey
  /// is kept in sync for Scan().
  explicit KvStore(bool maintain_ordered_index = true)
      : ordered_(maintain_ordered_index ? new OrderedIndex() : nullptr) {}

  /// Inserts a new record. Fails with AlreadyExists when present.
  Status Insert(ObjectKey key, Record record);

  /// Reads a record. Fails with NotFound when absent.
  Result<Record> Read(ObjectKey key) const;

  /// Returns a mutable pointer to the stored record, or nullptr.
  Record* ReadMutable(ObjectKey key);

  /// Overwrites an existing record. Fails with NotFound when absent.
  Status Update(ObjectKey key, Record record);

  /// Inserts or overwrites unconditionally.
  void Upsert(ObjectKey key, Record record);

  /// Deletes a record. Fails with NotFound when absent. Blind deletes
  /// (where NotFound is the expected no-op) must void-cast with a
  /// comment saying why.
  [[nodiscard]] Status Delete(ObjectKey key);

  bool Contains(ObjectKey key) const { return records_.count(key) > 0; }
  std::size_t size() const { return records_.size(); }

  /// Range scan [lo, hi] in key order; invokes `fn(key, record)` for each.
  /// Requires the ordered index. Returns number of records visited.
  std::size_t Scan(ObjectKey lo, ObjectKey hi,
                   const std::function<void(ObjectKey, const Record&)>& fn)
      const;

  /// Total logical bytes stored (for buffer accounting).
  std::size_t TotalBytes() const { return total_bytes_; }

  /// Visits every stored key, in no particular order (the caller sorts).
  /// Control-plane use (migration planning) at a quiesced barrier only —
  /// the store is not internally synchronized.
  void ForEachKey(const std::function<void(ObjectKey)>& fn) const {
    for (const auto& [key, record] : records_) {
      (void)record;
      fn(key);
    }
  }

 private:
  FlatMap<ObjectKey, Record> records_;
  std::unique_ptr<OrderedIndex> ordered_;
  std::size_t total_bytes_ = 0;
};

}  // namespace tpart

#endif  // TPART_STORAGE_KV_STORE_H_
