#include "storage/data_partition.h"

// All current DataPartitionMap implementations are header-only; this
// translation unit anchors the interface's vtable.

namespace tpart {

// (Intentionally empty.)

}  // namespace tpart
