#ifndef TPART_STORAGE_PARTITIONED_STORE_H_
#define TPART_STORAGE_PARTITIONED_STORE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/data_partition.h"
#include "storage/kv_store.h"

namespace tpart {

/// A cluster-wide view of storage: one KvStore per machine plus the
/// DataPartitionMap that routes keys to their home machine. Loaders use it
/// to place the initial database; the threaded runtime hands each machine
/// its own partition; tests use it to compare end states across engines.
class PartitionedStore {
 public:
  PartitionedStore(std::size_t num_machines,
                   std::shared_ptr<const DataPartitionMap> partition_map,
                   bool maintain_ordered_index = true);

  std::size_t num_machines() const { return stores_.size(); }

  const DataPartitionMap& partition_map() const { return *partition_map_; }
  std::shared_ptr<const DataPartitionMap> shared_partition_map() const {
    return partition_map_;
  }

  /// Store local to `machine`.
  KvStore& store(MachineId machine) { return *stores_.at(machine); }
  const KvStore& store(MachineId machine) const { return *stores_.at(machine); }

  /// Home machine of `key`.
  MachineId HomeOf(ObjectKey key) const { return partition_map_->Locate(key); }

  /// Inserts `record` into the home partition of `key`.
  Status Insert(ObjectKey key, Record record);

  /// Reads from the home partition of `key`.
  Result<Record> Read(ObjectKey key) const;

  /// Updates in the home partition of `key`.
  Status Update(ObjectKey key, Record record);

  /// Upserts into the home partition of `key`.
  void Upsert(ObjectKey key, Record record);

  /// Total records across all machines.
  std::size_t TotalRecords() const;

  /// True iff both stores hold exactly the same key->record mapping,
  /// machine by machine. Used by determinism tests.
  bool StateEquals(const PartitionedStore& other) const;

  /// Collects all (key, record) pairs across machines into one vector
  /// sorted by key. Used to compare against a serial reference execution
  /// regardless of the partitioning scheme.
  std::vector<std::pair<ObjectKey, Record>> Snapshot() const;

 private:
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::shared_ptr<const DataPartitionMap> partition_map_;
};

}  // namespace tpart

#endif  // TPART_STORAGE_PARTITIONED_STORE_H_
