#include "storage/kv_store.h"

namespace tpart {

Status KvStore::Insert(ObjectKey key, Record record) {
  auto [it, inserted] = records_.emplace(key, std::move(record));
  if (!inserted) {
    return Status::AlreadyExists("key already present");
  }
  total_bytes_ += it->second.SizeBytes();
  if (ordered_ != nullptr) ordered_->Insert(key);
  return Status::Ok();
}

Result<Record> KvStore::Read(ObjectKey key) const {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return Status::NotFound("key not present");
  }
  return it->second;
}

Record* KvStore::ReadMutable(ObjectKey key) {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

Status KvStore::Update(ObjectKey key, Record record) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return Status::NotFound("key not present");
  }
  total_bytes_ -= it->second.SizeBytes();
  it->second = std::move(record);
  total_bytes_ += it->second.SizeBytes();
  return Status::Ok();
}

void KvStore::Upsert(ObjectKey key, Record record) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    total_bytes_ += record.SizeBytes();
    records_.emplace(key, std::move(record));
    if (ordered_ != nullptr) ordered_->Insert(key);
    return;
  }
  total_bytes_ -= it->second.SizeBytes();
  it->second = std::move(record);
  total_bytes_ += it->second.SizeBytes();
}

Status KvStore::Delete(ObjectKey key) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return Status::NotFound("key not present");
  }
  total_bytes_ -= it->second.SizeBytes();
  records_.erase(it);
  if (ordered_ != nullptr) ordered_->Erase(key);
  return Status::Ok();
}

std::size_t KvStore::Scan(
    ObjectKey lo, ObjectKey hi,
    const std::function<void(ObjectKey, const Record&)>& fn) const {
  if (ordered_ == nullptr) return 0;
  return ordered_->ScanRange(lo, hi, [&](ObjectKey key) {
    auto it = records_.find(key);
    if (it != records_.end()) fn(key, it->second);
  });
}

}  // namespace tpart
