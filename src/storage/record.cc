#include "storage/record.h"

#include <sstream>

namespace tpart {

std::string Record::ToString() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < num_fields(); ++i) {
    if (i > 0) out << ", ";
    out << field(i);
  }
  out << "]";
  return out.str();
}

}  // namespace tpart
