#ifndef TPART_STORAGE_ORDERED_INDEX_H_
#define TPART_STORAGE_ORDERED_INDEX_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"

namespace tpart {

/// In-memory B+-tree over ObjectKey, used as the ordered primary index of
/// KvStore. Values are not stored here — the tree indexes key presence and
/// supports ordered iteration; the record heap lives in KvStore's hash map.
///
/// A real B+-tree (rather than std::map) is used deliberately: it mirrors
/// the index-maintenance cost the paper attributes part of its
/// absolute-throughput gap to (§6.1.1), and it is exercised by the
/// storage-layer tests.
class OrderedIndex {
 public:
  OrderedIndex();
  ~OrderedIndex();

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  /// Inserts `key`; returns false when already present.
  bool Insert(ObjectKey key);

  /// Removes `key`; returns false when absent.
  bool Erase(ObjectKey key);

  bool Contains(ObjectKey key) const;
  std::size_t size() const { return size_; }

  /// Visits keys in [lo, hi] in ascending order. Returns count visited.
  std::size_t ScanRange(ObjectKey lo, ObjectKey hi,
                        const std::function<void(ObjectKey)>& fn) const;

  /// Smallest key >= `key`, or nullopt.
  std::optional<ObjectKey> LowerBound(ObjectKey key) const;

  /// Validates B+-tree structural invariants (fanout bounds, sorted keys,
  /// uniform leaf depth, leaf-chain order). Used by tests.
  bool CheckInvariants() const;

 private:
  struct Node;

  Node* FindLeaf(ObjectKey key) const;
  void InsertIntoParent(Node* node, ObjectKey sep, Node* right);
  void RebalanceAfterErase(Node* node);
  static bool CheckNode(const Node* node, bool is_root, int* leaf_depth,
                        int depth);

  Node* root_;
  std::size_t size_ = 0;
};

}  // namespace tpart

#endif  // TPART_STORAGE_ORDERED_INDEX_H_
