#include "storage/table.h"

namespace tpart {

TableId Catalog::AddTable(TableDef def) {
  def.id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(def));
  return tables_.back().id;
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace tpart
