#include "storage/ordered_index.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace tpart {

namespace {
// Fanout parameters. A node holds at most kMaxKeys keys and, when not the
// root, at least kMinKeys.
constexpr std::size_t kMaxKeys = 31;
constexpr std::size_t kMinKeys = kMaxKeys / 2;  // 15
}  // namespace

struct OrderedIndex::Node {
  bool is_leaf = true;
  std::vector<ObjectKey> keys;
  std::vector<Node*> children;  // size keys.size()+1 when internal
  Node* parent = nullptr;
  Node* next = nullptr;  // leaf chain
  Node* prev = nullptr;

  ~Node() {
    for (Node* c : children) delete c;
  }

  // Index of first key >= key.
  std::size_t LowerBoundIdx(ObjectKey key) const {
    return static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  // Child to descend into for `key` (internal nodes). Convention: keys[i]
  // is the smallest key in subtree children[i+1].
  std::size_t ChildIdx(ObjectKey key) const {
    return static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  // Position of child `c` in children.
  std::size_t IndexOfChild(const Node* c) const {
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (children[i] == c) return i;
    }
    assert(false && "child not found");
    return 0;
  }
};

OrderedIndex::OrderedIndex() : root_(new Node()) {}

OrderedIndex::~OrderedIndex() { delete root_; }

OrderedIndex::Node* OrderedIndex::FindLeaf(ObjectKey key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    node = node->children[node->ChildIdx(key)];
  }
  return node;
}

bool OrderedIndex::Insert(ObjectKey key) {
  Node* leaf = FindLeaf(key);
  const std::size_t pos = leaf->LowerBoundIdx(key);
  if (pos < leaf->keys.size() && leaf->keys[pos] == key) return false;
  leaf->keys.insert(leaf->keys.begin() + static_cast<std::ptrdiff_t>(pos),
                    key);
  ++size_;

  if (leaf->keys.size() <= kMaxKeys) return true;

  // Split the leaf: upper half moves into a new right sibling.
  Node* right = new Node();
  right->is_leaf = true;
  const std::size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                     leaf->keys.end());
  leaf->keys.resize(mid);
  right->next = leaf->next;
  if (right->next != nullptr) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
  return true;
}

void OrderedIndex::InsertIntoParent(Node* node, ObjectKey sep, Node* right) {
  if (node->parent == nullptr) {
    Node* new_root = new Node();
    new_root->is_leaf = false;
    new_root->keys.push_back(sep);
    new_root->children = {node, right};
    node->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = node->parent;
  const std::size_t pos = parent->IndexOfChild(node);
  parent->keys.insert(parent->keys.begin() + static_cast<std::ptrdiff_t>(pos),
                      sep);
  parent->children.insert(
      parent->children.begin() + static_cast<std::ptrdiff_t>(pos) + 1, right);
  right->parent = parent;

  if (parent->keys.size() <= kMaxKeys) return;

  // Split the internal node: the median key moves up.
  const std::size_t mid = parent->keys.size() / 2;
  const ObjectKey up = parent->keys[mid];
  Node* new_right = new Node();
  new_right->is_leaf = false;
  new_right->keys.assign(
      parent->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      parent->keys.end());
  new_right->children.assign(
      parent->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      parent->children.end());
  for (Node* c : new_right->children) c->parent = new_right;
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  InsertIntoParent(parent, up, new_right);
}

bool OrderedIndex::Contains(ObjectKey key) const {
  const Node* leaf = FindLeaf(key);
  const std::size_t pos = leaf->LowerBoundIdx(key);
  return pos < leaf->keys.size() && leaf->keys[pos] == key;
}

bool OrderedIndex::Erase(ObjectKey key) {
  Node* leaf = FindLeaf(key);
  const std::size_t pos = leaf->LowerBoundIdx(key);
  if (pos >= leaf->keys.size() || leaf->keys[pos] != key) return false;
  leaf->keys.erase(leaf->keys.begin() + static_cast<std::ptrdiff_t>(pos));
  --size_;
  RebalanceAfterErase(leaf);
  return true;
}

void OrderedIndex::RebalanceAfterErase(Node* node) {
  if (node->parent == nullptr) {
    // Root: collapse when an internal root loses all keys.
    if (!node->is_leaf && node->keys.empty()) {
      Node* child = node->children.front();
      node->children.clear();  // prevent recursive delete of `child`
      delete node;
      child->parent = nullptr;
      root_ = child;
    }
    return;
  }
  if (node->keys.size() >= kMinKeys) return;

  Node* parent = node->parent;
  const std::size_t idx = parent->IndexOfChild(node);
  Node* left = idx > 0 ? parent->children[idx - 1] : nullptr;
  Node* right =
      idx + 1 < parent->children.size() ? parent->children[idx + 1] : nullptr;

  // Borrow from a sibling when possible.
  if (left != nullptr && left->keys.size() > kMinKeys) {
    if (node->is_leaf) {
      node->keys.insert(node->keys.begin(), left->keys.back());
      left->keys.pop_back();
      parent->keys[idx - 1] = node->keys.front();
    } else {
      node->keys.insert(node->keys.begin(), parent->keys[idx - 1]);
      parent->keys[idx - 1] = left->keys.back();
      left->keys.pop_back();
      Node* moved = left->children.back();
      left->children.pop_back();
      moved->parent = node;
      node->children.insert(node->children.begin(), moved);
    }
    return;
  }
  if (right != nullptr && right->keys.size() > kMinKeys) {
    if (node->is_leaf) {
      node->keys.push_back(right->keys.front());
      right->keys.erase(right->keys.begin());
      parent->keys[idx] = right->keys.front();
    } else {
      node->keys.push_back(parent->keys[idx]);
      parent->keys[idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      Node* moved = right->children.front();
      right->children.erase(right->children.begin());
      moved->parent = node;
      node->children.push_back(moved);
    }
    return;
  }

  // Merge with a sibling (prefer merging into the left one).
  Node* dst = left != nullptr ? left : node;
  Node* src = left != nullptr ? node : right;
  const std::size_t sep_idx = left != nullptr ? idx - 1 : idx;
  assert(src != nullptr);

  if (dst->is_leaf) {
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->next = src->next;
    if (dst->next != nullptr) dst->next->prev = dst;
  } else {
    dst->keys.push_back(parent->keys[sep_idx]);
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    for (Node* c : src->children) c->parent = dst;
    dst->children.insert(dst->children.end(), src->children.begin(),
                         src->children.end());
    src->children.clear();
  }
  parent->keys.erase(parent->keys.begin() +
                     static_cast<std::ptrdiff_t>(sep_idx));
  parent->children.erase(parent->children.begin() +
                         static_cast<std::ptrdiff_t>(sep_idx) + 1);
  delete src;
  RebalanceAfterErase(parent);
}

std::size_t OrderedIndex::ScanRange(
    ObjectKey lo, ObjectKey hi,
    const std::function<void(ObjectKey)>& fn) const {
  if (lo > hi) return 0;
  const Node* leaf = FindLeaf(lo);
  std::size_t visited = 0;
  std::size_t pos = leaf->LowerBoundIdx(lo);
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      if (leaf->keys[pos] > hi) return visited;
      fn(leaf->keys[pos]);
      ++visited;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return visited;
}

std::optional<ObjectKey> OrderedIndex::LowerBound(ObjectKey key) const {
  const Node* leaf = FindLeaf(key);
  std::size_t pos = leaf->LowerBoundIdx(key);
  while (leaf != nullptr) {
    if (pos < leaf->keys.size()) return leaf->keys[pos];
    leaf = leaf->next;
    pos = 0;
  }
  return std::nullopt;
}

bool OrderedIndex::CheckNode(const Node* node, bool is_root, int* leaf_depth,
                             int depth) {
  if (!is_root && node->keys.size() < kMinKeys) return false;
  if (node->keys.size() > kMaxKeys) return false;
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) return false;
  if (node->is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;
    }
    return true;
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    const Node* child = node->children[i];
    if (child->parent != node) return false;
    if (!child->keys.empty()) {
      if (i > 0 && child->keys.front() < node->keys[i - 1]) return false;
      if (i < node->keys.size() && child->keys.back() >= node->keys[i]) {
        return false;
      }
    }
    if (!CheckNode(child, false, leaf_depth, depth + 1)) return false;
  }
  return true;
}

bool OrderedIndex::CheckInvariants() const {
  int leaf_depth = -1;
  if (!CheckNode(root_, /*is_root=*/true, &leaf_depth, 0)) return false;
  // Leaf chain must enumerate all keys in ascending order.
  const Node* leaf = root_;
  while (!leaf->is_leaf) leaf = leaf->children.front();
  std::size_t seen = 0;
  ObjectKey prev = 0;
  bool first = true;
  while (leaf != nullptr) {
    for (ObjectKey k : leaf->keys) {
      if (!first && k <= prev) return false;
      prev = k;
      first = false;
      ++seen;
    }
    leaf = leaf->next;
  }
  return seen == size_;
}

}  // namespace tpart
