#ifndef TPART_STORAGE_TABLE_H_
#define TPART_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

/// Static description of one table: id, name, arity, and the logical
/// record padding used to model its on-disk footprint.
struct TableDef {
  TableId id = 0;
  std::string name;
  std::size_t num_fields = 1;
  std::size_t padding_bytes = 0;
};

/// Catalog of table definitions for a workload's schema. Table ids must be
/// dense (0..n-1) and unique.
class Catalog {
 public:
  /// Registers a table. Returns its id. Ids are assigned densely in
  /// registration order; `def.id` is overwritten.
  TableId AddTable(TableDef def);

  const TableDef& table(TableId id) const { return tables_.at(id); }
  std::size_t num_tables() const { return tables_.size(); }

  /// Looks up a table by name; returns nullptr when absent.
  const TableDef* FindTable(const std::string& name) const;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace tpart

#endif  // TPART_STORAGE_TABLE_H_
