#ifndef TPART_STORAGE_DATA_PARTITION_H_
#define TPART_STORAGE_DATA_PARTITION_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace tpart {

/// Maps each record to the machine (data partition / sink node) holding it.
/// T-Part "works alongside ... any data partitioning scheme" (§1); all
/// engines take the scheme through this interface.
class DataPartitionMap {
 public:
  virtual ~DataPartitionMap() = default;

  /// Machine holding `key`'s home copy.
  virtual MachineId Locate(ObjectKey key) const = 0;

  /// Number of machines / partitions.
  virtual std::size_t num_partitions() const = 0;
};

/// Horizontal hash partitioning on the primary key — the scheme the paper
/// uses for TPC-E ("we partition each table horizontally based on the hash
/// value of the primary key", §6.1.2) and the Fig. 6(a) baseline.
class HashPartitionMap : public DataPartitionMap {
 public:
  explicit HashPartitionMap(std::size_t num_partitions)
      : num_partitions_(num_partitions) {}

  MachineId Locate(ObjectKey key) const override {
    // Fibonacci hashing of the full flat key for good spread across
    // sequential primary keys.
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    return static_cast<MachineId>((h >> 32) % num_partitions_);
  }

  std::size_t num_partitions() const override { return num_partitions_; }

 private:
  std::size_t num_partitions_;
};

/// Contiguous range partitioning of the primary-key space of every table.
/// `keys_per_partition` records of each table go to machine 0, the next
/// block to machine 1, and so on (wrapping). Used by the Microbenchmark,
/// whose table "is horizontally and evenly partitioned across different
/// machines" (§6.3).
class RangePartitionMap : public DataPartitionMap {
 public:
  RangePartitionMap(std::size_t num_partitions,
                    std::uint64_t keys_per_partition)
      : num_partitions_(num_partitions),
        keys_per_partition_(keys_per_partition) {}

  MachineId Locate(ObjectKey key) const override {
    return static_cast<MachineId>((PrimaryKeyOf(key) / keys_per_partition_) %
                                  num_partitions_);
  }

  std::size_t num_partitions() const override { return num_partitions_; }

 private:
  std::size_t num_partitions_;
  std::uint64_t keys_per_partition_;
};

/// Explicit per-record placement backed by a lookup table, with a fallback
/// map for unlisted keys. This is the output format of the Schism-style
/// baseline (workload-driven data partitioning): the co-access graph
/// partitioner emits one entry per record it has seen.
class LookupPartitionMap : public DataPartitionMap {
 public:
  LookupPartitionMap(std::size_t num_partitions,
                     std::shared_ptr<const DataPartitionMap> fallback)
      : num_partitions_(num_partitions), fallback_(std::move(fallback)) {}

  void Assign(ObjectKey key, MachineId machine) { table_[key] = machine; }

  MachineId Locate(ObjectKey key) const override {
    auto it = table_.find(key);
    if (it != table_.end()) return it->second;
    return fallback_->Locate(key);
  }

  std::size_t num_partitions() const override { return num_partitions_; }

  std::size_t num_explicit_entries() const { return table_.size(); }

 private:
  std::size_t num_partitions_;
  std::unordered_map<ObjectKey, MachineId> table_;
  std::shared_ptr<const DataPartitionMap> fallback_;
};

}  // namespace tpart

#endif  // TPART_STORAGE_DATA_PARTITION_H_
