#ifndef TPART_STORAGE_WRITE_BACK_LOG_H_
#define TPART_STORAGE_WRITE_BACK_LOG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "storage/kv_store.h"
#include "storage/record.h"

namespace tpart {

/// UNDO log for write-back procedures (§5.4): "all storage access is
/// actually done by the write-back procedures rather than normal
/// transactions. In T-Part, only the operations of write-back procedures
/// need to be UNDO-logged. Normal transactions do not need any log."
///
/// A write-back batch (one per sinking round) is opened with BeginBatch,
/// records the pre-image of every storage write, and is sealed with
/// CommitBatch. After a crash, UndoIncomplete() rolls back the effects of
/// any batch that never committed, restoring the storage to a
/// batch-consistent state from which request replay can proceed.
class WriteBackLog {
 public:
  /// Opens batch `epoch` (the sinking-round number). Batches must be
  /// opened in increasing epoch order.
  void BeginBatch(SinkEpoch epoch);

  /// Records the pre-image of `key` before a storage write in the current
  /// batch. `old_value` is nullopt when the write creates the record.
  void LogWrite(ObjectKey key, std::optional<Record> old_value);

  /// Marks the current batch durable/complete.
  void CommitBatch();

  /// Rolls back every entry belonging to an uncommitted batch, newest
  /// first, against `store`. Returns the number of entries undone.
  std::size_t UndoIncomplete(KvStore& store) const;

  /// True when a batch is open but not committed.
  bool HasOpenBatch() const { return open_; }

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t num_committed_batches() const { return committed_batches_; }

  /// Drops committed entries (checkpoint truncation).
  void TruncateCommitted();

 private:
  struct Entry {
    SinkEpoch epoch;
    ObjectKey key;
    std::optional<Record> old_value;
  };

  std::vector<Entry> entries_;
  std::vector<std::size_t> batch_starts_;  // index of first entry per batch
  std::vector<SinkEpoch> batch_epochs_;
  std::size_t committed_batches_ = 0;
  bool open_ = false;
};

}  // namespace tpart

#endif  // TPART_STORAGE_WRITE_BACK_LOG_H_
