#ifndef TPART_STORAGE_ZIGZAG_CHECKPOINT_H_
#define TPART_STORAGE_ZIGZAG_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/kv_store.h"
#include "storage/record.h"

namespace tpart {

/// Zig-Zag consistent checkpointing (Cao et al., VLDB'11), the
/// checkpointing method §5.4 names as supported by deterministic systems:
/// every record keeps two copies AS[k][0] / AS[k][1] plus read/write
/// index bits MR[k] / MW[k]. Mutators write AS[k][MW[k]] and flip MR to
/// follow; a checkpoint round first sets MW[k] = !MR[k] for every key, so
/// the checkpointer can stream AS[k][MR-at-round-start] — a
/// transaction-consistent snapshot — while writes proceed into the other
/// copy with zero quiescence.
///
/// This store is the checkpointable variant of the per-machine storage:
/// reads/writes are wait-free with respect to an in-progress checkpoint
/// (a shared mutex protects only the map shape and the round flip).
class ZigZagCheckpointStore {
 public:
  /// Inserts or overwrites `key` (the mutator path).
  void Put(ObjectKey key, Record value);

  /// Reads the latest committed value; Record::Absent() when missing.
  Record Get(ObjectKey key) const;

  /// Deletes `key` (recorded as an absent version; the checkpoint still
  /// reflects whichever state the round captured).
  void Delete(ObjectKey key);

  std::size_t size() const;

  /// Runs one checkpoint round: flips the write bits, then streams the
  /// frozen copies through `emit` in unspecified key order. Writes racing
  /// with the scan land in the other copy and never tear the snapshot.
  /// Returns the number of records captured (absent records skipped).
  std::size_t Checkpoint(
      const std::function<void(ObjectKey, const Record&)>& emit);

  /// Number of completed checkpoint rounds.
  std::uint64_t rounds() const;

  /// Incremental refresh: folds only `dirty_keys` from `source` into this
  /// checkpoint image (Put when present, Delete when absent), leaving all
  /// other keys untouched. With write-backs as the only storage writes,
  /// passing the keys written back since the previous refresh makes this
  /// image equal to a full copy of `source` at O(dirty) cost. Returns the
  /// number of keys folded in.
  std::size_t ApplyDirty(const KvStore& source,
                         const std::vector<ObjectKey>& dirty_keys);

 private:
  struct Slot {
    Record copy[2];
    std::uint8_t mr = 0;  // copy serving reads (latest committed)
    std::uint8_t mw = 0;  // copy receiving writes
    Slot() {
      copy[0] = Record::Absent();
      copy[1] = Record::Absent();
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<ObjectKey, Slot> slots_;
  std::uint64_t rounds_ = 0;
};

}  // namespace tpart

#endif  // TPART_STORAGE_ZIGZAG_CHECKPOINT_H_
