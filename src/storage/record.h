#ifndef TPART_STORAGE_RECORD_H_
#define TPART_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

/// A tuple in the storage layer. Records hold a small array of 64-bit
/// fields (enough for the TPC-C / TPC-E-like schemas used here) plus an
/// opaque padding size so that workloads can model the paper's record
/// footprint (164 bytes in the Microbenchmark, §6.3) without shipping
/// actual payload bytes around.
class Record {
 public:
  Record() = default;

  /// Record with `num_fields` zero-initialized fields.
  explicit Record(std::size_t num_fields, std::size_t padding_bytes = 0)
      : fields_(num_fields, 0), padding_bytes_(padding_bytes) {}

  /// Record from explicit field values.
  Record(std::initializer_list<std::int64_t> fields,
         std::size_t padding_bytes = 0)
      : fields_(fields), padding_bytes_(padding_bytes) {}

  /// The "absent" marker: the pre-image of a key that does not exist yet.
  /// Pushing/writing-back an absent value is how an aborted transaction
  /// forwards the old state of a fresh insert (§5.3); applying it to
  /// storage deletes the key if present.
  static Record Absent() {
    Record r;
    r.absent_ = true;
    return r;
  }
  bool is_absent() const { return absent_; }

  std::size_t num_fields() const { return fields_.size(); }

  std::int64_t field(std::size_t i) const { return fields_.at(i); }
  void set_field(std::size_t i, std::int64_t v) { fields_.at(i) = v; }

  /// Adds `delta` to field `i`; the canonical read-modify-write primitive
  /// used by the stored procedures.
  void add_to_field(std::size_t i, std::int64_t delta) {
    fields_.at(i) += delta;
  }

  const std::vector<std::int64_t>& fields() const { return fields_; }

  /// Logical wire/storage size in bytes (fields + declared padding).
  std::size_t SizeBytes() const {
    return fields_.size() * sizeof(std::int64_t) + padding_bytes_;
  }

  std::size_t padding_bytes() const { return padding_bytes_; }

  bool operator==(const Record& other) const {
    return fields_ == other.fields_ &&
           padding_bytes_ == other.padding_bytes_ &&
           absent_ == other.absent_;
  }

  /// Debug rendering: "[f0, f1, ...]".
  std::string ToString() const;

 private:
  std::vector<std::int64_t> fields_;
  std::size_t padding_bytes_ = 0;
  bool absent_ = false;
};

}  // namespace tpart

#endif  // TPART_STORAGE_RECORD_H_
