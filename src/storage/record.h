#ifndef TPART_STORAGE_RECORD_H_
#define TPART_STORAGE_RECORD_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

/// A tuple in the storage layer. Records hold a small array of 64-bit
/// fields (enough for the TPC-C / TPC-E-like schemas used here) plus an
/// opaque padding size so that workloads can model the paper's record
/// footprint (164 bytes in the Microbenchmark, §6.3) without shipping
/// actual payload bytes around.
///
/// Fields live inline (no heap) up to kInlineFields — every schema in
/// this repo fits — with a vector fallback for wider records. Records
/// are copied on every read/push/write-back hop of the hot path, so the
/// inline representation is what keeps those hops allocation-free
/// (DESIGN.md §4h).
class Record {
 public:
  static constexpr std::size_t kInlineFields = 6;

  Record() = default;

  /// Record with `num_fields` zero-initialized fields.
  explicit Record(std::size_t num_fields, std::size_t padding_bytes = 0)
      : padding_bytes_(padding_bytes) {
    if (num_fields > kInlineFields) {
      overflow_.assign(num_fields, 0);
    }
    nfields_ = num_fields;
  }

  /// Record from explicit field values.
  Record(std::initializer_list<std::int64_t> fields,
         std::size_t padding_bytes = 0)
      : padding_bytes_(padding_bytes) {
    if (fields.size() > kInlineFields) {
      overflow_.assign(fields.begin(), fields.end());
    } else {
      std::size_t i = 0;
      for (const std::int64_t f : fields) inline_[i++] = f;
    }
    nfields_ = fields.size();
  }

  /// The "absent" marker: the pre-image of a key that does not exist yet.
  /// Pushing/writing-back an absent value is how an aborted transaction
  /// forwards the old state of a fresh insert (§5.3); applying it to
  /// storage deletes the key if present.
  static Record Absent() {
    Record r;
    r.absent_ = true;
    return r;
  }
  bool is_absent() const { return absent_; }

  std::size_t num_fields() const { return nfields_; }

  std::int64_t field(std::size_t i) const {
    CheckIndex(i);
    return data()[i];
  }
  void set_field(std::size_t i, std::int64_t v) {
    CheckIndex(i);
    data()[i] = v;
  }

  /// Adds `delta` to field `i`; the canonical read-modify-write primitive
  /// used by the stored procedures.
  void add_to_field(std::size_t i, std::int64_t delta) {
    CheckIndex(i);
    data()[i] += delta;
  }

  const std::int64_t* fields_data() const { return data(); }

  /// Logical wire/storage size in bytes (fields + declared padding).
  std::size_t SizeBytes() const {
    return nfields_ * sizeof(std::int64_t) + padding_bytes_;
  }

  std::size_t padding_bytes() const { return padding_bytes_; }

  bool operator==(const Record& other) const {
    if (nfields_ != other.nfields_ ||
        padding_bytes_ != other.padding_bytes_ || absent_ != other.absent_) {
      return false;
    }
    const std::int64_t* a = data();
    const std::int64_t* b = other.data();
    for (std::size_t i = 0; i < nfields_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  /// Debug rendering: "[f0, f1, ...]".
  std::string ToString() const;

 private:
  const std::int64_t* data() const {
    return nfields_ > kInlineFields ? overflow_.data() : inline_;
  }
  std::int64_t* data() {
    return nfields_ > kInlineFields ? overflow_.data() : inline_;
  }
  void CheckIndex(std::size_t i) const {
    // Mirrors the std::vector::at() contract this class used to expose.
    if (i >= nfields_) throw std::out_of_range("Record field index");
  }

  std::int64_t inline_[kInlineFields] = {};
  std::vector<std::int64_t> overflow_;  // all fields, iff > kInlineFields
  std::size_t nfields_ = 0;
  std::size_t padding_bytes_ = 0;
  bool absent_ = false;
};

}  // namespace tpart

#endif  // TPART_STORAGE_RECORD_H_
