#include "storage/partitioned_store.h"

#include <algorithm>

namespace tpart {

PartitionedStore::PartitionedStore(
    std::size_t num_machines,
    std::shared_ptr<const DataPartitionMap> partition_map,
    bool maintain_ordered_index)
    : partition_map_(std::move(partition_map)) {
  stores_.reserve(num_machines);
  for (std::size_t i = 0; i < num_machines; ++i) {
    stores_.push_back(std::make_unique<KvStore>(maintain_ordered_index));
  }
}

Status PartitionedStore::Insert(ObjectKey key, Record record) {
  return store(HomeOf(key)).Insert(key, std::move(record));
}

Result<Record> PartitionedStore::Read(ObjectKey key) const {
  return store(HomeOf(key)).Read(key);
}

Status PartitionedStore::Update(ObjectKey key, Record record) {
  return store(HomeOf(key)).Update(key, std::move(record));
}

void PartitionedStore::Upsert(ObjectKey key, Record record) {
  store(HomeOf(key)).Upsert(key, std::move(record));
}

std::size_t PartitionedStore::TotalRecords() const {
  std::size_t total = 0;
  for (const auto& s : stores_) total += s->size();
  return total;
}

std::vector<std::pair<ObjectKey, Record>> PartitionedStore::Snapshot() const {
  std::vector<std::pair<ObjectKey, Record>> out;
  out.reserve(TotalRecords());
  for (const auto& s : stores_) {
    s->Scan(0, ~ObjectKey{0},
            [&](ObjectKey key, const Record& rec) { out.emplace_back(key, rec); });
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool PartitionedStore::StateEquals(const PartitionedStore& other) const {
  if (num_machines() != other.num_machines()) return false;
  return Snapshot() == other.Snapshot();
}

}  // namespace tpart
