#ifndef TPART_TXN_PROCEDURE_H_
#define TPART_TXN_PROCEDURE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/record.h"
#include "txn/txn.h"

namespace tpart {

/// Data-access surface a stored procedure sees while executing. The
/// implementation differs per engine (serial reference, Calvin runtime,
/// T-Part runtime) but the procedure body is identical — this is what
/// makes the commit decision and written values deterministic (§2.1).
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// Value of `key` as of this transaction's place in the total order.
  /// `key` must be in the declared read set.
  virtual Result<Record> Get(ObjectKey key) = 0;

  /// Buffers a write of `key`. `key` must be in the declared write set.
  /// Writes become visible only if the procedure returns OK.
  virtual Status Put(ObjectKey key, Record record) = 0;

  /// Procedure parameters from the TxnSpec.
  virtual const ParamVec& params() const = 0;

  /// Appends a value to the transaction's deterministic output.
  virtual void EmitOutput(std::int64_t value) = 0;

  /// Moves the accumulated output out (called once, after execution).
  virtual std::vector<std::int64_t> TakeOutput() = 0;
};

/// Convenience base storing params and output; engine contexts derive
/// from this and implement only Get/Put.
class BasicTxnContext : public TxnContext {
 public:
  explicit BasicTxnContext(const ParamVec* params) : params_(params) {}

  const ParamVec& params() const override { return *params_; }
  void EmitOutput(std::int64_t value) override { output_.push_back(value); }
  std::vector<std::int64_t> TakeOutput() override { return std::move(output_); }

 private:
  const ParamVec* params_;
  std::vector<std::int64_t> output_;
};

/// Body of a stored procedure. Returning Status::Aborted is the *only*
/// way a transaction aborts in a deterministic system ("there is no reason
/// other than the stored procedure logic that can cause the transaction to
/// abort", §2.1). Any other non-OK status is an engine invariant failure.
using ProcedureFn = std::function<Status(TxnContext&)>;

/// Registry mapping ProcId -> procedure body. Each workload registers its
/// procedures once; all engines share the registry so every engine runs
/// byte-identical logic.
class ProcedureRegistry {
 public:
  /// Registers `fn` under `id`. Overwrites any previous registration.
  void Register(ProcId id, std::string name, ProcedureFn fn);

  /// Looks up a procedure body; nullptr when unregistered.
  const ProcedureFn* Find(ProcId id) const;

  /// Name of a registered procedure ("<unknown>" otherwise).
  const std::string& Name(ProcId id) const;

  std::size_t size() const { return procs_.size(); }

 private:
  struct Entry {
    std::string name;
    ProcedureFn fn;
  };
  std::unordered_map<ProcId, Entry> procs_;
};

/// Runs `spec`'s procedure against `ctx` using `registry`. Returns the
/// TxnResult (committed=false when the procedure aborted by logic).
/// Engine-level failures (unregistered procedure, read outside the
/// declared set) surface as a non-OK status.
Result<TxnResult> RunProcedure(const ProcedureRegistry& registry,
                               const TxnSpec& spec, TxnContext& ctx);

}  // namespace tpart

#endif  // TPART_TXN_PROCEDURE_H_
