#ifndef TPART_TXN_RW_SET_H_
#define TPART_TXN_RW_SET_H_

#include <vector>

#include "common/small_vec.h"
#include "common/types.h"

namespace tpart {

/// Key set with inline storage (common/small_vec.h): OLTP footprints are
/// a handful of keys, so reads/writes live inside the owning TxnSpec and
/// copying a spec does not touch the heap.
using KeySet = SmallVector<ObjectKey, 8>;

/// Normalizes `keys` in place: sorts ascending and removes duplicates.
/// All read/write sets in the system are kept normalized so set operations
/// are linear merges and plans are deterministic.
void NormalizeKeySet(KeySet& keys);

/// Binary-search membership test over a normalized key set.
bool KeySetContains(const KeySet& keys, ObjectKey key);

/// True when two normalized key sets share at least one key.
bool KeySetsIntersect(const KeySet& a, const KeySet& b);

/// Sorted union of two normalized key sets.
KeySet KeySetUnion(const KeySet& a, const KeySet& b);

/// Sorted intersection of two normalized key sets.
KeySet KeySetIntersection(const KeySet& a, const KeySet& b);

/// Declared read and write sets of a transaction, known before execution
/// as deterministic database systems require (§1: "each machine ... needs
/// to analyze the read and write sets of that transaction" before
/// executing it). Both sets are normalized.
struct RwSet {
  KeySet reads;
  KeySet writes;

  /// Sorts and dedups both sets.
  void Normalize();

  bool ReadsKey(ObjectKey key) const { return KeySetContains(reads, key); }
  bool WritesKey(ObjectKey key) const { return KeySetContains(writes, key); }

  /// Union of reads and writes (the transaction's full footprint).
  KeySet AllKeys() const { return KeySetUnion(reads, writes); }

  bool operator==(const RwSet& other) const {
    return reads == other.reads && writes == other.writes;
  }
};

}  // namespace tpart

#endif  // TPART_TXN_RW_SET_H_
