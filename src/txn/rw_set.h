#ifndef TPART_TXN_RW_SET_H_
#define TPART_TXN_RW_SET_H_

#include <vector>

#include "common/types.h"

namespace tpart {

/// Normalizes `keys` in place: sorts ascending and removes duplicates.
/// All read/write sets in the system are kept normalized so set operations
/// are linear merges and plans are deterministic.
void NormalizeKeySet(std::vector<ObjectKey>& keys);

/// Binary-search membership test over a normalized key set.
bool KeySetContains(const std::vector<ObjectKey>& keys, ObjectKey key);

/// True when two normalized key sets share at least one key.
bool KeySetsIntersect(const std::vector<ObjectKey>& a,
                      const std::vector<ObjectKey>& b);

/// Sorted union of two normalized key sets.
std::vector<ObjectKey> KeySetUnion(const std::vector<ObjectKey>& a,
                                   const std::vector<ObjectKey>& b);

/// Sorted intersection of two normalized key sets.
std::vector<ObjectKey> KeySetIntersection(const std::vector<ObjectKey>& a,
                                          const std::vector<ObjectKey>& b);

/// Declared read and write sets of a transaction, known before execution
/// as deterministic database systems require (§1: "each machine ... needs
/// to analyze the read and write sets of that transaction" before
/// executing it). Both sets are normalized.
struct RwSet {
  std::vector<ObjectKey> reads;
  std::vector<ObjectKey> writes;

  /// Sorts and dedups both sets.
  void Normalize();

  bool ReadsKey(ObjectKey key) const { return KeySetContains(reads, key); }
  bool WritesKey(ObjectKey key) const { return KeySetContains(writes, key); }

  /// Union of reads and writes (the transaction's full footprint).
  std::vector<ObjectKey> AllKeys() const { return KeySetUnion(reads, writes); }

  bool operator==(const RwSet& other) const {
    return reads == other.reads && writes == other.writes;
  }
};

}  // namespace tpart

#endif  // TPART_TXN_RW_SET_H_
