#include "txn/txn.h"

#include <sstream>

namespace tpart {

std::string TxnSpec::ToString() const {
  std::ostringstream out;
  out << "T" << id << (is_dummy ? "(dummy)" : "") << " proc=" << proc
      << " R{";
  for (std::size_t i = 0; i < rw.reads.size(); ++i) {
    if (i > 0) out << ",";
    out << rw.reads[i];
  }
  out << "} W{";
  for (std::size_t i = 0; i < rw.writes.size(); ++i) {
    if (i > 0) out << ",";
    out << rw.writes[i];
  }
  out << "}";
  return out.str();
}

bool operator==(const TxnSpec& a, const TxnSpec& b) {
  return a.id == b.id && a.proc == b.proc && a.params == b.params &&
         a.rw == b.rw && a.is_dummy == b.is_dummy &&
         a.node_weight == b.node_weight;
}

TxnSpec MakeDummyTxn() {
  TxnSpec spec;
  spec.is_dummy = true;
  spec.node_weight = 0.0;
  return spec;
}

}  // namespace tpart
