#include "txn/procedure.h"

namespace tpart {

void ProcedureRegistry::Register(ProcId id, std::string name,
                                 ProcedureFn fn) {
  procs_[id] = Entry{std::move(name), std::move(fn)};
}

const ProcedureFn* ProcedureRegistry::Find(ProcId id) const {
  auto it = procs_.find(id);
  return it == procs_.end() ? nullptr : &it->second.fn;
}

const std::string& ProcedureRegistry::Name(ProcId id) const {
  static const std::string kUnknown = "<unknown>";
  auto it = procs_.find(id);
  return it == procs_.end() ? kUnknown : it->second.name;
}

Result<TxnResult> RunProcedure(const ProcedureRegistry& registry,
                               const TxnSpec& spec, TxnContext& ctx) {
  const ProcedureFn* fn = registry.Find(spec.proc);
  if (fn == nullptr) {
    return Status::InvalidArgument("unregistered procedure id " +
                                   std::to_string(spec.proc));
  }
  TxnResult result;
  result.id = spec.id;
  const Status st = (*fn)(ctx);
  if (st.ok()) {
    result.committed = true;
    result.output = ctx.TakeOutput();
  } else if (st.code() == StatusCode::kAborted) {
    result.committed = false;
  } else {
    return st;  // engine invariant failure, not a logic abort
  }
  return result;
}

}  // namespace tpart
