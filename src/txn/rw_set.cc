#include "txn/rw_set.h"

#include <algorithm>

namespace tpart {

void NormalizeKeySet(KeySet& keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

bool KeySetContains(const KeySet& keys, ObjectKey key) {
  return std::binary_search(keys.begin(), keys.end(), key);
}

bool KeySetsIntersect(const KeySet& a, const KeySet& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

KeySet KeySetUnion(const KeySet& a, const KeySet& b) {
  KeySet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

KeySet KeySetIntersection(const KeySet& a, const KeySet& b) {
  KeySet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void RwSet::Normalize() {
  NormalizeKeySet(reads);
  NormalizeKeySet(writes);
}

}  // namespace tpart
