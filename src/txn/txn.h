#ifndef TPART_TXN_TXN_H_
#define TPART_TXN_TXN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/small_vec.h"
#include "txn/rw_set.h"

namespace tpart {

/// Identifier of a stored-procedure type in the ProcedureRegistry.
using ProcId = std::uint32_t;

/// A totally ordered transaction request: the unit the sequencers emit,
/// the schedulers model as T-graph nodes, and the executors run.
///
/// OLTP transactions are "short and drawn from predefined stored
/// procedures" (§1): a request carries the procedure id, its parameters,
/// and the read/write sets derived from them by the scheduler's analysis.
/// Procedure parameter list with inline storage (common/small_vec.h).
using ParamVec = SmallVector<std::int64_t, 8>;

struct TxnSpec {
  /// Place in the total order (1-based; kInvalidTxnId before sequencing).
  TxnId id = kInvalidTxnId;

  ProcId proc = 0;

  /// Procedure parameters; interpretation is procedure-specific. Inline
  /// storage (common/small_vec.h): most procedures take a handful of
  /// scalars, so copying a spec stays off the heap.
  ParamVec params;

  RwSet rw;

  /// Dummy requests are sequencer padding (§3.3): they keep the sinking
  /// process running during client silence and are "discarded when
  /// generating a push plan".
  bool is_dummy = false;

  /// Node weight in the T-graph ("the weight of a node represents the
  /// processing cost of a transaction", §3.1). 1.0 for ordinary OLTP
  /// transactions.
  double node_weight = 1.0;

  bool ReadsKey(ObjectKey key) const { return rw.ReadsKey(key); }
  bool WritesKey(ObjectKey key) const { return rw.WritesKey(key); }

  std::string ToString() const;
};

/// Field-wise equality (wire round-trip tests, plan dissemination).
bool operator==(const TxnSpec& a, const TxnSpec& b);

/// A dummy padding request (see TxnSpec::is_dummy).
TxnSpec MakeDummyTxn();

/// Outcome of executing one transaction.
struct TxnResult {
  TxnId id = kInvalidTxnId;
  bool committed = false;
  /// Procedure-defined output values (e.g. read results); must be
  /// identical across replicas/engines for the same total order.
  std::vector<std::int64_t> output;
};

}  // namespace tpart

#endif  // TPART_TXN_TXN_H_
