#ifndef TPART_SCHEDULER_PLAN_OPTIMIZER_H_
#define TPART_SCHEDULER_PLAN_OPTIMIZER_H_

#include <cstddef>

#include "scheduler/push_plan.h"

namespace tpart {

/// Plan optimisation (§4.3): "the scheduler can optimize the plan by
/// eliminating the cross-partition edges if local reads are possible",
/// e.g. replacing the remote push T1 -> T5 with a local hand-off from T2,
/// which read the same version on T5's machine.
///
/// For every kPush read whose version is also read by an earlier batch
/// transaction on the reader's machine, the push is dropped and the
/// co-located transaction relays the version locally instead. Aborting
/// relays are safe: an aborted transaction still pushes forward the data
/// it read (§5.3).
///
/// Returns the number of remote pushes eliminated.
std::size_t OptimizeSinkPlan(SinkPlan& plan);

}  // namespace tpart

#endif  // TPART_SCHEDULER_PLAN_OPTIMIZER_H_
