#include "scheduler/tpart_scheduler.h"

#include <chrono>

#include "elastic/migration.h"
#include "obs/trace.h"
#include "partition/streaming_greedy.h"
#include "scheduler/plan_optimizer.h"

namespace tpart {

TPartScheduler::TPartScheduler(
    Options options, std::shared_ptr<const DataPartitionMap> data_map,
    std::shared_ptr<GraphPartitioner> partitioner)
    : options_(options),
      graph_(options.graph, std::move(data_map)),
      partitioner_(partitioner != nullptr
                       ? std::move(partitioner)
                       : std::make_shared<StreamingGreedyPartitioner>()) {}

std::vector<SinkPlan> TPartScheduler::OnTxn(const TxnSpec& spec) {
  {
    TPART_TRACE_SPAN("tgraph_insert", "scheduler", {{"txn", spec.id}});
    TrackFrequencies(spec);
    graph_.AddTxn(spec);
  }
  max_tgraph_size_ = std::max(max_tgraph_size_, graph_.num_unsunk());
  TPART_TRACE(Counter("tgraph_unsunk", graph_.num_unsunk()));
  return MaybeSink();
}

std::vector<SinkPlan> TPartScheduler::OnBatch(const TxnBatch& batch) {
  std::vector<SinkPlan> plans;
  for (const auto& spec : batch.txns) {
    TrackFrequencies(spec);
    graph_.AddTxn(spec);
    max_tgraph_size_ = std::max(max_tgraph_size_, graph_.num_unsunk());
    auto produced = MaybeSink();
    for (auto& p : produced) plans.push_back(std::move(p));
  }
  return plans;
}

void TPartScheduler::TrackFrequencies(const TxnSpec& spec) {
  if (spec.is_dummy) return;
  bool exact = false;
  if (options_.elastic != nullptr) {
    // Only worth the hash traffic while a hot-key step is still pending —
    // and migration placement needs the exact counts.
    for (std::size_t i = applied_steps_; i < options_.elastic->num_steps();
         ++i) {
      if (options_.elastic->step(i).policy == MigrationPolicy::kHotKey) {
        exact = true;
        break;
      }
    }
  }
  if (!exact) {
    if (!options_.track_key_frequencies) return;
    // The live hot-key gauge only needs an estimate of the hottest key's
    // access share: stride-sample transactions so the map traffic stays
    // off the scheduler's per-access hot path. Sequential txn ids make
    // the stride deterministic.
    if (spec.id % 16 != 0) return;
  }
  for (const ObjectKey key : spec.rw.reads) ++key_freq_[key];
  for (const ObjectKey key : spec.rw.writes) ++key_freq_[key];
}

std::pair<ObjectKey, double> TPartScheduler::HottestKey() const {
  ObjectKey hot = 0;
  std::uint64_t hot_count = 0;
  std::uint64_t total = 0;
  for (const auto& [key, count] : key_freq_) {
    total += count;
    if (count > hot_count || (count == hot_count && key < hot)) {
      hot = key;
      hot_count = count;
    }
  }
  if (total == 0) return {0, 0.0};
  return {hot, static_cast<double>(hot_count) / static_cast<double>(total)};
}

void TPartScheduler::MaybeApplyMembershipStep() {
  ElasticPartitionMap* elastic = options_.elastic.get();
  if (elastic == nullptr || applied_steps_ >= elastic->num_steps()) return;
  const MembershipStep& next = elastic->step(applied_steps_);
  if (next_epoch_ != next.cut_epoch + 1) return;
  const std::size_t version = applied_steps_ + 1;
  if (next.policy == MigrationPolicy::kHotKey) {
    std::vector<std::pair<ObjectKey, std::uint64_t>> freq(key_freq_.begin(),
                                                          key_freq_.end());
    FillHotKeyOverrides(elastic->mutable_step(applied_steps_), freq, *elastic,
                        version);
  }
  // Overrides are final before the publish: Advance() release-publishes
  // the version, after which concurrent Locate() calls may fold this step.
  elastic->Advance();
  graph_.Rehome(next.n_after);
  ++applied_steps_;
  TPART_TRACE(Counter("membership_steps", applied_steps_));
}

std::vector<SinkPlan> TPartScheduler::MaybeSink() {
  std::vector<SinkPlan> plans;
  while (graph_.num_unsunk() >= 2 * options_.sink_size) {
    plans.push_back(SinkRound(options_.sink_size));
  }
  return plans;
}

std::vector<SinkPlan> TPartScheduler::Drain() {
  std::vector<SinkPlan> plans;
  while (graph_.num_unsunk() > 0) {
    plans.push_back(
        SinkRound(std::min(options_.sink_size, graph_.num_unsunk())));
  }
  return plans;
}

SinkPlan TPartScheduler::SinkRound(std::size_t count) {
  TPART_TRACE_SPAN("sink_round", "scheduler",
                   {{"epoch", next_epoch_}, {"count", count}});
  MaybeApplyMembershipStep();
  const auto start = std::chrono::steady_clock::now();
  {
    TPART_TRACE_SPAN("partition", "scheduler",
                     {{"unsunk", graph_.num_unsunk()}});
    partitioner_->Partition(graph_);
  }
  SinkPlan plan = graph_.Sink(count, next_epoch_++);
  if (options_.optimize_plans) {
    pushes_eliminated_ += OptimizeSinkPlan(plan);
  }
  scheduling_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace tpart
