#include "scheduler/tpart_scheduler.h"

#include <chrono>

#include "obs/trace.h"
#include "partition/streaming_greedy.h"
#include "scheduler/plan_optimizer.h"

namespace tpart {

TPartScheduler::TPartScheduler(
    Options options, std::shared_ptr<const DataPartitionMap> data_map,
    std::shared_ptr<GraphPartitioner> partitioner)
    : options_(options),
      graph_(options.graph, std::move(data_map)),
      partitioner_(partitioner != nullptr
                       ? std::move(partitioner)
                       : std::make_shared<StreamingGreedyPartitioner>()) {}

std::vector<SinkPlan> TPartScheduler::OnTxn(const TxnSpec& spec) {
  {
    TPART_TRACE_SPAN("tgraph_insert", "scheduler", {{"txn", spec.id}});
    graph_.AddTxn(spec);
  }
  max_tgraph_size_ = std::max(max_tgraph_size_, graph_.num_unsunk());
  TPART_TRACE(Counter("tgraph_unsunk", graph_.num_unsunk()));
  return MaybeSink();
}

std::vector<SinkPlan> TPartScheduler::OnBatch(const TxnBatch& batch) {
  std::vector<SinkPlan> plans;
  for (const auto& spec : batch.txns) {
    graph_.AddTxn(spec);
    max_tgraph_size_ = std::max(max_tgraph_size_, graph_.num_unsunk());
    auto produced = MaybeSink();
    for (auto& p : produced) plans.push_back(std::move(p));
  }
  return plans;
}

std::vector<SinkPlan> TPartScheduler::MaybeSink() {
  std::vector<SinkPlan> plans;
  while (graph_.num_unsunk() >= 2 * options_.sink_size) {
    plans.push_back(SinkRound(options_.sink_size));
  }
  return plans;
}

std::vector<SinkPlan> TPartScheduler::Drain() {
  std::vector<SinkPlan> plans;
  while (graph_.num_unsunk() > 0) {
    plans.push_back(
        SinkRound(std::min(options_.sink_size, graph_.num_unsunk())));
  }
  return plans;
}

SinkPlan TPartScheduler::SinkRound(std::size_t count) {
  TPART_TRACE_SPAN("sink_round", "scheduler",
                   {{"epoch", next_epoch_}, {"count", count}});
  const auto start = std::chrono::steady_clock::now();
  {
    TPART_TRACE_SPAN("partition", "scheduler",
                     {{"unsunk", graph_.num_unsunk()}});
    partitioner_->Partition(graph_);
  }
  SinkPlan plan = graph_.Sink(count, next_epoch_++);
  if (options_.optimize_plans) {
    pushes_eliminated_ += OptimizeSinkPlan(plan);
  }
  scheduling_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace tpart
