#include "scheduler/push_plan.h"

#include <sstream>
#include <tuple>

namespace tpart {

namespace {
const char* KindName(ReadSourceKind kind) {
  switch (kind) {
    case ReadSourceKind::kStorage:
      return "storage";
    case ReadSourceKind::kPush:
      return "push";
    case ReadSourceKind::kLocalVersion:
      return "local";
    case ReadSourceKind::kCacheLocal:
      return "cache";
    case ReadSourceKind::kCacheRemote:
      return "cache-remote";
  }
  return "?";
}
}  // namespace

std::string TxnPlan::ToString() const {
  std::ostringstream out;
  out << "T" << txn << "@M" << machine << ":";
  for (const auto& r : reads) {
    out << " R(" << r.key << "," << KindName(r.kind) << ",v" << r.src_txn
        << ")";
    if (r.invalidate_entry) out << "!";
  }
  for (const auto& p : pushes) {
    out << " Push(" << p.key << "->T" << p.dst_txn << "@M" << p.dst_machine
        << ")";
  }
  for (const auto& l : local_versions) {
    out << " Local(" << l.key << "->T" << l.dst_txn << ")";
  }
  for (const auto& c : cache_publishes) {
    out << " Cache(" << c.key << ",sink" << c.epoch << ")";
  }
  for (const auto& w : write_backs) {
    out << " WB(" << w.key << "->M" << w.home << (w.make_sticky ? ",sticky" : "")
        << ")";
  }
  return out.str();
}

std::vector<const TxnPlan*> SinkPlan::PlansFor(MachineId machine) const {
  std::vector<const TxnPlan*> out;
  for (const auto& p : txns) {
    if (p.machine == machine) out.push_back(&p);
  }
  return out;
}

std::size_t SinkPlan::NumDistributed() const {
  std::size_t n = 0;
  for (const auto& p : txns) {
    bool distributed = false;
    for (const auto& r : p.reads) {
      if (r.kind == ReadSourceKind::kPush ||
          r.kind == ReadSourceKind::kCacheRemote ||
          (r.kind == ReadSourceKind::kStorage &&
           r.src_machine != p.machine)) {
        distributed = true;
        break;
      }
    }
    if (distributed) ++n;
  }
  return n;
}

bool operator==(const ReadStep& a, const ReadStep& b) {
  return std::tie(a.key, a.kind, a.src_txn, a.src_machine, a.cache_epoch,
                  a.storage_min_epoch, a.invalidate_entry, a.sticky_hint,
                  a.provider_txn, a.entry_total_reads) ==
         std::tie(b.key, b.kind, b.src_txn, b.src_machine, b.cache_epoch,
                  b.storage_min_epoch, b.invalidate_entry, b.sticky_hint,
                  b.provider_txn, b.entry_total_reads);
}

bool operator==(const PushStep& a, const PushStep& b) {
  return std::tie(a.key, a.dst_txn, a.dst_machine, a.version_txn) ==
         std::tie(b.key, b.dst_txn, b.dst_machine, b.version_txn);
}

bool operator==(const LocalVersionStep& a, const LocalVersionStep& b) {
  return std::tie(a.key, a.dst_txn, a.version_txn) ==
         std::tie(b.key, b.dst_txn, b.version_txn);
}

bool operator==(const CachePublishStep& a, const CachePublishStep& b) {
  return std::tie(a.key, a.epoch) == std::tie(b.key, b.epoch);
}

bool operator==(const WriteBackStep& a, const WriteBackStep& b) {
  return std::tie(a.key, a.home, a.version_txn, a.make_sticky,
                  a.readers_to_await, a.replaces_version) ==
         std::tie(b.key, b.home, b.version_txn, b.make_sticky,
                  b.readers_to_await, b.replaces_version);
}

bool operator==(const TxnPlan& a, const TxnPlan& b) {
  return a.txn == b.txn && a.machine == b.machine &&
         a.num_reads == b.num_reads && a.num_writes == b.num_writes &&
         a.reads == b.reads && a.pushes == b.pushes &&
         a.local_versions == b.local_versions &&
         a.cache_publishes == b.cache_publishes &&
         a.write_backs == b.write_backs;
}

bool SinkPlan::operator==(const SinkPlan& other) const {
  return epoch == other.epoch && txns == other.txns;
}

}  // namespace tpart
