#ifndef TPART_SCHEDULER_PUSH_PLAN_H_
#define TPART_SCHEDULER_PUSH_PLAN_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

/// Where a planned read obtains its version (§3.4, §5.2).
enum class ReadSourceKind {
  /// From the storage engine on `src_machine` (the record's home).
  /// The executor must first wait until that machine has applied
  /// write-backs up to `storage_min_epoch`.
  kStorage,
  /// From a forward-push entry <key, src_txn, this> sent by a *remote*
  /// machine; the executor stalls until the push arrives.
  kPush,
  /// From a local cache entry <key, src_txn, this> written by an earlier
  /// transaction on the same machine (same mechanism as kPush, no network).
  kLocalVersion,
  /// From a cache entry <key, sink#=cache_epoch> on this machine.
  kCacheLocal,
  /// From a cache entry <key, sink#=cache_epoch> on a *remote* machine:
  /// a synchronous pull (this is the case T-graph partitioning tries to
  /// minimise by co-locating readers with the cache).
  kCacheRemote,
};

/// One planned read of `key` by a transaction.
struct ReadStep {
  ObjectKey key = 0;
  ReadSourceKind kind = ReadSourceKind::kStorage;
  /// Version tag: the transaction that wrote the version this read must
  /// see (0 = initial database load). For kPush/kLocalVersion it names the
  /// cache-entry key; for kStorage it validates sticky-cache hits.
  TxnId src_txn = kInvalidTxnId;
  /// kStorage: record home. kPush: pushing machine. kCache*: cache holder.
  MachineId src_machine = kInvalidMachine;
  /// Cache-entry sink number for kCacheLocal/kCacheRemote.
  SinkEpoch cache_epoch = 0;
  /// kStorage: the reader must observe all write-backs through this epoch.
  SinkEpoch storage_min_epoch = 0;
  /// This is the final planned reader of the cache entry; the executor
  /// invalidates the entry after reading (§5.2 "invalidate ... immediately").
  bool invalidate_entry = false;
  /// kStorage only: a sticky-cache entry for this version may exist
  /// locally; the executor may serve the read from it (§5.2).
  bool sticky_hint = false;
  /// Transaction that will *deliver* the version. Equal to src_txn except
  /// after plan optimisation (§4.3), where a co-located earlier reader
  /// relays the version instead of the remote writer.
  TxnId provider_txn = kInvalidTxnId;
  /// Valid when invalidate_entry: total reads ever planned against the
  /// entry. Executors may run rounds concurrently, so the holder frees
  /// the entry only after serving this many reads — not merely when the
  /// flagged read arrives.
  std::uint32_t entry_total_reads = 0;
};

/// After commit (or abort, §5.3), send the version of `key` this
/// transaction holds to `dst_txn` on `dst_machine` as entry
/// <key, this, dst_txn>.
struct PushStep {
  ObjectKey key = 0;
  TxnId dst_txn = kInvalidTxnId;
  MachineId dst_machine = kInvalidMachine;
  /// Version tag carried by the entry (<key, version_txn, dst_txn>). The
  /// writer itself unless this push is a plan-optimisation relay.
  TxnId version_txn = kInvalidTxnId;
};

/// Write the version locally as cache entry <key, this, dst_txn> for a
/// later transaction on the same machine.
struct LocalVersionStep {
  ObjectKey key = 0;
  TxnId dst_txn = kInvalidTxnId;
  /// Version tag (see PushStep::version_txn).
  TxnId version_txn = kInvalidTxnId;
};

/// Publish the version as cache entry <key, sink#=epoch> for transactions
/// to be sunk in later rounds (the §3.4 forward-push -> cache-access edge
/// transformation).
struct CachePublishStep {
  ObjectKey key = 0;
  SinkEpoch epoch = 0;
};

/// Write the version back to the storage holding `key` (possibly remote).
/// Write-backs are the only storage writes in T-Part and are UNDO-logged
/// (§5.4). When `make_sticky`, the home machine also retains the value in
/// its sticky cache (§5.2).
struct WriteBackStep {
  ObjectKey key = 0;
  MachineId home = kInvalidMachine;
  /// Version being persisted (for sticky-entry tagging).
  TxnId version_txn = kInvalidTxnId;
  bool make_sticky = false;
  /// Number of planned storage reads of the *previous* version that the
  /// home machine must serve before applying this write-back. Keeps
  /// readers of the old version from being overtaken when machines run
  /// different sinking rounds concurrently.
  std::uint32_t readers_to_await = 0;
  /// Storage version this write-back replaces (0 = initial load). The
  /// home applies write-backs for a key strictly in replacement order:
  /// only when `replaces_version` is the current storage version.
  TxnId replaces_version = kInvalidTxnId;
};

/// Complete execution plan for one sunk transaction.
struct TxnPlan {
  TxnId txn = kInvalidTxnId;
  /// Executor this transaction was assigned to by the T-graph partitioning.
  MachineId machine = kInvalidMachine;
  /// Declared read/write set sizes (for execution-cost accounting).
  std::uint32_t num_reads = 0;
  std::uint32_t num_writes = 0;
  std::vector<ReadStep> reads;
  std::vector<PushStep> pushes;
  std::vector<LocalVersionStep> local_versions;
  std::vector<CachePublishStep> cache_publishes;
  std::vector<WriteBackStep> write_backs;

  std::string ToString() const;
};

/// Output of one sinking round: plans for every sunk (non-dummy)
/// transaction, in total order. Each machine executes the subset with
/// plan.machine == its id; the full plan is identical on every scheduler
/// (determinism requirement, §3.3).
struct SinkPlan {
  SinkEpoch epoch = 0;
  std::vector<TxnPlan> txns;

  /// Plans owned by `machine`.
  std::vector<const TxnPlan*> PlansFor(MachineId machine) const;

  /// Count of transactions whose reads include a remote source
  /// (kPush / kCacheRemote / remote kStorage).
  std::size_t NumDistributed() const;

  bool operator==(const SinkPlan& other) const;
};

bool operator==(const ReadStep& a, const ReadStep& b);
bool operator==(const PushStep& a, const PushStep& b);
bool operator==(const LocalVersionStep& a, const LocalVersionStep& b);
bool operator==(const CachePublishStep& a, const CachePublishStep& b);
bool operator==(const WriteBackStep& a, const WriteBackStep& b);
bool operator==(const TxnPlan& a, const TxnPlan& b);

}  // namespace tpart

#endif  // TPART_SCHEDULER_PUSH_PLAN_H_
