#ifndef TPART_SCHEDULER_TPART_SCHEDULER_H_
#define TPART_SCHEDULER_TPART_SCHEDULER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "elastic/elastic_map.h"
#include "partition/partitioner.h"
#include "scheduler/push_plan.h"
#include "sequencer/batch.h"
#include "storage/data_partition.h"
#include "tgraph/tgraph.h"

namespace tpart {

/// The T-Part scheduler (§3): consumes the totally ordered request
/// stream, maintains the T-graph, continuously (re)partitions it, and
/// periodically sinks the earliest transactions into push plans.
///
/// Every scheduler in a cluster runs the same code over the same total
/// order, so all schedulers emit identical plans without communicating
/// (§3.3); each machine then executes only its own slice of each plan.
class TPartScheduler {
 public:
  struct Options {
    /// Sinking trigger (§3.3). A sink fires whenever the number of unsunk
    /// transactions reaches 2 * sink_size, sinking the earliest
    /// sink_size; the unsunk window thus oscillates in
    /// [sink_size, 2 * sink_size) (Fig. 4(c): "normally, the number of
    /// unsunk transactions ... is under 200" with sink size 100).
    std::size_t sink_size = 100;
    /// T-graph modelling options (weights, principles, G-Store mode).
    TGraph::Options graph;
    /// Apply the §4.3 plan optimisation after each sinking round.
    bool optimize_plans = true;
    /// Elastic membership: when set, the scheduler owns advancing this
    /// map through its registered MembershipSteps. The step with
    /// cut_epoch E is applied at the top of sink round E + 1 — i.e.
    /// rounds 1..E address the old membership, rounds E+1.. the new one —
    /// by filling hot-key overrides (kHotKey policy), publishing the new
    /// map version, and re-homing the T-graph. Since every scheduler in
    /// the cluster sees the same total order and the same schedule, all
    /// of them flip at the same round and keep emitting identical plans.
    std::shared_ptr<ElasticPartitionMap> elastic;
    /// Track per-key access counts even with no pending hot-key
    /// migration step (the live sampler's hot-key gauge reads them via
    /// HottestKey()). Off by default: the hash traffic is per access.
    bool track_key_frequencies = false;
  };

  /// `partitioner` defaults to the streaming greedy of Algorithm 1 when
  /// null.
  TPartScheduler(Options options,
                 std::shared_ptr<const DataPartitionMap> data_map,
                 std::shared_ptr<GraphPartitioner> partitioner = nullptr);

  /// Feeds one sequenced transaction; returns any plans produced by sink
  /// rounds it triggered.
  std::vector<SinkPlan> OnTxn(const TxnSpec& spec);

  /// Feeds a whole ordered batch.
  std::vector<SinkPlan> OnBatch(const TxnBatch& batch);

  /// Sinks everything still unsunk (end of stream), in sink_size rounds.
  std::vector<SinkPlan> Drain();

  /// Engine feedback: `id` committed on its machine (§3.1 sink weights).
  void OnCommitted(TxnId id) { graph_.OnCommitted(id); }

  const TGraph& graph() const { return graph_; }
  TGraph& mutable_graph() { return graph_; }
  const Options& options() const { return options_; }

  // --- Statistics -----------------------------------------------------
  std::uint64_t num_sink_rounds() const { return next_epoch_ - 1; }
  std::uint64_t num_pushes_eliminated() const { return pushes_eliminated_; }
  /// Wall-clock seconds spent partitioning + sinking (the Fig. 7
  /// "Schedule" component and the §5.1 timing claim).
  double scheduling_seconds() const { return scheduling_seconds_; }
  /// Peak unsunk T-graph size observed (Fig. 4(c)).
  std::size_t max_tgraph_size() const { return max_tgraph_size_; }
  /// The most-accessed key so far and its share of all tracked accesses
  /// (ties break toward the smaller key, so the answer is deterministic).
  /// {0, 0.0} until frequency tracking has seen an access — enabled by a
  /// pending hot-key migration step or track_key_frequencies.
  std::pair<ObjectKey, double> HottestKey() const;
  /// Membership steps already applied (elastic runs only).
  std::size_t membership_steps_applied() const { return applied_steps_; }

 private:
  std::vector<SinkPlan> MaybeSink();
  SinkPlan SinkRound(std::size_t count);
  void MaybeApplyMembershipStep();
  void TrackFrequencies(const TxnSpec& spec);

  Options options_;
  TGraph graph_;
  std::shared_ptr<GraphPartitioner> partitioner_;
  SinkEpoch next_epoch_ = 1;
  std::uint64_t pushes_eliminated_ = 0;
  double scheduling_seconds_ = 0.0;
  std::size_t max_tgraph_size_ = 0;
  std::size_t applied_steps_ = 0;
  /// Access counts per key, fed from the total order — the hot-key
  /// migration policy's input. Deterministic across schedulers because
  /// the stream is.
  std::unordered_map<ObjectKey, std::uint64_t> key_freq_;
};

}  // namespace tpart

#endif  // TPART_SCHEDULER_TPART_SCHEDULER_H_
