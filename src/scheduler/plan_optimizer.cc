#include "scheduler/plan_optimizer.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace tpart {

std::size_t OptimizeSinkPlan(SinkPlan& plan) {
  // Index plans by txn id for push-step removal on the writers.
  std::unordered_map<TxnId, std::size_t> slot;
  slot.reserve(plan.txns.size());
  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    slot[plan.txns[i].txn] = i;
  }

  // holders[(key, version)] = transactions that acquire that version,
  // in total order, with their machines.
  std::map<std::pair<ObjectKey, TxnId>,
           std::vector<std::pair<TxnId, MachineId>>>
      holders;
  for (const auto& p : plan.txns) {
    for (const auto& r : p.reads) {
      if (r.kind == ReadSourceKind::kStorage) continue;
      holders[{r.key, r.src_txn}].emplace_back(p.txn, p.machine);
    }
  }

  std::size_t eliminated = 0;
  for (auto& p : plan.txns) {
    for (auto& r : p.reads) {
      if (r.kind != ReadSourceKind::kPush) continue;
      const auto it = holders.find({r.key, r.src_txn});
      if (it == holders.end()) continue;
      // Earliest co-located holder preceding this reader.
      TxnId relay = kInvalidTxnId;
      for (const auto& [holder, machine] : it->second) {
        if (holder >= p.txn) break;
        if (machine == p.machine) {
          relay = holder;
          break;
        }
      }
      if (relay == kInvalidTxnId) continue;

      // Drop the writer's push to this reader.
      auto wit = slot.find(r.src_txn);
      if (wit != slot.end()) {
        auto& pushes = plan.txns[wit->second].pushes;
        pushes.erase(std::remove_if(pushes.begin(), pushes.end(),
                                    [&](const PushStep& s) {
                                      return s.key == r.key &&
                                             s.dst_txn == p.txn;
                                    }),
                     pushes.end());
      }
      // The relay hands the version off locally.
      auto rit = slot.find(relay);
      if (rit == slot.end()) continue;
      plan.txns[rit->second].local_versions.push_back(
          LocalVersionStep{r.key, p.txn, r.src_txn});
      r.kind = ReadSourceKind::kLocalVersion;
      r.provider_txn = relay;
      r.src_machine = p.machine;
      ++eliminated;
    }
  }
  return eliminated;
}

}  // namespace tpart
