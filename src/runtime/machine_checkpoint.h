#ifndef TPART_RUNTIME_MACHINE_CHECKPOINT_H_
#define TPART_RUNTIME_MACHINE_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cache/cache_area.h"
#include "common/types.h"
#include "runtime/channel.h"
#include "runtime/storage_service.h"
#include "storage/zigzag_checkpoint.h"

namespace tpart {

/// One machine's durable checkpoint: everything Machine::Recover() (or
/// offline ReplayMachine()) needs to resume from epoch E instead of from
/// the initial load.
///
///  * `records` — the partition's data, maintained incrementally: each
///    capture folds only the keys written back since the previous capture
///    into the zig-zag image (ZigZagCheckpointStore::ApplyDirty), so a
///    capture costs O(dirty), not O(partition).
///  * `cache` / `storage` — the volatile execution state the truncated
///    log suffix depends on: live cache entries and the storage version
///    discipline (current tags, parked write-backs, parked remote reads).
///  * `parked_pulls` — remote cache pulls the machine had parked waiting
///    for a local publish; re-injected (marked `redelivery`) at restore.
///  * `results` — the transaction results accumulated up to the capture.
///    Replaying only the suffix cannot regenerate the truncated prefix's
///    results, so the capture carries them.
///
/// Thread-safety: capture runs on the victim's service thread; restore
/// runs on the watchdog thread strictly after the victim crashed (its
/// threads quiesced), so the two never overlap. The only field read
/// concurrently is `epoch_` (the dissemination stage reads it to compute
/// the resend-window prune bound), hence the atomic.
struct MachineCheckpoint {
  ZigZagCheckpointStore records;
  CacheArea::Image cache;
  StorageService::Image storage;
  std::vector<Message> parked_pulls;
  std::vector<TxnResult> results;

  // --- capture statistics (read after the run joins) -------------------
  std::uint64_t captures_taken = 0;
  std::uint64_t records_captured = 0;
  std::uint64_t capture_us = 0;
  std::uint64_t truncated_request_entries = 0;
  std::uint64_t truncated_network_messages = 0;

  /// Epoch this checkpoint covers: every effect of sink rounds <= epoch()
  /// is inside the images; replay needs only the log suffix past it.
  /// 0 = the initial load-time checkpoint (full replay).
  SinkEpoch epoch() const { return epoch_.load(std::memory_order_acquire); }
  void set_epoch(SinkEpoch e) { epoch_.store(e, std::memory_order_release); }

 private:
  std::atomic<SinkEpoch> epoch_{0};
};

}  // namespace tpart

#endif  // TPART_RUNTIME_MACHINE_CHECKPOINT_H_
