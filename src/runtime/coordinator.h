#ifndef TPART_RUNTIME_COORDINATOR_H_
#define TPART_RUNTIME_COORDINATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "runtime/channel.h"
#include "sequencer/batch.h"

namespace tpart {

/// Configuration of the replicated coordinator (DESIGN §4i).
struct CoordinatorOptions {
  /// Standby replicas behind the leader. 0 disables replication entirely
  /// (the coordinator stays a single point of failure, as before).
  std::size_t standbys = 0;
  /// Leader -> standby liveness heartbeat period.
  std::uint64_t heartbeat_interval_us = 1000;
  /// Silence from the leader before a standby's election timer fires.
  std::uint64_t election_timeout_us = 20000;
  /// Randomized pre-claim backoff unit: standby r waits
  /// backoff_base_us * r + jitter(< backoff_base_us) before claiming, so
  /// concurrent timeouts (e.g. under stragglers) rarely duel.
  std::uint64_t backoff_base_us = 2000;
  /// Seed for the per-replica backoff jitter.
  std::uint64_t seed = 1;
};

/// The coordinator replica ensemble: the leader plus `standbys` standby
/// replicas, running as extra transport endpoints [M, M+R) beside the M
/// worker machines. The live streaming coordinator (admission + scheduler
/// + dissemination in cluster.cc) acts through the current leader:
///
///  * every sequenced batch is appended to the replicated request log via
///    LeaderAppend(), which blocks until a majority of the ensemble holds
///    it (kLogAppend / kLogAck(key=0) on the real wire; the link layer
///    delivers exactly once but retries can reorder under faults, so
///    replicas park out-of-order entries until the gap fills);
///  * standbys detect leader death by heartbeat silence past the election
///    timeout, back off by rank + seeded jitter to avoid dueling claims,
///    then broadcast kLeaderClaim (Zab election semantics mirrored from
///    src/sequencer/zab.cc: longest committed history wins, ties go to
///    the lower replica id — here the claim carries the log length and
///    receivers ship any suffix the claimant is missing before acking);
///  * the new leader rebuilds all coordinator state by deterministic
///    replay of the committed log (done by cluster.cc, which also probes
///    per-machine dissemination watermarks through ProbeWatermarks()).
///
/// Modeling note, stated honestly: commits require a true majority, so no
/// committed entry can ever be lost; elections, however, assume the
/// in-process crash-stop fault model (no partitions, no byzantine
/// replicas), so a single standby may claim leadership without assembling
/// an election majority. DESIGN §4i discusses the gap.
class CoordinatorReplicaSet {
 public:
  /// Sends one message from transport endpoint `from` to endpoint `to`.
  using SendFn = std::function<void(MachineId from, MachineId to, Message)>;

  CoordinatorReplicaSet(CoordinatorOptions options, std::size_t num_machines,
                        SendFn send);
  ~CoordinatorReplicaSet();

  std::size_t num_replicas() const { return replicas_.size(); }
  /// Transport endpoint of replica `r`.
  MachineId endpoint(std::size_t r) const {
    return static_cast<MachineId>(num_machines_ + r);
  }

  /// Starts the per-replica pump threads and the heartbeat sender.
  void Start();
  /// Stops every thread. Idempotent; call before tearing the transport
  /// down (pumps and the heartbeat sender send through it).
  void Shutdown();

  /// Delivery sink for replica `r` (wired into the transport's sink
  /// vector by LocalCluster::Reset).
  void Deliver(std::size_t r, Message msg);

  /// Leader-side append of one sequenced batch. Blocks until a majority
  /// of the ensemble (leader included) holds the entry. Returns false if
  /// the leader crash-stopped before the quorum formed — the caller must
  /// treat the batch as never admitted (the next term's replay decides
  /// its fate from the surviving logs).
  [[nodiscard]] bool LeaderAppend(const TxnBatch& batch);

  /// Crash-stops the current leader: it stops heartbeating, acking, and
  /// pumping. Standbys will detect and elect.
  void CrashLeader();

  /// Blocks until a standby has won an election; returns its index.
  [[nodiscard]] Result<std::size_t> WaitElected(
      std::chrono::microseconds timeout);

  /// Waits until every live replica has acked the new leader's claim (so
  /// later appends cannot race the adoption).
  void SyncNewLeader();

  /// Rejoins a crashed replica as a standby under the current leader:
  /// truncates any uncommitted divergent tail and ships the committed
  /// suffix it missed while down (over the wire, in log order).
  void RestartReplica(std::size_t r);

  /// Leader-side probe of every worker machine's dissemination watermark
  /// (highest contiguous sink round enqueued). Re-probes periodically —
  /// a machine that is itself mid-recovery answers once rebuilt. Returns
  /// one epoch per machine.
  [[nodiscard]] Result<std::vector<SinkEpoch>> ProbeWatermarks(
      std::chrono::microseconds timeout);

  /// Copy of the current leader's committed log, in order.
  std::vector<TxnBatch> CommittedLog() const;

  /// Zombie-leader revival (DESIGN §4j): replays replica `zombie`'s last
  /// log entry onto the wire as a kLogAppend stamped with `stale_term` —
  /// the message a paused-then-revived deposed leader would send. Every
  /// live replica must reject it by term fencing (fenced_appends()).
  void InjectStaleAppend(std::uint64_t stale_term, std::size_t zombie);

  std::size_t leader() const;
  /// Current election term (starts at 1; each won election increments).
  std::uint64_t term() const;
  /// Stale-term appends / claims rejected by replica-side term fencing.
  std::uint64_t fenced_appends() const;
  std::uint64_t log_appends() const;
  std::uint64_t log_acks() const;
  std::uint64_t committed_batches() const;
  std::uint64_t dueling_claims() const;
  /// Leader crash-stop until the first standby election timer fired.
  std::uint64_t last_detection_us() const;
  /// Election timer firing until the winning claim was broadcast.
  std::uint64_t last_election_us() const;

 private:
  struct Replica {
    Channel inbound;
    std::vector<TxnBatch> log;
    /// Out-of-order appends parked until the log grows to meet them: the
    /// link layer is reliable exactly-once but a dropped packet's retry
    /// can land after its successors. index -> (ack destination, batch).
    std::map<std::uint64_t, std::pair<MachineId, TxnBatch>> pending;
    std::chrono::steady_clock::time_point last_hb;
    bool down = false;
    /// Candidate state: nonzero deadline means an armed pre-claim backoff.
    std::chrono::steady_clock::time_point claim_deadline{};
    bool candidate = false;
    std::thread pump;
  };

  void PumpLoop(std::size_t r);
  void HeartbeatLoop();
  void HandleAppend(std::size_t r, Message msg);
  void HandleAck(std::size_t r, Message msg);
  void HandleClaim(std::size_t r, Message msg);
  void MaybeElect(std::size_t r);
  /// Ships log entries [from, to) of `src`'s log to endpoint `dst_ep`.
  /// Caller must NOT hold mu_ (sends can block on transport
  /// backpressure); entries are copied out under the lock first.
  void ShipLogRange(std::size_t src, MachineId dst_ep, std::size_t from,
                    std::size_t to);

  CoordinatorOptions options_;
  std::size_t num_machines_;
  SendFn send_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::size_t leader_ = 0;
  std::uint64_t term_ = 1;
  bool shutdown_ = false;

  /// Quorum bookkeeping for in-flight appends: index -> acks received
  /// (leader's own copy counts implicitly).
  std::map<std::uint64_t, std::size_t> append_acks_;
  std::condition_variable commit_cv_;

  /// Election rendezvous with the run loop.
  bool elected_ = false;
  std::size_t elected_leader_ = 0;
  std::condition_variable elected_cv_;
  std::size_t claim_acks_ = 0;
  std::condition_variable sync_cv_;

  /// Watermark probe rendezvous.
  std::uint64_t probe_round_ = 0;
  std::map<MachineId, SinkEpoch> watermarks_;
  std::condition_variable wm_cv_;

  /// Failover timing (steady clock, recorded at the three protocol
  /// events; accessors return the differences).
  std::chrono::steady_clock::time_point t_crash_{};
  std::chrono::steady_clock::time_point t_timeout_{};
  std::chrono::steady_clock::time_point t_claimed_{};
  bool timeout_recorded_ = false;

  std::uint64_t log_appends_ = 0;
  std::uint64_t log_acks_ = 0;
  std::uint64_t committed_batches_ = 0;
  std::uint64_t dueling_claims_ = 0;
  std::uint64_t fenced_appends_ = 0;
  std::uint64_t hb_seq_ = 0;

  std::thread heartbeat_thread_;
  bool started_ = false;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_COORDINATOR_H_
