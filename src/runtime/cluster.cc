#include "runtime/cluster.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tpart {

LocalCluster::LocalCluster(const Workload* workload,
                           LocalClusterOptions options)
    : workload_(workload), options_(options) {
  Reset();
}

LocalCluster::~LocalCluster() { StopAll(); }

void LocalCluster::Reset() {
  StopAll();
  machines_.clear();
  transport_ = MakeTransport(options_.transport);
  store_ = std::make_unique<PartitionedStore>(
      workload_->num_machines, workload_->partition_map,
      /*maintain_ordered_index=*/true);
  workload_->loader(*store_);
  for (std::size_t m = 0; m < workload_->num_machines; ++m) {
    machines_.push_back(std::make_unique<Machine>(
        static_cast<MachineId>(m), workload_->num_machines,
        &store_->store(static_cast<MachineId>(m)),
        workload_->procedures.get(),
        [this, m](MachineId to, Message msg) {
          transport_->Send(static_cast<MachineId>(m), to, std::move(msg));
        },
        options_.sticky_ttl, options_.executor_workers));
    const DataPartitionMap* map = workload_->partition_map.get();
    machines_.back()->set_locator(
        [map](ObjectKey key) { return map->Locate(key); });
  }
  std::vector<Transport::DeliverFn> sinks;
  sinks.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    sinks.push_back([this, m](Message msg) {
      machines_[m]->Deliver(std::move(msg));
    });
  }
  transport_->Start(std::move(sinks));
}

void LocalCluster::StopAll() {
  // Transport first: once it stops, no delivery can race machine teardown.
  if (transport_) transport_->Stop();
  for (auto& m : machines_) {
    if (m) m->Stop();
  }
}

ClusterRunOutcome LocalCluster::RunTPart() {
  if (used_) Reset();
  used_ = true;
  // One scheduler suffices: every scheduler in a real deployment computes
  // the identical plan stream (verified by the determinism tests).
  TPartScheduler::Options sched_opts = options_.scheduler;
  sched_opts.graph.num_machines = workload_->num_machines;
  TPartScheduler scheduler(sched_opts, workload_->partition_map);

  // Specs are owned here and handed to exactly one machine per
  // transaction; plan items carry their spec by value so nothing in the
  // pipeline ever points back into a caller-scoped container.
  std::unordered_map<TxnId, TxnSpec> spec_of;
  last_plans_.clear();
  {
    std::vector<TxnSpec> txns = workload_->SequencedRequests();
    spec_of.reserve(txns.size());
    for (TxnSpec& spec : txns) {
      for (SinkPlan& plan : scheduler.OnTxn(spec)) {
        last_plans_.push_back(std::move(plan));
      }
      const TxnId id = spec.id;
      spec_of.emplace(id, std::move(spec));
    }
  }
  for (SinkPlan& plan : scheduler.Drain()) {
    last_plans_.push_back(std::move(plan));
  }

  // Distribute per-machine slices (every machine sees every epoch so its
  // sticky/eviction clock advances).
  for (const SinkPlan& plan : last_plans_) {
    std::vector<std::vector<Machine::PlanItem>> slices(machines_.size());
    for (const TxnPlan& p : plan.txns) {
      auto node = spec_of.extract(p.txn);
      TPART_CHECK(!node.empty()) << "no spec for planned T" << p.txn;
      slices[p.machine].push_back(
          Machine::PlanItem{p, std::move(node.mapped())});
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      machines_[m]->EnqueueTPartEpoch(plan.epoch, std::move(slices[m]));
    }
  }

  for (auto& m : machines_) m->StartTPart();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  // Executors fire-and-forget their final write-backs; wait until the
  // transport has delivered (and, under faults, acked) every message
  // before reading final store state.
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/false);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

ClusterRunOutcome LocalCluster::RunCalvin() {
  if (used_) Reset();
  used_ = true;
  const std::vector<TxnSpec> txns = workload_->SequencedRequests();
  for (const TxnSpec& spec : txns) {
    if (spec.is_dummy) continue;
    // Each scheduler "forwards the request to the local executor if the
    // read and write sets cover any data stored locally" (§2.1).
    std::vector<bool> participates(machines_.size(), false);
    for (const ObjectKey k : spec.rw.AllKeys()) {
      participates[workload_->partition_map->Locate(k)] = true;
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (participates[m]) machines_[m]->EnqueueCalvinTxn(spec);
    }
  }
  for (auto& m : machines_) m->StartCalvin();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/true);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

ClusterRunOutcome LocalCluster::CollectResults(bool dedup_participants) {
  std::vector<TxnResult> all;
  for (auto& m : machines_) {
    for (auto& r : m->TakeResults()) all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(),
            [](const TxnResult& a, const TxnResult& b) {
              return a.id < b.id;
            });
  ClusterRunOutcome outcome;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (dedup_participants && !outcome.results.empty() &&
        outcome.results.back().id == all[i].id) {
      // Determinism: every participant must reach the same decision and
      // outputs (§2.1).
      TPART_CHECK(outcome.results.back().committed == all[i].committed &&
                  outcome.results.back().output == all[i].output)
          << "participants diverged on T" << all[i].id;
      continue;
    }
    outcome.results.push_back(std::move(all[i]));
  }
  for (const auto& r : outcome.results) {
    if (r.committed) {
      ++outcome.committed;
    } else {
      ++outcome.aborted;
    }
  }
  return outcome;
}

}  // namespace tpart
