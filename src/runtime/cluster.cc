#include "runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "net/wire.h"

namespace tpart {

LocalCluster::LocalCluster(const Workload* workload,
                           LocalClusterOptions options)
    : workload_(workload), options_(options) {
  Reset();
}

LocalCluster::~LocalCluster() { StopAll(); }

void LocalCluster::Reset() {
  StopAll();
  machines_.clear();
  transport_ = MakeTransport(options_.transport);
  store_ = std::make_unique<PartitionedStore>(
      workload_->num_machines, workload_->partition_map,
      /*maintain_ordered_index=*/true);
  workload_->loader(*store_);
  for (std::size_t m = 0; m < workload_->num_machines; ++m) {
    machines_.push_back(std::make_unique<Machine>(
        static_cast<MachineId>(m), workload_->num_machines,
        &store_->store(static_cast<MachineId>(m)),
        workload_->procedures.get(),
        [this, m](MachineId to, Message msg) {
          transport_->Send(static_cast<MachineId>(m), to, std::move(msg));
        },
        options_.sticky_ttl, options_.executor_workers));
    const DataPartitionMap* map = workload_->partition_map.get();
    machines_.back()->set_locator(
        [map](ObjectKey key) { return map->Locate(key); });
  }
  std::vector<Transport::DeliverFn> sinks;
  sinks.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    sinks.push_back([this, m](Message msg) {
      machines_[m]->Deliver(std::move(msg));
    });
  }
  transport_->Start(std::move(sinks));
}

void LocalCluster::StopAll() {
  // Transport first: once it stops, no delivery can race machine teardown.
  if (transport_) transport_->Stop();
  for (auto& m : machines_) {
    if (m) m->Stop();
  }
}

ClusterRunOutcome LocalCluster::RunTPart() {
  return options_.streaming ? RunTPartStreaming() : RunTPartBatch();
}

ClusterRunOutcome LocalCluster::RunTPartBatch() {
  if (used_) Reset();
  used_ = true;
  // One scheduler suffices: every scheduler in a real deployment computes
  // the identical plan stream (verified by the determinism tests).
  TPartScheduler::Options sched_opts = options_.scheduler;
  sched_opts.graph.num_machines = workload_->num_machines;
  TPartScheduler scheduler(sched_opts, workload_->partition_map);

  // Specs are owned here and handed to exactly one machine per
  // transaction; plan items carry their spec by value so nothing in the
  // pipeline ever points back into a caller-scoped container.
  std::unordered_map<TxnId, TxnSpec> spec_of;
  last_plans_.clear();
  {
    std::vector<TxnSpec> txns = workload_->SequencedRequests();
    spec_of.reserve(txns.size());
    for (TxnSpec& spec : txns) {
      for (SinkPlan& plan : scheduler.OnTxn(spec)) {
        last_plans_.push_back(std::move(plan));
      }
      const TxnId id = spec.id;
      spec_of.emplace(id, std::move(spec));
    }
  }
  for (SinkPlan& plan : scheduler.Drain()) {
    last_plans_.push_back(std::move(plan));
  }

  // Distribute per-machine slices (every machine sees every epoch so its
  // sticky/eviction clock advances).
  for (const SinkPlan& plan : last_plans_) {
    std::vector<std::vector<Machine::PlanItem>> slices(machines_.size());
    for (const TxnPlan& p : plan.txns) {
      auto node = spec_of.extract(p.txn);
      TPART_CHECK(!node.empty()) << "no spec for planned T" << p.txn;
      slices[p.machine].push_back(
          Machine::PlanItem{p, std::move(node.mapped())});
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      machines_[m]->EnqueueTPartEpoch(plan.epoch, std::move(slices[m]));
    }
  }

  for (auto& m : machines_) m->StartTPart();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  // Executors fire-and-forget their final write-backs; wait until the
  // transport has delivered (and, under faults, acked) every message
  // before reading final store state.
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/false);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

namespace {

/// One sunk round in flight between the scheduler and dissemination
/// stages: the plan plus the owned specs of its transactions, in plan
/// order. Ownership moves with the stream; nothing points back into a
/// caller-scoped container.
struct PlanEnvelope {
  SinkPlan plan;
  std::vector<TxnSpec> specs;
};

}  // namespace

ClusterRunOutcome LocalCluster::RunTPartStreaming() {
  if (used_) Reset();
  used_ = true;
  last_plans_.clear();  // streaming never materializes the plan list

  // Admission-to-result latency: the admission stage stamps each real
  // transaction at batch formation; the executor's commit hook closes the
  // pair and erases it, so the map holds only in-flight transactions.
  struct LatencyTracker {
    std::mutex mu;
    std::unordered_map<TxnId, std::chrono::steady_clock::time_point> admitted;
    Histogram us;
  } latency;

  for (auto& m : machines_) {
    m->set_epoch_queue_capacity(options_.pipeline.epoch_queue_capacity);
    m->set_commit_hook([&latency](TxnId id) {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(latency.mu);
      auto it = latency.admitted.find(id);
      if (it == latency.admitted.end()) return;
      latency.us.Add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - it->second)
              .count()));
      latency.admitted.erase(it);
    });
  }
  for (auto& m : machines_) m->StartTPart();

  // Stage channels. An empty batch / nullopt envelope is the
  // end-of-stream sentinel (real batches are never empty).
  BlockingQueue<TxnBatch> batch_queue(options_.pipeline.batch_queue_capacity);
  BlockingQueue<std::optional<PlanEnvelope>> plan_queue(
      options_.pipeline.plan_queue_capacity);

  // ---- Stage 1: admission. Pulls requests incrementally — the full
  // workload is never materialized — and batches them through the
  // Sequencer (ids assigned, short tail dummy-padded, §3.3).
  std::uint64_t admitted = 0, dummies = 0, batches = 0;
  std::uint64_t admission_waits = 0;
  double admission_seconds = 0.0;
  std::thread admission([&] {
    const auto t0 = std::chrono::steady_clock::now();
    Sequencer sequencer(options_.pipeline.sequencer);
    std::unique_ptr<RequestSource> source = workload_->MakeRequestSource();
    auto emit = [&](TxnBatch batch) {
      const auto now = std::chrono::steady_clock::now();
      {
        std::lock_guard<std::mutex> lock(latency.mu);
        for (const TxnSpec& spec : batch.txns) {
          if (!spec.is_dummy) latency.admitted.emplace(spec.id, now);
        }
      }
      if (batch_queue.Send(std::move(batch))) ++admission_waits;
      ++batches;
    };
    while (std::optional<TxnSpec> spec = source->Next()) {
      sequencer.Submit(std::move(*spec));
      ++admitted;
      while (std::optional<TxnBatch> batch = sequencer.NextBatch()) {
        emit(std::move(*batch));
      }
    }
    // Only a non-empty tail is flushed: padding an empty tail would
    // append a round of pure dummies for nothing.
    if (sequencer.pending() > 0) {
      if (std::optional<TxnBatch> batch = sequencer.Flush()) {
        emit(std::move(*batch));
      }
    }
    dummies = sequencer.num_dummies_issued();
    admission_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    batch_queue.Send(TxnBatch{});
  });

  // ---- Stage 2: scheduler. Consumes ordered batches, maintains the
  // T-graph, and emits each sunk round the moment it exists. Specs are
  // parked here between arrival and sinking — the T-graph's unsunk bound
  // caps that parking, so this stage is bounded too.
  std::uint64_t scheduler_waits = 0;
  std::thread scheduling([&] {
    TPartScheduler::Options sched_opts = options_.scheduler;
    sched_opts.graph.num_machines = workload_->num_machines;
    TPartScheduler scheduler(sched_opts, workload_->partition_map);
    std::unordered_map<TxnId, TxnSpec> parked;
    auto emit = [&](SinkPlan plan) {
      PlanEnvelope env;
      env.specs.reserve(plan.txns.size());
      for (const TxnPlan& p : plan.txns) {
        auto node = parked.extract(p.txn);
        TPART_CHECK(!node.empty())
            << "round " << plan.epoch << " sank T" << p.txn
            << " with no parked spec";
        env.specs.push_back(std::move(node.mapped()));
      }
      env.plan = std::move(plan);
      if (plan_queue.Send(std::move(env))) ++scheduler_waits;
    };
    while (true) {
      TxnBatch batch = batch_queue.Receive();
      if (batch.txns.empty()) break;
      for (TxnSpec& spec : batch.txns) {
        std::vector<SinkPlan> plans = scheduler.OnTxn(spec);
        // Dummies are discarded at plan generation (§3.3); only real
        // specs ever travel to a machine.
        if (!spec.is_dummy) parked.emplace(spec.id, std::move(spec));
        for (SinkPlan& plan : plans) emit(std::move(plan));
      }
    }
    for (SinkPlan& plan : scheduler.Drain()) emit(std::move(plan));
    TPART_CHECK(parked.empty()) << parked.size() << " specs never sank";
    plan_queue.Send(std::nullopt);
  });

  // ---- Stage 3: dissemination (this thread). Each round is serialized
  // once and shipped to every machine as a kSinkPlan wire message; epoch
  // credits bound how far dissemination may run ahead of execution.
  // Round r reaches every machine before r+1 reaches any, which the
  // FIFO executors rely on.
  std::uint64_t plans = 0, credit_waits = 0;
  SinkEpoch last_epoch = 0;
  while (true) {
    std::optional<PlanEnvelope> env = plan_queue.Receive();
    if (!env.has_value()) break;
    ++plans;
    last_epoch = env->plan.epoch;
    Message msg;
    msg.type = Message::Type::kSinkPlan;
    msg.epoch = env->plan.epoch;
    msg.plan_bytes = EncodeSinkPlan(env->plan);
    msg.specs = std::move(env->specs);
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (machines_[m]->AcquireEpochCredit()) ++credit_waits;
      transport_->Send(0, static_cast<MachineId>(m), msg);
    }
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    Message end;
    end.type = Message::Type::kPlanStreamEnd;
    end.epoch = last_epoch;
    transport_->Send(0, static_cast<MachineId>(m), std::move(end));
  }

  admission.join();
  scheduling.join();
  // Executors exit once the stream end reaches them (via the transport's
  // reliable delivery) and their queues drain.
  for (auto& m : machines_) m->JoinExecutor();
  // The hooks capture this frame's LatencyTracker; no executor can call
  // them now, and the machines outlive this frame.
  for (auto& m : machines_) m->set_commit_hook(nullptr);
  transport_->Flush();

  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/false);
  outcome.transport = transport_->stats();
  outcome.pipeline.admitted = admitted;
  outcome.pipeline.dummies = dummies;
  outcome.pipeline.batches = batches;
  outcome.pipeline.plans = plans;
  outcome.pipeline.backpressure_waits =
      admission_waits + scheduler_waits + credit_waits;
  outcome.pipeline.batch_queue_high_water = batch_queue.high_water();
  outcome.pipeline.plan_queue_high_water = plan_queue.high_water();
  for (const auto& m : machines_) {
    outcome.pipeline.epoch_queue_high_water =
        std::max<std::uint64_t>(outcome.pipeline.epoch_queue_high_water,
                                m->epoch_queue_high_water());
  }
  outcome.pipeline.admission_seconds = admission_seconds;
  outcome.pipeline.admit_to_commit_us = latency.us;
  StopAll();
  return outcome;
}

ClusterRunOutcome LocalCluster::RunCalvin() {
  if (used_) Reset();
  used_ = true;
  const std::vector<TxnSpec> txns = workload_->SequencedRequests();
  for (const TxnSpec& spec : txns) {
    if (spec.is_dummy) continue;
    // Each scheduler "forwards the request to the local executor if the
    // read and write sets cover any data stored locally" (§2.1).
    std::vector<bool> participates(machines_.size(), false);
    for (const ObjectKey k : spec.rw.AllKeys()) {
      participates[workload_->partition_map->Locate(k)] = true;
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (participates[m]) machines_[m]->EnqueueCalvinTxn(spec);
    }
  }
  for (auto& m : machines_) m->StartCalvin();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/true);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

ClusterRunOutcome LocalCluster::CollectResults(bool dedup_participants) {
  std::vector<TxnResult> all;
  for (auto& m : machines_) {
    for (auto& r : m->TakeResults()) all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(),
            [](const TxnResult& a, const TxnResult& b) {
              return a.id < b.id;
            });
  ClusterRunOutcome outcome;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (dedup_participants && !outcome.results.empty() &&
        outcome.results.back().id == all[i].id) {
      // Determinism: every participant must reach the same decision and
      // outputs (§2.1).
      TPART_CHECK(outcome.results.back().committed == all[i].committed &&
                  outcome.results.back().output == all[i].output)
          << "participants diverged on T" << all[i].id;
      continue;
    }
    outcome.results.push_back(std::move(all[i]));
  }
  for (const auto& r : outcome.results) {
    if (r.committed) {
      ++outcome.committed;
    } else {
      ++outcome.aborted;
    }
  }
  return outcome;
}

}  // namespace tpart
