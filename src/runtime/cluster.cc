#include "runtime/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "elastic/migration.h"
#include "net/resend_window.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/live_sampler.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "runtime/failure_detector.h"

namespace tpart {

namespace {

/// Names the trace tracks: pid 0 is the control plane, pid 1 + m is
/// machine m. Idempotent; called at the top of every Run*.
void NameTraceTracks(std::size_t num_machines) {
#if !defined(TPART_TRACING_DISABLED)
  obs::TraceRecorder* rec = obs::GlobalTrace();
  if (rec == nullptr) return;
  rec->SetProcessName(0, "control");
  for (std::size_t m = 0; m < num_machines; ++m) {
    rec->SetProcessName(static_cast<int>(1 + m),
                        "machine-" + std::to_string(m));
  }
#else
  (void)num_machines;
#endif
}

}  // namespace

LocalCluster::LocalCluster(const Workload* workload,
                           LocalClusterOptions options)
    : workload_(workload), options_(options) {
  Reset();
}

LocalCluster::~LocalCluster() { StopAll(); }

void LocalCluster::Reset() {
  StopAll();
  machines_.clear();
  transport_ = MakeTransport(options_.transport);
  // Elastic membership: allocate every machine slot the run ever uses up
  // front (max membership over the schedule) and route all placement
  // through the versioned map. A membership change then never
  // reallocates anything — it only changes where keys are homed.
  elastic_.reset();
  std::size_t total_slots = workload_->num_machines;
  std::shared_ptr<const DataPartitionMap> machine_map =
      workload_->partition_map;
  if (options_.resize.enabled()) {
    std::size_t n = workload_->num_machines;
    std::size_t max_n = n;
    SinkEpoch prev_cut = 0;
    for (const LocalClusterOptions::ResizeEvent& ev : options_.resize.events) {
      TPART_CHECK(ev.at_epoch > prev_cut)
          << "resize cut epochs must be strictly increasing and >= 1";
      prev_cut = ev.at_epoch;
      const long long after = static_cast<long long>(n) + ev.delta;
      TPART_CHECK(ev.delta != 0 && after >= 1)
          << "resize event at epoch " << ev.at_epoch << " takes membership "
          << n << " to " << after;
      n = static_cast<std::size_t>(after);
      max_n = std::max(max_n, n);
    }
    total_slots = max_n;
    auto elastic = std::make_shared<ElasticPartitionMap>(
        workload_->partition_map, total_slots);
    n = workload_->num_machines;
    for (const LocalClusterOptions::ResizeEvent& ev : options_.resize.events) {
      MembershipStep step;
      step.cut_epoch = ev.at_epoch;
      step.n_before = n;
      step.n_after = static_cast<std::size_t>(static_cast<long long>(n) +
                                              ev.delta);
      step.policy = options_.resize.policy;
      step.hot_keys = options_.resize.hot_keys;
      n = step.n_after;
      elastic->AddStep(std::move(step));
    }
    elastic_ = std::move(elastic);
    machine_map = elastic_;
  }
  store_ = std::make_unique<PartitionedStore>(
      total_slots, machine_map,
      /*maintain_ordered_index=*/true);
  workload_->loader(*store_);
  for (std::size_t m = 0; m < total_slots; ++m) {
    machines_.push_back(std::make_unique<Machine>(
        static_cast<MachineId>(m), total_slots,
        &store_->store(static_cast<MachineId>(m)),
        workload_->procedures.get(),
        [this, m](MachineId to, Message msg) {
          transport_->Send(static_cast<MachineId>(m), to, std::move(msg));
        },
        options_.sticky_ttl, options_.executor_workers));
    if (options_.transport.batch_fanout) {
      machines_.back()->set_send_batch(
          [this, m](std::vector<std::pair<MachineId, Message>>& msgs) {
            transport_->SendBatch(static_cast<MachineId>(m), msgs);
          });
    }
    const DataPartitionMap* map = machine_map.get();
    machines_.back()->set_locator(
        [map](ObjectKey key) { return map->Locate(key); });
    machines_.back()->set_log_recording(options_.record_recovery_logs);
    machines_.back()->set_stall_timeout(
        std::chrono::microseconds(options_.stall_timeout_us));
    machines_.back()->set_txn_sample(options_.txn_sample);
  }
  // Crash and periodic-checkpointing runs keep a per-machine checkpoint
  // seeded with the loaded state: the recovery baseline each crashed
  // partition is rebuilt from. With checkpoint_every set, each machine
  // folds its dirty keys and volatile state in at every cadence boundary.
  // Resize runs need one too: the migration barrier forces a capture at
  // each cut so no later replay can resurrect moved keys.
  checkpoints_.clear();
  if (options_.crash.enabled() || options_.checkpoint_every > 0 ||
      options_.resize.enabled()) {
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      auto cp = std::make_unique<MachineCheckpoint>();
      store_->store(static_cast<MachineId>(m))
          .Scan(0, std::numeric_limits<ObjectKey>::max(),
                [&](ObjectKey key, const Record& value) {
                  cp->records.Put(key, value);
                });
      machines_[m]->ConfigureCheckpoint(cp.get(), options_.checkpoint_every);
      checkpoints_.push_back(std::move(cp));
    }
  }
  std::vector<Transport::DeliverFn> sinks;
  sinks.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    sinks.push_back([this, m](Message msg) {
      machines_[m]->Deliver(std::move(msg));
    });
  }
  // Coordinator replication (DESIGN §4i): the replica ensemble occupies
  // extra transport endpoints [M, M+R) — every transport derives its
  // endpoint count from this sink vector, so leader/standby traffic rides
  // the same wire (and the same fault injector) as machine traffic.
  coordinator_.reset();
  if (options_.coordinator.standbys > 0) {
    coordinator_ = std::make_unique<CoordinatorReplicaSet>(
        options_.coordinator, machines_.size(),
        [this](MachineId from, MachineId to, Message msg) {
          transport_->Send(from, to, std::move(msg));
        });
    for (std::size_t r = 0; r < coordinator_->num_replicas(); ++r) {
      sinks.push_back([this, r](Message msg) {
        coordinator_->Deliver(r, std::move(msg));
      });
    }
  }
  transport_->Start(std::move(sinks));
}

std::size_t LocalCluster::RestorePartition(MachineId m) {
  KvStore& store = store_->store(m);
  std::vector<ObjectKey> keys;
  keys.reserve(store.size());
  store.Scan(0, std::numeric_limits<ObjectKey>::max(),
             [&](ObjectKey key, const Record&) { keys.push_back(key); });
  for (const ObjectKey key : keys) {
    // Cannot miss: every key came from the Scan() one loop up.
    (void)store.Delete(key);
  }
  return checkpoints_.at(m)->records.Checkpoint(
      [&](ObjectKey key, const Record& value) { store.Upsert(key, value); });
}

void LocalCluster::StopAll() {
  // Coordinator replicas first (their pump/heartbeat threads send through
  // the transport), then the transport: once it stops, no delivery can
  // race machine teardown.
  if (coordinator_) coordinator_->Shutdown();
  if (transport_) transport_->Stop();
  for (auto& m : machines_) {
    if (m) m->Stop();
  }
}

ClusterRunOutcome LocalCluster::RunTPart() {
  return options_.streaming ? RunTPartStreaming() : RunTPartBatch();
}

ClusterRunOutcome LocalCluster::RunTPartBatch() {
  TPART_CHECK(!options_.crash.enabled())
      << "crash injection requires streaming mode (batch pre-enqueues "
         "every plan, so there is no dissemination stream to rejoin)";
  TPART_CHECK(options_.checkpoint_every == 0)
      << "periodic checkpointing requires streaming mode (batch has no "
         "quiescent epoch boundaries while plans pre-enqueue)";
  TPART_CHECK(!options_.resize.enabled())
      << "elastic membership requires streaming mode (the migration "
         "barrier quiesces the dissemination stream at each cut)";
  TPART_CHECK(options_.crash.coordinator_at.empty())
      << "coordinator crash injection requires streaming mode (batch has "
         "no live coordinator to fail over)";
  if (used_) Reset();
  used_ = true;
  NameTraceTracks(machines_.size());
  TPART_TRACE(SetThreadInfo(0, "driver"));
  // One scheduler suffices: every scheduler in a real deployment computes
  // the identical plan stream (verified by the determinism tests).
  TPartScheduler::Options sched_opts = options_.scheduler;
  sched_opts.graph.num_machines = workload_->num_machines;
  TPartScheduler scheduler(sched_opts, workload_->partition_map);

  // Specs are owned here and handed to exactly one machine per
  // transaction; plan items carry their spec by value so nothing in the
  // pipeline ever points back into a caller-scoped container.
  std::unordered_map<TxnId, TxnSpec> spec_of;
  last_plans_.clear();
  {
    std::vector<TxnSpec> txns = workload_->SequencedRequests();
    spec_of.reserve(txns.size());
    for (TxnSpec& spec : txns) {
      for (SinkPlan& plan : scheduler.OnTxn(spec)) {
        last_plans_.push_back(std::move(plan));
      }
      const TxnId id = spec.id;
      spec_of.emplace(id, std::move(spec));
    }
  }
  for (SinkPlan& plan : scheduler.Drain()) {
    last_plans_.push_back(std::move(plan));
  }

  // Distribute per-machine slices (every machine sees every epoch so its
  // sticky/eviction clock advances).
  for (const SinkPlan& plan : last_plans_) {
    std::vector<std::vector<Machine::PlanItem>> slices(machines_.size());
    for (const TxnPlan& p : plan.txns) {
      auto node = spec_of.extract(p.txn);
      TPART_CHECK(!node.empty()) << "no spec for planned T" << p.txn;
      slices[p.machine].push_back(
          Machine::PlanItem{p, std::move(node.mapped())});
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      machines_[m]->EnqueueTPartEpoch(plan.epoch, std::move(slices[m]));
    }
  }

  for (auto& m : machines_) m->StartTPart();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  // Executors fire-and-forget their final write-backs; wait until the
  // transport has delivered (and, under faults, acked) every message
  // before reading final store state.
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/false);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

namespace {

/// One sunk round in flight between the scheduler and dissemination
/// stages: the plan plus the owned specs of its transactions, in plan
/// order. Ownership moves with the stream; nothing points back into a
/// caller-scoped container.
struct PlanEnvelope {
  SinkPlan plan;
  std::vector<TxnSpec> specs;
};

}  // namespace

ClusterRunOutcome LocalCluster::RunTPartStreaming() {
  if (options_.resize.enabled()) {
    TPART_CHECK(options_.pipeline.epoch_queue_capacity > 0)
        << "elastic membership needs a bounded epoch queue: the migration "
           "barrier quiesces the stream by waiting for every epoch credit "
           "to free";
  }
  if (used_) Reset();
  used_ = true;
  last_plans_.clear();  // streaming never materializes the plan list
  NameTraceTracks(machines_.size());
  TPART_TRACE(SetThreadInfo(0, "dissemination"));

  const std::chrono::microseconds stall_timeout(options_.stall_timeout_us);
  const LocalClusterOptions::CrashSchedule& crash = options_.crash;
  const std::vector<LocalClusterOptions::CrashEvent> crash_events =
      crash.Events();
  // Which machines carry at least one scheduled crash (the machines the
  // end-of-run quiesce loop must see recovered before teardown).
  std::vector<bool> crash_scheduled(machines_.size(), false);
  if (crash.enabled()) {
    TPART_CHECK(options_.record_recovery_logs)
        << "crash recovery replays the §5.4 logs; keep them recorded";
    for (const LocalClusterOptions::CrashEvent& event : crash_events) {
      TPART_CHECK(static_cast<std::size_t>(event.machine) < machines_.size())
          << "crash schedule names machine " << event.machine << " of "
          << machines_.size();
      crash_scheduled[event.machine] = true;
      Machine::CrashPoint point;
      point.at_epoch = event.at_epoch;
      point.after_txns = event.after_txns;
      point.at_start = event.at_start;
      machines_[event.machine]->ArmCrash(point);
    }
  }
  if (options_.straggler.enabled()) {
    TPART_CHECK(static_cast<std::size_t>(options_.straggler.machine) <
                machines_.size())
        << "straggler schedule names machine " << options_.straggler.machine
        << " of " << machines_.size();
    machines_[options_.straggler.machine]->ArmStraggler(
        options_.straggler.delay_us, options_.straggler.period_us);
  }

  // Admission-to-result latency: the admission stage stamps each real
  // transaction at batch formation; the executor's commit hook closes the
  // pair and erases it, so the map holds only in-flight transactions.
  struct LatencyTracker {
    std::mutex mu;
    std::unordered_map<TxnId, std::chrono::steady_clock::time_point> admitted;
    Histogram us;
  } latency;

  for (auto& m : machines_) {
    m->set_epoch_queue_capacity(options_.pipeline.epoch_queue_capacity);
    m->set_commit_hook([&latency](TxnId id) {
      const auto now = std::chrono::steady_clock::now();
      // Closes the admit->commit lifecycle span opened by admission.
      TPART_TRACE(AsyncEnd("txn", "lifecycle", id));
      std::lock_guard<std::mutex> lock(latency.mu);
      auto it = latency.admitted.find(id);
      if (it == latency.admitted.end()) return;
      latency.us.Add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - it->second)
              .count()));
      latency.admitted.erase(it);
    });
  }
  for (auto& m : machines_) m->StartTPart();

  // ---- Failure detection & in-run recovery (watchdog thread). ----------
  // Dissemination keeps every disseminated round (crash and checkpoint
  // runs) so recovery can re-ship what a crashed machine lost. The window
  // cannot be pruned by the epoch-credit bound: a round with no slice for
  // the victim releases its credit immediately, so dissemination may run
  // arbitrarily far ahead of the victim's resume round. Without periodic
  // checkpointing the run pays one retained Message per round — the same
  // order of memory as the §5.4 request logs it already requires; with
  // checkpoint_every set, rounds at or below the minimum checkpointed
  // epoch across machines are pruned (no recovery can need them: a
  // machine resumes strictly after its own checkpoint epoch).
  const bool keep_resend_window =
      crash.enabled() || options_.checkpoint_every > 0;
  ResendWindow resend_window;
  std::mutex end_mu;
  bool end_sent = false;
  SinkEpoch end_epoch = 0;

  std::mutex fault_mu;
  Status fault;
  auto declare_fault = [&](const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(fault_mu);
      if (fault.ok()) fault = Status::Unavailable(message);
    }
    // Release every blocked wait (reads, credits, parked storage) so the
    // doomed run drains and reports instead of hanging.
    for (auto& m : machines_) m->AbortPendingWaits();
  };

  // ---- Link-fault schedule & coordinator-term fencing (DESIGN §4j). ---
  // `fault_epoch_live` mirrors the epoch the dissemination stage last
  // advanced the transport's fault clock to, so the watchdog can excuse
  // heartbeat silence a severed window explains. `current_term` is the
  // fencing stamp on every control message this cluster ships; it tracks
  // the coordinator's election term across failovers (stays 1 without
  // replication — the fence is then uniform but inert).
  const PartitionSchedule& partition = options_.transport.faults.partition;
  if (partition.Any() && options_.pipeline.epoch_queue_capacity > 0) {
    TPART_CHECK(partition.MaxPartitionSpan() <=
                options_.pipeline.epoch_queue_capacity)
        << "a partition window spans " << partition.MaxPartitionSpan()
        << " epochs but only " << options_.pipeline.epoch_queue_capacity
        << " epoch credits can be in flight: dissemination would stall on "
           "a severed machine's credits before ever reaching the heal "
           "epoch";
  }
  const std::size_t n_endpoints =
      machines_.size() +
      (coordinator_ != nullptr ? coordinator_->num_replicas() : 0);
  std::atomic<std::uint64_t> fault_epoch_live{0};
  std::atomic<std::uint64_t> current_term{
      coordinator_ != nullptr ? coordinator_->term() : 1};

  RecoveryStats recovery;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool fatal_declared = false;
  std::uint64_t recoveries_handled = 0;
  std::atomic<bool> watchdog_stop{false};
  const bool detector_on = options_.detector.enabled || crash.enabled();
  // Stall diagnostics (satellite of §4j): every machine's StallDiagnostic
  // also reports the transport's per-link retry backlog, the resend
  // window depth, and the watchdog's latest suspicion snapshot.
  std::mutex fd_mu;
  std::string fd_describe;
  for (auto& m : machines_) {
    m->set_diagnostic_context([&]() {
      std::ostringstream ctx;
      const std::string links = transport_->LinkDiagnostic();
      if (!links.empty()) ctx << " links{" << links << "}";
      ctx << " resend_window=" << resend_window.size();
      {
        std::lock_guard<std::mutex> lock(fd_mu);
        if (!fd_describe.empty()) ctx << " fd{" << fd_describe << "}";
      }
      return ctx.str();
    });
  }
  std::thread watchdog;
  if (detector_on) {
    watchdog = std::thread([&] {
      TPART_TRACE(SetThreadInfo(0, "watchdog"));
      const auto interval = std::chrono::microseconds(std::max<std::uint64_t>(
          options_.detector.heartbeat_interval_us, 50));
      // Straggler-aware deadlines: a seeded straggler freezes its machine
      // for delay_us every period, so its heartbeat responses legitimately
      // stall that long. Widen that machine's deadline additively rather
      // than declaring a false positive (the paper's failure detector
      // assumes bounded delay; the bound must include injected delay).
      // With the adaptive detector this fixed deadline is demoted to a
      // *floor*: expiry alone no longer declares a failure, it merely
      // makes the machine eligible — the phi-accrual suspicion level
      // (learned from observed inter-arrivals, so slow links and
      // stragglers widen it organically) must corroborate.
      std::vector<std::chrono::microseconds> deadlines(
          machines_.size(),
          std::chrono::microseconds(options_.detector.deadline_us));
      if (options_.straggler.enabled()) {
        deadlines[options_.straggler.machine] +=
            std::chrono::microseconds(options_.straggler.delay_us);
      }
      const bool adaptive = options_.detector.adaptive;
      PhiAccrualDetector::Options fd_opts;
      fd_opts.history = options_.detector.history;
      fd_opts.phi_threshold = options_.detector.phi_threshold;
      fd_opts.expected_interval_us = static_cast<std::uint64_t>(
          interval.count());
      PhiAccrualDetector detector(machines_.size(), fd_opts);
      std::uint64_t seq = 0;
      const auto start = std::chrono::steady_clock::now();
      const auto us_since_start = [&start](
          std::chrono::steady_clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t - start)
                .count());
      };
      std::vector<std::uint64_t> last_seen(machines_.size(), 0);
      std::vector<std::chrono::steady_clock::time_point> last_alive(
          machines_.size(), start);
      std::vector<bool> declared(machines_.size(), false);
      // One suppression count per silence episode, not per scan: the flag
      // arms when the phi gate first overrides an expired deadline and
      // clears on the next heartbeat progress.
      std::vector<bool> suppressing(machines_.size(), false);
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(interval);
        ++seq;
        const std::uint64_t hb_term =
            current_term.load(std::memory_order_acquire);
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          Message hb;
          hb.type = Message::Type::kHeartbeat;
          hb.req_id = seq;
          // Heartbeats carry the live term so machines witness an
          // election between rounds and raise their fences before any
          // zombie traffic can arrive.
          hb.term = hb_term;
          transport_->Send(0, static_cast<MachineId>(m), std::move(hb));
        }
        const auto now = std::chrono::steady_clock::now();
        const std::uint64_t now_us = us_since_start(now);
        const std::uint64_t fe =
            fault_epoch_live.load(std::memory_order_acquire);
        {
          std::lock_guard<std::mutex> lock(fd_mu);
          fd_describe = detector.Describe(now_us);
        }
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          if (declared[m]) continue;
          const std::uint64_t seen = machines_[m]->heartbeat_seen();
          if (seen > last_seen[m]) {
            last_seen[m] = seen;
            last_alive[m] = now;
            detector.Observe(m, now_us);
            suppressing[m] = false;
            continue;
          }
          // A seeded partition currently severing the watchdog<->machine
          // link fully explains the silence: excuse it (hold both the
          // deadline clock and the phi history) instead of suspecting a
          // machine the schedule says we simply cannot hear.
          if (partition.Severed(0, static_cast<int>(m), fe, n_endpoints) ||
              partition.Severed(static_cast<int>(m), 0, fe, n_endpoints)) {
            detector.Excuse(m, now_us);
            last_alive[m] = now;
            continue;
          }
          if (now - last_alive[m] < deadlines[m]) continue;
          double phi = 0.0;
          if (adaptive) {
            phi = detector.Phi(m, now_us);
            if (!machines_[m]->crashed() &&
                phi > recovery.peak_healthy_phi) {
              recovery.peak_healthy_phi = phi;
            }
            if (phi < options_.detector.phi_threshold) {
              // Deadline expired but the learned inter-arrival
              // distribution says this silence is unexceptional (gray
              // failure / straggler regime): suppress the declaration.
              if (!suppressing[m]) {
                suppressing[m] = true;
                ++recovery.suspicions_suppressed;
                TPART_TRACE(Instant(
                    "suspicion_suppressed", "fault",
                    {{"machine", m},
                     {"phi_x100",
                      static_cast<std::uint64_t>(phi * 100.0)}}));
              }
              continue;
            }
          }
          // Heartbeat sequence stalled past the deadline floor (and, when
          // adaptive, past the phi threshold): declare failed.
          declared[m] = true;
          TPART_TRACE(Instant("failure_declared", "fault",
                              {{"machine", m}, {"last_seen", last_seen[m]}}));
          TPART_FLIGHT(obs::FlightEvent::kFailureDeclared, 0, m,
                       last_seen[m]);
          const std::string diag = machines_[m]->StallDiagnostic();
          const bool recoverable = crash.enabled() && crash_scheduled[m] &&
                                   crash.recover && machines_[m]->crashed();
          if (!recoverable) {
            std::ostringstream out;
            out << "machine " << m << " failed: no heartbeat progress for "
                << options_.detector.deadline_us << "us";
            if (adaptive) out << " (phi=" << phi << ")";
            out << "; " << diag;
            declare_fault(out.str());
            std::lock_guard<std::mutex> lock(wd_mu);
            fatal_declared = true;
            wd_cv.notify_all();
            return;
          }
          // In-run recovery: checkpoint restore + §5.4 local replay,
          // then re-ship the rounds the crash lost. Count fields
          // accumulate across a multi-crash schedule; machine / epoch /
          // detection reflect this (the most recent) crash.
          ++recovery.crashes_injected;
          recovery.crashed_machine = static_cast<MachineId>(m);
          const SinkEpoch resume = machines_[m]->resume_epoch();
          recovery.crash_epoch = resume > 0 ? resume - 1 : 0;
          recovery.detection_latency_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - machines_[m]->crash_time())
                  .count());
          recovery.replayed_txns += machines_[m]->Recover([&] {
            recovery.checkpoint_records +=
                RestorePartition(static_cast<MachineId>(m));
          });
          // Intake is idempotent, so over-shipping is harmless; the
          // front-of-window check guarantees we never under-ship (pruning
          // stops strictly below every machine's resume round).
          {
            TPART_CHECK(resend_window.empty() ||
                        resend_window.front_epoch() <= resume)
                << "resend window pruned past resume round " << resume;
            // Re-ships carry the *current* term, not the term the round
            // originally shipped under: a round retained across a
            // failover would otherwise arrive pre-fenced.
            const std::uint64_t resend_term =
                current_term.load(std::memory_order_acquire);
            recovery.resent_rounds += resend_window.ForEachFrom(
                resume, [&](const Message& round) {
                  Message copy = round;
                  copy.term = resend_term;
                  transport_->Send(0, static_cast<MachineId>(m),
                                   std::move(copy));
                });
            std::lock_guard<std::mutex> lock(end_mu);
            if (end_sent) {
              Message end;
              end.type = Message::Type::kPlanStreamEnd;
              end.epoch = end_epoch;
              end.term = resend_term;
              transport_->Send(0, static_cast<MachineId>(m), std::move(end));
            }
          }
          recovery.downtime_us += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - machines_[m]->crash_time())
                  .count());
          // The blocking recovery stalled this loop: every other
          // machine's liveness stamp is stale by the full recovery span.
          // Restart the clocks (and re-admit the victim) or the next
          // scan would mass-declare healthy machines.
          const auto after_recovery = std::chrono::steady_clock::now();
          const std::uint64_t after_us = us_since_start(after_recovery);
          for (std::size_t k = 0; k < machines_.size(); ++k) {
            last_alive[k] = after_recovery;
            detector.Excuse(k, after_us);
          }
          // The rebuilt machine's timing regime may differ from its
          // pre-crash one; drop its inter-arrival history entirely.
          detector.Reset(m, after_us);
          declared[m] = false;
          suppressing[m] = false;
          last_seen[m] = machines_[m]->heartbeat_seen();
          std::lock_guard<std::mutex> lock(wd_mu);
          ++recoveries_handled;
          wd_cv.notify_all();
        }
      }
    });
  }

  // ---- Coordinator replication (DESIGN §4i). With standbys configured,
  // every sequenced batch is quorum-committed to the replica ensemble
  // before it enters the pipeline, and the coordinator below runs as a
  // sequence of leader *terms*: a scheduled leader crash aborts the term,
  // a standby detects the silence and wins the election, and the next
  // term rebuilds all coordinator state by deterministic replay of the
  // committed request log — a fresh Sequencer primed past it, a fresh
  // TPartScheduler fed the replayed batches — then resumes the plan
  // stream exactly once (rounds at or below the per-machine dissemination
  // watermarks are skipped; the rest re-ship and dedupe idempotently).
  const bool coord_on = coordinator_ != nullptr;
  if (coord_on) coordinator_->Start();
  // Crash epochs sort as (crash, revive) pairs: revive entries are
  // paired index-wise with coordinator_at and must travel with their
  // crash when the schedule is reordered.
  std::vector<std::pair<SinkEpoch, SinkEpoch>> coord_crashes;
  for (std::size_t i = 0; i < crash.coordinator_at.size(); ++i) {
    coord_crashes.emplace_back(crash.coordinator_at[i],
                               i < crash.coordinator_revive_at.size()
                                   ? crash.coordinator_revive_at[i]
                                   : 0);
  }
  std::sort(coord_crashes.begin(), coord_crashes.end());
  TPART_CHECK(coord_crashes.empty() || coord_on)
      << "coordinator crash injection requires coordinator.standbys >= 1";

  // Pipeline counters accumulate across terms. A failover run re-pulls
  // the in-flight (uncommitted) suffix, so admitted/batches may exceed
  // the crash-free counts; committed results are what must match.
  // `admitted`, `plans`, and `last_epoch` are atomic so the live sampler
  // may read them from its own thread mid-run; everything else stays
  // single-writer / read-after-join.
  std::atomic<std::uint64_t> admitted{0};
  std::uint64_t dummies = 0, batches = 0;
  std::uint64_t admission_waits = 0;
  double admission_seconds = 0.0;
  std::uint64_t scheduler_waits = 0;
  std::atomic<std::uint64_t> plans{0};
  std::uint64_t credit_waits = 0;
  std::uint64_t batch_q_hw = 0, plan_q_hw = 0;
  std::atomic<SinkEpoch> last_epoch{0};
  MigrationStats migration;
  std::size_t steps_done = 0;
  const bool record_timeline =
      options_.record_epoch_timeline || options_.resize.enabled();
  std::vector<ClusterRunOutcome::EpochTick> timeline;
  const auto stream_t0 = std::chrono::steady_clock::now();

  FailoverStats failover;
  std::size_t coord_event_idx = 0;
  std::size_t crashed_leader = 0;
  std::vector<SinkEpoch> watermarks(machines_.size(), 0);
  SinkEpoch catchup_through = 0;
  auto t_crash = stream_t0;
  auto t_term_start = stream_t0;
  bool pending_replan_stamp = false;
  // Zombie-leader revival state (--crash seq@E+revive@E'): the deposed
  // leader's last in-flight round, a premature stream-end, and a stale
  // log append are replayed under the old term once the new term's
  // stream reaches the revival epoch; end-to-end term fencing must
  // reject every one of them.
  bool zombie_pending = false;
  SinkEpoch zombie_at = 0;
  std::uint64_t zombie_term = 0;
  std::size_t zombie_leader = 0;
  SinkEpoch zombie_end_epoch = 0;
  Message zombie_round;

  // ---- Live observability (DESIGN §4f). The sampler's source reads only
  // counters the pipeline already maintains (relaxed atomics, per-machine
  // accessors) plus the handful of `live_*` mirrors below, which the
  // scheduler and dissemination threads refresh off the critical path.
  // Nothing here blocks the pipeline; with no sampler installed the
  // mirrors cost nothing (every store is guarded on `sampler`).
  std::atomic<std::uint64_t> live_tgraph{0};
  std::atomic<std::uint64_t> live_planned_txns{0};
  std::atomic<std::uint64_t> live_distributed_txns{0};
  std::atomic<std::uint64_t> live_hot_key{0};
  std::atomic<double> live_hot_share{0.0};
  std::atomic<std::uint64_t> live_term{0};
  obs::LiveSampler* const sampler = options_.live_sampler;
  if (sampler != nullptr) {
    sampler->set_source([&](obs::LiveSampler::Sample& s) {
      std::uint64_t executed = 0;
      std::uint64_t inbound_hw = 0;
      std::uint64_t in_flight = 0;
      for (const auto& m : machines_) {
        executed += m->executed_plans();
        inbound_hw =
            std::max<std::uint64_t>(inbound_hw, m->inbound_queue_high_water());
        in_flight += m->epochs_in_flight();
      }
      const double planned = static_cast<double>(
          live_planned_txns.load(std::memory_order_relaxed));
      const double distributed = static_cast<double>(
          live_distributed_txns.load(std::memory_order_relaxed));
      s.emplace_back("tpart_live_admitted_total",
                     static_cast<double>(
                         admitted.load(std::memory_order_relaxed)));
      s.emplace_back("tpart_live_plans_total",
                     static_cast<double>(plans.load(std::memory_order_relaxed)));
      s.emplace_back("tpart_live_committed_total",
                     static_cast<double>(executed));
      s.emplace_back("tpart_live_tgraph_size",
                     static_cast<double>(
                         live_tgraph.load(std::memory_order_relaxed)));
      s.emplace_back("tpart_live_distributed_ratio",
                     planned > 0 ? distributed / planned : 0.0);
      s.emplace_back("tpart_live_inbound_peak_depth",
                     static_cast<double>(inbound_hw));
      s.emplace_back("tpart_live_epochs_in_flight_depth",
                     static_cast<double>(in_flight));
      s.emplace_back("tpart_live_term_index",
                     static_cast<double>(
                         live_term.load(std::memory_order_relaxed)));
      s.emplace_back("tpart_live_hot_key_index",
                     static_cast<double>(
                         live_hot_key.load(std::memory_order_relaxed)));
      s.emplace_back("tpart_live_hot_key_share_ratio",
                     live_hot_share.load(std::memory_order_relaxed));
    });
    if (sampler->domain() == obs::LiveSampler::Domain::kWall) {
      sampler->StartWall(options_.sample_every_us);
    }
  }

  // Runs one leader term end to end; returns true if the scheduled
  // coordinator crash aborted it (the caller fails over and reruns).
  auto run_term = [&]() -> bool {
    // Stage channels, fresh per term. An empty batch / nullopt envelope
    // is the end-of-stream sentinel (real batches are never empty).
    BlockingQueue<TxnBatch> batch_queue(
        options_.pipeline.batch_queue_capacity);
    BlockingQueue<std::optional<PlanEnvelope>> plan_queue(
        options_.pipeline.plan_queue_capacity);
    std::atomic<bool> term_abort{false};

    // Resume state from the new leader's committed log: batch composition
    // is a pure function of stream position, so skipping the committed
    // prefix of the request source and priming the sequencer past the
    // last committed ids regenerates the exact remainder of the stream.
    std::vector<TxnBatch> committed_log;
    std::uint64_t source_skip = 0;
    TxnId primed_next_id = 0;
    std::uint64_t primed_next_batch = 0;
    bool primed = false;
    if (coord_on) {
      committed_log = coordinator_->CommittedLog();
      for (const TxnBatch& b : committed_log) {
        source_skip += b.NumRealTxns();
        primed_next_batch = b.batch_id + 1;
        if (!b.txns.empty()) primed_next_id = b.txns.back().id + 1;
        primed = true;
      }
    }

    // ---- Stage 1: admission. Pulls requests incrementally — the full
    // workload is never materialized — and batches them through the
    // Sequencer (ids assigned, short tail dummy-padded, §3.3).
    std::thread admission([&] {
      TPART_TRACE(SetThreadInfo(0, "admission"));
      const auto t0 = std::chrono::steady_clock::now();
      Sequencer sequencer(options_.pipeline.sequencer);
      if (primed) sequencer.Prime(primed_next_id, primed_next_batch);
      std::unique_ptr<RequestSource> source = workload_->MakeRequestSource();
      for (std::uint64_t i = 0; i < source_skip; ++i) {
        TPART_CHECK(source->Next().has_value())
            << "committed log covers " << source_skip
            << " requests but the source ran dry at " << i;
      }
      // Returns false once the leader crash-stops mid-append: that batch
      // never committed, so the next term re-pulls it from the source
      // (an append that did reach a standby commits through the new
      // leader's log instead, and the skip count above absorbs it).
      auto emit = [&](TxnBatch batch) -> bool {
        TPART_TRACE_SPAN("admit_batch", "pipeline",
                         {{"txns", batch.txns.size()}});
        TPART_FLIGHT(obs::FlightEvent::kAdmitBatch, 0, batch.batch_id,
                     batch.txns.size());
        if (coord_on && !coordinator_->LeaderAppend(batch)) return false;
        const auto now = std::chrono::steady_clock::now();
        {
          std::lock_guard<std::mutex> lock(latency.mu);
          for (const TxnSpec& spec : batch.txns) {
            if (!spec.is_dummy) {
              // emplace: a surviving pre-crash stamp wins, so the
              // measured latency spans the failover — the honest number.
              latency.admitted.emplace(spec.id, now);
              // Opens the per-transaction admit->commit lifecycle span,
              // closed by the executor's commit hook.
              TPART_TRACE(AsyncBegin("txn", "lifecycle", spec.id));
              if (obs::SampledTxn(spec.id, options_.txn_sample)) {
                TPART_TRACE(AsyncInstant("admitted", "timeline", spec.id,
                                         {{"batch", batch.batch_id}}));
              }
            }
          }
        }
        if (batch_queue.Send(std::move(batch))) ++admission_waits;
        ++batches;
        return true;
      };
      bool alive = true;
      while (alive && !term_abort.load(std::memory_order_acquire)) {
        std::optional<TxnSpec> spec = source->Next();
        if (!spec.has_value()) break;
        sequencer.Submit(std::move(*spec));
        ++admitted;
        while (std::optional<TxnBatch> batch = sequencer.NextBatch()) {
          if (!emit(std::move(*batch))) {
            alive = false;
            break;
          }
        }
      }
      // Only a non-empty tail is flushed: padding an empty tail would
      // append a round of pure dummies for nothing.
      if (alive && !term_abort.load(std::memory_order_acquire) &&
          sequencer.pending() > 0) {
        if (std::optional<TxnBatch> batch = sequencer.Flush()) {
          emit(std::move(*batch));
        }
      }
      dummies += sequencer.num_dummies_issued();
      admission_seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      batch_queue.Send(TxnBatch{});
    });

    // ---- Stage 2: scheduler. Consumes ordered batches, maintains the
    // T-graph, and emits each sunk round the moment it exists. Specs are
    // parked here between arrival and sinking — the T-graph's unsunk
    // bound caps that parking, so this stage is bounded too.
    std::thread scheduling([&] {
      TPART_TRACE(SetThreadInfo(0, "scheduler"));
      TPartScheduler::Options sched_opts = options_.scheduler;
      // The graph starts at the base membership; each membership step
      // re-targets it (Rehome) when the scheduler crosses the cut.
      // Placement routes through the versioned map so rounds past a cut
      // home keys at their post-step machines.
      sched_opts.graph.num_machines = workload_->num_machines;
      sched_opts.elastic = elastic_;
      sched_opts.track_key_frequencies =
          sched_opts.track_key_frequencies || sampler != nullptr;
      TPartScheduler scheduler(
          sched_opts, elastic_ != nullptr
                          ? std::static_pointer_cast<const DataPartitionMap>(
                                elastic_)
                          : workload_->partition_map);
      std::unordered_map<TxnId, TxnSpec> parked;
      int hot_refresh_countdown = 16;
      auto emit = [&](SinkPlan plan) {
        TPART_FLIGHT(obs::FlightEvent::kScheduleRound, 0, plan.epoch,
                     plan.txns.size());
        PlanEnvelope env;
        env.specs.reserve(plan.txns.size());
        for (const TxnPlan& p : plan.txns) {
          auto node = parked.extract(p.txn);
          TPART_CHECK(!node.empty())
              << "round " << plan.epoch << " sank T" << p.txn
              << " with no parked spec";
          env.specs.push_back(std::move(node.mapped()));
        }
        env.plan = std::move(plan);
        if (plan_queue.Send(std::move(env))) ++scheduler_waits;
      };
      // Deterministic replay of the committed log (§5.4 semantics applied
      // to the coordinator): the fresh T-graph re-derives every round and
      // every Rehome decision of the crashed leader, because both are
      // pure functions of the transaction stream.
      for (const TxnBatch& b : committed_log) {
        for (const TxnSpec& spec : b.txns) {
          std::vector<SinkPlan> replayed = scheduler.OnTxn(spec);
          if (!spec.is_dummy) parked.emplace(spec.id, spec);
          for (SinkPlan& plan : replayed) emit(std::move(plan));
        }
        ++failover.replayed_batches;
      }
      while (true) {
        Result<TxnBatch> batch = batch_queue.ReceiveFor(stall_timeout);
        TPART_CHECK(batch.ok())
            << "scheduler stalled awaiting the admission stage: "
            << batch.status().message();
        if (batch->txns.empty()) break;
        // An aborted term keeps draining (a blocked admission Send would
        // deadlock the join) but schedules nothing further.
        if (term_abort.load(std::memory_order_acquire)) continue;
        TPART_TRACE_SPAN("schedule_batch", "pipeline",
                         {{"txns", batch->txns.size()}});
        for (TxnSpec& spec : batch->txns) {
          std::vector<SinkPlan> plans = scheduler.OnTxn(spec);
          // Dummies are discarded at plan generation (§3.3); only real
          // specs ever travel to a machine.
          if (!spec.is_dummy) parked.emplace(spec.id, std::move(spec));
          for (SinkPlan& plan : plans) emit(std::move(plan));
        }
        if (sampler != nullptr) {
          live_tgraph.store(scheduler.graph().num_unsunk(),
                            std::memory_order_relaxed);
          // The hot-key scan walks the whole frequency map; refresh it
          // on a coarse cadence rather than per batch.
          if (++hot_refresh_countdown >= 16) {
            hot_refresh_countdown = 0;
            const auto [key, share] = scheduler.HottestKey();
            live_hot_key.store(key, std::memory_order_relaxed);
            live_hot_share.store(share, std::memory_order_relaxed);
          }
        }
      }
      if (!term_abort.load(std::memory_order_acquire)) {
        for (SinkPlan& plan : scheduler.Drain()) emit(std::move(plan));
        TPART_CHECK(parked.empty()) << parked.size() << " specs never sank";
      }
      plan_queue.Send(std::nullopt);
    });

    // ---- Stage 3: dissemination (this thread). Each round is
    // serialized once and shipped to every machine as a kSinkPlan wire
    // message; epoch credits bound how far dissemination may run ahead
    // of execution. Round r reaches every machine before r+1 reaches
    // any, which the FIFO executors rely on.
    bool aborted = false;
    while (true) {
      Result<std::optional<PlanEnvelope>> env =
          plan_queue.ReceiveFor(stall_timeout);
      TPART_CHECK(env.ok())
          << "dissemination stalled awaiting the scheduler stage: "
          << env.status().message();
      if (!env->has_value()) break;
      // Keep draining after the crash fires (a scheduler blocked mid-Send
      // would deadlock the join); everything drained here regenerates in
      // the next term.
      if (aborted) continue;
      const SinkEpoch epoch = (*env)->plan.epoch;
      // Advance the transport's link-fault clock before anything for
      // this round ships — membership traffic included: severed /
      // flapping / slow windows open and close on sink-epoch boundaries,
      // and a window healing at or before a cut must be healed before
      // the cut's migration chunks flow.
      // Rounds at or below the failover catch-up horizon were already
      // shipped by the crashed leader; their window transitions (and the
      // quiesce barriers guarding them) happened in the term that first
      // shipped them, and the failover itself healed every window active
      // at the crash. Replaying the fault clock for them would roll the
      // mirror back and re-raise a quiesce barrier ahead of the very
      // re-ships the stalled machines are waiting on.
      const bool catchup = epoch <= catchup_through;
      if (partition.Any() && !catchup) {
        // A sever window opening at this round's epoch must not cut off
        // response / forward-push traffic still owed for earlier rounds:
        // dissemination runs ahead of execution, and severing a pending
        // response would pin its round's epoch credits until the heal —
        // which in turn needs credits to be disseminated. Quiesce every
        // in-flight round before crossing a sever boundary, so a window
        // "starting at epoch E" severs only rounds >= E. (Flapping and
        // slow links need no barrier: retries eventually pass.)
        const std::uint64_t prev_fault_epoch =
            fault_epoch_live.load(std::memory_order_acquire);
        if (epoch > prev_fault_epoch &&
            options_.pipeline.epoch_queue_capacity > 0 &&
            partition.OpensSeverWindowIn(prev_fault_epoch, epoch)) {
          for (auto& m : machines_) {
            Status drained = m->WaitStreamDrained(
                std::chrono::microseconds(options_.stall_timeout_us));
            if (!drained.ok()) {
              std::ostringstream out;
              out << "quiesce before sever window at epoch " << epoch
                  << " stalled: machine " << m->id() << ": "
                  << drained.message();
              declare_fault(out.str());
              break;
            }
          }
          transport_->Flush();
        }
        transport_->AdvanceFaultEpoch(epoch);
        fault_epoch_live.store(epoch, std::memory_order_release);
      }
      // Membership cuts fire between rounds: before the first round past
      // a cut ships — or even enters the resend window, since a recovery
      // re-ship must never hand a machine a post-cut round ahead of its
      // migration — quiesce the stream, move the keys, and force the cut
      // checkpoint everywhere. Catch-up rounds can never re-trigger a
      // step: any cut below the catch-up horizon stepped in the term
      // that first shipped those rounds (steps_done is run-scoped).
      while (elastic_ != nullptr && steps_done < elastic_->num_steps() &&
             (*env)->plan.epoch > elastic_->step(steps_done).cut_epoch) {
        Status step_status =
            RunMembershipStep(steps_done, migration,
                              current_term.load(std::memory_order_acquire));
        if (!step_status.ok()) {
          std::ostringstream out;
          out << "membership step " << steps_done << " (cut epoch "
              << elastic_->step(steps_done).cut_epoch
              << ") failed: " << step_status.message();
          declare_fault(out.str());
          TPART_FLIGHT(obs::FlightEvent::kMigrationAbort, 0, steps_done,
                       elastic_->step(steps_done).cut_epoch);
          TPART_FLIGHT_DUMP("migration_abort");
          // Abandon the remaining schedule; the doomed run still drains.
          steps_done = elastic_->num_steps();
          break;
        }
        ++steps_done;
      }
      // Rounds at or below the failover catch-up horizon were already
      // shipped by the crashed leader: re-ship them only to machines
      // whose watermark shows a gap, with no credit / window / timeline
      // side effects (those all happened in the term that shipped them;
      // machines drop duplicate rounds before enqueue, touching no
      // credits, so the credit ledger stays exactly balanced).
      TPART_TRACE_SPAN("disseminate", "pipeline",
                       {{"epoch", epoch}, {"txns", (*env)->plan.txns.size()}});
      TPART_FLIGHT(obs::FlightEvent::kDisseminateRound, 0, epoch,
                   (*env)->plan.txns.size());
      Message msg;
      msg.type = Message::Type::kSinkPlan;
      msg.epoch = epoch;
      // Term fence (DESIGN §4j): every round carries the term that
      // shipped it, so a deposed leader's in-flight traffic is
      // rejectable by every machine the moment a newer term is
      // witnessed. Catch-up re-ships deliberately carry the *new* term.
      msg.term = current_term.load(std::memory_order_acquire);
      // Causal timelines: stamp the round with a packed trace context
      // (origin = control plane, current coordinator term) so receive-side
      // markers on every machine know which term shipped it.
      if (options_.txn_sample != 0) {
        msg.trace_ctx = obs::PackTraceCtx(
            /*origin=*/0, live_term.load(std::memory_order_relaxed));
      }
      msg.plan_bytes = EncodeSinkPlan((*env)->plan);
      msg.specs = std::move((*env)->specs);
      if (catchup) {
        ++failover.catchup_rounds;
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          if (epoch > watermarks[m]) {
            transport_->Send(0, static_cast<MachineId>(m), msg);
            ++failover.reshipped_rounds;
          }
        }
      } else {
        ++plans;
        last_epoch = epoch;
        if (sampler != nullptr) {
          live_planned_txns.fetch_add((*env)->plan.txns.size(),
                                      std::memory_order_relaxed);
          live_distributed_txns.fetch_add((*env)->plan.NumDistributed(),
                                          std::memory_order_relaxed);
        }
        if (keep_resend_window) {
          resend_window.Append(msg);
          if (options_.checkpoint_every > 0 && !checkpoints_.empty()) {
            // No recovery can ever need a round at or below the minimum
            // checkpointed epoch across machines: each machine resumes
            // strictly after its own checkpoint epoch.
            SinkEpoch prune_through = checkpoints_.front()->epoch();
            for (const auto& cp : checkpoints_) {
              prune_through = std::min(prune_through, cp->epoch());
            }
            if (prune_through > 0) resend_window.PruneThrough(prune_through);
          }
        }
        if (pending_replan_stamp) {
          // First fresh round past the catch-up horizon: the plan stream
          // has fully resumed.
          const auto now = std::chrono::steady_clock::now();
          failover.replan_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - t_term_start)
                  .count());
          failover.plan_stream_gap_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - t_crash)
                  .count());
          failover.phase_replan_us.Add(failover.replan_us);
          failover.phase_plan_stream_gap_us.Add(failover.plan_stream_gap_us);
          pending_replan_stamp = false;
        }
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          switch (machines_[m]->AcquireEpochCreditFor(stall_timeout)) {
            case Machine::CreditGrant::kGranted:
              break;
            case Machine::CreditGrant::kGrantedAfterWait:
              ++credit_waits;
              TPART_TRACE(
                  Instant("credit_wait", "pipeline", {{"machine", m}}));
              break;
            case Machine::CreditGrant::kTimedOut: {
              std::ostringstream out;
              out << "dissemination stalled acquiring an epoch credit for "
                     "machine "
                  << m << ": " << machines_[m]->StallDiagnostic();
              // Credits are non-blocking after this (shutdown flag), so
              // the remaining stream still drains.
              declare_fault(out.str());
              break;
            }
          }
          transport_->Send(0, static_cast<MachineId>(m), msg);
        }
        if (record_timeline) {
          timeline.push_back(ClusterRunOutcome::EpochTick{
              last_epoch,
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - stream_t0)
                      .count())});
        }
        // Epoch-domain samplers (tests pinning deterministic cadence to
        // sink epochs) tick here; wall-domain sampling rides its thread.
        if (sampler != nullptr &&
            sampler->domain() == obs::LiveSampler::Domain::kEpoch) {
          sampler->TickEpoch(epoch);
        }
      }
      if (!catchup && zombie_pending &&
          current_term.load(std::memory_order_acquire) > zombie_term &&
          epoch >= zombie_at) {
        // ---- Zombie-leader revival (DESIGN §4j). The deposed leader
        // wakes up and replays its stale in-flight traffic: the round it
        // was shipping when it was paused, a premature plan-stream-end
        // (the genuinely dangerous message — unfenced, it would truncate
        // every machine's stream), and a stale log append to the replica
        // ensemble. Wait until every machine has witnessed the new term
        // (heartbeats, rounds, and watermark probes all carry it) so the
        // run proves the *fence* rejects the zombie, not a lucky race.
        zombie_pending = false;
        const std::uint64_t new_term =
            current_term.load(std::memory_order_acquire);
        const auto fence_deadline =
            std::chrono::steady_clock::now() + stall_timeout;
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          while (machines_[m]->fence_term() < new_term) {
            if (stall_timeout.count() > 0 &&
                std::chrono::steady_clock::now() > fence_deadline) {
              std::ostringstream out;
              out << "machine " << m << " never witnessed term " << new_term
                  << " before the zombie revival (fence at "
                  << machines_[m]->fence_term() << ")";
              declare_fault(out.str());
              break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
        ++failover.zombie_revivals;
        TPART_FLIGHT(obs::FlightEvent::kZombieRevival, 0, zombie_term, epoch);
        TPART_TRACE(Instant("zombie_revival", "fault",
                            {{"stale_term", zombie_term},
                             {"epoch", epoch}}));
        for (std::size_t m = 0; m < machines_.size(); ++m) {
          transport_->Send(0, static_cast<MachineId>(m), zombie_round);
          Message stale_end;
          stale_end.type = Message::Type::kPlanStreamEnd;
          stale_end.epoch = zombie_end_epoch;
          stale_end.term = zombie_term;
          transport_->Send(0, static_cast<MachineId>(m),
                           std::move(stale_end));
        }
        coordinator_->InjectStaleAppend(zombie_term, zombie_leader);
      }
      if (!catchup && coord_event_idx < coord_crashes.size() &&
          epoch >= coord_crashes[coord_event_idx].first) {
        // Scheduled coordinator crash: fires after the first shipped
        // round with epoch >= the entry. Capture the leader index before
        // the crash-stop — the election moves it.
        const SinkEpoch revive_at = coord_crashes[coord_event_idx].second;
        ++coord_event_idx;
        crashed_leader = coordinator_->leader();
        coordinator_->CrashLeader();
        t_crash = std::chrono::steady_clock::now();
        ++failover.coordinator_crashes;
        TPART_FLIGHT(obs::FlightEvent::kCrashStop, 0, crashed_leader, epoch);
        if (revive_at > 0) {
          // The "crashed" leader was only paused: stash the round it had
          // in flight (still stamped with the dying term) so the revival
          // above can replay it once the next term is running. The stash
          // epoch doubles as the stale stream-end's epoch.
          zombie_pending = true;
          zombie_at = revive_at;
          zombie_term = current_term.load(std::memory_order_acquire);
          zombie_leader = crashed_leader;
          zombie_end_epoch = epoch;
          zombie_round = msg;
        }
        term_abort.store(true, std::memory_order_release);
        aborted = true;
      }
    }
    admission.join();
    scheduling.join();
    batch_q_hw = std::max<std::uint64_t>(batch_q_hw, batch_queue.high_water());
    plan_q_hw = std::max<std::uint64_t>(plan_q_hw, plan_queue.high_water());
    return aborted;
  };

  for (;;) {
    if (!run_term()) break;
    // ---- Failover. A standby detected the heartbeat silence, backed
    // off, and claimed; wait out the election, sync the claim across the
    // ensemble, rejoin the crashed replica as a standby, then probe every
    // machine's dissemination watermark so the next term re-ships exactly
    // the missing suffix of already-shipped rounds.
    const std::chrono::microseconds failover_wait =
        stall_timeout.count() > 0
            ? stall_timeout
            : std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::hours(24));
    Result<std::size_t> elected = coordinator_->WaitElected(failover_wait);
    TPART_CHECK(elected.ok())
        << "no standby claimed leadership: " << elected.status().message();
    ++failover.elections_won;
    live_term.store(failover.elections_won, std::memory_order_relaxed);
    // From here on, every shipped message carries the new term: the
    // deposed leader's in-flight traffic is now fenceable everywhere.
    current_term.store(coordinator_->term(), std::memory_order_release);
    failover.detection_latency_us = coordinator_->last_detection_us();
    failover.election_us = coordinator_->last_election_us();
    failover.phase_detection_us.Add(failover.detection_latency_us);
    failover.phase_election_us.Add(failover.election_us);
    TPART_FLIGHT(obs::FlightEvent::kElectionWon, 0, failover.elections_won,
                 failover.detection_latency_us);
    // A leader outage plus an election takes long enough that any sever
    // window active at the crash has healed by the time the successor
    // runs. Advance the fault clock past those windows before probing:
    // the dissemination loop (the only other fault-clock driver) is
    // parked until the probe completes, so a probe to a machine severed
    // at the stale fault epoch could otherwise never be answered.
    if (partition.Any()) {
      const std::uint64_t stale_fe =
          fault_epoch_live.load(std::memory_order_acquire);
      const std::uint64_t healed = partition.HealAllActiveAt(stale_fe);
      if (healed > stale_fe) {
        // No Flush here: the window is ACTIVE, so unacked packets to a
        // severed machine cannot drain until after this advance — the
        // retry loop redelivers them once the links are up again.
        transport_->AdvanceFaultEpoch(healed);
        fault_epoch_live.store(healed, std::memory_order_release);
      }
    }
    coordinator_->SyncNewLeader();
    coordinator_->RestartReplica(crashed_leader);
    Result<std::vector<SinkEpoch>> wm =
        coordinator_->ProbeWatermarks(failover_wait);
    TPART_CHECK(wm.ok()) << "watermark probe failed: "
                         << wm.status().message();
    watermarks = *wm;
    catchup_through = last_epoch;
    t_term_start = std::chrono::steady_clock::now();
    pending_replan_stamp = true;
    // New-term post-mortem: the dump tail carries the leader crash-stop
    // and the election that ended it.
    TPART_FLIGHT(obs::FlightEvent::kTermStart, 0, failover.elections_won,
                 catchup_through);
    TPART_FLIGHT_DUMP("failover");
  }
  // Heal every remaining link fault before the end-of-stream barrier:
  // the reliability layer must complete delivery of everything a severed
  // window swallowed, and a window configured to heal past the last
  // sunk epoch would otherwise never heal.
  if (partition.Any()) {
    transport_->AdvanceFaultEpoch(
        std::numeric_limits<std::uint64_t>::max());
    fault_epoch_live.store(std::numeric_limits<std::uint64_t>::max(),
                           std::memory_order_release);
  }
  if (crash.enabled()) {
    // Flag before sending: a recovery racing this must resend the end
    // marker whenever the original may already have been consumed (and
    // its flags wiped) by the pre-crash machine.
    std::lock_guard<std::mutex> lock(end_mu);
    end_sent = true;
    end_epoch = last_epoch;
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    Message end;
    end.type = Message::Type::kPlanStreamEnd;
    end.epoch = last_epoch;
    end.term = current_term.load(std::memory_order_acquire);
    transport_->Send(0, static_cast<MachineId>(m), std::move(end));
  }

  // Executors exit once the stream end reaches them (via the transport's
  // reliable delivery) and their queues drain.
  for (auto& m : machines_) m->JoinExecutor();
  if (detector_on) {
    // The joins above cover only the original executors. Quiesce the
    // crash schedule before tearing the stream down: wait for the
    // watchdog to recover any machine that is still down, join the
    // recovered executors (a later scheduled crash can fire on one of
    // those), and repeat until every scheduled machine ends up alive —
    // or the watchdog declared an unrecoverable fault.
    bool fatal = false;
    while (!fatal) {
      {
        std::unique_lock<std::mutex> lock(wd_mu);
        wd_cv.wait(lock, [&] {
          if (fatal_declared) return true;
          for (std::size_t m = 0; m < machines_.size(); ++m) {
            if (crash_scheduled[m] && machines_[m]->crashed()) return false;
          }
          return true;
        });
        fatal = fatal_declared;
      }
      if (fatal) break;
      for (auto& m : machines_) m->JoinRecoveredExecutor();
      bool any_down = false;
      for (std::size_t m = 0; m < machines_.size(); ++m) {
        if (crash_scheduled[m] && machines_[m]->crashed()) any_down = true;
      }
      if (!any_down) break;
    }
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
    for (auto& m : machines_) m->JoinRecoveredExecutor();
  }
  // The hooks capture this frame's LatencyTracker / fault state; no
  // executor can call them now, and the machines outlive this frame.
  for (auto& m : machines_) {
    m->set_commit_hook(nullptr);
    m->set_diagnostic_context(nullptr);
  }
  transport_->Flush();
  if (sampler != nullptr) {
    // The source captures this frame's counters by reference: stop the
    // sampling thread and detach the source before they go out of scope.
    if (sampler->domain() == obs::LiveSampler::Domain::kWall) {
      sampler->StopWall();
    }
    sampler->ClearSource();
  }

  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/false);
  outcome.transport = transport_->stats();
  outcome.pipeline.admitted = admitted;
  outcome.pipeline.dummies = dummies;
  outcome.pipeline.batches = batches;
  outcome.pipeline.plans = plans;
  outcome.pipeline.backpressure_waits =
      admission_waits + scheduler_waits + credit_waits;
  outcome.pipeline.batch_queue_high_water = batch_q_hw;
  outcome.pipeline.plan_queue_high_water = plan_q_hw;
  for (const auto& m : machines_) {
    outcome.pipeline.epoch_queue_high_water =
        std::max<std::uint64_t>(outcome.pipeline.epoch_queue_high_water,
                                m->epoch_queue_high_water());
    outcome.pipeline.machine_inbound_high_water =
        std::max<std::uint64_t>(outcome.pipeline.machine_inbound_high_water,
                                m->inbound_queue_high_water());
    outcome.pipeline.machine_inbound_spills += m->inbound_overflow_spills();
  }
  outcome.pipeline.admission_seconds = admission_seconds;
  outcome.pipeline.admit_to_commit_us = latency.us;
  {
    std::lock_guard<std::mutex> lock(fault_mu);
    outcome.fault = fault;
  }
  outcome.recovery = recovery;  // watchdog joined; no concurrent writer
  // Checkpoint / log-footprint accounting: counters sum over machines,
  // byte peaks are maxima (the footprint claim is per-machine).
  for (std::size_t m = 0; m < checkpoints_.size(); ++m) {
    const MachineCheckpoint& cp = *checkpoints_[m];
    outcome.checkpoint.checkpoints_taken += cp.captures_taken;
    outcome.checkpoint.last_epoch =
        std::max(outcome.checkpoint.last_epoch, cp.epoch());
    outcome.checkpoint.records_captured += cp.records_captured;
    outcome.checkpoint.truncated_request_entries +=
        cp.truncated_request_entries;
    outcome.checkpoint.truncated_network_messages +=
        cp.truncated_network_messages;
    outcome.checkpoint.capture_us += cp.capture_us;
  }
  for (const auto& m : machines_) {
    outcome.checkpoint.request_log_bytes_peak =
        std::max(outcome.checkpoint.request_log_bytes_peak,
                 static_cast<std::uint64_t>(m->request_log_bytes_peak()));
    outcome.checkpoint.network_log_bytes_peak =
        std::max(outcome.checkpoint.network_log_bytes_peak,
                 static_cast<std::uint64_t>(m->network_log_bytes_peak()));
  }
  outcome.checkpoint.resend_window_bytes_peak = resend_window.bytes_peak();
  outcome.checkpoint.pruned_resend_rounds = resend_window.pruned_rounds();
  // Migration accounting: barrier-side counters from the dissemination
  // thread plus the per-machine wire counters (source capture / target
  // install sides).
  outcome.migration = migration;
  outcome.timeline = std::move(timeline);
  if (elastic_ != nullptr) {
    for (const auto& m : machines_) {
      const Machine::MigrationCounters mc = m->migration_counters();
      outcome.migration.records_moved += mc.records_moved;
      outcome.migration.bytes_shipped += mc.bytes_shipped;
      outcome.migration.chunks_shipped += mc.chunks_shipped;
      outcome.migration.duplicate_chunks_dropped +=
          mc.duplicate_chunks_dropped;
    }
  }
  if (coordinator_) {
    failover.log_appends = coordinator_->log_appends();
    failover.log_acks = coordinator_->log_acks();
    failover.committed_batches = coordinator_->committed_batches();
    failover.dueling_claims = coordinator_->dueling_claims();
    failover.leader = static_cast<std::uint32_t>(coordinator_->leader());
    failover.fenced_appends = coordinator_->fenced_appends();
  }
  for (const auto& m : machines_) {
    failover.fenced_messages += m->fenced_messages();
  }
  outcome.failover = failover;
  StopAll();
  return outcome;
}

Status LocalCluster::RunMembershipStep(std::size_t step_idx,
                                       MigrationStats& stats,
                                       std::uint64_t term) {
  const MembershipStep& step = elastic_->step(step_idx);
  const std::size_t version = step_idx + 1;
  const std::chrono::microseconds timeout(options_.stall_timeout_us);
  const auto t0 = std::chrono::steady_clock::now();
  TPART_TRACE_SPAN("membership_step", "elastic",
                   {{"cut", step.cut_epoch},
                    {"n_before", step.n_before},
                    {"n_after", step.n_after}});
  // 1. Quiesce: every disseminated round has fully executed everywhere.
  //    The scheduler may already have sunk rounds past the cut, but this
  //    thread is the only shipper, so nothing past the cut is in flight.
  //    A crash armed at the cut epoch flips its machine down BEFORE the
  //    round's credit is released (the executor defers the release past
  //    CrashStop), so a post-drain crashed() probe reliably sees it; the
  //    probe also covers the replay phase of an earlier crash, since the
  //    machine stays kRecovering until the replayed suffix finishes.
  //    When it trips, wait out the watchdog's detect + recover + replay,
  //    then re-drain: re-shipped rounds still hold their original ship
  //    credits, so the redo absorbs them.
  const auto quiesce_deadline = t0 + timeout;
  for (auto& m : machines_) {
    for (;;) {
      Status s = m->WaitStreamDrained(timeout);
      if (!s.ok()) return s;
      if (!m->crashed()) break;
      if (timeout.count() > 0 &&
          std::chrono::steady_clock::now() > quiesce_deadline) {
        std::ostringstream out;
        out << "membership step at epoch " << step.cut_epoch << ": machine "
            << m->id() << " is still down at the cut";
        return Status::Unavailable(out.str());
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // 2. Push every in-flight write-back and forward-push to its
  //    destination queue, then fence each service FIFO so everything
  //    delivered is also applied before state is scanned.
  transport_->Flush();
  for (auto& m : machines_) {
    Status s = m->FenceService(timeout);
    if (!s.ok()) return s;
  }
  // 3. Plan the routes: a machine's key universe is its record store
  //    plus its version-discipline key state (PlanMigration drops keys
  //    whose home does not actually change across the step).
  std::vector<std::pair<MachineId, std::vector<ObjectKey>>> keys_by_source;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    std::vector<ObjectKey> keys = machines_[m]->storage().StateKeys();
    store_->store(static_cast<MachineId>(m)).ForEachKey([&](ObjectKey key) {
      keys.push_back(key);
    });
    if (!keys.empty()) {
      keys_by_source.emplace_back(static_cast<MachineId>(m), std::move(keys));
    }
  }
  const std::vector<MigrationRoute> routes =
      PlanMigration(*elastic_, version, keys_by_source);
  // 4. Ship each route (begin -> chunked image -> commit; the source
  //    captures and drops, the target installs exactly once) and wait
  //    for every install. Flush between polls pushes retried chunks
  //    through a fault-injecting transport.
  for (const MigrationRoute& route : routes) {
    const std::uint64_t stream = MigrationStreamId(
        static_cast<std::uint64_t>(version), route.source, route.target);
    Message begin;
    begin.type = Message::Type::kMigrateBegin;
    begin.req_id = stream;
    begin.dst_txn = route.target;
    begin.epoch = step.cut_epoch;
    begin.plan_bytes = EncodeKeyList(route.keys);
    // The migration stream inherits the issuing term: the source stamps
    // it onto every image chunk and the commit, so a zombie-issued
    // migration is fenced end to end.
    begin.term = term;
    transport_->Send(0, route.source, std::move(begin));
    stats.keys_moved += route.keys.size();
  }
  stats.routes += routes.size();
  const auto deadline = t0 + timeout;
  for (const MigrationRoute& route : routes) {
    const std::uint64_t stream = MigrationStreamId(
        static_cast<std::uint64_t>(version), route.source, route.target);
    while (!machines_[route.source]->MigrationSourceDone(stream) ||
           !machines_[route.target]->MigrationInstalled(stream)) {
      if (timeout.count() > 0 && std::chrono::steady_clock::now() > deadline) {
        std::ostringstream out;
        out << "migration stream " << route.source << " -> " << route.target
            << " (" << route.keys.size() << " keys) timed out";
        return Status::Unavailable(out.str());
      }
      transport_->Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // 5. Force a checkpoint on every machine at the cut. The capture folds
  //    the migration's record deletions/insertions (marked dirty by the
  //    handlers) and truncates the §5.4 logs — a later crash replay can
  //    then never resurrect a moved key on its old home.
  for (auto& m : machines_) m->ForceCheckpoint(step.cut_epoch);
  stats.forced_checkpoints += machines_.size();
  ++stats.membership_steps;
  stats.last_cut_epoch = step.cut_epoch;
  const std::uint64_t step_barrier_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats.barrier_us += step_barrier_us;
  stats.phase_barrier_us.Add(step_barrier_us);
  TPART_FLIGHT(obs::FlightEvent::kMigrationStep, 0, step.cut_epoch,
               routes.size());
  return Status::Ok();
}

std::string ApplySeededChaos(std::uint64_t seed, std::size_t num_machines,
                             SinkEpoch span_epochs,
                             LocalClusterOptions& options, bool extended) {
  TPART_CHECK(num_machines >= 2)
      << "the chaos matrix crashes two distinct machines";
  TPART_CHECK(span_epochs >= 12)
      << "the chaos matrix spreads three crashes over the run; give it at "
         "least a dozen sinking rounds";
  Rng rng(seed);
  // Two distinct victims; the second crash hits a different machine than
  // the first, the third re-crashes the first victim after its recovery.
  const MachineId a = static_cast<MachineId>(rng.NextBelow(num_machines));
  MachineId b = static_cast<MachineId>(rng.NextBelow(num_machines - 1));
  if (b >= a) ++b;
  // Strictly increasing epochs with slack between them so each recovery
  // completes (epoch-wise) before the next crash arms its trigger. The
  // quarter-span stride keeps the last epoch strictly inside the run
  // (e3 <= 2 + 3 * span/4 < span for span >= 12) so every scheduled
  // crash actually fires.
  const SinkEpoch third = std::max<SinkEpoch>(span_epochs / 4, 2);
  const SinkEpoch e1 = 2 + static_cast<SinkEpoch>(rng.NextBelow(third));
  const SinkEpoch e2 = e1 + 1 + static_cast<SinkEpoch>(rng.NextBelow(third));
  const SinkEpoch e3 = e2 + 1 + static_cast<SinkEpoch>(rng.NextBelow(third));

  options.crash.machine = a;
  options.crash.at_epoch = e1;
  options.crash.after_txns = 0;
  options.crash.at_start = false;
  options.crash.recover = true;
  options.crash.more.clear();
  options.crash.more.push_back({b, e2, 0, false});
  options.crash.more.push_back({a, e3, 0, false});
  options.detector.enabled = true;

  std::ostringstream out;
  out << "chaos(seed=" << seed << "): crash m" << a << "@e" << e1 << ", m"
      << b << "@e" << e2 << ", m" << a << "@e" << e3 << " (repeat)";
  // With a third machine to spare, make it a straggler: heartbeat
  // handling stalls for half the detector deadline once per two deadline
  // periods — slow enough to show up, never slow enough to be declared.
  if (num_machines >= 3) {
    MachineId s = static_cast<MachineId>(rng.NextBelow(num_machines - 2));
    const MachineId lo = std::min(a, b), hi = std::max(a, b);
    if (s >= lo) ++s;
    if (s >= hi) ++s;
    options.straggler.machine = s;
    options.straggler.delay_us = options.detector.deadline_us / 2;
    options.straggler.period_us = 2 * options.detector.deadline_us;
    out << ", straggler m" << s << " (delay="
        << options.straggler.delay_us << "us)";
  }
  // With coordinator replication on, kill the leader once too (seq@E in
  // the --chaos grammar). Drawn after every other event so the worker
  // schedule for a fixed seed is unchanged by the standby count; the
  // epoch may coincide with e2, composing a coordinator crash with a
  // worker crash at the same round — a desired hard case.
  options.crash.coordinator_at.clear();
  options.crash.coordinator_revive_at.clear();
  if (options.coordinator.standbys > 0) {
    const SinkEpoch es = e1 + 1 + static_cast<SinkEpoch>(rng.NextBelow(third));
    options.crash.coordinator_at.push_back(es);
    out << ", seq@e" << es;
  }
  if (extended) {
    // Extended chaos (the nightly matrix): link-level faults, drawn
    // strictly AFTER every base draw so a fixed seed's crash / straggler
    // / leader-crash pattern is unchanged by the extended flag. One
    // symmetric isolation window (span 2, inside the default epoch
    // credit window), one gray-failure slow link, one flapping link, and
    // — with standbys — the leader crash above becomes a pause-and-
    // revive zombie whose stale traffic must be term-fenced.
    PartitionSchedule& net = options.transport.faults.partition;
    PartitionEvent part;
    part.group_a.push_back(
        static_cast<MachineId>(rng.NextBelow(num_machines)));
    part.from_epoch = 2 + rng.NextBelow(span_epochs - 4);
    part.heal_epoch = part.from_epoch + 2;
    net.partitions.push_back(part);
    SlowLinkEvent slow;
    slow.from = static_cast<MachineId>(rng.NextBelow(num_machines));
    slow.to = static_cast<MachineId>(rng.NextBelow(num_machines - 1));
    if (slow.to >= slow.from) ++slow.to;
    slow.from_epoch = 1 + rng.NextBelow(span_epochs / 2);
    slow.heal_epoch =
        slow.from_epoch + std::max<SinkEpoch>(span_epochs / 3, 2);
    net.slow_links.push_back(slow);
    FlappingLink flap;
    flap.from = static_cast<MachineId>(rng.NextBelow(num_machines));
    flap.to = static_cast<MachineId>(rng.NextBelow(num_machines - 1));
    if (flap.to >= flap.from) ++flap.to;
    flap.from_epoch = 1 + rng.NextBelow(span_epochs / 2);
    flap.heal_epoch = flap.from_epoch + 2;
    net.flapping.push_back(flap);
    out << ", " << net.Summary();
    if (!options.crash.coordinator_at.empty()) {
      const SinkEpoch revive = options.crash.coordinator_at.back() + 2 +
                               static_cast<SinkEpoch>(rng.NextBelow(third));
      options.crash.coordinator_revive_at.assign(
          options.crash.coordinator_at.size(), 0);
      options.crash.coordinator_revive_at.back() = revive;
      out << "+revive@e" << revive;
    }
  }
  return out.str();
}

ClusterRunOutcome LocalCluster::RunCalvin() {
  TPART_CHECK(!options_.resize.enabled())
      << "elastic membership is a T-Part streaming feature";
  if (used_) Reset();
  used_ = true;
  NameTraceTracks(machines_.size());
  TPART_TRACE(SetThreadInfo(0, "driver"));
  const std::vector<TxnSpec> txns = workload_->SequencedRequests();
  for (const TxnSpec& spec : txns) {
    if (spec.is_dummy) continue;
    // Each scheduler "forwards the request to the local executor if the
    // read and write sets cover any data stored locally" (§2.1).
    std::vector<bool> participates(machines_.size(), false);
    for (const ObjectKey k : spec.rw.AllKeys()) {
      participates[workload_->partition_map->Locate(k)] = true;
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (participates[m]) machines_[m]->EnqueueCalvinTxn(spec);
    }
  }
  for (auto& m : machines_) m->StartCalvin();
  for (auto& m : machines_) m->FinishEnqueue();
  for (auto& m : machines_) m->JoinExecutor();
  transport_->Flush();
  ClusterRunOutcome outcome = CollectResults(/*dedup_participants=*/true);
  outcome.transport = transport_->stats();
  StopAll();
  return outcome;
}

ClusterRunOutcome LocalCluster::CollectResults(bool dedup_participants) {
  std::vector<TxnResult> all;
  for (auto& m : machines_) {
    for (auto& r : m->TakeResults()) all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(),
            [](const TxnResult& a, const TxnResult& b) {
              return a.id < b.id;
            });
  ClusterRunOutcome outcome;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (dedup_participants && !outcome.results.empty() &&
        outcome.results.back().id == all[i].id) {
      // Determinism: every participant must reach the same decision and
      // outputs (§2.1).
      TPART_CHECK(outcome.results.back().committed == all[i].committed &&
                  outcome.results.back().output == all[i].output)
          << "participants diverged on T" << all[i].id;
      continue;
    }
    outcome.results.push_back(std::move(all[i]));
  }
  for (const auto& r : outcome.results) {
    if (r.committed) {
      ++outcome.committed;
    } else {
      ++outcome.aborted;
    }
  }
  return outcome;
}

}  // namespace tpart
