#ifndef TPART_RUNTIME_CHANNEL_H_
#define TPART_RUNTIME_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "storage/record.h"

namespace tpart {

/// Inter-machine message. One variant struct keeps the wire format
/// explicit and cheap to log for recovery (§5.4).
struct Message {
  enum class Type {
    /// Forward-push of a version entry <key, version, dst_txn> (§3.4).
    kPushVersion,
    /// Remote cache pull request for epoch entry <key, version>.
    kCacheReadReq,
    kCacheReadResp,
    /// Remote storage read of the version tagged `version`.
    kStorageReadReq,
    kStorageReadResp,
    /// Apply a write-back at the record's home (§5.4: UNDO-logged there).
    kWriteBackApply,
    /// Calvin peer-push of local read results for one transaction (§2.1).
    kPeerReads,
    /// Self-notification: the local executor published an epoch entry;
    /// parked remote pulls may now be served.
    kLocalPublish,
    /// Stop the service loop.
    kShutdown,
  };

  Type type = Type::kShutdown;
  ObjectKey key = 0;
  TxnId version = kInvalidTxnId;
  /// kWriteBackApply: storage version the write-back replaces.
  TxnId replaces = kInvalidTxnId;
  TxnId dst_txn = kInvalidTxnId;
  Record value;
  bool invalidate = false;
  std::uint32_t total_reads = 0;
  std::uint32_t awaits = 0;
  bool sticky = false;
  SinkEpoch epoch = 0;
  MachineId reply_to = kInvalidMachine;
  std::uint64_t req_id = 0;
  TxnId txn = kInvalidTxnId;
  std::vector<std::pair<ObjectKey, Record>> kvs;
};

/// Unbounded MPSC blocking queue — the "network" between machines. A
/// LocalCluster wires one Channel per machine; Send() is the only way
/// machines affect each other.
class Channel {
 public:
  void Send(Message msg);

  /// Blocks for the next message.
  Message Receive();

  /// Non-blocking variant.
  std::optional<Message> TryReceive();

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_CHANNEL_H_
