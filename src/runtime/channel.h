#ifndef TPART_RUNTIME_CHANNEL_H_
#define TPART_RUNTIME_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include <string>

#include "common/status.h"
#include "common/types.h"
#include "storage/record.h"
#include "txn/txn.h"

namespace tpart {

/// Inter-machine message. One variant struct keeps the wire format
/// explicit and cheap to log for recovery (§5.4); net/wire.h defines the
/// binary serialization used by the real transports.
struct Message {
  enum class Type {
    /// Forward-push of a version entry <key, version, dst_txn> (§3.4).
    kPushVersion,
    /// Remote cache pull request for epoch entry <key, version>.
    kCacheReadReq,
    kCacheReadResp,
    /// Remote storage read of the version tagged `version`.
    kStorageReadReq,
    kStorageReadResp,
    /// Apply a write-back at the record's home (§5.4: UNDO-logged there).
    kWriteBackApply,
    /// Calvin peer-push of local read results for one transaction (§2.1).
    kPeerReads,
    /// Self-notification: the local executor published an epoch entry;
    /// parked remote pulls may now be served.
    kLocalPublish,
    /// Streaming dissemination (§3.3/§5.2): one sinking round's full push
    /// plan (`plan_bytes` = EncodeSinkPlan output) plus the specs of its
    /// transactions; every machine receives every round and executes only
    /// its own slice.
    kSinkPlan,
    /// Streaming dissemination: no more plans will arrive; `epoch` carries
    /// the last emitted sinking round (0 when the stream was empty).
    kPlanStreamEnd,
    /// Failure-detector probe: the watchdog stamps a monotonically
    /// increasing sequence number in `req_id`; a live machine's service
    /// thread records it (Machine::heartbeat_seen). A crashed machine
    /// drops probes, so its recorded sequence stalls — that stall, held
    /// past the deadline, is the failure signal.
    kHeartbeat,
    /// Internal checkpoint fence: the executor posts it through its own
    /// inbound queue at a quiescent epoch boundary; when the service
    /// thread dispatches it, every earlier logged message has been fully
    /// applied, so the machine captures its checkpoint there. Never
    /// crosses the wire.
    kCheckpointBarrier,
    /// Elastic membership (src/elastic): control plane -> source machine,
    /// at a quiesced sink-epoch barrier. `plan_bytes` lists the moved
    /// keys, `dst_txn` the target machine, `req_id` the migration stream
    /// id, `epoch` the cut epoch. The source captures the keys' partition
    /// image, ships it to the target, and drops the keys locally.
    kMigrateBegin,
    /// One chunk of an encoded PartitionImage: `plan_bytes` the chunk,
    /// `epoch` the chunk index, `txn` the total chunk count, `req_id` the
    /// stream id. The target dedupes by (stream, chunk index), so
    /// transport-level duplicates deliver exactly once.
    kPartitionImage,
    /// End of a migration stream: `key` carries the FNV checksum of the
    /// whole encoded image, `txn` the chunk count, `version` the number of
    /// key entries. The target verifies and installs atomically.
    kMigrateCommit,
    /// Local-only service fence: posted directly into a machine's inbound
    /// queue by the migration barrier; when dispatched, every message
    /// delivered before it has been applied. Never crosses the wire.
    kServiceFence,
    /// Coordinator replication (§2.1 Zab, DESIGN §4i): leader -> standby
    /// replication of one sequenced batch. `req_id` is the log index,
    /// `txn` the batch id, `epoch` the leader's term, `specs` the batch's
    /// transactions (ids already assigned by the sequencer).
    kLogAppend,
    /// Coordinator replication ack, multiplexed by `key`:
    ///   0 = append ack (standby -> leader; `req_id` echoes the log index),
    ///   1 = claim ack  (replica -> new leader; `req_id` = replica log len),
    ///   2 = watermark  (machine -> leader; `epoch` = highest contiguous
    ///       sink round enqueued by that machine, `req_id` echoes probe).
    kLogAck,
    /// Leadership claim / watermark probe. Replica -> replica: `txn` is the
    /// claimant replica index, `req_id` its committed-log length, `epoch`
    /// the new term (Zab election: longest log wins, ties -> lower id).
    /// Leader -> machine (`reply_to` set): a watermark probe; the machine
    /// answers with a kLogAck(key=2) to `reply_to`.
    kLeaderClaim,
    /// Stop the service loop. Must stay the last enumerator: the wire
    /// decoder rejects any type byte beyond it (net/wire.cc).
    kShutdown,
  };

  Type type = Type::kShutdown;
  ObjectKey key = 0;
  TxnId version = kInvalidTxnId;
  /// kWriteBackApply: storage version the write-back replaces.
  TxnId replaces = kInvalidTxnId;
  TxnId dst_txn = kInvalidTxnId;
  Record value;
  bool invalidate = false;
  std::uint32_t total_reads = 0;
  std::uint32_t awaits = 0;
  bool sticky = false;
  SinkEpoch epoch = 0;
  MachineId reply_to = kInvalidMachine;
  std::uint64_t req_id = 0;
  TxnId txn = kInvalidTxnId;
  std::vector<std::pair<ObjectKey, Record>> kvs;
  /// kSinkPlan: the round's plan, already wire-encoded (EncodeSinkPlan) so
  /// the scheduler serializes once per round, not once per destination.
  std::string plan_bytes;
  /// kSinkPlan: specs of the plan's (non-dummy) transactions, in plan order.
  std::vector<TxnSpec> specs;
  /// Per-transaction causal-timeline context (obs/trace_context.h packs
  /// it): sampled-txn flag + origin machine + coordinator term, riding
  /// every frame so the receiving side can stitch cross-machine async
  /// spans without global state. 0 = no context (1 varint byte on the
  /// wire).
  std::uint64_t trace_ctx = 0;
  /// Coordinator-term fence: the term of the leader that issued this
  /// plan/round/migration control message. Machines and standbys track
  /// the highest term seen and reject control traffic from lower terms
  /// — a revived "zombie" ex-leader cannot corrupt the stream with its
  /// stale in-flight plans. 0 = unfenced (data-plane traffic and legacy
  /// frames; 1 varint byte on the wire).
  std::uint64_t term = 0;
  /// Recovery re-delivery marker: set on messages re-injected from the
  /// network log or a checkpoint image during Machine::Recover(), so they
  /// are not logged a second time. Local-only (never wire-encoded, not
  /// part of equality).
  bool redelivery = false;
};

/// Field-wise equality (wire round-trip tests, transport verification).
bool operator==(const Message& a, const Message& b);

/// Rough in-memory footprint of a message, for log/window byte
/// accounting (not the wire size).
std::size_t ApproxMessageBytes(const Message& m);

/// MPSC blocking queue — the "network" between machines for the direct
/// in-memory transport, and the byte-packet conveyor inside the
/// serialized in-process transport (net/packet_network.h). A capacity of
/// 0 means unbounded; a bounded queue blocks senders when full, which is
/// how the transports exert backpressure.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Enqueues `msg`; blocks while a bounded queue is at capacity.
  /// Returns true when the send had to wait (a backpressure event).
  bool Send(T msg) {
    bool waited = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (capacity_ > 0 && queue_.size() >= capacity_) {
        waited = true;
        space_cv_.wait(lock, [&] { return queue_.size() < capacity_; });
      }
      queue_.push_back(std::move(msg));
      if (queue_.size() > high_water_) high_water_ = queue_.size();
    }
    cv_.notify_one();
    return waited;
  }

  /// Blocks for the next message.
  T Receive() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty(); });
    T msg = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return msg;
  }

  /// Deadline-aware variant: waits at most `timeout` for a message and
  /// returns kUnavailable on expiry, so a dead producer surfaces as a
  /// reported error instead of a hang. A timeout of zero waits forever
  /// (identical to Receive()). The deadline is computed once up front and
  /// every re-wait targets the *remaining* time — a stream of spurious
  /// wakeups (or stolen wakeups under heavy fan-in) cannot stretch the
  /// total wait past the requested timeout.
  [[nodiscard]] Result<T> ReceiveFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return !queue_.empty(); };
    if (timeout.count() <= 0) {
      cv_.wait(lock, ready);
    } else {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      if (!cv_.wait_until(lock, deadline, ready)) {
        return Status::Unavailable("channel receive timed out");
      }
    }
    T msg = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return msg;
  }

  /// Non-blocking variant.
  std::optional<T> TryReceive() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return msg;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Largest queue depth ever observed.
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable space_cv_;
  std::deque<T> queue_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
};

/// The machine-facing message queue (unbounded, as before).
using Channel = BlockingQueue<Message>;

}  // namespace tpart

#endif  // TPART_RUNTIME_CHANNEL_H_
