#include "runtime/storage_service.h"

#include <algorithm>
#include <condition_variable>
#include <memory>

#include "common/logging.h"

namespace tpart {

Record StorageService::CurrentValueLocked(ObjectKey key, const KeyState& st) {
  (void)st;
  Result<Record> r = store_->Read(key);
  return r.ok() ? std::move(r).value() : Record::Absent();
}

void StorageService::DrainKeyLocked(
    ObjectKey key, KeyState& st,
    std::vector<std::pair<ReadDone, Record>>& ready) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Serve parked reads of the current version.
    for (std::size_t i = 0; i < st.parked_reads.size();) {
      if (st.parked_reads[i].expected == st.current) {
        ready.emplace_back(std::move(st.parked_reads[i].done),
                           CurrentValueLocked(key, st));
        st.parked_reads.erase(st.parked_reads.begin() +
                              static_cast<std::ptrdiff_t>(i));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        progressed = true;
      } else {
        ++i;
      }
    }
    // Apply the next write-back if its gates are open: it must replace
    // the *current* version (strict replacement order) and all planned
    // readers of that version must have been served.
    auto it = st.parked_wbs.find(st.current);
    if (it != st.parked_wbs.end()) {
      ParkedWb& wb = it->second;
      if (st.reads_served_since_wb >= wb.awaits) {
        wb_log_.BeginBatch(++next_log_batch_);
        Result<Record> old = store_->Read(key);
        wb_log_.LogWrite(key, old.ok()
                                  ? std::optional<Record>(std::move(*old))
                                  : std::nullopt);
        if (wb.value.is_absent()) {
          // Blind delete: an absent write-back may target a key already
          // gone; kNotFound is the expected no-op, not an error.
          (void)store_->Delete(key);
        } else {
          store_->Upsert(key, wb.value);
        }
        wb_log_.CommitBatch();
        ++write_backs_applied_;
        dirty_keys_.insert(key);
        st.current = wb.version;
        st.reads_served_since_wb = 0;
        st.has_sticky = wb.sticky;
        st.sticky_expire = wb.epoch + sticky_ttl_;
        st.parked_wbs.erase(it);
        progressed = true;
      }
    }
  }
}

void StorageService::AsyncRead(ObjectKey key, TxnId expected_version,
                               ReadDone done,
                               std::optional<RemoteReadTag> remote) {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ready.emplace_back(std::move(done), Record::Absent());
    } else {
      KeyState& st = keys_[key];
      if (st.current == expected_version) {
        if (st.has_sticky) ++sticky_hits_;
        ready.emplace_back(std::move(done), CurrentValueLocked(key, st));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        DrainKeyLocked(key, st, ready);
      } else {
        st.parked_reads.push_back(ParkedRead{expected_version,
                                             std::move(done),
                                             std::move(remote)});
      }
    }
  }
  for (auto& [cb, value] : ready) cb(std::move(value));
}

Record StorageService::BlockingRead(ObjectKey key, TxnId expected_version) {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Record out;
  AsyncRead(key, expected_version, [&](Record value) {
    // Notify while holding the lock: the waiter owns cv on its stack, and
    // notifying after unlocking would race with cv's destruction once the
    // waiter observes `done` and returns.
    std::lock_guard<std::mutex> lock(m);
    out = std::move(value);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  return out;
}

Result<Record> StorageService::BlockingReadFor(
    ObjectKey key, TxnId expected_version, std::chrono::microseconds timeout) {
  if (timeout.count() <= 0) return BlockingRead(key, expected_version);
  // The wait state is shared with the callback: on timeout this frame
  // returns while the read stays parked, and the late callback must not
  // touch a dead stack frame.
  struct WaitState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Record out;
  };
  auto st = std::make_shared<WaitState>();
  AsyncRead(key, expected_version, [st](Record value) {
    std::lock_guard<std::mutex> lock(st->m);
    st->out = std::move(value);
    st->done = true;
    st->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(st->m);
  if (!st->cv.wait_for(lock, timeout, [&] { return st->done; })) {
    return Status::Unavailable("storage read timed out awaiting version");
  }
  return std::move(st->out);
}

void StorageService::ApplyWriteBack(ObjectKey key, TxnId version,
                                    TxnId replaces, Record value,
                                    std::uint32_t awaits, bool sticky,
                                    SinkEpoch epoch) {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    KeyState& st = keys_[key];
    st.parked_wbs.emplace(
        replaces,
        ParkedWb{version, replaces, std::move(value), awaits, sticky, epoch});
    DrainKeyLocked(key, st, ready);
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
}

void StorageService::Shutdown() {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [key, st] : keys_) {
      (void)key;
      for (auto& pr : st.parked_reads) {
        ready.emplace_back(std::move(pr.done), Record::Absent());
      }
      st.parked_reads.clear();
    }
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
}

void StorageService::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // A crash-stop drops parked reads and write-backs on the floor: the
  // log replay re-issues them. ReadDone callbacks still parked here only
  // capture shared or machine-owned state, so dropping them is safe.
  keys_.clear();
  shutdown_ = false;
}

StorageService::Image StorageService::Capture() const {
  std::lock_guard<std::mutex> lock(mu_);
  Image image;
  // Deterministic key order so same-seed captures are byte-identical.
  std::vector<ObjectKey> order;
  order.reserve(keys_.size());
  for (const auto& [key, st] : keys_) {
    (void)st;
    order.push_back(key);
  }
  std::sort(order.begin(), order.end());
  image.keys.reserve(order.size());
  for (const ObjectKey key : order) {
    const KeyState& st = keys_.at(key);
    Image::KeyImage ki;
    ki.key = key;
    ki.current = st.current;
    ki.reads_served_since_wb = st.reads_served_since_wb;
    ki.has_sticky = st.has_sticky;
    ki.sticky_expire = st.sticky_expire;
    for (const auto& [replaces, wb] : st.parked_wbs) {
      (void)replaces;
      ki.parked_wbs.push_back(Image::ParkedWbImage{
          wb.version, wb.replaces, wb.value, wb.awaits, wb.sticky, wb.epoch});
    }
    for (const ParkedRead& pr : st.parked_reads) {
      // The executor is quiescent at capture, so every parked read must be
      // a remote pull; a local wait here would be lost by the checkpoint.
      TPART_CHECK(pr.remote.has_value())
          << "untagged parked storage read at checkpoint capture (key="
          << key << ")";
      ki.parked_remote_reads.push_back(
          Image::ParkedRemoteRead{pr.expected, *pr.remote});
    }
    image.keys.push_back(std::move(ki));
  }
  return image;
}

void StorageService::Restore(const Image& image,
                             const MakeRemoteDone& make_done) {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
  dirty_keys_.clear();
  for (const auto& ki : image.keys) {
    KeyState& st = keys_[ki.key];
    st.current = ki.current;
    st.reads_served_since_wb = ki.reads_served_since_wb;
    st.has_sticky = ki.has_sticky;
    st.sticky_expire = ki.sticky_expire;
    for (const auto& wb : ki.parked_wbs) {
      st.parked_wbs.emplace(
          wb.replaces, ParkedWb{wb.version, wb.replaces, wb.value, wb.awaits,
                                wb.sticky, wb.epoch});
    }
    for (const auto& prr : ki.parked_remote_reads) {
      st.parked_reads.push_back(
          ParkedRead{prr.expected, make_done(prr.tag), prr.tag});
    }
  }
  shutdown_ = false;
}

std::vector<ObjectKey> StorageService::StateKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectKey> out;
  out.reserve(keys_.size());
  for (const auto& [key, st] : keys_) {
    (void)st;
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StorageService::MigratedKeyState> StorageService::ExtractKeys(
    const std::vector<ObjectKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MigratedKeyState> out;
  out.reserve(keys.size());
  for (const ObjectKey key : keys) {
    auto it = keys_.find(key);
    if (it == keys_.end()) continue;
    const KeyState& st = it->second;
    TPART_CHECK(st.parked_reads.empty() && st.parked_wbs.empty())
        << "migrating key " << key << " with parked storage work — the "
        << "barrier did not quiesce the stream";
    out.push_back(MigratedKeyState{key, st.current, st.reads_served_since_wb,
                                   st.has_sticky, st.sticky_expire});
    keys_.erase(it);
    dirty_keys_.insert(key);  // the forced capture must fold the deletion
  }
  return out;
}

void StorageService::InstallKeys(const std::vector<MigratedKeyState>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MigratedKeyState& mk : keys) {
    KeyState& st = keys_[mk.key];
    st.current = mk.current;
    st.reads_served_since_wb = mk.reads_served_since_wb;
    st.has_sticky = mk.has_sticky;
    st.sticky_expire = mk.sticky_expire;
    dirty_keys_.insert(mk.key);
  }
}

void StorageService::MarkDirty(const std::vector<ObjectKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_keys_.insert(keys.begin(), keys.end());
}

std::vector<ObjectKey> StorageService::TakeDirtyKeys() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectKey> out(dirty_keys_.begin(), dirty_keys_.end());
  dirty_keys_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t StorageService::sticky_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sticky_hits_;
}

std::uint64_t StorageService::reads_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_served_total_;
}

std::uint64_t StorageService::write_backs_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_backs_applied_;
}

}  // namespace tpart
