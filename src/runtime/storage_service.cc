#include "runtime/storage_service.h"

#include <condition_variable>
#include <memory>

namespace tpart {

Record StorageService::CurrentValueLocked(ObjectKey key, const KeyState& st) {
  (void)st;
  Result<Record> r = store_->Read(key);
  return r.ok() ? std::move(r).value() : Record::Absent();
}

void StorageService::DrainKeyLocked(
    ObjectKey key, KeyState& st,
    std::vector<std::pair<ReadDone, Record>>& ready) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Serve parked reads of the current version.
    for (std::size_t i = 0; i < st.parked_reads.size();) {
      if (st.parked_reads[i].expected == st.current) {
        ready.emplace_back(std::move(st.parked_reads[i].done),
                           CurrentValueLocked(key, st));
        st.parked_reads.erase(st.parked_reads.begin() +
                              static_cast<std::ptrdiff_t>(i));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        progressed = true;
      } else {
        ++i;
      }
    }
    // Apply the next write-back if its gates are open: it must replace
    // the *current* version (strict replacement order) and all planned
    // readers of that version must have been served.
    auto it = st.parked_wbs.find(st.current);
    if (it != st.parked_wbs.end()) {
      ParkedWb& wb = it->second;
      if (st.reads_served_since_wb >= wb.awaits) {
        wb_log_.BeginBatch(++next_log_batch_);
        Result<Record> old = store_->Read(key);
        wb_log_.LogWrite(key, old.ok()
                                  ? std::optional<Record>(std::move(*old))
                                  : std::nullopt);
        if (wb.value.is_absent()) {
          (void)store_->Delete(key);
        } else {
          store_->Upsert(key, wb.value);
        }
        wb_log_.CommitBatch();
        ++write_backs_applied_;
        st.current = wb.version;
        st.reads_served_since_wb = 0;
        st.has_sticky = wb.sticky;
        st.sticky_expire = wb.epoch + sticky_ttl_;
        st.parked_wbs.erase(it);
        progressed = true;
      }
    }
  }
}

void StorageService::AsyncRead(ObjectKey key, TxnId expected_version,
                               ReadDone done) {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ready.emplace_back(std::move(done), Record::Absent());
    } else {
      KeyState& st = keys_[key];
      if (st.current == expected_version) {
        if (st.has_sticky) ++sticky_hits_;
        ready.emplace_back(std::move(done), CurrentValueLocked(key, st));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        DrainKeyLocked(key, st, ready);
      } else {
        st.parked_reads.push_back(ParkedRead{expected_version,
                                             std::move(done)});
      }
    }
  }
  for (auto& [cb, value] : ready) cb(std::move(value));
}

Record StorageService::BlockingRead(ObjectKey key, TxnId expected_version) {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Record out;
  AsyncRead(key, expected_version, [&](Record value) {
    // Notify while holding the lock: the waiter owns cv on its stack, and
    // notifying after unlocking would race with cv's destruction once the
    // waiter observes `done` and returns.
    std::lock_guard<std::mutex> lock(m);
    out = std::move(value);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  return out;
}

Result<Record> StorageService::BlockingReadFor(
    ObjectKey key, TxnId expected_version, std::chrono::microseconds timeout) {
  if (timeout.count() <= 0) return BlockingRead(key, expected_version);
  // The wait state is shared with the callback: on timeout this frame
  // returns while the read stays parked, and the late callback must not
  // touch a dead stack frame.
  struct WaitState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Record out;
  };
  auto st = std::make_shared<WaitState>();
  AsyncRead(key, expected_version, [st](Record value) {
    std::lock_guard<std::mutex> lock(st->m);
    st->out = std::move(value);
    st->done = true;
    st->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(st->m);
  if (!st->cv.wait_for(lock, timeout, [&] { return st->done; })) {
    return Status::Unavailable("storage read timed out awaiting version");
  }
  return std::move(st->out);
}

void StorageService::ApplyWriteBack(ObjectKey key, TxnId version,
                                    TxnId replaces, Record value,
                                    std::uint32_t awaits, bool sticky,
                                    SinkEpoch epoch) {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    KeyState& st = keys_[key];
    st.parked_wbs.emplace(
        replaces,
        ParkedWb{version, replaces, std::move(value), awaits, sticky, epoch});
    DrainKeyLocked(key, st, ready);
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
}

void StorageService::Shutdown() {
  std::vector<std::pair<ReadDone, Record>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [key, st] : keys_) {
      (void)key;
      for (auto& pr : st.parked_reads) {
        ready.emplace_back(std::move(pr.done), Record::Absent());
      }
      st.parked_reads.clear();
    }
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
}

void StorageService::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // A crash-stop drops parked reads and write-backs on the floor: the
  // log replay re-issues them. ReadDone callbacks still parked here only
  // capture shared or machine-owned state, so dropping them is safe.
  keys_.clear();
  shutdown_ = false;
}

std::uint64_t StorageService::sticky_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sticky_hits_;
}

std::uint64_t StorageService::reads_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_served_total_;
}

std::uint64_t StorageService::write_backs_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_backs_applied_;
}

}  // namespace tpart
