#include "runtime/storage_service.h"

#include <algorithm>
#include <condition_variable>
#include <memory>

#include "common/logging.h"

namespace tpart {

namespace {

using ReadyVec =
    std::vector<std::pair<StorageService::ReadDone, Record>>;

// Per-thread pool of ready-callback vectors (DESIGN §4h): the drain path
// runs on every read/write-back, and a fresh vector per call was one of
// the hottest allocation sites. Pooling (instead of a bare thread_local)
// stays correct even if a callback re-enters the service on this thread.
std::vector<ReadyVec>& ReadyPool() {
  thread_local std::vector<ReadyVec> pool;
  return pool;
}

ReadyVec AcquireReadyVec() {
  auto& pool = ReadyPool();
  if (pool.empty()) return {};
  ReadyVec v = std::move(pool.back());
  pool.pop_back();
  return v;
}

void ReleaseReadyVec(ReadyVec v) {
  v.clear();
  ReadyPool().push_back(std::move(v));
}

}  // namespace

Record StorageService::CurrentValueLocked(ObjectKey key, const KeyState& st) {
  (void)st;
  Result<Record> r = store_->Read(key);
  return r.ok() ? std::move(r).value() : Record::Absent();
}

void StorageService::DrainKeyLocked(
    ObjectKey key, KeyState& st,
    std::vector<std::pair<ReadDone, Record>>& ready) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Serve parked reads of the current version.
    for (std::size_t i = 0; i < st.parked_reads.size();) {
      if (st.parked_reads[i].expected == st.current) {
        ready.emplace_back(std::move(st.parked_reads[i].done),
                           CurrentValueLocked(key, st));
        st.parked_reads.erase(st.parked_reads.begin() +
                              static_cast<std::ptrdiff_t>(i));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        progressed = true;
      } else {
        ++i;
      }
    }
    // Apply the next write-back if its gates are open: it must replace
    // the *current* version (strict replacement order) and all planned
    // readers of that version must have been served.
    auto it = std::find_if(
        st.parked_wbs.begin(), st.parked_wbs.end(),
        [&](const ParkedWb& w) { return w.replaces == st.current; });
    if (it != st.parked_wbs.end()) {
      ParkedWb& wb = *it;
      if (st.reads_served_since_wb >= wb.awaits) {
        wb_log_.BeginBatch(++next_log_batch_);
        Result<Record> old = store_->Read(key);
        wb_log_.LogWrite(key, old.ok()
                                  ? std::optional<Record>(std::move(*old))
                                  : std::nullopt);
        if (wb.value.is_absent()) {
          // Blind delete: an absent write-back may target a key already
          // gone; kNotFound is the expected no-op, not an error.
          (void)store_->Delete(key);
        } else {
          store_->Upsert(key, wb.value);
        }
        wb_log_.CommitBatch();
        ++write_backs_applied_;
        dirty_keys_.emplace(key, 0);
        st.current = wb.version;
        st.reads_served_since_wb = 0;
        st.has_sticky = wb.sticky;
        st.sticky_expire = wb.epoch + sticky_ttl_;
        st.parked_wbs.erase(it);
        progressed = true;
      }
    }
  }
}

void StorageService::AsyncRead(ObjectKey key, TxnId expected_version,
                               ReadDone done,
                               std::optional<RemoteReadTag> remote) {
  ReadyVec ready = AcquireReadyVec();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ready.emplace_back(std::move(done), Record::Absent());
    } else {
      KeyState& st = keys_[key];
      if (st.current == expected_version) {
        if (st.has_sticky) ++sticky_hits_;
        ready.emplace_back(std::move(done), CurrentValueLocked(key, st));
        ++st.reads_served_since_wb;
        ++reads_served_total_;
        DrainKeyLocked(key, st, ready);
      } else {
        st.parked_reads.push_back(ParkedRead{expected_version,
                                             std::move(done),
                                             std::move(remote)});
      }
    }
  }
  for (auto& [cb, value] : ready) cb(std::move(value));
  ReleaseReadyVec(std::move(ready));
}

namespace {

// Wait state for blocking reads. Owned by a per-thread slab that is never
// freed, so the ReadDone callback can capture a raw {state, generation}
// pair — 16 trivially-copyable bytes that fit std::function's inline
// buffer, keeping the per-read callback off the heap. A timed-out waiter
// bumps `gen` (under the lock) and recycles the state immediately; the
// still-parked callback observes the stale generation and does nothing.
// The slab lives until its thread exits, which covers every parked
// callback: Shutdown() runs them while waiters are still blocked (it
// exists to release them), and Reset() drops them without running.
struct ReadWaitState {
  std::mutex m;
  std::condition_variable cv;
  std::uint64_t gen = 0;
  bool done = false;
  Record out;
};

// One blocking read per thread at a time, so the slab holds one state in
// steady state. Acquire/Release run on the waiting thread only (blocking
// reads complete on the calling thread), so the pool needs no locking.
struct ReadWaitPool {
  std::vector<std::unique_ptr<ReadWaitState>> slab;
  std::vector<ReadWaitState*> free_list;
};

ReadWaitPool& GetReadWaitPool() {
  thread_local ReadWaitPool pool;
  return pool;
}

ReadWaitState* AcquireReadWait() {
  ReadWaitPool& pool = GetReadWaitPool();
  if (pool.free_list.empty()) {
    pool.slab.push_back(std::make_unique<ReadWaitState>());
    pool.free_list.push_back(pool.slab.back().get());
  }
  ReadWaitState* st = pool.free_list.back();
  pool.free_list.pop_back();
  return st;
}

void ReleaseReadWait(ReadWaitState* st) {
  GetReadWaitPool().free_list.push_back(st);
}

}  // namespace

Record StorageService::BlockingRead(ObjectKey key, TxnId expected_version) {
  Result<Record> r =
      BlockingReadFor(key, expected_version, std::chrono::microseconds(0));
  return r.ok() ? std::move(r).value() : Record::Absent();
}

Result<Record> StorageService::BlockingReadFor(
    ObjectKey key, TxnId expected_version, std::chrono::microseconds timeout) {
  ReadWaitState* st = AcquireReadWait();
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(st->m);
    gen = ++st->gen;
    st->done = false;
  }
  struct Tag {
    ReadWaitState* st;
    std::uint64_t gen;
  };
  const Tag tag{st, gen};
  AsyncRead(key, expected_version, [tag](Record value) {
    // Notify while holding the lock; a stale generation means the waiter
    // timed out and recycled the state — drop the value.
    std::lock_guard<std::mutex> lock(tag.st->m);
    if (tag.st->gen != tag.gen) return;
    tag.st->out = std::move(value);
    tag.st->done = true;
    tag.st->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(st->m);
  const bool ok =
      timeout.count() <= 0
          ? (st->cv.wait(lock, [&] { return st->done; }), true)
          : st->cv.wait_for(lock, timeout, [&] { return st->done; });
  ++st->gen;  // invalidate any still-parked callback before recycling
  Record out = ok ? std::move(st->out) : Record();
  st->out = Record();
  lock.unlock();
  ReleaseReadWait(st);
  if (!ok) {
    return Status::Unavailable("storage read timed out awaiting version");
  }
  return std::move(out);
}

void StorageService::ApplyWriteBack(ObjectKey key, TxnId version,
                                    TxnId replaces, Record value,
                                    std::uint32_t awaits, bool sticky,
                                    SinkEpoch epoch) {
  ReadyVec ready = AcquireReadyVec();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    KeyState& st = keys_[key];
    // Mirror std::map::emplace semantics: a duplicate (same replaced
    // version) is dropped, not double-applied.
    const bool dup = std::any_of(
        st.parked_wbs.begin(), st.parked_wbs.end(),
        [&](const ParkedWb& w) { return w.replaces == replaces; });
    if (!dup) {
      st.parked_wbs.push_back(
          ParkedWb{version, replaces, std::move(value), awaits, sticky,
                   epoch});
    }
    DrainKeyLocked(key, st, ready);
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
  ReleaseReadyVec(std::move(ready));
}

void StorageService::Shutdown() {
  ReadyVec ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [key, st] : keys_) {
      (void)key;
      for (auto& pr : st.parked_reads) {
        ready.emplace_back(std::move(pr.done), Record::Absent());
      }
      st.parked_reads.clear();
    }
  }
  for (auto& [cb, v] : ready) cb(std::move(v));
}

void StorageService::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // A crash-stop drops parked reads and write-backs on the floor: the
  // log replay re-issues them. ReadDone callbacks still parked here only
  // capture shared or machine-owned state, so dropping them is safe.
  keys_.clear();
  shutdown_ = false;
}

StorageService::Image StorageService::Capture() const {
  std::lock_guard<std::mutex> lock(mu_);
  Image image;
  // Deterministic key order so same-seed captures are byte-identical.
  std::vector<ObjectKey> order;
  order.reserve(keys_.size());
  for (const auto& [key, st] : keys_) {
    (void)st;
    order.push_back(key);
  }
  std::sort(order.begin(), order.end());
  image.keys.reserve(order.size());
  for (const ObjectKey key : order) {
    const KeyState& st = keys_.at(key);
    Image::KeyImage ki;
    ki.key = key;
    ki.current = st.current;
    ki.reads_served_since_wb = st.reads_served_since_wb;
    ki.has_sticky = st.has_sticky;
    ki.sticky_expire = st.sticky_expire;
    std::vector<const ParkedWb*> wbs;
    wbs.reserve(st.parked_wbs.size());
    for (const ParkedWb& wb : st.parked_wbs) wbs.push_back(&wb);
    std::sort(wbs.begin(), wbs.end(), [](const ParkedWb* a, const ParkedWb* b) {
      return a->replaces < b->replaces;
    });
    for (const ParkedWb* wb : wbs) {
      ki.parked_wbs.push_back(Image::ParkedWbImage{
          wb->version, wb->replaces, wb->value, wb->awaits, wb->sticky,
          wb->epoch});
    }
    for (const ParkedRead& pr : st.parked_reads) {
      // The executor is quiescent at capture, so every parked read must be
      // a remote pull; a local wait here would be lost by the checkpoint.
      TPART_CHECK(pr.remote.has_value())
          << "untagged parked storage read at checkpoint capture (key="
          << key << ")";
      ki.parked_remote_reads.push_back(
          Image::ParkedRemoteRead{pr.expected, *pr.remote});
    }
    image.keys.push_back(std::move(ki));
  }
  return image;
}

void StorageService::Restore(const Image& image,
                             const MakeRemoteDone& make_done) {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
  dirty_keys_.clear();
  for (const auto& ki : image.keys) {
    KeyState& st = keys_[ki.key];
    st.current = ki.current;
    st.reads_served_since_wb = ki.reads_served_since_wb;
    st.has_sticky = ki.has_sticky;
    st.sticky_expire = ki.sticky_expire;
    for (const auto& wb : ki.parked_wbs) {
      st.parked_wbs.push_back(ParkedWb{wb.version, wb.replaces, wb.value,
                                       wb.awaits, wb.sticky, wb.epoch});
    }
    for (const auto& prr : ki.parked_remote_reads) {
      st.parked_reads.push_back(
          ParkedRead{prr.expected, make_done(prr.tag), prr.tag});
    }
  }
  shutdown_ = false;
}

std::vector<ObjectKey> StorageService::StateKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectKey> out;
  out.reserve(keys_.size());
  for (const auto& [key, st] : keys_) {
    (void)st;
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StorageService::MigratedKeyState> StorageService::ExtractKeys(
    const std::vector<ObjectKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MigratedKeyState> out;
  out.reserve(keys.size());
  for (const ObjectKey key : keys) {
    auto it = keys_.find(key);
    if (it == keys_.end()) continue;
    const KeyState& st = it->second;
    TPART_CHECK(st.parked_reads.empty() && st.parked_wbs.empty())
        << "migrating key " << key << " with parked storage work — the "
        << "barrier did not quiesce the stream";
    out.push_back(MigratedKeyState{key, st.current, st.reads_served_since_wb,
                                   st.has_sticky, st.sticky_expire});
    keys_.erase(it);
    dirty_keys_.emplace(key, 0);  // forced capture must fold the deletion
  }
  return out;
}

void StorageService::InstallKeys(const std::vector<MigratedKeyState>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MigratedKeyState& mk : keys) {
    KeyState& st = keys_[mk.key];
    st.current = mk.current;
    st.reads_served_since_wb = mk.reads_served_since_wb;
    st.has_sticky = mk.has_sticky;
    st.sticky_expire = mk.sticky_expire;
    dirty_keys_.emplace(mk.key, 0);
  }
}

void StorageService::MarkDirty(const std::vector<ObjectKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ObjectKey key : keys) dirty_keys_.emplace(key, 0);
}

std::vector<ObjectKey> StorageService::TakeDirtyKeys() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectKey> out;
  out.reserve(dirty_keys_.size());
  for (const auto& [key, unused] : dirty_keys_) {
    (void)unused;
    out.push_back(key);
  }
  dirty_keys_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t StorageService::sticky_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sticky_hits_;
}

std::uint64_t StorageService::reads_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_served_total_;
}

std::uint64_t StorageService::write_backs_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_backs_applied_;
}

}  // namespace tpart
